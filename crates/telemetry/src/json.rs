//! Minimal hand-rolled JSON support for the metrics JSONL schema.
//!
//! The workspace builds offline with no serde, so the report writer
//! formats JSON directly and this module supplies the inverse: a small
//! recursive-descent parser covering exactly the subset the schema uses
//! — objects, arrays, strings, and unsigned integers.  It exists so the
//! JSONL contract can be *validated* (CI runs a schema round-trip test)
//! rather than merely emitted.

/// A parsed JSON value (schema subset: no floats, no bools, no null).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// Object, in source key order.
    Obj(Vec<(String, Json)>),
    /// Array.
    Arr(Vec<Json>),
    /// String.
    Str(String),
    /// Unsigned integer (u128 covers histogram sums).
    Num(u128),
}

impl Json {
    /// Look up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    #[must_use]
    pub fn as_num(&self) -> Option<u128> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object's fields, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value as an array's items, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escape a string for embedding in JSON (quotes included).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse one JSON document (the schema subset).  Trailing content after
/// the value is an error.
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(c) if c.is_ascii_digit() => parse_num(b, pos),
        other => Err(format!(
            "unexpected {:?} at byte {} (schema subset: object/array/string/uint)",
            other.map(|&x| x as char),
            *pos
        )),
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key {key:?}"));
        }
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            other => return Err(format!("expected ',' or '}}' (found {:?})", other)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' (found {:?})", other)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point".to_string())?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {:?}", other)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Copy a UTF-8 sequence through verbatim.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(*pos..*pos + len)
                    .ok_or("truncated UTF-8".to_string())?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<u128>()
        .map(Json::Num)
        .map_err(|e| format!("bad integer {text:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_schema_shaped_documents() {
        let doc =
            r#"{"schema":"plurality-metrics/v1","counters":{"a":1,"b":22},"arr":[[0,3],[17,1]]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("plurality-metrics/v1")
        );
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("b"))
                .and_then(Json::as_num),
            Some(22)
        );
        let arr = v.get("arr").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[1].as_arr().unwrap()[0], Json::Num(17));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}π";
        let parsed = parse(&escape(nasty)).unwrap();
        assert_eq!(parsed.as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1}x",
            "[1,,2]",
            "{\"a\":1,\"a\":2}",
            "{\"a\":-1}",
            "{\"a\":1.5}",
            "{\"a\":true}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[ ]").unwrap(), Json::Arr(vec![]));
    }
}
