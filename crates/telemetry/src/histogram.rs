//! Log-bucketed (HDR-style) histogram with exact merge.
//!
//! Values are `u64`.  The first [`SUB`] buckets are exact (width 1);
//! above that, each power-of-two range is split into [`SUB`] sub-buckets,
//! so the relative quantization error is bounded by `1/SUB` everywhere.
//! Bucket boundaries are pure functions of the index — two histograms
//! always share the same bucket grid, which makes merging an exact
//! element-wise add (no re-sampling, no precision loss beyond the
//! original bucketing).
//!
//! Recording is a handful of integer ops (leading-zeros, shift, mask,
//! add) — cheap enough for per-message hot paths when metrics are on,
//! and compiled out entirely under the
//! [`NoopRecorder`](crate::NoopRecorder).

/// Sub-bucket resolution: each power-of-two range splits into `2^SUB_BITS`
/// buckets (relative error ≤ 1/16).
pub const SUB_BITS: u32 = 4;
/// Number of sub-buckets per power-of-two range (`2^SUB_BITS`).
pub const SUB: usize = 1 << SUB_BITS;

/// Fixed-point scale for recording fractional tick values (delays,
/// staleness) into integer histograms: ticks are multiplied by this and
/// rounded.
pub const TICK_FP: f64 = 1024.0;

/// Convert a non-negative tick quantity to its fixed-point histogram
/// representation (×[`TICK_FP`], rounded).
#[must_use]
pub fn ticks_to_fp(ticks: f64) -> u64 {
    if ticks <= 0.0 {
        return 0;
    }
    (ticks * TICK_FP).round() as u64
}

/// Convert a fixed-point histogram value back to ticks.
#[must_use]
pub fn fp_to_ticks(v: u64) -> f64 {
    v as f64 / TICK_FP
}

/// Bucket index for a value (log-linear scheme, see module docs).
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) as usize & (SUB - 1);
    SUB * (shift as usize + 1) + sub
}

/// Inclusive lower bound of a bucket.
#[must_use]
pub fn bucket_low(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let shift = idx / SUB - 1;
    ((SUB + idx % SUB) as u64) << shift
}

/// Inclusive upper bound of a bucket.
#[must_use]
pub fn bucket_high(idx: usize) -> u64 {
    if idx < SUB - 1 {
        return idx as u64;
    }
    // The bucket holding u64::MAX has no successor: its bucket_low(idx+1)
    // is 2^64, which wraps to 0.  Saturate to u64::MAX instead of
    // underflowing on the -1.
    match bucket_low(idx + 1) {
        0 => u64::MAX,
        next => next - 1,
    }
}

/// A log-bucketed histogram of `u64` values.
///
/// Tracks exact `count`, `sum`, `min`, and `max` alongside the bucket
/// counts, so means are exact and only quantiles are subject to the
/// bounded bucketing error.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// New empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = bucket_of(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum (0 if empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 if empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean (NaN if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the lower bound of the bucket
    /// containing the `ceil(q·count)`-th value (exact for values below
    /// [`SUB`], within `1/SUB` relative error above).  Returns 0 if
    /// empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_low(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Exact merge: add `other`'s bucket counts into `self`.
    pub fn merge(&mut self, other: &Self) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Sparse `(bucket index, count)` pairs for non-empty buckets, in
    /// index order.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuild a histogram from sparse `(bucket index, count)` pairs plus
    /// the exact scalars (the inverse of [`Self::nonzero_buckets`] — used
    /// by the JSONL reader).
    #[must_use]
    pub fn from_parts(buckets: &[(usize, u64)], count: u64, sum: u128, min: u64, max: u64) -> Self {
        let cap = buckets.iter().map(|&(i, _)| i + 1).max().unwrap_or(0);
        let mut v = vec![0u64; cap];
        for &(i, c) in buckets {
            v[i] += c;
        }
        Self {
            buckets: v,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        }
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB as u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every bucket's low is contained in it, highs chain to the next
        // low, and bucket_of(low..=high) stays put.
        for idx in 0..SUB * 40 {
            let lo = bucket_low(idx);
            let hi = bucket_high(idx);
            assert!(lo <= hi, "bucket {idx}: {lo} > {hi}");
            assert_eq!(bucket_of(lo), idx, "low of bucket {idx}");
            assert_eq!(bucket_of(hi), idx, "high of bucket {idx}");
            assert_eq!(bucket_low(idx + 1), hi + 1, "bucket {idx} chain");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[17u64, 100, 1_000, 65_537, 1 << 40, u64::MAX / 3] {
            let idx = bucket_of(v);
            let lo = bucket_low(idx);
            assert!(lo <= v);
            let err = (v - lo) as f64 / v as f64;
            assert!(err <= 1.0 / SUB as f64 + 1e-12, "v={v} err={err}");
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 5, 5, 100, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 10_111);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 10_111.0 / 6.0).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), 0);
        // Median rank 3 lands on the second 5.
        assert_eq!(h.quantile(0.5), 5);
        // p100 is the max bucket's low, clamped into [min, max].
        assert!(h.quantile(1.0) <= 10_000);
        assert!(h.quantile(1.0) >= 10_000 * (SUB as u64 - 1) / SUB as u64);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [3u64, 70, 900, 1 << 30] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 70, 12_345] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn roundtrip_through_parts() {
        let mut h = LogHistogram::new();
        for v in [9u64, 10, 4_000, 4_001, 1 << 50] {
            h.record(v);
        }
        let back =
            LogHistogram::from_parts(&h.nonzero_buckets(), h.count(), h.sum(), h.min(), h.max());
        assert_eq!(h, back);
    }

    #[test]
    fn tick_fixed_point_roundtrip() {
        assert_eq!(ticks_to_fp(0.0), 0);
        let v = ticks_to_fp(1.5);
        assert!((fp_to_ticks(v) - 1.5).abs() < 1e-9);
        assert!((fp_to_ticks(ticks_to_fp(0.37)) - 0.37).abs() < 1.0 / TICK_FP);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.mean().is_nan());
        assert!(h.nonzero_buckets().is_empty());
    }
}
