//! Metric identifiers and the [`Recorder`] abstraction.
//!
//! Engines are generic over `R: Recorder`.  The two implementations are
//! [`NoopRecorder`] — every method an empty `#[inline(always)]` body, so
//! monomorphized engine cores compile the instrumentation away entirely —
//! and [`MetricsRecorder`] — dense arrays indexed by the metric enums, so
//! an enabled hot-path event costs one array add.
//!
//! Call sites that must *compute* something before recording (a
//! timestamp, a queue depth) gate on the associated const:
//!
//! ```
//! use plurality_telemetry::{Hist, NoopRecorder, Recorder};
//! fn observe_depth<R: Recorder>(rec: &mut R, depth: usize) {
//!     if R::ENABLED {
//!         rec.observe(Hist::QueueDepth, depth as u64);
//!     }
//! }
//! observe_depth(&mut NoopRecorder, 3); // compiles to nothing
//! ```

use crate::histogram::LogHistogram;
use crate::report::MetricsReport;
use std::time::Instant;

macro_rules! metric_enum {
    ($(#[$m:meta])* $name:ident { $($(#[$vm:meta])* $variant:ident => $label:literal,)+ }) => {
        $(#[$m])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $name { $($(#[$vm])* $variant,)+ }

        impl $name {
            /// Number of variants.
            pub const COUNT: usize = [$($name::$variant),+].len();
            /// Every variant, in declaration order.
            pub const ALL: [$name; Self::COUNT] = [$($name::$variant),+];

            /// Stable snake-case label (the JSONL key).
            #[must_use]
            pub const fn name(self) -> &'static str {
                match self { $($name::$variant => $label),+ }
            }

            /// Dense index in declaration order.
            #[must_use]
            pub const fn idx(self) -> usize {
                self as usize
            }
        }
    };
}

metric_enum! {
    /// Monotonic event counters.
    ///
    /// The gossip counters obey exact conservation laws (pinned by the
    /// reconciliation proptests):
    ///
    /// * `pull_sent == pull_delivered + pull_lost` (delayed ⊆ delivered);
    /// * `push_sent == push_delivered + push_lost`;
    /// * `pull_lost + push_lost == Σ lost_*` over the seven failure
    ///   layers (including `lost_dead_peer` under churn);
    /// * `inbox_offered == inbox_accepted + inbox_evicted_newest` (a
    ///   drop-newest rejection is the only way an offer is not accepted);
    /// * `inbox_accepted == inbox_served + inbox_expired_ttl +
    ///   inbox_evicted_oldest + inbox_evicted_random +
    ///   inbox_cleared_churn + inbox_resident_at_stop` (every accepted
    ///   entry leaves the buffer exactly once, or is resident at stop —
    ///   the gauge);
    /// * `push_delivered == inbox_offered + orphaned_pushes +
    ///   push_in_flight_at_stop` (a delayed push scheduled for a node
    ///   that departs before it lands is orphaned, never offered).
    Counter {
        /// Node activations processed by the gossip event loop.
        Activations => "activations",
        /// PULL sample requests issued (one per sample the rule draws).
        PullSent => "pull_sent",
        /// PULL responses that arrive (instantly or late).
        PullDelivered => "pull_delivered",
        /// PULL responses that arrive late (subset of delivered).
        PullDelayed => "pull_delayed",
        /// PULL responses dropped by the network (requester falls back
        /// to its own color).
        PullLost => "pull_lost",
        /// Push payloads sent (PUSH activations and PUSH-PULL push legs).
        PushSent => "push_sent",
        /// Push payloads scheduled to reach the peer's inbox.
        PushDelivered => "push_delivered",
        /// Push payloads that arrive late (subset of delivered).
        PushDelayed => "push_delayed",
        /// Push payloads dropped by the network.
        PushLost => "push_lost",
        /// Drops attributed to the uniform baseline loss coin.
        LostBaseline => "lost_baseline",
        /// Drops attributed to per-edge loss parameters.
        LostPerEdge => "lost_per_edge",
        /// Drops attributed to a timed degradation window.
        LostWindow => "lost_window",
        /// Drops attributed to a Gilbert–Elliott bad state.
        LostGeChain => "lost_ge_chain",
        /// Drops attributed to a node outage.
        LostOutage => "lost_outage",
        /// Drops attributed to a partition cut.
        LostPartition => "lost_partition",
        /// Drops attributed to the dead-peer redraw budget running out
        /// (churn): every redraw hit a departed node.
        LostDeadPeer => "lost_dead_peer",
        /// Push payloads that reached a peer inbox (accepted or evicting).
        InboxOffered => "inbox_offered",
        /// Push payloads accepted into an inbox.
        InboxAccepted => "inbox_accepted",
        /// Inbox entries evicted by the drop-oldest policy.
        InboxEvictedOldest => "inbox_evicted_oldest",
        /// Arrivals rejected by the drop-newest policy.
        InboxEvictedNewest => "inbox_evicted_newest",
        /// Inbox entries evicted by the random-replace policy.
        InboxEvictedRandom => "inbox_evicted_random",
        /// Inbox entries dropped by TTL expiry.
        InboxExpiredTtl => "inbox_expired_ttl",
        /// Inbox entries consumed as samples.
        InboxServed => "inbox_served",
        /// PUSH activations skipped because the inbox could not answer
        /// every sample.
        StarvedActivations => "starved_activations",
        /// Delayed recolor commits cancelled by a later activation.
        SupersededCommits => "superseded_commits",
        /// Recolor commits applied to the state vector.
        CommitsApplied => "commits_applied",
        /// Churn: spares joined into the alive set.
        ChurnJoins => "churn_joins",
        /// Churn: alive nodes crashed.
        ChurnCrashes => "churn_crashes",
        /// Churn: alive nodes that departed gracefully.
        ChurnLeaves => "churn_leaves",
        /// Churn: dead members that rejoined.
        ChurnRejoins => "churn_rejoins",
        /// Pending recolor commits cancelled because their node
        /// departed before they fired.
        OrphanedCommits => "orphaned_commits",
        /// In-flight pushed colors discarded because their target
        /// departed before they landed.
        OrphanedPushes => "orphaned_pushes",
        /// Neighbor draws that hit a dead peer and were redrawn.
        DeadPeerSamples => "dead_peer_samples",
        /// Activation-clock draws skipped because the node was dead
        /// (Poisson thinning under churn).
        DeadActivationsSkipped => "dead_activations_skipped",
        /// Buffered inbox colors discarded when their node departed.
        InboxClearedChurn => "inbox_cleared_churn",
        /// Events pushed onto the scheduler queue.
        QueuePushed => "queue_pushed",
        /// Stale (lazily cancelled) events skipped at pop time.
        QueueSkippedStale => "queue_skipped_stale",
        /// Neighbor samples drawn by the agent engine.
        SamplesDrawn => "samples_drawn",
        /// Synchronous rounds executed by the agent engine.
        Rounds => "rounds",
        /// Jobs accepted by the simulation job server.
        JobsAccepted => "jobs_accepted",
        /// Jobs the server ran to completion.
        JobsCompleted => "jobs_completed",
        /// Jobs rejected or failed by the server (bad spec, engine
        /// error, or timeout).
        JobsFailed => "jobs_failed",
        /// Jobs aborted by their per-job wall-clock timeout (also
        /// counted in `jobs_failed`).
        JobsTimedOut => "jobs_timed_out",
        /// Server prebuilt-state cache lookups that found an entry.
        CacheHits => "cache_hits",
        /// Server prebuilt-state cache lookups that had to build.
        CacheMisses => "cache_misses",
        /// Trials executed across all server jobs.
        TrialsRun => "trials_run",
    }
}

metric_enum! {
    /// Point-in-time values, set once (usually at stop).  Merging trial
    /// reports *sums* gauges, so per-trial residuals aggregate into
    /// fleet-level residuals for reconciliation.
    Gauge {
        /// Live events left in the scheduler queue at stop.
        QueueLenAtStop => "queue_len_at_stop",
        /// Colors resident in inboxes at stop.
        InboxResidentAtStop => "inbox_resident_at_stop",
        /// Push payloads scheduled but not yet arrived at stop.
        PushInFlightAtStop => "push_in_flight_at_stop",
        /// Whole ticks completed when the run stopped.
        CompletedTicks => "completed_ticks",
        /// Final simulation time, fixed-point ticks (×1024).
        FinalTimeFp => "final_time_fp",
    }
}

metric_enum! {
    /// Log-bucketed value distributions.  `*_fp` histograms hold ticks in
    /// ×1024 fixed point (see [`crate::histogram::TICK_FP`]).
    Hist {
        /// Extra delivery delay of delayed payloads, fixed-point ticks.
        DelayExtraFp => "delay_extra_fp",
        /// Inbox occupancy observed as each push payload arrives.
        InboxOccupancy => "inbox_occupancy",
        /// Age of inbox colors when served, fixed-point ticks.
        InboxStalenessFp => "inbox_staleness_fp",
        /// Scheduler queue depth observed at each activation.
        QueueDepth => "queue_depth",
        /// Wall-clock per agent-engine round, nanoseconds.
        RoundWallNanos => "round_wall_ns",
        /// Leading-color occupancy per agent-engine round.
        LeaderOccupancy => "leader_occupancy",
        /// Wall-clock per server job (spec parse to done line), ns.
        JobWallNanos => "job_wall_ns",
        /// Wall-clock building prebuilt state on a cache miss, ns.
        StateBuildNanos => "state_build_ns",
    }
}

metric_enum! {
    /// Coarse phases for wall-clock attribution.
    Phase {
        /// Placement, topology caches, per-edge parameter tables.
        Setup => "setup",
        /// The event loop / round loop.
        Run => "run",
        /// Trace finishing and stats assembly.
        Finalize => "finalize",
    }
}

/// A metrics sink.  See the module docs for the zero-cost contract.
pub trait Recorder {
    /// Whether this recorder keeps anything (`false` for
    /// [`NoopRecorder`]).  Gate *computations* feeding a record call on
    /// this; the record calls themselves are free when disabled.
    const ENABLED: bool;

    /// Add `by` to a counter.
    fn add(&mut self, c: Counter, by: u64);

    /// Increment a counter by one.
    #[inline(always)]
    fn incr(&mut self, c: Counter) {
        self.add(c, 1);
    }

    /// Set a gauge to `v`.
    fn gauge_set(&mut self, g: Gauge, v: u64);

    /// Record `v` into a histogram.
    fn observe(&mut self, h: Hist, v: u64);

    /// Start (or restart) a phase stopwatch.
    fn phase_start(&mut self, p: Phase);

    /// Stop a phase stopwatch, accumulating its elapsed nanoseconds.
    fn phase_end(&mut self, p: Phase);
}

/// The disabled recorder: a zero-sized type whose every method is an
/// empty inline body.  Engine cores monomorphized over it are
/// instruction-identical to uninstrumented code, which is what keeps the
/// golden traces bit-identical and the hot-path benches at parity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn add(&mut self, _c: Counter, _by: u64) {}

    #[inline(always)]
    fn gauge_set(&mut self, _g: Gauge, _v: u64) {}

    #[inline(always)]
    fn observe(&mut self, _h: Hist, _v: u64) {}

    #[inline(always)]
    fn phase_start(&mut self, _p: Phase) {}

    #[inline(always)]
    fn phase_end(&mut self, _p: Phase) {}
}

/// The enabled recorder: dense per-metric arrays.
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    counters: [u64; Counter::COUNT],
    gauges: [u64; Gauge::COUNT],
    hists: Vec<LogHistogram>,
    phase_ns: [u64; Phase::COUNT],
    phase_started: [Option<Instant>; Phase::COUNT],
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRecorder {
    /// New empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counters: [0; Counter::COUNT],
            gauges: [0; Gauge::COUNT],
            hists: vec![LogHistogram::new(); Hist::COUNT],
            phase_ns: [0; Phase::COUNT],
            phase_started: [None; Phase::COUNT],
        }
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.idx()]
    }

    /// Current value of a gauge.
    #[must_use]
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g.idx()]
    }

    /// Borrow a histogram.
    #[must_use]
    pub fn hist(&self, h: Hist) -> &LogHistogram {
        &self.hists[h.idx()]
    }

    /// Accumulated nanoseconds for a phase.
    #[must_use]
    pub fn phase_nanos(&self, p: Phase) -> u64 {
        self.phase_ns[p.idx()]
    }

    /// Snapshot into a mergeable, serializable [`MetricsReport`].
    #[must_use]
    pub fn report(&self) -> MetricsReport {
        MetricsReport::from_recorder(self)
    }
}

impl Recorder for MetricsRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn add(&mut self, c: Counter, by: u64) {
        self.counters[c.idx()] += by;
    }

    #[inline]
    fn gauge_set(&mut self, g: Gauge, v: u64) {
        self.gauges[g.idx()] = v;
    }

    #[inline]
    fn observe(&mut self, h: Hist, v: u64) {
        self.hists[h.idx()].record(v);
    }

    fn phase_start(&mut self, p: Phase) {
        self.phase_started[p.idx()] = Some(Instant::now());
    }

    fn phase_end(&mut self, p: Phase) {
        if let Some(t0) = self.phase_started[p.idx()].take() {
            self.phase_ns[p.idx()] += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_snake_case() {
        fn check(labels: &[&str]) {
            let mut seen = std::collections::HashSet::new();
            for l in labels {
                assert!(seen.insert(*l), "duplicate label {l}");
                assert!(
                    l.chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                    "label {l} not snake_case"
                );
            }
        }
        check(&Counter::ALL.map(Counter::name));
        check(&Gauge::ALL.map(Gauge::name));
        check(&Hist::ALL.map(Hist::name));
        check(&Phase::ALL.map(Phase::name));
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.idx(), i);
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.idx(), i);
        }
    }

    #[test]
    fn recorder_accumulates() {
        let mut r = MetricsRecorder::new();
        r.incr(Counter::Activations);
        r.add(Counter::Activations, 4);
        r.gauge_set(Gauge::CompletedTicks, 9);
        r.gauge_set(Gauge::CompletedTicks, 11);
        r.observe(Hist::QueueDepth, 3);
        r.observe(Hist::QueueDepth, 300);
        assert_eq!(r.counter(Counter::Activations), 5);
        assert_eq!(r.gauge(Gauge::CompletedTicks), 11);
        assert_eq!(r.hist(Hist::QueueDepth).count(), 2);
        assert_eq!(r.counter(Counter::PullSent), 0);
    }

    #[test]
    fn phase_timer_accumulates() {
        let mut r = MetricsRecorder::new();
        r.phase_start(Phase::Run);
        std::thread::sleep(std::time::Duration::from_millis(2));
        r.phase_end(Phase::Run);
        let first = r.phase_nanos(Phase::Run);
        assert!(first >= 1_000_000, "slept 2ms, measured {first}ns");
        // End without start is a no-op; a second interval adds.
        r.phase_end(Phase::Run);
        assert_eq!(r.phase_nanos(Phase::Run), first);
        r.phase_start(Phase::Run);
        r.phase_end(Phase::Run);
        assert!(r.phase_nanos(Phase::Run) >= first);
    }

    #[test]
    fn noop_recorder_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
        const { assert!(!NoopRecorder::ENABLED) };
        const { assert!(MetricsRecorder::ENABLED) };
        let mut n = NoopRecorder;
        n.incr(Counter::Activations);
        n.observe(Hist::QueueDepth, 1);
        n.phase_start(Phase::Setup);
        n.phase_end(Phase::Setup);
    }
}
