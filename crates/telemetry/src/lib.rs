//! Zero-cost telemetry for the plurality-consensus engines.
//!
//! The paper states its guarantees in rounds, but the real resource of
//! the gossip-model literature is **messages** (Becchetti et al. 2014,
//! *Plurality Consensus in the Gossip Model*).  This crate makes that
//! resource measurable without taxing the simulators that don't ask for
//! it:
//!
//! * [`Recorder`] — the sink abstraction engines are generic over.
//!   [`NoopRecorder`] is a zero-sized type whose methods are empty
//!   inline bodies: engine cores monomorphized over it carry **no**
//!   instrumentation instructions, so golden traces stay bit-identical
//!   and hot-path benches stay at parity (`BENCH_metrics_overhead.json`
//!   records the measured gap).  [`MetricsRecorder`] keeps dense arrays
//!   indexed by the metric enums; an enabled counter bump is one add.
//! * [`Counter`] / [`Gauge`] / [`Hist`] / [`Phase`] — the closed metric
//!   catalogue, with stable snake-case labels that double as the JSONL
//!   keys.  Gossip drops are **attributed per failure layer** (baseline
//!   coin, per-edge parameters, degradation window, Gilbert–Elliott
//!   burst, node outage, partition cut), and the counters obey exact
//!   conservation laws — see [`Counter`] — that the workspace pins with
//!   reconciliation proptests.
//! * [`LogHistogram`] — HDR-style log-bucketed histogram (base-2 ranges,
//!   16 sub-buckets, ≤ 1/16 relative error) with exact bucket-wise
//!   merge; fractional tick quantities (delays, staleness) are recorded
//!   in ×1024 fixed point ([`histogram::TICK_FP`]).
//! * [`MetricsReport`] — a mergeable snapshot with a stable JSONL
//!   contract ([`report::SCHEMA`]), a hand-rolled writer *and* validator
//!   ([`MetricsReport::from_json`]; the workspace has no serde), and
//!   human-readable tables via `plurality-analysis`.
//!
//! # Quick start
//!
//! ```
//! use plurality_telemetry::{Counter, Hist, MetricsRecorder, MetricsReport, Recorder};
//!
//! fn simulate<R: Recorder>(rec: &mut R) {
//!     for i in 0..100 {
//!         rec.incr(Counter::PullSent);
//!         if R::ENABLED {
//!             rec.observe(Hist::QueueDepth, i % 7);
//!         }
//!     }
//! }
//!
//! let mut rec = MetricsRecorder::new();
//! simulate(&mut rec);
//! let mut report = rec.report();
//! report.set_label("doc example");
//! assert_eq!(report.counter(Counter::PullSent), 100);
//! let line = report.to_json();
//! assert_eq!(MetricsReport::from_json(&line).unwrap(), report);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod histogram;
pub mod json;
pub mod recorder;
pub mod report;

pub use histogram::{fp_to_ticks, ticks_to_fp, LogHistogram};
pub use recorder::{Counter, Gauge, Hist, MetricsRecorder, NoopRecorder, Phase, Recorder};
pub use report::{MetricsReport, SCHEMA};
