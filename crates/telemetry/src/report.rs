//! [`MetricsReport`]: a mergeable, serializable snapshot of a
//! [`MetricsRecorder`].
//!
//! # JSONL schema (`plurality-metrics/v1`)
//!
//! One report per line, one JSON object per report, integer-only values,
//! keys in fixed order:
//!
//! ```json
//! {"schema":"plurality-metrics/v1",
//!  "label":"gossip n=1000 mode=pull",
//!  "counters":{"activations":12000,"pull_sent":36000},
//!  "gauges":{"completed_ticks":12},
//!  "phases_ns":{"run":81234567},
//!  "histograms":{"delay_extra_fp":{"count":3,"sum":4096,"min":512,
//!                                  "max":2048,"buckets":[[144,2],[160,1]]}}
//! }
//! ```
//!
//! * All six top-level keys are always present; metric maps list only
//!   non-zero counters/gauges/phases and non-empty histograms.
//! * Metric keys are the stable labels of [`Counter`], [`Gauge`],
//!   [`Phase`], and [`Hist`]; unknown keys are a validation error.
//! * Histogram `buckets` are sparse `[bucket_index, count]` pairs on the
//!   fixed log-linear grid of [`crate::histogram`]; `count`/`sum`/`min`/
//!   `max` are exact scalars, and `sum(counts) == count` is enforced.
//! * `*_fp` metrics hold ticks in ×1024 fixed point
//!   ([`crate::histogram::TICK_FP`]).
//!
//! [`MetricsReport::from_json`] is a full validator for this contract
//! (CI round-trips a live report through it), and reports merge exactly:
//! counters/phases add, gauges sum, histograms bucket-add.

use crate::histogram::{fp_to_ticks, LogHistogram};
use crate::json::{escape, parse, Json};
use crate::recorder::{Counter, Gauge, Hist, MetricsRecorder, Phase};
use plurality_analysis::{fmt_f64, Table};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The JSONL schema identifier emitted and required by this version.
pub const SCHEMA: &str = "plurality-metrics/v1";

/// A snapshot of recorded metrics: mergeable across trials and engines,
/// serializable to one JSONL line, renderable as tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    label: String,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    phases_ns: BTreeMap<String, u64>,
    hists: BTreeMap<String, LogHistogram>,
}

impl MetricsReport {
    /// New empty report with a context label.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            ..Self::default()
        }
    }

    /// Snapshot a recorder (only non-zero metrics are kept).
    #[must_use]
    pub fn from_recorder(rec: &MetricsRecorder) -> Self {
        let mut r = Self::default();
        for c in Counter::ALL {
            if rec.counter(c) > 0 {
                r.counters.insert(c.name().to_string(), rec.counter(c));
            }
        }
        for g in Gauge::ALL {
            if rec.gauge(g) > 0 {
                r.gauges.insert(g.name().to_string(), rec.gauge(g));
            }
        }
        for p in Phase::ALL {
            if rec.phase_nanos(p) > 0 {
                r.phases_ns.insert(p.name().to_string(), rec.phase_nanos(p));
            }
        }
        for h in Hist::ALL {
            if !rec.hist(h).is_empty() {
                r.hists.insert(h.name().to_string(), rec.hist(h).clone());
            }
        }
        r
    }

    /// The context label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Replace the context label.
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// Counter value (0 if never incremented).
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c.name()).copied().unwrap_or(0)
    }

    /// Gauge value (0 if never set).
    #[must_use]
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges.get(g.name()).copied().unwrap_or(0)
    }

    /// Accumulated phase nanoseconds (0 if never timed).
    #[must_use]
    pub fn phase_nanos(&self, p: Phase) -> u64 {
        self.phases_ns.get(p.name()).copied().unwrap_or(0)
    }

    /// Histogram snapshot, if anything was recorded.
    #[must_use]
    pub fn hist(&self, h: Hist) -> Option<&LogHistogram> {
        self.hists.get(h.name())
    }

    /// True if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.phases_ns.is_empty()
            && self.hists.is_empty()
    }

    /// Exact merge: counters and phases add, gauges sum (per-trial
    /// residuals aggregate into fleet residuals), histograms bucket-add.
    /// `self`'s label is kept.
    pub fn merge(&mut self, other: &Self) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.phases_ns {
            *self.phases_ns.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Serialize as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"schema\":{}", escape(SCHEMA));
        let _ = write!(out, ",\"label\":{}", escape(&self.label));
        let scalar_map = |out: &mut String, key: &str, map: &BTreeMap<String, u64>| {
            let _ = write!(out, ",{}:{{", escape(key));
            for (i, (k, v)) in map.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(out, "{sep}{}:{v}", escape(k));
            }
            out.push('}');
        };
        scalar_map(&mut out, "counters", &self.counters);
        scalar_map(&mut out, "gauges", &self.gauges);
        scalar_map(&mut out, "phases_ns", &self.phases_ns);
        let _ = write!(out, ",\"histograms\":{{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                escape(k),
                h.count(),
                h.sum(),
                h.min(),
                h.max()
            );
            for (j, (idx, c)) in h.nonzero_buckets().iter().enumerate() {
                let sep = if j == 0 { "" } else { "," };
                let _ = write!(out, "{sep}[{idx},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Parse and validate one JSONL line against the
    /// `plurality-metrics/v1` contract (see the module docs for the
    /// rules enforced).
    pub fn from_json(line: &str) -> Result<Self, String> {
        let doc = parse(line)?;
        let fields = doc.as_obj().ok_or("top level must be an object")?;
        let expected = [
            "schema",
            "label",
            "counters",
            "gauges",
            "phases_ns",
            "histograms",
        ];
        if fields.len() != expected.len() || fields.iter().zip(expected).any(|((k, _), e)| k != e) {
            return Err(format!(
                "top-level keys must be exactly {expected:?} in order, got {:?}",
                fields.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>()
            ));
        }
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(format!("schema {schema:?} != {SCHEMA:?}"));
        }
        let label = doc
            .get("label")
            .and_then(Json::as_str)
            .ok_or("label must be a string")?
            .to_string();

        let scalar_map = |key: &str, known: &[&str]| -> Result<BTreeMap<String, u64>, String> {
            let obj = doc
                .get(key)
                .and_then(Json::as_obj)
                .ok_or(format!("{key} must be an object"))?;
            let mut map = BTreeMap::new();
            for (k, v) in obj {
                if !known.contains(&k.as_str()) {
                    return Err(format!("unknown {key} metric {k:?}"));
                }
                let n = v.as_num().ok_or(format!("{key}.{k} must be an integer"))?;
                let n = u64::try_from(n).map_err(|_| format!("{key}.{k} overflows u64"))?;
                map.insert(k.clone(), n);
            }
            Ok(map)
        };
        let counters = scalar_map("counters", &Counter::ALL.map(Counter::name))?;
        let gauges = scalar_map("gauges", &Gauge::ALL.map(Gauge::name))?;
        let phases_ns = scalar_map("phases_ns", &Phase::ALL.map(Phase::name))?;

        let hist_names = Hist::ALL.map(Hist::name);
        let mut hists = BTreeMap::new();
        let hobj = doc
            .get("histograms")
            .and_then(Json::as_obj)
            .ok_or("histograms must be an object")?;
        for (k, v) in hobj {
            if !hist_names.contains(&k.as_str()) {
                return Err(format!("unknown histogram {k:?}"));
            }
            let num = |field: &str| -> Result<u64, String> {
                let n = v
                    .get(field)
                    .and_then(Json::as_num)
                    .ok_or(format!("histogram {k}.{field} must be an integer"))?;
                u64::try_from(n).map_err(|_| format!("histogram {k}.{field} overflows u64"))
            };
            let count = num("count")?;
            let sum = v
                .get("sum")
                .and_then(Json::as_num)
                .ok_or(format!("histogram {k}.sum must be an integer"))?;
            let (min, max) = (num("min")?, num("max")?);
            if count > 0 && min > max {
                return Err(format!("histogram {k}: min {min} > max {max}"));
            }
            let buckets_json = v
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or(format!("histogram {k}.buckets must be an array"))?;
            let mut buckets = Vec::with_capacity(buckets_json.len());
            let mut total = 0u64;
            for pair in buckets_json {
                let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or(format!(
                    "histogram {k}.buckets entries must be [index, count] pairs"
                ))?;
                let idx = pair[0]
                    .as_num()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or(format!("histogram {k}: bad bucket index"))?;
                let c = pair[1]
                    .as_num()
                    .and_then(|n| u64::try_from(n).ok())
                    .filter(|&c| c > 0)
                    .ok_or(format!("histogram {k}: bucket counts must be positive"))?;
                buckets.push((idx, c));
                total += c;
            }
            if total != count {
                return Err(format!(
                    "histogram {k}: bucket counts sum to {total}, count says {count}"
                ));
            }
            hists.insert(
                k.clone(),
                LogHistogram::from_parts(&buckets, count, sum, min, max),
            );
        }
        Ok(Self {
            label,
            counters,
            gauges,
            phases_ns,
            hists,
        })
    }

    /// Summary table: every non-zero counter, gauge, and phase.
    #[must_use]
    pub fn summary_table(&self) -> Table {
        let title = if self.label.is_empty() {
            "metrics summary".to_string()
        } else {
            format!("metrics summary · {}", self.label)
        };
        let mut t = Table::new(title, &["kind", "metric", "value"]);
        for (k, v) in &self.counters {
            t.push_row(vec!["counter".into(), k.clone(), v.to_string()]);
        }
        for (k, v) in &self.gauges {
            t.push_row(vec!["gauge".into(), k.clone(), v.to_string()]);
        }
        for (k, v) in &self.phases_ns {
            t.push_row(vec![
                "phase".into(),
                k.clone(),
                format!("{} ms", fmt_f64(*v as f64 / 1e6)),
            ]);
        }
        t
    }

    /// Full tables: the summary plus a histogram digest (count, mean,
    /// p50/p90/p99, max).  `*_fp` histograms are shown in ticks.
    #[must_use]
    pub fn full_tables(&self) -> Vec<Table> {
        let mut out = vec![self.summary_table()];
        if self.hists.is_empty() {
            return out;
        }
        let mut t = Table::new(
            "metrics histograms (·_fp shown in ticks)",
            &["histogram", "count", "mean", "p50", "p90", "p99", "max"],
        );
        for (k, h) in &self.hists {
            let fp = k.ends_with("_fp");
            let show = |v: u64| {
                if fp {
                    fmt_f64(fp_to_ticks(v))
                } else {
                    v.to_string()
                }
            };
            let mean = if fp {
                fp_to_ticks(h.mean().round() as u64)
            } else {
                h.mean()
            };
            t.push_row(vec![
                k.clone(),
                h.count().to_string(),
                fmt_f64(mean),
                show(h.quantile(0.5)),
                show(h.quantile(0.9)),
                show(h.quantile(0.99)),
                show(h.max()),
            ]);
        }
        out.push(t);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_report() -> MetricsReport {
        let mut rec = MetricsRecorder::new();
        rec.add(Counter::Activations, 100);
        rec.add(Counter::PullSent, 300);
        rec.add(Counter::PullDelivered, 280);
        rec.add(Counter::PullLost, 20);
        rec.gauge_set(Gauge::CompletedTicks, 7);
        rec.observe(Hist::DelayExtraFp, 512);
        rec.observe(Hist::DelayExtraFp, 2048);
        rec.observe(Hist::QueueDepth, 3);
        rec.phase_start(Phase::Run);
        rec.phase_end(Phase::Run);
        let mut r = rec.report();
        r.set_label("unit test");
        r
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sample_report();
        let line = r.to_json();
        assert!(!line.contains('\n'), "JSONL must be one line");
        let back = MetricsReport::from_json(&line).unwrap();
        assert_eq!(r, back);
        // And serialization is stable.
        assert_eq!(back.to_json(), line);
    }

    #[test]
    fn validator_rejects_contract_violations() {
        let good = sample_report().to_json();
        // Unknown counter name.
        let bad = good.replace("\"activations\"", "\"activationz\"");
        assert!(MetricsReport::from_json(&bad).is_err());
        // Wrong schema version.
        let bad = good.replace("metrics/v1", "metrics/v9");
        assert!(MetricsReport::from_json(&bad).is_err());
        // Histogram count vs bucket-sum mismatch.
        let bad = good.replace("\"count\":2", "\"count\":3");
        assert!(MetricsReport::from_json(&bad).is_err());
        // Truncated document.
        assert!(MetricsReport::from_json(&good[..good.len() - 1]).is_err());
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = sample_report();
        let b = sample_report();
        a.merge(&b);
        assert_eq!(a.counter(Counter::Activations), 200);
        assert_eq!(a.gauge(Gauge::CompletedTicks), 14, "gauges sum on merge");
        assert_eq!(a.hist(Hist::DelayExtraFp).unwrap().count(), 4);
        assert_eq!(a.label(), "unit test");
        // Merge round-trips through JSON too.
        let back = MetricsReport::from_json(&a.to_json()).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn zero_metrics_are_omitted() {
        let rec = MetricsRecorder::new();
        let r = rec.report();
        assert!(r.is_empty());
        let line = r.to_json();
        assert!(!line.contains("activations"));
        assert_eq!(MetricsReport::from_json(&line).unwrap(), r);
    }

    #[test]
    fn tables_render() {
        let r = sample_report();
        let summary = r.summary_table();
        assert!(summary.markdown().contains("pull_sent"));
        assert!(summary.markdown().contains("unit test"));
        let full = r.full_tables();
        assert_eq!(full.len(), 2);
        assert!(full[1].markdown().contains("delay_extra_fp"));
        // Fixed-point histograms render in ticks: 512 fp = 0.5 ticks.
        assert!(full[1].markdown().contains("0.5"));
    }

    #[test]
    fn accessors_default_to_zero() {
        let r = MetricsReport::new("x");
        assert_eq!(r.counter(Counter::PushLost), 0);
        assert_eq!(r.gauge(Gauge::QueueLenAtStop), 0);
        assert_eq!(r.phase_nanos(Phase::Setup), 0);
        assert!(r.hist(Hist::QueueDepth).is_none());
    }
}
