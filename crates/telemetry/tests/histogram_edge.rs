//! Edge-case coverage for [`LogHistogram`]: empty and single-value
//! distributions, the quantile endpoints, merges between histograms
//! whose bucket vectors have different lengths, and a property test
//! that `quantile` is monotone in `q`.

use plurality_telemetry::histogram::{bucket_high, bucket_low, bucket_of, LogHistogram, SUB};
use proptest::prelude::*;

#[test]
fn empty_histogram_quantiles_and_stats_are_zero() {
    let h = LogHistogram::new();
    assert!(h.is_empty());
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 0, "empty quantile({q})");
    }
    assert!(h.mean().is_nan());
}

#[test]
fn quantile_endpoints_bracket_the_distribution() {
    let mut h = LogHistogram::new();
    for v in [7u64, 19, 19, 250, 4_096, 1 << 33] {
        h.record(v);
    }
    // q = 0 clamps to rank 1 — the smallest value's bucket — and the
    // [min, max] clamp makes it exactly min here.
    assert_eq!(h.quantile(0.0), h.min());
    // q = 1 lands in the largest value's bucket: at most max, and no
    // more than one sub-bucket below it.
    let top = h.quantile(1.0);
    assert!(top <= h.max());
    assert!(top >= bucket_low(bucket_of(h.max())));
    // Out-of-range q is clamped, not propagated.
    assert_eq!(h.quantile(-3.0), h.quantile(0.0));
    assert_eq!(h.quantile(17.0), h.quantile(1.0));
}

#[test]
fn single_value_distribution_is_that_value_at_every_quantile() {
    for v in [0u64, 1, SUB as u64 - 1, SUB as u64, 12_345, u64::MAX / 7] {
        let mut h = LogHistogram::new();
        h.record(v);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), v);
        assert_eq!(h.max(), v);
        assert!((h.mean() - v as f64).abs() < 1e-6 * (v as f64).max(1.0));
        for q in [0.0, 0.5, 1.0] {
            // One value: every quantile's bucket-low clamps into
            // [min, max] = [v, v].
            assert_eq!(h.quantile(q), v, "v={v} quantile({q})");
        }
    }
}

#[test]
fn merge_with_differing_bucket_vector_lengths() {
    // `small` only touches the exact (width-1) buckets; `large` reaches
    // a high power-of-two bucket, so its bucket vector is much longer.
    let build = |values: &[u64]| {
        let mut h = LogHistogram::new();
        for &v in values {
            h.record(v);
        }
        h
    };
    let small_vals = [1u64, 2, 3];
    let large_vals = [5u64, 1 << 40];
    let mut reference = build(&[1, 2, 3, 5, 1 << 40]);

    // Short ← long: the short vector must grow.
    let mut a = build(&small_vals);
    a.merge(&build(&large_vals));
    assert_eq!(a, reference);

    // Long ← short: no truncation of the tail.
    let mut b = build(&large_vals);
    b.merge(&build(&small_vals));
    assert_eq!(b.count(), reference.count());
    assert_eq!(b.sum(), reference.sum());
    assert_eq!(b.min(), reference.min());
    assert_eq!(b.max(), reference.max());
    assert_eq!(b.nonzero_buckets(), reference.nonzero_buckets());

    // Merging an empty histogram in either direction is the identity.
    reference.merge(&LogHistogram::new());
    assert_eq!(reference, b);
    let mut empty = LogHistogram::new();
    empty.merge(&reference);
    assert_eq!(empty, reference);
}

#[test]
fn bucket_bounds_stay_consistent_at_the_top_of_the_range() {
    // The largest representable values must still land in a bucket whose
    // bounds contain them.
    for v in [u64::MAX, u64::MAX - 1, u64::MAX / 2 + 1] {
        let idx = bucket_of(v);
        assert!(bucket_low(idx) <= v);
        assert!(v <= bucket_high(idx));
    }
}

proptest! {
    /// `quantile` is monotone non-decreasing in `q` for any recorded set.
    #[test]
    fn quantile_is_monotone_in_q(
        values in proptest::collection::vec(0u64..1 << 48, 1..200),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..20),
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted_q = qs.clone();
        sorted_q.sort_by(f64::total_cmp);
        let mut prev = None;
        for &q in &sorted_q {
            let cur = h.quantile(q);
            if let Some(p) = prev {
                prop_assert!(cur >= p, "quantile({q}) = {cur} < previous {p}");
            }
            prev = Some(cur);
        }
        // And every quantile stays inside [min, max].
        prop_assert!(h.quantile(0.0) >= h.min());
        prop_assert!(h.quantile(1.0) <= h.max());
    }
}
