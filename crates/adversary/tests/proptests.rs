//! Property-based tests for the adversary strategies: whatever the state
//! and budget, a hook must preserve the population, never overdraw a
//! color, and respect its budget.

use plurality_adversary::{BoostStrongestRival, RandomCorruption, ScatterToWeakest, SustainColor};
use plurality_engine::RoundHook;
use plurality_sampling::stream_rng;
use proptest::prelude::*;

fn states_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..10_000, 2..8)
        .prop_filter("positive population", |s| s.iter().sum::<u64>() > 0)
}

proptest! {
    #[test]
    fn boost_preserves_population_and_budget(
        states in states_strategy(),
        budget in 0u64..20_000,
        seed in any::<u64>(),
    ) {
        let total: u64 = states.iter().sum();
        let mut s = states.clone();
        let mut hook = BoostStrongestRival { budget, plurality: 0 };
        let mut rng = stream_rng(seed, 0);
        hook.after_step(1, &mut s, &mut rng);
        prop_assert_eq!(s.iter().sum::<u64>(), total);
        // Only the plurality slot can shrink, by at most the budget.
        prop_assert!(states[0] - s[0] <= budget.min(states[0]));
        for j in 1..states.len() {
            prop_assert!(s[j] >= states[j], "non-target color shrank");
        }
    }

    #[test]
    fn scatter_preserves_population(
        states in states_strategy(),
        budget in 0u64..20_000,
        seed in any::<u64>(),
    ) {
        let total: u64 = states.iter().sum();
        let mut s = states.clone();
        let mut hook = ScatterToWeakest { budget, plurality: 0 };
        let mut rng = stream_rng(seed, 1);
        hook.after_step(1, &mut s, &mut rng);
        prop_assert_eq!(s.iter().sum::<u64>(), total);
    }

    #[test]
    fn random_corruption_preserves_population_any_budget(
        states in states_strategy(),
        budget in 0u64..50_000,
        seed in any::<u64>(),
    ) {
        let total: u64 = states.iter().sum();
        let mut s = states.clone();
        let mut hook = RandomCorruption { budget };
        let mut rng = stream_rng(seed, 2);
        for round in 1..=3 {
            hook.after_step(round, &mut s, &mut rng);
            prop_assert_eq!(s.iter().sum::<u64>(), total, "round {}", round);
        }
    }

    #[test]
    fn sustain_moves_at_most_budget(
        states in states_strategy(),
        budget in 0u64..20_000,
        color in 0usize..8,
        seed in any::<u64>(),
    ) {
        let color = color % states.len();
        let total: u64 = states.iter().sum();
        let mut s = states.clone();
        let mut hook = SustainColor { budget, color, plurality: 0 };
        let mut rng = stream_rng(seed, 3);
        hook.after_step(1, &mut s, &mut rng);
        prop_assert_eq!(s.iter().sum::<u64>(), total);
        if color != 0 {
            prop_assert!(s[color] >= states[color]);
            prop_assert!(s[color] - states[color] <= budget);
        } else {
            prop_assert_eq!(&s, &states);
        }
    }
}
