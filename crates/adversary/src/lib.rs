//! F-bounded dynamic Byzantine adversaries and M-plurality-consensus
//! measurement — the self-stabilization side of the paper (§3.1,
//! Corollary 4).
//!
//! An *F-bounded dynamic adversary* sees the entire state at the end of
//! every round and may recolor up to `F` nodes before the next round.
//! Corollary 4: with initial bias `s` and `F = o(s/λ)`, the 3-majority
//! dynamics reaches `O(s/λ)`-plurality consensus in `O(λ log n)` rounds
//! w.h.p. and then *stays* there.  [`measure_reach_and_hold`] measures
//! both phases against the strategies in [`bounded`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod mplurality;

pub use bounded::{BoostStrongestRival, RandomCorruption, ScatterToWeakest, SustainColor};
pub use mplurality::{measure_reach_and_hold, HoldReport};
