//! F-bounded dynamic adversaries (paper §3.1).
//!
//! The paper's adversary model: at the end of every round, after the
//! random 3-majority step, the adversary may arbitrarily recolor up to `F`
//! nodes, knowing the entire state.  In mean-field (count) representation
//! a recoloring is a mass transfer between color slots, which is what
//! these [`RoundHook`] implementations perform.
//!
//! Corollary 4's guarantee: for `F = o(s(c)/λ)` the 3-majority dynamics
//! still reaches — and then holds — `O(s(c)/λ)`-plurality consensus in
//! `O(λ log n)` rounds w.h.p.  The strategies here give the claim teeth:
//! [`BoostStrongestRival`] plays the gradient-ascent counter-strategy
//! (drain the plurality into its closest competitor), which is the
//! natural worst case for an additive-bias argument.

use plurality_engine::RoundHook;
use plurality_sampling::hypergeometric::sample_multivariate_hypergeometric;
use plurality_sampling::multinomial::sample_multinomial;
use rand::RngCore;

/// Move up to `budget` nodes per round from the target plurality color to
/// its currently strongest rival.
#[derive(Debug, Clone, Copy)]
pub struct BoostStrongestRival {
    /// Corruptions per round (`F`).
    pub budget: u64,
    /// The color whose consensus the adversary fights (the initial
    /// plurality in the Corollary 4 experiments).
    pub plurality: usize,
}

impl RoundHook for BoostStrongestRival {
    fn after_step(&mut self, _round: u64, states: &mut [u64], _rng: &mut dyn RngCore) {
        let rival = strongest_rival(states, self.plurality);
        let take = self.budget.min(states[self.plurality]);
        states[self.plurality] -= take;
        states[rival] += take;
    }
}

/// Move up to `budget` nodes per round from the plurality to the
/// *currently weakest* (but indexable) rival — keeps many colors alive,
/// probing the `Σ_{i≠1} c_i` collapse phase (Lemma 4) instead of the bias
/// race.
#[derive(Debug, Clone, Copy)]
pub struct ScatterToWeakest {
    /// Corruptions per round (`F`).
    pub budget: u64,
    /// The attacked plurality color.
    pub plurality: usize,
}

impl RoundHook for ScatterToWeakest {
    fn after_step(&mut self, _round: u64, states: &mut [u64], _rng: &mut dyn RngCore) {
        // Weakest rival by count, ties toward the smallest index.
        let mut weakest = usize::MAX;
        let mut weakest_count = u64::MAX;
        for (j, &c) in states.iter().enumerate() {
            if j != self.plurality && c < weakest_count {
                weakest = j;
                weakest_count = c;
            }
        }
        if weakest == usize::MAX {
            return; // single-color system: nothing to corrupt toward
        }
        let take = self.budget.min(states[self.plurality]);
        states[self.plurality] -= take;
        states[weakest] += take;
    }
}

/// Recolor `budget` *uniformly random distinct nodes* to uniformly random
/// colors — an unbiased noise adversary (the baseline the targeted
/// strategies are compared against).
///
/// Victims across color groups follow the exact multivariate
/// hypergeometric law (drawing without replacement, as "up to F nodes"
/// in the paper's model means distinct nodes).
#[derive(Debug, Clone, Copy)]
pub struct RandomCorruption {
    /// Corruptions per round (`F`).
    pub budget: u64,
}

impl RoundHook for RandomCorruption {
    fn after_step(&mut self, _round: u64, states: &mut [u64], rng: &mut dyn RngCore) {
        let k = states.len();
        let n: u64 = states.iter().sum();
        if n == 0 || k < 2 {
            return;
        }
        let budget = self.budget.min(n);
        let mut victims = vec![0u64; k];
        sample_multivariate_hypergeometric(states, budget, &mut victims, rng);
        let mut uniform = vec![0u64; k];
        for (j, &v) in victims.iter().enumerate() {
            states[j] -= v;
        }
        // Re-color all victims uniformly at random (self-color allowed:
        // the adversary may waste corruptions, which is conservative).
        sample_multinomial(budget, &vec![1.0 / k as f64; k], &mut uniform, rng);
        for (slot, &u) in states.iter_mut().zip(&uniform) {
            *slot += u;
        }
    }
}

/// Keep a chosen minority color alive by pumping `budget` nodes into it
/// from the plurality every round — stress for Lemma 5's endgame (the
/// last step must wipe out whatever the adversary can sustain).
#[derive(Debug, Clone, Copy)]
pub struct SustainColor {
    /// Corruptions per round (`F`).
    pub budget: u64,
    /// Color to keep alive.
    pub color: usize,
    /// The plurality color to steal from.
    pub plurality: usize,
}

impl RoundHook for SustainColor {
    fn after_step(&mut self, _round: u64, states: &mut [u64], _rng: &mut dyn RngCore) {
        if self.color == self.plurality {
            return;
        }
        let take = self.budget.min(states[self.plurality]);
        states[self.plurality] -= take;
        states[self.color] += take;
    }
}

/// Strongest rival of `plurality` (largest other color; ties toward the
/// smallest index).  Falls back to `plurality` itself in a 1-color system.
#[must_use]
pub fn strongest_rival(states: &[u64], plurality: usize) -> usize {
    let mut rival = plurality;
    let mut best = 0u64;
    let mut found = false;
    for (j, &c) in states.iter().enumerate() {
        if j != plurality && (!found || c > best) {
            rival = j;
            best = c;
            found = true;
        }
    }
    rival
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_sampling::stream_rng;

    #[test]
    fn strongest_rival_picks_max_other() {
        assert_eq!(strongest_rival(&[50, 10, 30], 0), 2);
        assert_eq!(strongest_rival(&[50, 60, 30], 1), 0);
        assert_eq!(strongest_rival(&[50], 0), 0);
        // Zero-count rivals are still rivals.
        assert_eq!(strongest_rival(&[9, 0, 0], 0), 1);
    }

    #[test]
    fn boost_strongest_preserves_total() {
        let mut h = BoostStrongestRival {
            budget: 7,
            plurality: 0,
        };
        let mut s = [100u64, 20, 40];
        let mut rng = stream_rng(1, 0);
        h.after_step(1, &mut s, &mut rng);
        assert_eq!(s, [93, 20, 47]);
        assert_eq!(s.iter().sum::<u64>(), 160);
    }

    #[test]
    fn boost_strongest_caps_at_available() {
        let mut h = BoostStrongestRival {
            budget: 1_000,
            plurality: 0,
        };
        let mut s = [5u64, 2, 3];
        let mut rng = stream_rng(2, 0);
        h.after_step(1, &mut s, &mut rng);
        assert_eq!(s, [0, 2, 8]);
    }

    #[test]
    fn scatter_targets_weakest() {
        let mut h = ScatterToWeakest {
            budget: 4,
            plurality: 0,
        };
        let mut s = [50u64, 30, 2, 10];
        let mut rng = stream_rng(3, 0);
        h.after_step(1, &mut s, &mut rng);
        assert_eq!(s, [46, 30, 6, 10]);
    }

    #[test]
    fn random_corruption_preserves_total() {
        let mut h = RandomCorruption { budget: 50 };
        let mut s = [500u64, 300, 200];
        let mut rng = stream_rng(4, 0);
        for round in 0..100 {
            h.after_step(round, &mut s, &mut rng);
            assert_eq!(s.iter().sum::<u64>(), 1000, "round {round}");
        }
    }

    #[test]
    fn random_corruption_pushes_toward_uniform() {
        // Pure noise on a monochromatic state spreads mass.
        let mut h = RandomCorruption { budget: 100 };
        let mut s = [1_000u64, 0, 0, 0];
        let mut rng = stream_rng(5, 0);
        h.after_step(1, &mut s, &mut rng);
        assert_eq!(s.iter().sum::<u64>(), 1000);
        assert!(s[0] < 1_000, "some mass must move");
    }

    #[test]
    fn sustain_color_keeps_target_alive() {
        let mut h = SustainColor {
            budget: 3,
            color: 2,
            plurality: 0,
        };
        let mut s = [90u64, 5, 0];
        let mut rng = stream_rng(6, 0);
        h.after_step(1, &mut s, &mut rng);
        assert_eq!(s, [87, 5, 3]);
    }

    #[test]
    fn sustain_self_is_noop() {
        let mut h = SustainColor {
            budget: 3,
            color: 0,
            plurality: 0,
        };
        let mut s = [90u64, 10];
        let mut rng = stream_rng(7, 0);
        h.after_step(1, &mut s, &mut rng);
        assert_eq!(s, [90, 10]);
    }
}
