//! M-plurality consensus measurement under an adversary (Corollary 4).
//!
//! Full consensus is impossible against a dynamic adversary, so the paper
//! asks for an *almost-stable phase*: all but `M` nodes agree on the
//! plurality color, and the system stays in such configurations for
//! poly(n) rounds.  [`measure_reach_and_hold`] runs both phases and
//! reports them separately.

use plurality_core::{Configuration, Dynamics};
use plurality_engine::run::unique_initial_plurality;
use plurality_engine::{RoundHook, RunOptions};
use rand::RngCore;

/// Outcome of a reach-and-hold trial.
#[derive(Debug, Clone, Copy)]
pub struct HoldReport {
    /// Did the system reach M-plurality consensus within the round cap?
    pub reached: bool,
    /// Rounds to reach it (the round cap if not reached).
    pub reach_rounds: u64,
    /// Rounds (out of `hold_rounds`) for which the property then held.
    pub held_rounds: u64,
    /// Rounds in the hold phase that violated the property.
    pub violations: u64,
    /// Worst observed non-plurality mass during the hold phase.
    pub worst_defection: u64,
}

impl HoldReport {
    /// The Corollary 4 success event: reached, and never violated.
    #[must_use]
    pub fn full_success(&self) -> bool {
        self.reached && self.violations == 0
    }
}

/// Run `dynamics` from `initial` under `adversary` (paper §3.1 round
/// structure: random step, then adversarial step), first until all but
/// `m` nodes hold the initial plurality color (capped at
/// `opts.max_rounds`), then for `hold_rounds` more rounds, counting
/// violations of the M-plurality property.
pub fn measure_reach_and_hold(
    dynamics: &dyn Dynamics,
    initial: &Configuration,
    adversary: &mut dyn RoundHook,
    m: u64,
    hold_rounds: u64,
    opts: &RunOptions,
    rng: &mut dyn RngCore,
) -> HoldReport {
    let plurality = unique_initial_plurality(initial);
    let lifted = dynamics.lift(initial);
    let mut cur: Vec<u64> = lifted.counts().to_vec();
    let mut next = vec![0u64; cur.len()];
    let n: u64 = cur.iter().sum();

    // Phase 1: reach M-plurality consensus.
    let mut rounds = 0u64;
    loop {
        let defection = n - cur[plurality];
        if defection <= m {
            break;
        }
        if rounds >= opts.max_rounds {
            return HoldReport {
                reached: false,
                reach_rounds: rounds,
                held_rounds: 0,
                violations: 0,
                worst_defection: defection,
            };
        }
        dynamics.step_mean_field(&cur, &mut next, rng);
        std::mem::swap(&mut cur, &mut next);
        rounds += 1;
        adversary.after_step(rounds, &mut cur, rng);
        debug_assert_eq!(
            cur.iter().sum::<u64>(),
            n,
            "adversary changed the population"
        );
    }
    let reach_rounds = rounds;

    // Phase 2: hold.
    let mut violations = 0u64;
    let mut worst = 0u64;
    for _ in 0..hold_rounds {
        dynamics.step_mean_field(&cur, &mut next, rng);
        std::mem::swap(&mut cur, &mut next);
        rounds += 1;
        adversary.after_step(rounds, &mut cur, rng);
        let defection = n - cur[plurality];
        worst = worst.max(defection);
        if defection > m {
            violations += 1;
        }
    }

    HoldReport {
        reached: true,
        reach_rounds,
        held_rounds: hold_rounds - violations,
        violations,
        worst_defection: worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::BoostStrongestRival;
    use plurality_core::{builders, ThreeMajority};
    use plurality_engine::NoHook;
    use plurality_sampling::stream_rng;

    #[test]
    fn no_adversary_reaches_and_holds() {
        let cfg = builders::biased(100_000, 5, 30_000);
        let d = ThreeMajority::new();
        let mut hook = NoHook;
        let mut rng = stream_rng(1, 0);
        let report = measure_reach_and_hold(
            &d,
            &cfg,
            &mut hook,
            100,
            200,
            &RunOptions::with_max_rounds(10_000),
            &mut rng,
        );
        assert!(report.reached);
        assert!(report.full_success(), "violations: {}", report.violations);
    }

    #[test]
    fn weak_adversary_cannot_stop_consensus() {
        // F well below s/λ: Corollary 4 says reach-and-hold succeeds.
        let n = 100_000;
        let s = 30_000;
        let cfg = builders::biased(n, 5, s);
        let d = ThreeMajority::new();
        let f = 200; // ≪ s/λ
        let mut hook = BoostStrongestRival {
            budget: f,
            plurality: 0,
        };
        let mut rng = stream_rng(2, 0);
        let report = measure_reach_and_hold(
            &d,
            &cfg,
            &mut hook,
            5_000,
            300,
            &RunOptions::with_max_rounds(10_000),
            &mut rng,
        );
        assert!(
            report.reached,
            "reach failed at {} rounds",
            report.reach_rounds
        );
        assert_eq!(
            report.violations, 0,
            "worst defection {}",
            report.worst_defection
        );
    }

    #[test]
    fn overwhelming_adversary_blocks_reach() {
        // F ≥ s: the adversary erases the per-round gain.
        let n = 50_000;
        let s = 2_000;
        let cfg = builders::biased(n, 4, s);
        let d = ThreeMajority::new();
        let mut hook = BoostStrongestRival {
            budget: 25_000,
            plurality: 0,
        };
        let mut rng = stream_rng(3, 0);
        let report = measure_reach_and_hold(
            &d,
            &cfg,
            &mut hook,
            100,
            50,
            &RunOptions::with_max_rounds(300),
            &mut rng,
        );
        assert!(!report.reached, "reach should fail under F ≈ n/2");
    }

    #[test]
    fn already_reached_reports_zero_rounds() {
        let cfg = builders::biased(1_000, 2, 990);
        let d = ThreeMajority::new();
        let mut hook = NoHook;
        let mut rng = stream_rng(5, 0);
        let report = measure_reach_and_hold(
            &d,
            &cfg,
            &mut hook,
            10,
            10,
            &RunOptions::with_max_rounds(100),
            &mut rng,
        );
        assert!(report.reached);
        assert_eq!(report.reach_rounds, 0);
    }

    #[test]
    fn f_exceeding_m_blocks_reach() {
        // The paper: M-plurality consensus is impossible when F > M.
        // With M = 0 even a 1-node adversary keeps defection ≥ 1 forever.
        let cfg = builders::biased(10_000, 3, 4_000);
        let d = ThreeMajority::new();
        let mut hook = BoostStrongestRival {
            budget: 1,
            plurality: 0,
        };
        let mut rng = stream_rng(4, 0);
        let report = measure_reach_and_hold(
            &d,
            &cfg,
            &mut hook,
            0,
            100,
            &RunOptions::with_max_rounds(2_000),
            &mut rng,
        );
        assert!(!report.reached);
        assert!(report.worst_defection >= 1);
    }

    #[test]
    fn hold_phase_counts_violations() {
        // An adversary that sleeps through the reach phase and then blasts
        // past M: the hold phase must record the violations.
        struct SleeperBurst {
            wake_round: u64,
            budget: u64,
            plurality: usize,
        }
        impl RoundHook for SleeperBurst {
            fn after_step(&mut self, round: u64, states: &mut [u64], _rng: &mut dyn RngCore) {
                if round < self.wake_round {
                    return;
                }
                let rival = crate::bounded::strongest_rival(states, self.plurality);
                let take = self.budget.min(states[self.plurality]);
                states[self.plurality] -= take;
                states[rival] += take;
            }
        }
        let cfg = builders::biased(10_000, 3, 4_000);
        let d = ThreeMajority::new();
        let mut hook = SleeperBurst {
            wake_round: 1_000, // far beyond the reach phase
            budget: 500,       // ≫ M below
            plurality: 0,
        };
        let mut rng = stream_rng(4, 1);
        let report = measure_reach_and_hold(
            &d,
            &cfg,
            &mut hook,
            50,
            2_000,
            &RunOptions::with_max_rounds(900),
            &mut rng,
        );
        assert!(report.reached, "quiet reach phase must succeed");
        assert!(report.violations > 0, "burst must violate M-plurality");
        assert!(report.worst_defection > 50);
        assert!(!report.full_success());
    }
}
