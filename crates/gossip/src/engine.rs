//! The asynchronous gossip engine.
//!
//! One trial is a deterministic function of `(seed, mode, scheduler,
//! rates, network, topology, dynamics, placement)`.  PRNG stream layout
//! (per trial seed, all streams derived with
//! `plurality_sampling::stream_rng`):
//!
//! | stream | used for |
//! |---|---|
//! | 0 | initial placement shuffle (same convention as `AgentEngine`) |
//! | 1 | the activation clock (node choices / exponential waiting times) |
//! | 2 | rule-internal randomness passed to `Dynamics::node_update` |
//! | 3 | master for per-message streams (see [`crate::network`]) |
//! | 4 | failure-model chains (Gilbert–Elliott / outage holding times) |
//! | 5 | inbox overflow draws (only [`InboxPolicy::RandomReplace`]) |
//! | 6 | churn processes (event times, victims, anchors, init colors) |
//!
//! # Telemetry
//!
//! [`GossipEngine::run_recorded`] threads a
//! [`plurality_telemetry::Recorder`] through the monomorphized core.
//! Recording **consumes no randomness** and never branches the
//! simulation, so a trial's trajectory is independent of the recorder;
//! with [`NoopRecorder`] the instrumentation compiles away entirely
//! (that is what `run` / `run_detailed` use).  Message counters are
//! attributed per failure layer ([`DropLayer`]) and obey the exact
//! conservation laws documented on [`Counter`].
//!
//! # Event processing order
//!
//! Activations are drawn directly from the [`ActivationClock`]; delayed
//! recolor commits and in-flight pushed colors wait in the lazy-deletion
//! [`EventQueue`].  The engine merges the two sources by firing time,
//! with a documented deterministic rule at exact timestamp ties: **queued
//! network events fire before the activation sharing their timestamp**,
//! and queued events among themselves fire FIFO by insertion sequence
//! number.  (This reproduces PR 1's behavior, where the pending
//! activation always carried a later sequence number than any queued
//! commit — pinned bit-for-bit by the golden PULL traces in
//! `tests/gossip_modes.rs`.)
//!
//! # One activation, by exchange mode
//!
//! * **Pull** — the node draws its rule's samples as PULL requests
//!   (loss ⇒ own-color fallback; delay ⇒ the recolor commits when the
//!   slowest response lands, superseded if the node activates again).
//! * **Push** — the node sends its current color to one random peer
//!   (per-message loss/delay apply), then applies its rule against its
//!   own inbox of previously received colors; if the inbox cannot supply
//!   every sample the rule draws, the update is *starved* and skipped
//!   (the inbox is left untouched).
//! * **PushPull** — the node serves its rule's samples from its inbox
//!   first and issues one bidirectional exchange per remaining sample:
//!   the pull leg answers the sample, the push leg carries the node's
//!   (pre-update) color into the contacted peer's inbox, with loss and
//!   delay striking each leg independently.

use crate::churn::{ChurnEvent, ChurnModel, ChurnState, InitPolicy};
use crate::failure::{DropLayer, FailureModel, FailureState};
use crate::modes::{ExchangeMode, Inbox, InboxAdmit, InboxPolicy};
use crate::network::{ExchangeFate, LegFate, MessageFate, MessageStreams, NetworkConfig};
use crate::scheduler::{ActivationClock, EventKind, EventQueue, RatedActivation, Scheduler};
use plurality_core::{
    downcast_dynamics, Configuration, DynDynamics, Dynamics, DynamicsCore, HPlurality, NodeScratch,
    SampleSource, ThreeMajority, UndecidedState, Voter,
};
use plurality_engine::{
    evaluate_stop, layout_initial_states, unique_initial_plurality, Placement, RunOptions,
    StopReason, Trace, TraceLevel, TrialResult,
};
use plurality_sampling::{derive_stream, stream_rng, Xoshiro256PlusPlus};
use plurality_telemetry::{ticks_to_fp, Counter, Gauge, Hist, NoopRecorder, Phase, Recorder};
use plurality_topology::{
    downcast_topology, ChungLu, Clique, CsrGraph, DynTopology, ImplicitRing, Membership, Topology,
    TopologyCore, MAX_DEAD_REDRAWS,
};
use rand::{Rng, RngCore};
use std::sync::Arc;

// Stream 0 is the placement shuffle, consumed inside
// `plurality_engine::layout_initial_states`.
const STREAM_SCHEDULER: u64 = 1;
const STREAM_UPDATE: u64 = 2;
const STREAM_MESSAGES: u64 = 3;
/// Failure-model chain randomness (Gilbert–Elliott / outage holding
/// times).  Never consumed by the degenerate uniform model, so plain
/// `NetworkConfig` runs stay bit-identical to PR 2/3.
const STREAM_FAILURE: u64 = 4;
/// Inbox overflow randomness.  Consumed only by
/// [`InboxPolicy::RandomReplace`] (one draw per overflow), so runs under
/// every other inbox policy stay bit-identical to PR 2/3.
const STREAM_INBOX: u64 = 5;
/// Churn-process randomness (event times, victim/anchor choices, arrival
/// init colors).  Consumed only when a [`ChurnModel`] is configured, so
/// churn-free runs stay bit-identical to earlier PRs — and a configured
/// model whose rates are all zero never draws from it either.
const STREAM_CHURN: u64 = 6;

/// Event-driven asynchronous simulator over a [`Topology`].
///
/// Implements the same run contract as the synchronous engines
/// ([`RunOptions`] in, [`TrialResult`] out), so it drops into
/// `MonteCarlo`, the experiments, and the CLI unchanged.
pub struct GossipEngine<'t> {
    topology: &'t dyn Topology,
    mode: ExchangeMode,
    scheduler: Scheduler,
    failure: FailureModel,
    /// Dense `(loss, delay)` per directed CSR edge slot — precomputed
    /// once in [`GossipEngine::with_failure_model`] when the model has
    /// genuinely per-edge parameters and the topology is a [`CsrGraph`],
    /// shared read-only by every trial.  Held behind an `Arc` so a
    /// spec-keyed cache (the job server) can build the table once and
    /// share it across engines on different worker threads.
    edge_table: Option<Arc<[(f64, f64)]>>,
    /// Directed-slot count for the flat Gilbert–Elliott chain table —
    /// `Some` when the model has a GE component and the topology is a
    /// [`CsrGraph`], so per-edge chains live in a dense `Vec` indexed by
    /// CSR slot instead of a `HashMap` (bit-identical fates: a chain's
    /// trajectory is a pure function of its unordered-edge seed).
    ge_slots: Option<usize>,
    inbox_policy: InboxPolicy,
    rates: Option<Arc<[f64]>>,
    /// Prebuilt alias sampler over `rates` — constructed once in
    /// [`GossipEngine::with_node_rates`] and shared by every trial (and,
    /// behind the `Arc`, across engines on different worker threads).
    rated: Option<Arc<RatedActivation>>,
    rate_weighted_time: bool,
    churn: Option<ChurnModel>,
}

/// Side statistics of one gossip trial (beyond the shared
/// [`TrialResult`] contract).
///
/// `messages` counts initiated calls (= per-message RNG streams): PULL
/// sample requests, PUSH sends, or PUSH-PULL exchanges.  For PUSH-PULL,
/// `lost_messages` / `delayed_messages` count *legs* (an exchange can
/// contribute up to two of each).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GossipStats {
    /// Node activations executed.
    pub activations: u64,
    /// Calls initiated (PULL requests / PUSH sends / PUSH-PULL exchanges).
    pub messages: u64,
    /// Messages (or exchange legs) dropped by the network.
    pub lost_messages: u64,
    /// Messages (or exchange legs) that arrived late.
    pub delayed_messages: u64,
    /// Pending recolors invalidated by a newer activation of the same
    /// node before their delayed responses arrived.
    pub superseded_commits: u64,
    /// Pushed colors that landed in an inbox (instantly or late).
    pub pushes_delivered: u64,
    /// Update-rule samples answered from the node's inbox.
    pub inbox_served: u64,
    /// PUSH-mode activations whose update was skipped because the inbox
    /// could not supply every sample the rule draws.
    pub starved_updates: u64,
    /// Buffered colors evicted because an inbox hit [`crate::INBOX_CAP`].
    pub inbox_dropped: u64,
    /// Spares that joined the population (churn only).
    pub churn_joins: u64,
    /// Alive nodes that crashed (churn only).
    pub churn_crashes: u64,
    /// Alive nodes that left gracefully (churn only).
    pub churn_leaves: u64,
    /// Dead members that rejoined (churn only).
    pub churn_rejoins: u64,
    /// In-flight events voided by a departure: queued recolor commits
    /// cancelled at crash/leave time plus delayed pushes that arrived at
    /// a dead node (churn only).
    pub orphaned_events: u64,
    /// Dead peers hit (and redrawn around) by neighbor sampling (churn
    /// only).
    pub dead_peer_samples: u64,
    /// Alive nodes when the trial stopped (= `n` without churn).
    pub final_alive: u64,
    /// Simulated clock at stop time, in ticks.
    pub final_time: f64,
}

/// Draws one node's PULL samples, routing every request through the
/// network-condition model.  The engine's `update_rng` (passed to
/// `node_update_core` for rule-internal randomness such as tie-breaks)
/// is deliberately *not* used here: message randomness lives in
/// per-message streams.  Monomorphic over the topology so the peer draw
/// inlines into the activation loop.
struct GossipSampler<'a, 'm, T, Rec> {
    topology: &'a T,
    states: &'a [u32],
    node: usize,
    own: u32,
    now: f64,
    fstate: &'a mut FailureState<'m>,
    streams: &'a mut MessageStreams,
    rec: &'a mut Rec,
    /// Churn membership overlay; `None` runs the static-topology draw
    /// unchanged (bit-identical to earlier PRs).
    membership: Option<&'a Membership>,
    max_extra_ticks: f64,
    // Per-activation tallies, flushed into the recorder (and
    // `GossipStats`) once the update returns: register increments in
    // the draw loop instead of per-message recorder traffic.  Only the
    // cold branches (loss attribution, delay histogram) touch `rec`
    // directly.  `sent - lost` = delivered, so nothing else is needed.
    sent: u64,
    lost: u64,
    delayed: u64,
    dead_hits: u64,
}

impl<T: TopologyCore, Rec: Recorder> SampleSource for GossipSampler<'_, '_, T, Rec> {
    fn draw<R: RngCore + ?Sized>(&mut self, _rng: &mut R) -> u32 {
        let topology = self.topology;
        let node = self.node;
        let fate = match self.membership {
            None => self
                .streams
                .next_fate_in(self.fstate, self.now, node, |mrng| {
                    topology.sample_neighbor_edge_core(node, mrng)
                }),
            Some(m) => {
                let mut hits = 0u64;
                let fate = self
                    .streams
                    .next_fate_in(self.fstate, self.now, node, |mrng| {
                        m.sample_alive_neighbor_edge(topology, node, &mut hits, mrng)
                    });
                self.dead_hits += hits;
                if hits >= MAX_DEAD_REDRAWS {
                    // The redraw budget ran dry on dead peers: the
                    // sample is lost to the churn layer (whatever the
                    // network would have done with it).
                    MessageFate::Lost {
                        layer: DropLayer::DeadPeer,
                    }
                } else {
                    fate
                }
            }
        };
        self.sent += 1;
        match fate {
            MessageFate::Lost { layer } => {
                self.rec.incr(lost_counter(layer));
                self.lost += 1;
                self.own
            }
            MessageFate::Delivered { peer } => self.states[peer],
            MessageFate::Delayed { peer, extra_ticks } => {
                if Rec::ENABLED {
                    self.rec
                        .observe(Hist::DelayExtraFp, ticks_to_fp(extra_ticks));
                }
                self.delayed += 1;
                if extra_ticks > self.max_extra_ticks {
                    self.max_extra_ticks = extra_ticks;
                }
                self.states[peer]
            }
        }
    }
}

/// Serves a PUSH-mode update from the node's own inbox only.  Runs in
/// *probe* style: if the inbox runs dry the sampler answers with the
/// node's own color and flags starvation, and the engine discards the
/// whole update without consuming the inbox.
struct InboxSampler<'a> {
    inbox: &'a Inbox,
    cursor: usize,
    own: u32,
    starved: bool,
}

impl SampleSource for InboxSampler<'_> {
    fn draw<R: RngCore + ?Sized>(&mut self, _rng: &mut R) -> u32 {
        match self.inbox.peek(self.cursor) {
            Some(color) => {
                self.cursor += 1;
                color
            }
            None => {
                self.starved = true;
                self.own
            }
        }
    }
}

/// Serves a PUSH-PULL update: inbox first, then bidirectional exchanges.
/// Instant push-leg deliveries and delayed legs are buffered (the
/// engine applies them after the update returns — same timestamp, no
/// aliasing of the inbox table mid-update).
struct PushPullSampler<'a, 'm, T, Rec> {
    topology: &'a T,
    states: &'a [u32],
    node: usize,
    own: u32,
    now: f64,
    fstate: &'a mut FailureState<'m>,
    streams: &'a mut MessageStreams,
    rec: &'a mut Rec,
    /// Churn membership overlay; `None` runs the static-topology draw
    /// unchanged (bit-identical to earlier PRs).
    membership: Option<&'a Membership>,
    inbox: &'a Inbox,
    cursor: usize,
    instant_pushes: &'a mut Vec<(usize, u32)>,
    delayed_pushes: &'a mut Vec<(usize, u32, f64)>,
    max_extra_ticks: f64,
    // Per-activation tallies flushed once the update returns (see
    // [`GossipSampler`]); legs tally separately so the flush can split
    // pull/push counters exactly.  Per-leg delivered = `sent - *_lost`.
    sent: u64,
    pull_lost: u64,
    push_lost: u64,
    pull_delayed: u64,
    push_delayed: u64,
    inbox_served: u64,
    dead_hits: u64,
}

impl<T: TopologyCore, Rec: Recorder> SampleSource for PushPullSampler<'_, '_, T, Rec> {
    fn draw<R: RngCore + ?Sized>(&mut self, _rng: &mut R) -> u32 {
        if let Some(color) = self.inbox.peek(self.cursor) {
            self.cursor += 1;
            self.inbox_served += 1;
            return color;
        }
        let topology = self.topology;
        let node = self.node;
        let ExchangeFate { peer, pull, push } = match self.membership {
            None => self
                .streams
                .next_exchange_in(self.fstate, self.now, node, |mrng| {
                    topology.sample_neighbor_edge_core(node, mrng)
                }),
            Some(m) => {
                let mut hits = 0u64;
                let fate = self
                    .streams
                    .next_exchange_in(self.fstate, self.now, node, |mrng| {
                        m.sample_alive_neighbor_edge(topology, node, &mut hits, mrng)
                    });
                self.dead_hits += hits;
                if hits >= MAX_DEAD_REDRAWS {
                    // Redraw budget exhausted on dead peers: the whole
                    // exchange is void — both legs lost to the churn
                    // layer.
                    ExchangeFate {
                        peer: fate.peer,
                        pull: LegFate::Lost {
                            layer: DropLayer::DeadPeer,
                        },
                        push: LegFate::Lost {
                            layer: DropLayer::DeadPeer,
                        },
                    }
                } else {
                    fate
                }
            }
        };
        self.sent += 1;
        match push {
            LegFate::Lost { layer } => {
                self.rec.incr(lost_counter(layer));
                self.push_lost += 1;
            }
            LegFate::Instant => {
                self.instant_pushes.push((peer, self.own));
            }
            LegFate::Delayed { extra_ticks } => {
                if Rec::ENABLED {
                    self.rec
                        .observe(Hist::DelayExtraFp, ticks_to_fp(extra_ticks));
                }
                self.push_delayed += 1;
                self.delayed_pushes.push((peer, self.own, extra_ticks));
            }
        }
        match pull {
            LegFate::Lost { layer } => {
                self.rec.incr(lost_counter(layer));
                self.pull_lost += 1;
                self.own
            }
            LegFate::Instant => self.states[peer],
            LegFate::Delayed { extra_ticks } => {
                if Rec::ENABLED {
                    self.rec
                        .observe(Hist::DelayExtraFp, ticks_to_fp(extra_ticks));
                }
                self.pull_delayed += 1;
                if extra_ticks > self.max_extra_ticks {
                    self.max_extra_ticks = extra_ticks;
                }
                self.states[peer]
            }
        }
    }
}

impl<'t> GossipEngine<'t> {
    /// Engine on a topology with PULL exchanges, the sequential scheduler
    /// and an ideal network.
    #[must_use]
    pub fn new(topology: &'t dyn Topology) -> Self {
        Self {
            topology,
            mode: ExchangeMode::Pull,
            scheduler: Scheduler::Sequential,
            failure: FailureModel::default(),
            edge_table: None,
            ge_slots: None,
            inbox_policy: InboxPolicy::default(),
            rates: None,
            rated: None,
            rate_weighted_time: false,
            churn: None,
        }
    }

    /// Choose the exchange mode (who learns whose color per activation).
    #[must_use]
    pub fn with_mode(mut self, mode: ExchangeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Choose the activation scheduler.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Apply uniform i.i.d. network conditions (shorthand for
    /// [`Self::with_failure_model`] on [`FailureModel::uniform`]).
    #[must_use]
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.failure = FailureModel::uniform(network);
        self.edge_table = None;
        self.ge_slots = None;
        self
    }

    /// Apply a structured [`FailureModel`] (per-edge, time-varying,
    /// correlated failures — see [`crate::failure`]).  When the model
    /// has genuinely per-edge parameters and the topology is a
    /// [`CsrGraph`], the per-edge `(loss, delay)` table is precomputed
    /// here, once, over the dense directed edge slots and shared by
    /// every trial (the values are identical to the on-the-fly per-edge
    /// stream draws used for implicit topologies, so trajectories do
    /// not depend on the cache).
    #[must_use]
    pub fn with_failure_model(self, model: FailureModel) -> Self {
        let edge_table = Self::build_edge_table(&model, self.topology).map(Arc::from);
        let ge_slots = Self::ge_slot_count(&model, self.topology);
        self.with_prebuilt_failure_model(model, edge_table, ge_slots)
    }

    /// The dense per-directed-CSR-slot `(loss, delay)` table
    /// [`Self::with_failure_model`] would precompute for `model` on
    /// `topology` — `None` unless the model has genuinely per-edge
    /// parameters and the topology advertises dense edge slots
    /// ([`Topology::dense_edge_slots`]).  Implicit topologies (ring
    /// kernels, Chung–Lu) report no slots and degrade gracefully: every
    /// per-edge value is recomputed on the fly from the hashed per-edge
    /// streams, which produce the same numbers.  Exposed so a spec-keyed
    /// cache can build the table once and hand it to many engines
    /// through [`Self::with_prebuilt_failure_model`].
    #[must_use]
    pub fn build_edge_table(
        model: &FailureModel,
        topology: &dyn Topology,
    ) -> Option<Vec<(f64, f64)>> {
        if !model.needs_edge_params() {
            return None;
        }
        topology.dense_edge_slots()?;
        downcast_topology::<CsrGraph>(topology).map(|g| {
            let n = g.n();
            let mut table = Vec::with_capacity(g.directed_edge_count());
            for v in 0..n {
                for &w in g.neighbors(v) {
                    table.push(model.edge_params(n, v, w as usize));
                }
            }
            table
        })
    }

    /// The directed-slot count [`Self::with_failure_model`] would use for
    /// the flat Gilbert–Elliott chain table — `None` unless the model
    /// has a GE component and the topology advertises dense edge slots
    /// ([`Topology::dense_edge_slots`]); without slots the per-edge GE
    /// chains fall back to hash-keyed lazy state instead of panicking.
    #[must_use]
    pub fn ge_slot_count(model: &FailureModel, topology: &dyn Topology) -> Option<usize> {
        model.gilbert_elliott()?;
        topology.dense_edge_slots()
    }

    /// [`Self::with_failure_model`] with externally prebuilt per-edge
    /// state, so one [`Self::build_edge_table`] /
    /// [`Self::ge_slot_count`] result can be shared (`Arc`) by engines
    /// on many worker threads.  Trajectories are identical to the
    /// self-building path as long as the prebuilt state matches what
    /// those helpers return for this model and topology.
    ///
    /// # Panics
    /// Panics if an edge table is supplied whose length differs from the
    /// topology's directed CSR slot count.
    #[must_use]
    pub fn with_prebuilt_failure_model(
        mut self,
        model: FailureModel,
        edge_table: Option<Arc<[(f64, f64)]>>,
        ge_slots: Option<usize>,
    ) -> Self {
        if let Some(table) = &edge_table {
            let slots = self.topology.dense_edge_slots().unwrap_or(0);
            assert_eq!(
                table.len(),
                slots,
                "edge table length must match the topology's dense edge slot count"
            );
        }
        self.edge_table = edge_table;
        self.ge_slots = ge_slots;
        self.failure = model;
        self
    }

    /// Choose what a full PUSH/PUSH-PULL inbox does with the next
    /// incoming color (default: [`InboxPolicy::DropOldest`]).
    #[must_use]
    pub fn with_inbox_policy(mut self, policy: InboxPolicy) -> Self {
        self.inbox_policy = policy;
        self
    }

    /// Give every node its own activation rate (default: unit rates).
    /// Under the Poisson scheduler rates scale each node's clock; under
    /// the sequential scheduler they weight the per-step node choice
    /// (the Poisson jump chain), leaving step times at `i/n`.
    ///
    /// The rate-proportional alias sampler is built here, once, and
    /// shared by every trial.
    ///
    /// # Panics
    /// Panics unless `rates` holds one strictly positive finite entry
    /// per topology node (per-entry validation lives in
    /// [`RatedActivation::new`]).
    #[must_use]
    pub fn with_node_rates(self, rates: Vec<f64>) -> Self {
        assert_eq!(
            rates.len(),
            self.topology.n(),
            "need one activation rate per node"
        );
        let rated = Arc::new(RatedActivation::new(&rates));
        self.with_prebuilt_node_rates(Arc::from(rates), rated)
    }

    /// [`Self::with_node_rates`] with an externally prebuilt alias
    /// sampler, so one rate vector and its [`RatedActivation`] can be
    /// shared (`Arc`) by engines on many worker threads.  Trajectories
    /// are identical to the self-building path as long as `rated` was
    /// built over exactly `rates`.
    ///
    /// # Panics
    /// Panics unless `rates` holds one entry per topology node and
    /// `rated` covers the same number of nodes.
    #[must_use]
    pub fn with_prebuilt_node_rates(
        mut self,
        rates: Arc<[f64]>,
        rated: Arc<RatedActivation>,
    ) -> Self {
        assert_eq!(
            rates.len(),
            self.topology.n(),
            "need one activation rate per node"
        );
        assert_eq!(
            rated.len(),
            rates.len(),
            "alias sampler must cover the same nodes as the rate vector"
        );
        self.rated = Some(rated);
        self.rates = Some(rates);
        self
    }

    /// Make the population dynamic: Poisson crash / graceful-leave /
    /// rejoin / join processes mutate a membership overlay on the base
    /// topology while the trial runs (see [`crate::churn`]).  All churn
    /// randomness lives on its own per-trial stream, so a model whose
    /// rates are all zero is bit-identical to no churn at all.
    ///
    /// Not composable with [`Self::with_node_rates`] (heterogeneous
    /// activation rates assume a fixed population); the run entry point
    /// panics on the combination.
    ///
    /// Requires a topology with indexed neighbor access
    /// ([`Topology::supports_indexed_neighbors`]): the membership
    /// overlay rejects dead peers by drawing a uniform neighbor index
    /// and redrawing, which cannot reproduce the non-uniform neighbor
    /// law of implicit topologies.  Surfaces that accept user specs
    /// (CLI, server) check the capability first and return a structured
    /// error; this builder is the last line of defense.
    ///
    /// # Panics
    /// Panics if the model fails [`ChurnModel::validate`], or if the
    /// topology does not support indexed neighbor access.
    #[must_use]
    pub fn with_churn_model(mut self, model: ChurnModel) -> Self {
        if let Err(e) = model.validate() {
            panic!("invalid churn model: {e}");
        }
        assert!(
            self.topology.supports_indexed_neighbors(),
            "churn is not supported on topology '{}': the membership overlay needs \
             indexed neighbor access, which implicit topologies cannot provide",
            self.topology.name()
        );
        self.churn = Some(model);
        self
    }

    /// The configured churn model, if any.
    #[must_use]
    pub fn churn_model(&self) -> Option<&ChurnModel> {
        self.churn.as_ref()
    }

    /// The configured exchange mode.
    #[must_use]
    pub fn mode(&self) -> ExchangeMode {
        self.mode
    }

    /// The configured scheduler.
    #[must_use]
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// The configured uniform baseline network conditions.
    #[must_use]
    pub fn network(&self) -> NetworkConfig {
        self.failure.base()
    }

    /// The configured failure model.
    #[must_use]
    pub fn failure_model(&self) -> &FailureModel {
        &self.failure
    }

    /// The configured inbox overflow policy.
    #[must_use]
    pub fn inbox_policy(&self) -> InboxPolicy {
        self.inbox_policy
    }

    /// The configured per-node activation rates, if heterogeneous.
    #[must_use]
    pub fn node_rates(&self) -> Option<&[f64]> {
        self.rates.as_deref()
    }

    /// Stamp *sequential* activations at rate-weighted parallel time
    /// `i / Σ r_v` (expectation-matched to the Poisson clock) instead of
    /// the uniform `i / n`.  Only observable with heterogeneous rates
    /// under the sequential scheduler; see the scheduler module docs.
    #[must_use]
    pub fn with_rate_weighted_time(mut self, on: bool) -> Self {
        self.rate_weighted_time = on;
        self
    }

    /// Whether sequential activations use rate-weighted timestamps.
    #[must_use]
    pub fn rate_weighted_time(&self) -> bool {
        self.rate_weighted_time
    }

    /// Run one trial; see [`Self::run_detailed`].
    pub fn run(
        &self,
        dynamics: &dyn Dynamics,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
    ) -> TrialResult {
        self.run_detailed(dynamics, initial, placement, opts, seed)
            .0
    }

    /// Run one trial, also returning gossip-specific statistics.
    ///
    /// `opts.max_rounds` caps parallel time in ticks (1 tick = `n`
    /// activations); `opts.max_events` additionally caps processed events
    /// (activations plus fired network events).  Exhausting either
    /// reports [`StopReason::MaxRounds`].
    ///
    /// # Panics
    /// Panics if the configuration population differs from the topology
    /// size, the initial plurality is tied, or (PUSH mode) the dynamics
    /// draws more than [`crate::INBOX_CAP`] samples per update — such a
    /// rule can never complete a push-served update and would otherwise
    /// livelock until `max_rounds`.
    pub fn run_detailed(
        &self,
        dynamics: &dyn Dynamics,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
    ) -> (TrialResult, GossipStats) {
        self.run_recorded(dynamics, initial, placement, opts, seed, &mut NoopRecorder)
    }

    /// Run one trial with a telemetry [`Recorder`] threaded through the
    /// monomorphized core.  Recording consumes no randomness and never
    /// branches the simulation, so for any recorder the trajectory is
    /// bit-identical to [`Self::run_detailed`] (which is exactly this
    /// call with [`NoopRecorder`]).  Counters accumulate — reuse one
    /// `MetricsRecorder` across trials to aggregate.
    pub fn run_recorded<Rec: Recorder>(
        &self,
        dynamics: &dyn Dynamics,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
        rec: &mut Rec,
    ) -> (TrialResult, GossipStats) {
        // Devirtualize (same scheme as `AgentEngine::run`): resolve the
        // topology, then the dynamics, to concrete types and run a mode
        // step monomorphized over both; unknown types take the dyn
        // fallback wrappers with identical draw sequences.
        if let Some(t) = downcast_topology::<Clique>(self.topology) {
            self.run_with_topology(t, dynamics, initial, placement, opts, seed, rec)
        } else if let Some(t) = downcast_topology::<CsrGraph>(self.topology) {
            self.run_with_topology(t, dynamics, initial, placement, opts, seed, rec)
        } else if let Some(t) = downcast_topology::<ImplicitRing>(self.topology) {
            self.run_with_topology(t, dynamics, initial, placement, opts, seed, rec)
        } else if let Some(t) = downcast_topology::<ChungLu>(self.topology) {
            self.run_with_topology(t, dynamics, initial, placement, opts, seed, rec)
        } else {
            self.run_with_topology(
                &DynTopology(self.topology),
                dynamics,
                initial,
                placement,
                opts,
                seed,
                rec,
            )
        }
    }

    /// Second dispatch level: resolve the dynamics to a concrete type.
    #[allow(clippy::too_many_arguments)]
    fn run_with_topology<T: TopologyCore, Rec: Recorder>(
        &self,
        topology: &T,
        dynamics: &dyn Dynamics,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
        rec: &mut Rec,
    ) -> (TrialResult, GossipStats) {
        if let Some(d) = downcast_dynamics::<ThreeMajority>(dynamics) {
            self.run_core(topology, d, initial, placement, opts, seed, rec)
        } else if let Some(d) = downcast_dynamics::<HPlurality>(dynamics) {
            self.run_core(topology, d, initial, placement, opts, seed, rec)
        } else if let Some(d) = downcast_dynamics::<UndecidedState>(dynamics) {
            self.run_core(topology, d, initial, placement, opts, seed, rec)
        } else if let Some(d) = downcast_dynamics::<Voter>(dynamics) {
            self.run_core(topology, d, initial, placement, opts, seed, rec)
        } else {
            self.run_core(
                topology,
                &DynDynamics(dynamics),
                initial,
                placement,
                opts,
                seed,
                rec,
            )
        }
    }

    /// The monomorphized event loop.
    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn run_core<T: TopologyCore, D: DynamicsCore, Rec: Recorder>(
        &self,
        topology: &T,
        dynamics: &D,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
        rec: &mut Rec,
    ) -> (TrialResult, GossipStats) {
        rec.phase_start(Phase::Setup);
        let n = topology.n();
        assert_eq!(
            initial.n() as usize,
            n,
            "configuration population must match topology size"
        );
        assert!(
            self.churn.is_none() || self.rated.is_none(),
            "churn is not supported with heterogeneous node rates \
             (the alias sampler assumes a fixed population)"
        );
        let initial_plurality = unique_initial_plurality(initial);
        let k_colors = initial.k();
        let lifted = dynamics.lift(initial);
        let state_count = lifted.k();
        if let Some(model) = &self.churn {
            let uses_init = model.join > 0.0 || (model.rejoin > 0.0 && model.rejoin_fresh);
            if uses_init && model.init == InitPolicy::Undecided {
                assert!(
                    state_count > k_colors,
                    "churn init=undecided requires a dynamics with an undecided state \
                     (dynamics '{}' has none)",
                    dynamics.name()
                );
            }
        }
        // Spares occupy node ids `n..total`, dead until they join; every
        // per-node structure (states, clock, queue, inboxes, failure
        // chains) is sized over `total` so a join never reallocates.
        let spare = self.churn.as_ref().map_or(0, |m| m.spare);
        let total = n + spare;

        let mut states = layout_initial_states(&lifted, placement, seed);
        states.resize(total, 0);
        let mut counts: Vec<u64> = lifted.counts().to_vec();

        let mut trace = match opts.trace {
            TraceLevel::Off => None,
            _ => Some(Trace::new()),
        };
        let full = opts.trace == TraceLevel::Full;
        if let Some(t) = trace.as_mut() {
            t.record(0, &counts, k_colors, full);
        }

        let mut stats = GossipStats {
            final_alive: n as u64,
            ..GossipStats::default()
        };

        if let Some(winner) = evaluate_stop(opts.stop, dynamics, &counts, initial_plurality) {
            let result = TrialResult {
                rounds: 0,
                reason: StopReason::Stopped,
                winner: Some(winner),
                initial_plurality,
                success: winner == initial_plurality,
                trace,
            };
            rec.phase_end(Phase::Setup);
            return (result, stats);
        }

        let mut sched_rng = stream_rng(seed, STREAM_SCHEDULER);
        let mut update_rng = stream_rng(seed, STREAM_UPDATE);
        let mut streams = MessageStreams::new(derive_stream(seed, STREAM_MESSAGES));
        let mut fstate = FailureState::new(
            &self.failure,
            total,
            self.edge_table.as_deref(),
            derive_stream(seed, STREAM_FAILURE),
        );
        if let Some(slots) = self.ge_slots {
            fstate = fstate.with_dense_ge_slots(slots);
        }
        let mut inbox_rng = stream_rng(seed, STREAM_INBOX);
        let mut scratch = NodeScratch::with_states(state_count);
        let mut queue = EventQueue::new(total);
        let mut clock = match &self.rated {
            Some(rated) => ActivationClock::with_rated(self.scheduler, total, rated),
            None => ActivationClock::new(self.scheduler, total, None),
        }
        .with_rate_weighted_time(self.rate_weighted_time);
        let mut inboxes: Vec<Inbox> = match self.mode {
            ExchangeMode::Pull => Vec::new(),
            ExchangeMode::Push | ExchangeMode::PushPull => {
                vec![Inbox::with_policy(self.inbox_policy); total]
            }
        };
        let mut instant_pushes: Vec<(usize, u32)> = Vec::new();
        let mut delayed_pushes: Vec<(usize, u32, f64)> = Vec::new();
        let mut membership = self.churn.as_ref().map(|_| Membership::new(n, spare));
        let mut churn_state = self.churn.as_ref().map(|model| {
            let mut cs = ChurnState::new(model.clone(), stream_rng(seed, STREAM_CHURN));
            cs.schedule(
                0.0,
                membership.as_ref().expect("membership built with churn"),
            );
            cs
        });

        let max_events = opts.max_events.unwrap_or(u64::MAX);
        let mut events: u64 = 0;
        let mut ticks: u64 = 0;
        // Clock draws, dead-node no-ops included: `total` draws = one
        // tick of parallel time (equal to `stats.activations` without
        // churn).
        let mut draws: u64 = 0;
        // Delayed pushes scheduled but not yet arrived (telemetry only).
        let mut pushes_in_flight: u64 = 0;
        let mut next_act = clock.next(&mut sched_rng);
        rec.phase_end(Phase::Setup);
        rec.phase_start(Phase::Run);

        loop {
            // Event-source merge.  Queued network events fire before an
            // activation sharing their timestamp (see the module docs on
            // tie-breaking); churn events fire before both — a churn
            // event is a population change, and anything resolving at
            // the same instant already sees the new membership.
            let churn_next = churn_state
                .as_ref()
                .map_or(f64::INFINITY, ChurnState::next_time);
            let queue_t = queue.peek_time();
            let fire_churn = churn_next <= next_act.0 && queue_t.is_none_or(|t| churn_next <= t);
            let fire_queue = !fire_churn && matches!(queue_t, Some(t) if t <= next_act.0);
            if fire_churn {
                let cs = churn_state.as_mut().expect("churn fired without state");
                let m = membership.as_mut().expect("churn fired without membership");
                let model = self.churn.as_ref().expect("churn fired without model");
                let now = churn_next;
                events += 1;
                stats.final_time = now;
                match cs.pick(m) {
                    Some(ev @ (ChurnEvent::Crash | ChurnEvent::Leave)) => {
                        let v = if ev == ChurnEvent::Crash {
                            stats.churn_crashes += 1;
                            rec.incr(Counter::ChurnCrashes);
                            m.crash_random(cs.rng_mut())
                        } else {
                            stats.churn_leaves += 1;
                            rec.incr(Counter::ChurnLeaves);
                            m.leave_random(cs.rng_mut())
                        };
                        // The node's color mass leaves the tally; its
                        // stale state stays in `states[v]` for a
                        // possible `state=stale` rejoin.
                        counts[states[v] as usize] -= 1;
                        if queue.cancel(v as u32) {
                            stats.orphaned_events += 1;
                            rec.incr(Counter::OrphanedCommits);
                        }
                        if let Some(inbox) = inboxes.get_mut(v) {
                            let cleared = inbox.clear();
                            if cleared > 0 {
                                rec.add(Counter::InboxClearedChurn, cleared as u64);
                            }
                        }
                    }
                    Some(ChurnEvent::Rejoin) => {
                        // Fresh color drawn before the member re-enters
                        // the alive set, so copy-random-alive cannot
                        // copy the rejoiner's own stale color.
                        let fresh = if model.rejoin_fresh {
                            Some(draw_init_color(
                                model.init,
                                k_colors,
                                m,
                                &states,
                                cs.rng_mut(),
                            ))
                        } else {
                            None
                        };
                        let v = m.rejoin_random(cs.rng_mut());
                        if let Some(color) = fresh {
                            states[v] = color;
                        }
                        counts[states[v] as usize] += 1;
                        stats.churn_rejoins += 1;
                        rec.incr(Counter::ChurnRejoins);
                    }
                    Some(ChurnEvent::Join) => {
                        // Color drawn before the spare enters the alive
                        // set, so copy-random-alive cannot copy the
                        // arrival itself.
                        let color = draw_init_color(model.init, k_colors, m, &states, cs.rng_mut());
                        let v = m.join_spare(model.attach, cs.rng_mut());
                        states[v] = color;
                        counts[color as usize] += 1;
                        stats.churn_joins += 1;
                        rec.incr(Counter::ChurnJoins);
                    }
                    None => {}
                }
                // A departure can remove the last dissenter (and an
                // arrival can complete a fraction-based stop), so the
                // stop rule is evaluated after every membership change —
                // but never over an empty population.
                if m.alive_count() > 0 {
                    if let Some(winner) =
                        evaluate_stop(opts.stop, dynamics, &counts, initial_plurality)
                    {
                        stats.messages = streams.issued();
                        stats.final_alive = m.alive_count() as u64;
                        rec.phase_end(Phase::Run);
                        record_stop(
                            rec,
                            &queue,
                            &inboxes,
                            pushes_in_flight,
                            completed_ticks(draws, total),
                            stats.final_time,
                        );
                        rec.phase_start(Phase::Finalize);
                        let out = finish(
                            winner,
                            initial_plurality,
                            draws,
                            total,
                            trace,
                            &counts,
                            k_colors,
                            full,
                            stats,
                        );
                        rec.phase_end(Phase::Finalize);
                        return out;
                    }
                }
                cs.schedule(now, m);
            } else if fire_queue {
                let ev = queue.pop().expect("peeked event vanished");
                events += 1;
                stats.final_time = ev.time;
                match ev.kind {
                    EventKind::Commit { state } => {
                        rec.incr(Counter::CommitsApplied);
                        if apply(&mut states, &mut counts, ev.node as usize, state) {
                            if let Some(winner) =
                                evaluate_stop(opts.stop, dynamics, &counts, initial_plurality)
                            {
                                stats.messages = streams.issued();
                                stats.final_alive =
                                    membership.as_ref().map_or(n, Membership::alive_count) as u64;
                                rec.phase_end(Phase::Run);
                                record_stop(
                                    rec,
                                    &queue,
                                    &inboxes,
                                    pushes_in_flight,
                                    completed_ticks(draws, total),
                                    stats.final_time,
                                );
                                rec.phase_start(Phase::Finalize);
                                let out = finish(
                                    winner,
                                    initial_plurality,
                                    draws,
                                    total,
                                    trace,
                                    &counts,
                                    k_colors,
                                    full,
                                    stats,
                                );
                                rec.phase_end(Phase::Finalize);
                                return out;
                            }
                        }
                    }
                    EventKind::PushArrival { color } => {
                        if Rec::ENABLED {
                            pushes_in_flight -= 1;
                        }
                        if membership
                            .as_ref()
                            .is_some_and(|m| !m.is_alive(ev.node as usize))
                        {
                            // The target departed while the push was in
                            // flight: orphaned, never delivered.
                            stats.orphaned_events += 1;
                            rec.incr(Counter::OrphanedPushes);
                        } else {
                            stats.pushes_delivered += 1;
                            deliver_to_inbox(
                                &mut inboxes[ev.node as usize],
                                color,
                                ev.time,
                                &mut inbox_rng,
                                rec,
                                &mut stats,
                            );
                        }
                    }
                }
            } else {
                let (now, node) = next_act;
                let v = node as usize;
                events += 1;
                stats.final_time = now;
                // Clock draws — not applied activations — advance
                // parallel time: a dead node keeps its slot in the
                // superposed clock (Poisson thinning), so time flows at
                // the same rate however much of the population is down.
                draws += 1;
                if membership.as_ref().is_some_and(|m| !m.is_alive(v)) {
                    // A dead node's activation is a no-op.
                    rec.incr(Counter::DeadActivationsSkipped);
                } else {
                    stats.activations += 1;
                    rec.incr(Counter::Activations);
                    if Rec::ENABLED {
                        rec.observe(Hist::QueueDepth, queue.len() as u64);
                    }
                    if queue.cancel(node) {
                        stats.superseded_commits += 1;
                        rec.incr(Counter::SupersededCommits);
                    }
                    let own = states[v];

                    // Run the mode-specific exchange + update; `outcome` is
                    // the new state (None = starved push update) plus the
                    // slowest pull-leg delay gating the recolor commit.
                    let (outcome, max_extra) = match self.mode {
                        ExchangeMode::Pull => {
                            let mut sampler = GossipSampler {
                                topology,
                                states: &states,
                                node: v,
                                own,
                                now,
                                fstate: &mut fstate,
                                streams: &mut streams,
                                rec: &mut *rec,
                                membership: membership.as_ref(),
                                max_extra_ticks: 0.0,
                                sent: 0,
                                lost: 0,
                                delayed: 0,
                                dead_hits: 0,
                            };
                            let new = dynamics.node_update_core(
                                own,
                                &mut sampler,
                                &mut scratch,
                                &mut update_rng,
                            );
                            let (sent, lost, delayed) =
                                (sampler.sent, sampler.lost, sampler.delayed);
                            let max_extra = sampler.max_extra_ticks;
                            let dead_hits = sampler.dead_hits;
                            stats.lost_messages += lost;
                            stats.delayed_messages += delayed;
                            if dead_hits > 0 {
                                stats.dead_peer_samples += dead_hits;
                                rec.add(Counter::DeadPeerSamples, dead_hits);
                            }
                            if Rec::ENABLED {
                                rec.add(Counter::PullSent, sent);
                                rec.add(Counter::PullDelivered, sent - lost);
                                rec.add(Counter::PullLost, lost);
                                rec.add(Counter::PullDelayed, delayed);
                            }
                            (Some(new), max_extra)
                        }
                        ExchangeMode::Push => {
                            // The activation's one call: push own color out.
                            let mut dead_hits = 0u64;
                            let fate = next_push_fate(
                                topology,
                                membership.as_ref(),
                                &mut fstate,
                                now,
                                v,
                                &mut streams,
                                &mut dead_hits,
                            );
                            if dead_hits > 0 {
                                stats.dead_peer_samples += dead_hits;
                                rec.add(Counter::DeadPeerSamples, dead_hits);
                            }
                            rec.incr(Counter::PushSent);
                            match fate {
                                MessageFate::Lost { layer } => {
                                    rec.incr(Counter::PushLost);
                                    rec.incr(lost_counter(layer));
                                    stats.lost_messages += 1;
                                }
                                MessageFate::Delivered { peer } => {
                                    rec.incr(Counter::PushDelivered);
                                    stats.pushes_delivered += 1;
                                    deliver_to_inbox(
                                        &mut inboxes[peer],
                                        own,
                                        now,
                                        &mut inbox_rng,
                                        rec,
                                        &mut stats,
                                    );
                                }
                                MessageFate::Delayed { peer, extra_ticks } => {
                                    rec.incr(Counter::PushDelivered);
                                    rec.incr(Counter::PushDelayed);
                                    if Rec::ENABLED {
                                        rec.observe(Hist::DelayExtraFp, ticks_to_fp(extra_ticks));
                                        pushes_in_flight += 1;
                                    }
                                    stats.delayed_messages += 1;
                                    queue.push(
                                        now + extra_ticks,
                                        peer as u32,
                                        EventKind::PushArrival { color: own },
                                    );
                                }
                            }
                            // Expire overstayed colors before the update can
                            // serve them (no-op under non-TTL policies).
                            let expired = inboxes[v].purge_expired(now);
                            if expired > 0 {
                                rec.add(Counter::InboxExpiredTtl, expired as u64);
                            }
                            // Then try to update from the inbox.
                            let mut sampler = InboxSampler {
                                inbox: &inboxes[v],
                                cursor: 0,
                                own,
                                starved: false,
                            };
                            let new = dynamics.node_update_core(
                                own,
                                &mut sampler,
                                &mut scratch,
                                &mut update_rng,
                            );
                            let (starved, consumed) = (sampler.starved, sampler.cursor);
                            if starved {
                                // A starved update with a *full* inbox can
                                // never be satisfied: the rule draws more
                                // samples than the inbox can ever hold, and
                                // the trial would silently livelock until
                                // max_rounds.  Fail loudly instead.
                                assert!(
                                    inboxes[v].len() < crate::modes::INBOX_CAP,
                                    "dynamics '{}' draws more than INBOX_CAP = {} samples per \
                                 update; PUSH mode cannot serve it (use PULL or PUSH-PULL)",
                                    dynamics.name(),
                                    crate::modes::INBOX_CAP
                                );
                                stats.starved_updates += 1;
                                rec.incr(Counter::StarvedActivations);
                                (None, 0.0)
                            } else {
                                stats.inbox_served += consumed as u64;
                                rec.add(Counter::InboxServed, consumed as u64);
                                if Rec::ENABLED {
                                    for i in 0..consumed {
                                        if let Some((_, arrival)) = inboxes[v].peek_entry(i) {
                                            rec.observe(
                                                Hist::InboxStalenessFp,
                                                ticks_to_fp(now - arrival),
                                            );
                                        }
                                    }
                                }
                                inboxes[v].consume(consumed);
                                (Some(new), 0.0)
                            }
                        }
                        ExchangeMode::PushPull => {
                            instant_pushes.clear();
                            delayed_pushes.clear();
                            // Expire overstayed colors before the update can
                            // serve them (no-op under non-TTL policies).
                            let expired = inboxes[v].purge_expired(now);
                            if expired > 0 {
                                rec.add(Counter::InboxExpiredTtl, expired as u64);
                            }
                            let mut sampler = PushPullSampler {
                                topology,
                                states: &states,
                                node: v,
                                own,
                                now,
                                fstate: &mut fstate,
                                streams: &mut streams,
                                rec: &mut *rec,
                                membership: membership.as_ref(),
                                inbox: &inboxes[v],
                                cursor: 0,
                                instant_pushes: &mut instant_pushes,
                                delayed_pushes: &mut delayed_pushes,
                                max_extra_ticks: 0.0,
                                sent: 0,
                                pull_lost: 0,
                                push_lost: 0,
                                pull_delayed: 0,
                                push_delayed: 0,
                                inbox_served: 0,
                                dead_hits: 0,
                            };
                            let new = dynamics.node_update_core(
                                own,
                                &mut sampler,
                                &mut scratch,
                                &mut update_rng,
                            );
                            let max_extra = sampler.max_extra_ticks;
                            let consumed = sampler.cursor;
                            let served = sampler.inbox_served;
                            let sent = sampler.sent;
                            let (pull_lost, push_lost) = (sampler.pull_lost, sampler.push_lost);
                            let (pull_delayed, push_delayed) =
                                (sampler.pull_delayed, sampler.push_delayed);
                            let dead_hits = sampler.dead_hits;
                            stats.lost_messages += pull_lost + push_lost;
                            stats.delayed_messages += pull_delayed + push_delayed;
                            if dead_hits > 0 {
                                stats.dead_peer_samples += dead_hits;
                                rec.add(Counter::DeadPeerSamples, dead_hits);
                            }
                            if Rec::ENABLED {
                                rec.add(Counter::PullSent, sent);
                                rec.add(Counter::PushSent, sent);
                                rec.add(Counter::PullDelivered, sent - pull_lost);
                                rec.add(Counter::PushDelivered, sent - push_lost);
                                rec.add(Counter::PullLost, pull_lost);
                                rec.add(Counter::PushLost, push_lost);
                                rec.add(Counter::PullDelayed, pull_delayed);
                                rec.add(Counter::PushDelayed, push_delayed);
                            }
                            stats.inbox_served += served;
                            rec.add(Counter::InboxServed, served);
                            if Rec::ENABLED {
                                for i in 0..consumed {
                                    if let Some((_, arrival)) = inboxes[v].peek_entry(i) {
                                        rec.observe(
                                            Hist::InboxStalenessFp,
                                            ticks_to_fp(now - arrival),
                                        );
                                    }
                                }
                            }
                            inboxes[v].consume(consumed);
                            for &(peer, color) in instant_pushes.iter() {
                                stats.pushes_delivered += 1;
                                deliver_to_inbox(
                                    &mut inboxes[peer],
                                    color,
                                    now,
                                    &mut inbox_rng,
                                    rec,
                                    &mut stats,
                                );
                            }
                            for &(peer, color, extra) in delayed_pushes.iter() {
                                if Rec::ENABLED {
                                    pushes_in_flight += 1;
                                }
                                queue.push(
                                    now + extra,
                                    peer as u32,
                                    EventKind::PushArrival { color },
                                );
                            }
                            (Some(new), max_extra)
                        }
                    };

                    if let Some(new) = outcome {
                        if max_extra == 0.0 {
                            rec.incr(Counter::CommitsApplied);
                            if apply(&mut states, &mut counts, v, new) {
                                if let Some(winner) =
                                    evaluate_stop(opts.stop, dynamics, &counts, initial_plurality)
                                {
                                    stats.messages = streams.issued();
                                    stats.final_alive =
                                        membership.as_ref().map_or(n, Membership::alive_count)
                                            as u64;
                                    rec.phase_end(Phase::Run);
                                    record_stop(
                                        rec,
                                        &queue,
                                        &inboxes,
                                        pushes_in_flight,
                                        completed_ticks(draws, total),
                                        stats.final_time,
                                    );
                                    rec.phase_start(Phase::Finalize);
                                    let out = finish(
                                        winner,
                                        initial_plurality,
                                        draws,
                                        total,
                                        trace,
                                        &counts,
                                        k_colors,
                                        full,
                                        stats,
                                    );
                                    rec.phase_end(Phase::Finalize);
                                    return out;
                                }
                            }
                        } else {
                            queue.push(now + max_extra, node, EventKind::Commit { state: new });
                        }
                    }
                }

                next_act = clock.next(&mut sched_rng);

                // Tick boundary: `total` clock draws (dead-node no-ops
                // included) = one unit of parallel time.
                if draws.is_multiple_of(total as u64) {
                    ticks += 1;
                    if let Some(t) = trace.as_mut() {
                        t.record(ticks, &counts, k_colors, full);
                    }
                    if ticks >= opts.max_rounds {
                        break;
                    }
                }
            }
            if events >= max_events {
                break;
            }
        }

        stats.messages = streams.issued();
        stats.final_alive = membership.as_ref().map_or(n, Membership::alive_count) as u64;
        rec.phase_end(Phase::Run);
        record_stop(
            rec,
            &queue,
            &inboxes,
            pushes_in_flight,
            completed_ticks(draws, total),
            stats.final_time,
        );
        let result = TrialResult {
            rounds: completed_ticks(draws, total),
            reason: StopReason::MaxRounds,
            winner: None,
            initial_plurality,
            success: false,
            trace,
        };
        (result, stats)
    }
}

/// The per-layer loss-attribution counter for a dropped message or leg.
fn lost_counter(layer: DropLayer) -> Counter {
    match layer {
        DropLayer::Baseline => Counter::LostBaseline,
        DropLayer::PerEdge => Counter::LostPerEdge,
        DropLayer::Window => Counter::LostWindow,
        DropLayer::GeChain => Counter::LostGeChain,
        DropLayer::Outage => Counter::LostOutage,
        DropLayer::Partition => Counter::LostPartition,
        DropLayer::DeadPeer => Counter::LostDeadPeer,
    }
}

/// Offer a pushed color to `inbox` at time `now`, with full admission
/// accounting.  `rng` is the dedicated inbox stream — consumed only by
/// the random-replace policy, so the default policies stay bit-identical
/// to earlier PRs.
fn deliver_to_inbox<Rec: Recorder>(
    inbox: &mut Inbox,
    color: u32,
    now: f64,
    rng: &mut Xoshiro256PlusPlus,
    rec: &mut Rec,
    stats: &mut GossipStats,
) {
    // Expired colors leave before the offer so they neither inflate the
    // occupancy observation nor absorb the eviction.
    let expired = inbox.purge_expired(now);
    if expired > 0 {
        rec.add(Counter::InboxExpiredTtl, expired as u64);
    }
    rec.incr(Counter::InboxOffered);
    if Rec::ENABLED {
        rec.observe(Hist::InboxOccupancy, inbox.len() as u64);
    }
    let admit = inbox.receive(color, now, rng);
    match admit {
        InboxAdmit::Accepted => rec.incr(Counter::InboxAccepted),
        InboxAdmit::EvictedOldest => {
            rec.incr(Counter::InboxAccepted);
            rec.incr(Counter::InboxEvictedOldest);
        }
        InboxAdmit::RejectedNewest => rec.incr(Counter::InboxEvictedNewest),
        InboxAdmit::EvictedRandom => {
            rec.incr(Counter::InboxAccepted);
            rec.incr(Counter::InboxEvictedRandom);
        }
    }
    if admit.dropped() {
        stats.inbox_dropped += 1;
    }
}

/// Stop-time telemetry: lifetime queue accounting, unresolved residuals
/// (live events, buffered colors, in-flight pushes) and the final clock.
fn record_stop<Rec: Recorder>(
    rec: &mut Rec,
    queue: &EventQueue,
    inboxes: &[Inbox],
    pushes_in_flight: u64,
    rounds: u64,
    final_time: f64,
) {
    if !Rec::ENABLED {
        return;
    }
    rec.add(Counter::QueuePushed, queue.pushed());
    rec.add(Counter::QueueSkippedStale, queue.skipped_stale());
    rec.gauge_set(Gauge::QueueLenAtStop, queue.len() as u64);
    rec.gauge_set(
        Gauge::InboxResidentAtStop,
        inboxes.iter().map(|b| b.len() as u64).sum(),
    );
    rec.gauge_set(Gauge::PushInFlightAtStop, pushes_in_flight);
    rec.gauge_set(Gauge::CompletedTicks, rounds);
    rec.gauge_set(Gauge::FinalTimeFp, ticks_to_fp(final_time));
}

/// Draw the fate of a PUSH-mode send from node `v` (loss, peer,
/// delay — the same per-message stream layout as a PULL request).
/// With a churn `membership`, the peer draw rejects dead peers within
/// the redraw budget; an exhausted budget loses the send to the
/// `dead_peer` layer.
fn next_push_fate<T: TopologyCore>(
    topology: &T,
    membership: Option<&Membership>,
    fstate: &mut FailureState<'_>,
    now: f64,
    v: usize,
    streams: &mut MessageStreams,
    dead_hits: &mut u64,
) -> MessageFate {
    match membership {
        None => streams.next_fate_in(fstate, now, v, |mrng| {
            topology.sample_neighbor_edge_core(v, mrng)
        }),
        Some(m) => {
            let mut hits = 0u64;
            let fate = streams.next_fate_in(fstate, now, v, |mrng| {
                m.sample_alive_neighbor_edge(topology, v, &mut hits, mrng)
            });
            *dead_hits += hits;
            if hits >= MAX_DEAD_REDRAWS {
                MessageFate::Lost {
                    layer: DropLayer::DeadPeer,
                }
            } else {
                fate
            }
        }
    }
}

/// Initial color for an arriving node (a fresh join, or a rejoin with
/// `state=fresh`), drawn from the churn stream.  Copy-random-alive falls
/// back to a fresh uniform draw when nobody is alive to copy from.
fn draw_init_color(
    init: InitPolicy,
    k_colors: usize,
    membership: &Membership,
    states: &[u32],
    rng: &mut Xoshiro256PlusPlus,
) -> u32 {
    match init {
        InitPolicy::FreshUniform => rng.gen_range(0..k_colors as u32),
        InitPolicy::CopyRandomAlive => {
            if membership.alive_count() == 0 {
                rng.gen_range(0..k_colors as u32)
            } else {
                states[membership.random_alive(rng)]
            }
        }
        // Lifted undecided state = index `k_colors` (checked against the
        // dynamics at setup).
        InitPolicy::Undecided => k_colors as u32,
    }
}

/// Parallel time consumed by `draws` activation-clock draws over a
/// population of `total` clock slots, in whole ticks (a partial tick
/// counts as one).  Without churn `draws` = applied activations and
/// `total` = `n`.
fn completed_ticks(draws: u64, total: usize) -> u64 {
    draws.div_ceil(total as u64)
}

/// Recolor node `v`; returns whether the configuration changed.
#[inline]
fn apply(states: &mut [u32], counts: &mut [u64], v: usize, new: u32) -> bool {
    let old = states[v];
    if old == new {
        return false;
    }
    counts[old as usize] -= 1;
    counts[new as usize] += 1;
    states[v] = new;
    true
}

#[allow(clippy::too_many_arguments)]
fn finish(
    winner: usize,
    initial_plurality: usize,
    draws: u64,
    total: usize,
    mut trace: Option<Trace>,
    counts: &[u64],
    k_colors: usize,
    full: bool,
    stats: GossipStats,
) -> (TrialResult, GossipStats) {
    let ticks = completed_ticks(draws, total);
    if let Some(t) = trace.as_mut() {
        // The trace must end with the stopping configuration at index
        // `ticks` (the same contract as the synchronous engines).  If a
        // record for this tick already exists it is stale — it was taken
        // at the tick boundary, before a delayed commit changed the
        // counts — so replace it.
        if t.rounds.last().map(|s| s.round) == Some(ticks) {
            t.rounds.pop();
            if full {
                t.full_states.pop();
            }
        }
        t.record(ticks, counts, k_colors, full);
    }
    let result = TrialResult {
        rounds: ticks,
        reason: StopReason::Stopped,
        winner: Some(winner),
        initial_plurality,
        success: winner == initial_plurality,
        trace,
    };
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_core::{builders, ThreeMajority, UndecidedState, Voter};
    use plurality_engine::StopRule;
    use plurality_topology::{ring, Clique};

    fn clique_engine(n: usize) -> (Clique, Configuration) {
        (
            Clique::new(n),
            builders::biased(n as u64, 4, (n / 3) as u64),
        )
    }

    const ALL_MODES: [ExchangeMode; 3] = [
        ExchangeMode::Pull,
        ExchangeMode::Push,
        ExchangeMode::PushPull,
    ];

    #[test]
    fn converges_on_clique_with_bias() {
        let (clique, cfg) = clique_engine(2_000);
        let engine = GossipEngine::new(&clique);
        let d = ThreeMajority::new();
        let mut wins = 0;
        for trial in 0..5 {
            let r = engine.run(
                &d,
                &cfg,
                Placement::Shuffled,
                &RunOptions::with_max_rounds(5_000),
                1000 + trial,
            );
            assert_eq!(r.reason, StopReason::Stopped);
            if r.success {
                wins += 1;
            }
        }
        assert!(wins >= 4, "won only {wins}/5");
    }

    #[test]
    fn every_mode_converges_on_clique_with_bias() {
        let (clique, cfg) = clique_engine(1_500);
        let d = ThreeMajority::new();
        for mode in ALL_MODES {
            let engine = GossipEngine::new(&clique).with_mode(mode);
            let r = engine.run(
                &d,
                &cfg,
                Placement::Shuffled,
                &RunOptions::with_max_rounds(20_000),
                2024,
            );
            assert_eq!(
                r.reason,
                StopReason::Stopped,
                "{} did not stop",
                mode.name()
            );
            assert!(r.success, "{} lost the plurality", mode.name());
        }
    }

    #[test]
    fn poisson_scheduler_converges() {
        let (clique, cfg) = clique_engine(1_500);
        let engine = GossipEngine::new(&clique).with_scheduler(Scheduler::Poisson);
        let r = engine.run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(5_000),
            42,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert!(r.success);
    }

    #[test]
    fn deterministic_same_seed_same_trajectory() {
        let (clique, cfg) = clique_engine(800);
        let engine = GossipEngine::new(&clique)
            .with_scheduler(Scheduler::Poisson)
            .with_network(NetworkConfig::new(0.3, 0.05));
        let opts = RunOptions::with_max_rounds(5_000).traced();
        let d = ThreeMajority::new();
        let (a, sa) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 9);
        let (b, sb) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 9);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.winner, b.winner);
        assert_eq!(sa, sb);
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        assert_eq!(ta.rounds.len(), tb.rounds.len());
        for (x, y) in ta.rounds.iter().zip(&tb.rounds) {
            assert_eq!(x, y, "trajectories must be identical");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (clique, cfg) = clique_engine(800);
        let engine = GossipEngine::new(&clique);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(5_000);
        let (_, sa) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 1);
        let (_, sb) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 2);
        assert_ne!(
            (sa.activations, sa.messages),
            (sb.activations, sb.messages),
            "distinct seeds should yield distinct trajectories"
        );
    }

    #[test]
    fn ideal_network_issues_no_loss_or_delay() {
        let (clique, cfg) = clique_engine(500);
        let engine = GossipEngine::new(&clique);
        let (r, stats) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(5_000),
            3,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert_eq!(stats.lost_messages, 0);
        assert_eq!(stats.delayed_messages, 0);
        assert_eq!(stats.superseded_commits, 0);
        assert_eq!(
            stats.messages,
            3 * stats.activations,
            "3-majority pulls 3 samples"
        );
    }

    #[test]
    fn push_mode_sends_one_message_per_activation() {
        let (clique, cfg) = clique_engine(600);
        let engine = GossipEngine::new(&clique).with_mode(ExchangeMode::Push);
        let (r, stats) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(50_000),
            21,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert_eq!(stats.messages, stats.activations, "one push per activation");
        assert!(stats.starved_updates > 0, "early updates must starve");
        // Every completed 3-majority update consumed 3 inbox colors.
        assert_eq!(stats.inbox_served % 3, 0);
        assert!(stats.inbox_served > 0);
    }

    #[test]
    fn push_pull_mode_saves_fresh_calls() {
        let (clique, cfg) = clique_engine(900);
        let engine = GossipEngine::new(&clique).with_mode(ExchangeMode::PushPull);
        let (r, stats) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(20_000),
            22,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert!(r.success);
        // Each activation draws 3 samples; inbox-served samples need no
        // fresh exchange, so traffic sits strictly between 0 and 3/act.
        assert_eq!(stats.messages + stats.inbox_served, 3 * stats.activations);
        assert!(stats.inbox_served > 0, "push legs never got consumed");
        assert!(stats.pushes_delivered > 0);
    }

    #[test]
    fn heterogeneous_rates_accepted_by_both_schedulers() {
        let (clique, cfg) = clique_engine(400);
        let mut rates = vec![1.0; 400];
        for r in rates.iter_mut().take(200) {
            *r = 5.0;
        }
        for scheduler in [Scheduler::Sequential, Scheduler::Poisson] {
            let engine = GossipEngine::new(&clique)
                .with_scheduler(scheduler)
                .with_node_rates(rates.clone());
            let r = engine.run(
                &ThreeMajority::new(),
                &cfg,
                Placement::Shuffled,
                &RunOptions::with_max_rounds(20_000),
                33,
            );
            assert_eq!(r.reason, StopReason::Stopped, "{}", scheduler.name());
            assert!(r.success, "{}", scheduler.name());
        }
    }

    #[test]
    #[should_panic(expected = "one activation rate per node")]
    fn rate_vector_length_checked_against_topology() {
        let clique = Clique::new(10);
        let _ = GossipEngine::new(&clique).with_node_rates(vec![1.0; 9]);
    }

    #[test]
    fn lossy_network_still_converges_and_counts() {
        let (clique, cfg) = clique_engine(1_000);
        let engine = GossipEngine::new(&clique).with_network(NetworkConfig::new(0.0, 0.2));
        let (r, stats) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(10_000),
            5,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert!(stats.lost_messages > 0);
        let rate = stats.lost_messages as f64 / stats.messages as f64;
        assert!((rate - 0.2).abs() < 0.05, "loss rate {rate}");
    }

    #[test]
    fn delayed_network_produces_delays() {
        let (clique, cfg) = clique_engine(1_000);
        let engine = GossipEngine::new(&clique).with_network(NetworkConfig::new(0.5, 0.0));
        let (r, stats) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(10_000),
            6,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert!(stats.delayed_messages > 0);
        assert!(r.success);
    }

    #[test]
    fn delayed_push_legs_arrive_late_but_arrive() {
        let (clique, cfg) = clique_engine(700);
        for mode in [ExchangeMode::Push, ExchangeMode::PushPull] {
            let engine = GossipEngine::new(&clique)
                .with_mode(mode)
                .with_network(NetworkConfig::new(0.6, 0.0));
            let (r, stats) = engine.run_detailed(
                &ThreeMajority::new(),
                &cfg,
                Placement::Shuffled,
                &RunOptions::with_max_rounds(50_000),
                27,
            );
            assert_eq!(r.reason, StopReason::Stopped, "{}", mode.name());
            assert!(stats.delayed_messages > 0, "{}", mode.name());
            assert!(stats.pushes_delivered > 0, "{}", mode.name());
        }
    }

    #[test]
    fn max_rounds_reported() {
        // Balanced two-color voter on a big clique will not absorb fast.
        let clique = Clique::new(10_000);
        let cfg = builders::biased(10_000, 2, 2);
        let engine = GossipEngine::new(&clique);
        let r = engine.run(
            &Voter,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(3),
            7,
        );
        assert_eq!(r.reason, StopReason::MaxRounds);
        assert_eq!(r.rounds, 3);
        assert_eq!(r.winner, None);
    }

    #[test]
    fn max_events_caps_work() {
        let (clique, cfg) = clique_engine(1_000);
        let engine = GossipEngine::new(&clique);
        let opts = RunOptions::with_max_rounds(10_000).with_max_events(500);
        let (r, stats) =
            engine.run_detailed(&ThreeMajority::new(), &cfg, Placement::Shuffled, &opts, 8);
        assert_eq!(r.reason, StopReason::MaxRounds);
        assert!(stats.activations <= 500);
    }

    #[test]
    fn already_monochromatic_stops_at_zero() {
        let clique = Clique::new(100);
        let cfg = Configuration::new(vec![100, 0]);
        let engine = GossipEngine::new(&clique);
        let r = engine.run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::default(),
            1,
        );
        assert_eq!(r.rounds, 0);
        assert_eq!(r.winner, Some(0));
    }

    #[test]
    fn mplurality_stop_rule_respected() {
        let (clique, cfg) = clique_engine(2_000);
        let engine = GossipEngine::new(&clique);
        let opts = RunOptions {
            stop: StopRule::MPlurality(50),
            ..RunOptions::with_max_rounds(10_000)
        };
        let full = engine.run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(10_000),
            11,
        );
        let early = engine.run(&ThreeMajority::new(), &cfg, Placement::Shuffled, &opts, 11);
        assert!(early.rounds <= full.rounds);
        assert!(early.success);
    }

    #[test]
    fn undecided_dynamics_supported() {
        let clique = Clique::new(1_500);
        let cfg = builders::biased(1_500, 3, 500);
        let engine = GossipEngine::new(&clique);
        let r = engine.run(
            &UndecidedState::new(3),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(20_000),
            13,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert!(r.success);
    }

    #[test]
    fn voter_push_matches_classic_push_voter() {
        // 1-sample voter under push: every delivered color is adopted at
        // the receiver's next activation — the classic push voter model
        // absorbs on a biased clique.  Inbox staleness low-pass filters
        // the voter's fluctuations, so absorption is much slower than
        // classic pull voter — keep n small.
        let clique = Clique::new(100);
        let cfg = builders::biased(100, 2, 25);
        let engine = GossipEngine::new(&clique).with_mode(ExchangeMode::Push);
        let r = engine.run(
            &Voter,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(200_000),
            15,
        );
        assert_eq!(r.reason, StopReason::Stopped, "push voter must absorb");
    }

    #[test]
    fn runs_on_sparse_topology() {
        let g = ring(301);
        let cfg = builders::biased(301, 2, 101);
        let engine = GossipEngine::new(&g);
        let r = engine.run(
            &Voter,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(200_000),
            17,
        );
        assert_eq!(r.reason, StopReason::Stopped, "voter on a ring must absorb");
    }

    #[test]
    fn trace_ends_with_the_stopping_configuration() {
        // Regression: the final trace entry must reflect the absorbed
        // state and carry index == rounds, including when absorption
        // lands exactly on a tick boundary or a stale boundary record
        // was taken before a delayed commit finished the run.
        for seed in 0..20 {
            for network in [NetworkConfig::default(), NetworkConfig::new(0.6, 0.05)] {
                let clique = Clique::new(200);
                let cfg = builders::biased(200, 3, 80);
                let engine = GossipEngine::new(&clique).with_network(network);
                let r = engine.run(
                    &ThreeMajority::new(),
                    &cfg,
                    Placement::Shuffled,
                    &RunOptions::with_max_rounds(10_000).traced(),
                    seed,
                );
                assert_eq!(r.reason, StopReason::Stopped, "seed {seed}");
                let trace = r.trace.unwrap();
                let last = trace.rounds.last().unwrap();
                assert_eq!(last.round, r.rounds, "seed {seed}: trace index mismatch");
                assert_eq!(
                    last.minority_mass, 0,
                    "seed {seed}: final trace entry is not the absorbed state"
                );
                // Tick indices strictly increase (no duplicate entries).
                for w in trace.rounds.windows(2) {
                    assert!(w[0].round < w[1].round, "seed {seed}: duplicate tick");
                }
            }
        }
    }

    #[test]
    fn trace_counts_match_population() {
        for mode in ALL_MODES {
            let (clique, cfg) = clique_engine(900);
            let engine = GossipEngine::new(&clique)
                .with_mode(mode)
                .with_network(NetworkConfig::new(0.4, 0.1));
            let r = engine.run(
                &ThreeMajority::new(),
                &cfg,
                Placement::Shuffled,
                &RunOptions::with_max_rounds(10_000).traced(),
                19,
            );
            let trace = r.trace.unwrap();
            assert!(!trace.rounds.is_empty());
            for s in &trace.rounds {
                assert_eq!(
                    s.plurality_count + s.minority_mass + s.extra_state_mass,
                    900,
                    "{} tick {}",
                    mode.name(),
                    s.round
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "more than INBOX_CAP")]
    fn push_mode_rejects_rules_drawing_more_samples_than_the_inbox_holds() {
        // h-plurality with h > INBOX_CAP can never complete a push-served
        // update; the engine must fail loudly instead of livelocking.
        let clique = Clique::new(200);
        let cfg = builders::biased(200, 3, 50);
        let engine = GossipEngine::new(&clique).with_mode(ExchangeMode::Push);
        let _ = engine.run(
            &plurality_core::HPlurality::new(crate::modes::INBOX_CAP + 1),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(1_000),
            5,
        );
    }

    #[test]
    fn per_edge_fixed_model_is_bit_identical_to_uniform_network() {
        // The degenerate-case contract at engine level: a per-edge model
        // whose distributions are Fixed reduces to the plain uniform
        // NetworkConfig, event for event.
        use crate::failure::{EdgeDists, FailureModel, ParamDist};
        let (clique, cfg) = clique_engine(700);
        let net = NetworkConfig::new(0.4, 0.1);
        let model = FailureModel::uniform(NetworkConfig::default()).with_per_edge(EdgeDists {
            loss: ParamDist::Fixed(0.1),
            delay: ParamDist::Fixed(0.4),
        });
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(10_000).traced();
        for mode in ALL_MODES {
            let uniform = GossipEngine::new(&clique).with_mode(mode).with_network(net);
            let modeled = GossipEngine::new(&clique)
                .with_mode(mode)
                .with_failure_model(model.clone());
            let (ra, sa) = uniform.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 77);
            let (rb, sb) = modeled.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 77);
            assert_eq!(ra.rounds, rb.rounds, "{}", mode.name());
            assert_eq!(ra.winner, rb.winner, "{}", mode.name());
            assert_eq!(sa, sb, "{}: stats diverged", mode.name());
        }
    }

    #[test]
    fn gilbert_elliott_model_converges_with_bursty_losses() {
        use crate::failure::FailureModel;
        let (clique, cfg) = clique_engine(1_000);
        let model =
            FailureModel::parse("ge:up=2,down=2,loss=0.8", NetworkConfig::default()).unwrap();
        for mode in ALL_MODES {
            let engine = GossipEngine::new(&clique)
                .with_mode(mode)
                .with_failure_model(model.clone());
            let (r, stats) = engine.run_detailed(
                &ThreeMajority::new(),
                &cfg,
                Placement::Shuffled,
                &RunOptions::with_max_rounds(100_000),
                61,
            );
            assert_eq!(r.reason, StopReason::Stopped, "{}", mode.name());
            assert!(stats.lost_messages > 0, "{}: no bursty losses", mode.name());
        }
    }

    #[test]
    fn partition_window_freezes_cross_traffic_then_recovers() {
        use crate::failure::FailureModel;
        let (clique, cfg) = clique_engine(800);
        // Total cross-cut silence for the first 3 ticks; the baseline is
        // otherwise ideal, so after the partition heals the run must
        // still converge and win.
        let model =
            FailureModel::parse("partition:parts=2,0..3", NetworkConfig::default()).unwrap();
        let engine = GossipEngine::new(&clique).with_failure_model(model);
        let (r, stats) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(50_000),
            62,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert!(r.success);
        assert!(
            stats.lost_messages > 0,
            "cross-cut traffic should have been silenced"
        );
        assert!(r.rounds >= 3, "cannot finish inside the partition window");
    }

    #[test]
    fn total_loss_window_stalls_exactly_until_it_ends() {
        use crate::failure::FailureModel;
        let clique = Clique::new(300);
        let cfg = builders::biased(300, 3, 100);
        let model =
            FailureModel::parse("window:0..2,loss=1,delay=0", NetworkConfig::default()).unwrap();
        let engine = GossipEngine::new(&clique).with_failure_model(model);
        let r = engine.run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(20_000).traced(),
            63,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        let trace = r.trace.unwrap();
        // While every message is lost, 3-majority samples only its own
        // color and never recolors: ticks 0..2 are frozen.
        for s in trace.rounds.iter().take_while(|s| s.round < 2) {
            assert_eq!(
                s.plurality_count,
                cfg.counts()[0],
                "state drifted inside the total-loss window (tick {})",
                s.round
            );
        }
        assert!(r.rounds > 2, "convergence cannot predate the window end");
    }

    #[test]
    fn outage_model_runs_and_counts_losses() {
        use crate::failure::FailureModel;
        let (clique, cfg) = clique_engine(800);
        let model =
            FailureModel::parse("outage:frac=0.3,up=2,down=2", NetworkConfig::default()).unwrap();
        let engine = GossipEngine::new(&clique).with_failure_model(model);
        let (r, stats) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(50_000),
            64,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert!(stats.lost_messages > 0, "down nodes must lose traffic");
    }

    #[test]
    fn failure_model_trials_are_deterministic() {
        use crate::failure::FailureModel;
        let (clique, cfg) = clique_engine(600);
        let model = FailureModel::parse(
            "edge:loss=0..0.3;ge:up=3,down=1,loss=0.9;outage:frac=0.2,up=4,down=1",
            NetworkConfig::new(0.2, 0.02),
        )
        .unwrap();
        for scheduler in [Scheduler::Sequential, Scheduler::Poisson] {
            let engine = GossipEngine::new(&clique)
                .with_scheduler(scheduler)
                .with_failure_model(model.clone());
            let opts = RunOptions::with_max_rounds(50_000);
            let d = ThreeMajority::new();
            let (ra, sa) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 65);
            let (rb, sb) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 65);
            assert_eq!(ra.rounds, rb.rounds, "{}", scheduler.name());
            assert_eq!(sa, sb, "{}", scheduler.name());
            let (_, sc) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 66);
            assert_ne!(sa, sc, "distinct seeds must differ");
        }
    }

    #[test]
    fn drop_newest_inbox_policy_changes_push_trajectories() {
        // Half the nodes push 8× as often: slow receivers overflow their
        // caps, so the overflow policy is actually exercised.
        let (clique, cfg) = clique_engine(600);
        let rates: Vec<f64> = (0..600)
            .map(|v| if v % 2 == 0 { 8.0 } else { 1.0 })
            .collect();
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(400_000);
        let engine = |policy| {
            GossipEngine::new(&clique)
                .with_mode(ExchangeMode::Push)
                .with_node_rates(rates.clone())
                .with_inbox_policy(policy)
        };
        let oldest = engine(InboxPolicy::DropOldest);
        assert_eq!(
            GossipEngine::new(&clique).inbox_policy(),
            InboxPolicy::DropOldest,
            "drop-oldest must stay the default"
        );
        let newest = engine(InboxPolicy::DropNewest);
        let (ra, sa) = oldest.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 67);
        let (rb, sb) = newest.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 67);
        assert_eq!(ra.reason, StopReason::Stopped);
        assert_eq!(
            rb.reason,
            StopReason::Stopped,
            "drop-newest must still converge"
        );
        assert!(sa.inbox_dropped > 0, "cap never engaged for drop-oldest");
        assert!(sb.inbox_dropped > 0, "cap never engaged for drop-newest");
        assert_ne!(sa, sb, "policies must produce different processes");
    }

    #[test]
    fn random_replace_and_ttl_policies_run_and_differ() {
        // Same rate-skewed overload as the drop-newest test: the cap
        // engages, so every policy actually exercises its branch.
        let (clique, cfg) = clique_engine(600);
        let rates: Vec<f64> = (0..600)
            .map(|v| if v % 2 == 0 { 8.0 } else { 1.0 })
            .collect();
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(400_000).traced();
        let run = |policy| {
            GossipEngine::new(&clique)
                .with_mode(ExchangeMode::Push)
                .with_node_rates(rates.clone())
                .with_inbox_policy(policy)
                .run_detailed(&d, &cfg, Placement::Shuffled, &opts, 67)
        };
        let (ro, so) = run(InboxPolicy::DropOldest);
        let (rr, sr) = run(InboxPolicy::RandomReplace);
        let (rt, st) = run(InboxPolicy::Ttl { ticks: 0.75 });
        for (r, s, name) in [(&ro, &so, "drop-oldest"), (&rr, &sr, "random-replace")] {
            assert_eq!(r.reason, StopReason::Stopped, "{name}");
            assert!(s.inbox_dropped > 0, "{name}: cap never engaged");
        }
        assert_eq!(rt.reason, StopReason::Stopped, "ttl must still converge");
        // Eviction policy changes inbox *contents*, never lengths, and in
        // PUSH mode the aggregate stats are schedule/length functionals —
        // so the distinguishing observable is the color trajectory.
        let (to, tr) = (ro.trace.unwrap(), rr.trace.unwrap());
        assert_ne!(
            to.rounds, tr.rounds,
            "random-replace must change the color trajectory"
        );
        // TTL purging changes inbox lengths too, so its stats diverge.
        assert_ne!(so, st, "ttl must change the process");
        assert_ne!(sr, st, "random-replace and ttl must differ");
    }

    #[test]
    fn recording_does_not_perturb_the_trajectory() {
        // run_recorded with a live MetricsRecorder must reproduce the
        // NoopRecorder trial bit for bit: recording consumes no
        // randomness and never branches the simulation.
        use crate::failure::FailureModel;
        use plurality_telemetry::MetricsRecorder;
        let (clique, cfg) = clique_engine(500);
        let model = FailureModel::parse(
            "edge:loss=0..0.3;ge:up=3,down=1,loss=0.9",
            NetworkConfig::new(0.2, 0.1),
        )
        .unwrap();
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(50_000).traced();
        for mode in ALL_MODES {
            let engine = GossipEngine::new(&clique)
                .with_mode(mode)
                .with_failure_model(model.clone());
            let (ra, sa) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 91);
            let mut rec = MetricsRecorder::new();
            let (rb, sb) = engine.run_recorded(&d, &cfg, Placement::Shuffled, &opts, 91, &mut rec);
            assert_eq!(sa, sb, "{}: stats diverged under recording", mode.name());
            assert_eq!(ra.rounds, rb.rounds, "{}", mode.name());
            assert_eq!(ra.winner, rb.winner, "{}", mode.name());
            let (ta, tb) = (ra.trace.unwrap(), rb.trace.unwrap());
            assert_eq!(ta.rounds, tb.rounds, "{}: traces diverged", mode.name());
            assert!(rec.counter(Counter::Activations) > 0);
        }
    }

    /// The exact conservation laws documented on [`Counter`], checked
    /// against both the recorder's own books and the engine's legacy
    /// [`GossipStats`] ground truth.
    fn assert_reconciles(
        rec: &plurality_telemetry::MetricsRecorder,
        stats: &GossipStats,
        label: &str,
    ) {
        let c = |x| rec.counter(x);
        assert_eq!(
            c(Counter::PullSent),
            c(Counter::PullDelivered) + c(Counter::PullLost),
            "{label}: pull flow"
        );
        assert_eq!(
            c(Counter::PushSent),
            c(Counter::PushDelivered) + c(Counter::PushLost),
            "{label}: push flow"
        );
        let layered: u64 = DropLayer::ALL.iter().map(|&l| c(lost_counter(l))).sum();
        assert_eq!(
            c(Counter::PullLost) + c(Counter::PushLost),
            layered,
            "{label}: loss attribution"
        );
        assert_eq!(
            c(Counter::PullLost) + c(Counter::PushLost),
            stats.lost_messages,
            "{label}: lost vs stats"
        );
        assert_eq!(
            c(Counter::PullDelayed) + c(Counter::PushDelayed),
            stats.delayed_messages,
            "{label}: delayed vs stats"
        );
        assert_eq!(
            c(Counter::InboxOffered),
            c(Counter::InboxAccepted) + c(Counter::InboxEvictedNewest),
            "{label}: inbox admission"
        );
        assert_eq!(
            c(Counter::InboxAccepted),
            c(Counter::InboxServed)
                + c(Counter::InboxExpiredTtl)
                + c(Counter::InboxEvictedOldest)
                + c(Counter::InboxEvictedRandom)
                + rec.gauge(Gauge::InboxResidentAtStop),
            "{label}: inbox exit"
        );
        assert_eq!(
            c(Counter::PushDelivered),
            c(Counter::InboxOffered) + rec.gauge(Gauge::PushInFlightAtStop),
            "{label}: push delivery"
        );
        assert_eq!(
            c(Counter::InboxOffered),
            stats.pushes_delivered,
            "{label}: offers vs stats"
        );
        assert_eq!(
            c(Counter::InboxEvictedOldest)
                + c(Counter::InboxEvictedNewest)
                + c(Counter::InboxEvictedRandom),
            stats.inbox_dropped,
            "{label}: evictions vs stats"
        );
        assert_eq!(c(Counter::Activations), stats.activations, "{label}");
        assert_eq!(c(Counter::InboxServed), stats.inbox_served, "{label}");
        assert_eq!(
            c(Counter::StarvedActivations),
            stats.starved_updates,
            "{label}"
        );
        assert_eq!(
            c(Counter::SupersededCommits),
            stats.superseded_commits,
            "{label}"
        );
    }

    #[test]
    fn counters_reconcile_across_modes_and_failure_layers() {
        use crate::failure::FailureModel;
        use plurality_telemetry::MetricsRecorder;
        let (clique, cfg) = clique_engine(500);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(50_000);
        let models = [
            FailureModel::uniform(NetworkConfig::new(0.3, 0.25)),
            FailureModel::parse(
                "edge:loss=0..0.4;window:0..2,loss=0.9,delay=0.1;ge:up=2,down=2,loss=0.8;\
                 outage:frac=0.2,up=3,down=1;partition:parts=2,1..3",
                NetworkConfig::new(0.2, 0.05),
            )
            .unwrap(),
        ];
        for model in &models {
            for mode in ALL_MODES {
                let engine = GossipEngine::new(&clique)
                    .with_mode(mode)
                    .with_failure_model(model.clone());
                let mut rec = MetricsRecorder::new();
                let (_, stats) =
                    engine.run_recorded(&d, &cfg, Placement::Shuffled, &opts, 93, &mut rec);
                let label = format!("{}/{}", mode.name(), model.label());
                assert_reconciles(&rec, &stats, &label);
                // Per-mode message-accounting identities.
                match mode {
                    ExchangeMode::Pull => {
                        assert_eq!(rec.counter(Counter::PullSent), stats.messages, "{label}");
                        assert_eq!(rec.counter(Counter::PushSent), 0, "{label}");
                    }
                    ExchangeMode::Push => {
                        assert_eq!(rec.counter(Counter::PushSent), stats.messages, "{label}");
                        assert_eq!(rec.counter(Counter::PullSent), 0, "{label}");
                    }
                    ExchangeMode::PushPull => {
                        assert_eq!(rec.counter(Counter::PullSent), stats.messages, "{label}");
                        assert_eq!(rec.counter(Counter::PushSent), stats.messages, "{label}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "match topology size")]
    fn size_mismatch_rejected() {
        let clique = Clique::new(10);
        let cfg = builders::biased(11, 2, 3);
        let _ = GossipEngine::new(&clique).run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::default(),
            1,
        );
    }
}
