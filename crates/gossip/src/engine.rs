//! The asynchronous gossip engine.
//!
//! One trial is a deterministic function of `(seed, scheduler, network,
//! topology, dynamics, placement)`.  PRNG stream layout (per trial seed,
//! all streams derived with `plurality_sampling::stream_rng`):
//!
//! | stream | used for |
//! |---|---|
//! | 0 | initial placement shuffle (same convention as `AgentEngine`) |
//! | 1 | the scheduler (node choices / exponential waiting times) |
//! | 2 | rule-internal randomness passed to `Dynamics::node_update` |
//! | 3 | master for per-message streams (see [`crate::network`]) |

use crate::network::{MessageFate, MessageStreams, NetworkConfig};
use crate::scheduler::{exp1, EventKind, EventQueue, Scheduler};
use plurality_core::{Configuration, Dynamics, NodeScratch, StateSampler};
use plurality_engine::{
    evaluate_stop, layout_initial_states, unique_initial_plurality, Placement, RunOptions,
    StopReason, Trace, TraceLevel, TrialResult,
};
use plurality_sampling::{derive_stream, stream_rng};
use plurality_topology::Topology;
use rand::{Rng, RngCore};

// Stream 0 is the placement shuffle, consumed inside
// `plurality_engine::layout_initial_states`.
const STREAM_SCHEDULER: u64 = 1;
const STREAM_UPDATE: u64 = 2;
const STREAM_MESSAGES: u64 = 3;

/// Event-driven asynchronous simulator over a [`Topology`].
///
/// Implements the same run contract as the synchronous engines
/// ([`RunOptions`] in, [`TrialResult`] out), so it drops into
/// `MonteCarlo`, the experiments, and the CLI unchanged.
pub struct GossipEngine<'t> {
    topology: &'t dyn Topology,
    scheduler: Scheduler,
    network: NetworkConfig,
}

/// Side statistics of one gossip trial (beyond the shared
/// [`TrialResult`] contract).
#[derive(Debug, Clone, Copy, Default)]
pub struct GossipStats {
    /// Node activations executed.
    pub activations: u64,
    /// PULL sample requests issued.
    pub messages: u64,
    /// Messages dropped by the network.
    pub lost_messages: u64,
    /// Messages that arrived late.
    pub delayed_messages: u64,
    /// Pending recolors invalidated by a newer activation of the same
    /// node before their delayed responses arrived.
    pub superseded_commits: u64,
    /// Simulated clock at stop time, in ticks.
    pub final_time: f64,
}

/// Draws one node's PULL samples, routing every request through the
/// network-condition model.  The engine's `update_rng` (passed to
/// `node_update` for rule-internal randomness such as tie-breaks) is
/// deliberately *not* used here: message randomness lives in per-message
/// streams.
struct GossipSampler<'a> {
    topology: &'a dyn Topology,
    states: &'a [u32],
    node: usize,
    own: u32,
    network: NetworkConfig,
    streams: &'a mut MessageStreams,
    max_extra_ticks: f64,
    lost: u64,
    delayed: u64,
}

impl StateSampler for GossipSampler<'_> {
    fn sample_state(&mut self, _rng: &mut dyn RngCore) -> u32 {
        let topology = self.topology;
        let node = self.node;
        let fate = self
            .streams
            .next_fate(&self.network, |mrng| topology.sample_neighbor(node, mrng));
        match fate {
            MessageFate::Lost => {
                self.lost += 1;
                self.own
            }
            MessageFate::Delivered { peer } => self.states[peer],
            MessageFate::Delayed { peer, extra_ticks } => {
                self.delayed += 1;
                if extra_ticks > self.max_extra_ticks {
                    self.max_extra_ticks = extra_ticks;
                }
                self.states[peer]
            }
        }
    }
}

impl<'t> GossipEngine<'t> {
    /// Engine on a topology with the sequential scheduler and an ideal
    /// network.
    #[must_use]
    pub fn new(topology: &'t dyn Topology) -> Self {
        Self {
            topology,
            scheduler: Scheduler::Sequential,
            network: NetworkConfig::default(),
        }
    }

    /// Choose the activation scheduler.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Apply network conditions.
    #[must_use]
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// The configured scheduler.
    #[must_use]
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// The configured network conditions.
    #[must_use]
    pub fn network(&self) -> NetworkConfig {
        self.network
    }

    /// Run one trial; see [`Self::run_detailed`].
    pub fn run(
        &self,
        dynamics: &dyn Dynamics,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
    ) -> TrialResult {
        self.run_detailed(dynamics, initial, placement, opts, seed)
            .0
    }

    /// Run one trial, also returning gossip-specific statistics.
    ///
    /// `opts.max_rounds` caps parallel time in ticks (1 tick = `n`
    /// activations); `opts.max_events` additionally caps raw scheduler
    /// events.  Exhausting either reports [`StopReason::MaxRounds`].
    ///
    /// # Panics
    /// Panics if the configuration population differs from the topology
    /// size, or the initial plurality is tied.
    pub fn run_detailed(
        &self,
        dynamics: &dyn Dynamics,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
    ) -> (TrialResult, GossipStats) {
        let n = self.topology.n();
        assert_eq!(
            initial.n() as usize,
            n,
            "configuration population must match topology size"
        );
        let initial_plurality = unique_initial_plurality(initial);
        let k_colors = initial.k();
        let lifted = dynamics.lift(initial);
        let state_count = lifted.k();

        let mut states = layout_initial_states(&lifted, placement, seed);
        let mut counts: Vec<u64> = lifted.counts().to_vec();

        let mut trace = match opts.trace {
            TraceLevel::Off => None,
            _ => Some(Trace::new()),
        };
        let full = opts.trace == TraceLevel::Full;
        if let Some(t) = trace.as_mut() {
            t.record(0, &counts, k_colors, full);
        }

        let mut stats = GossipStats::default();

        if let Some(winner) = evaluate_stop(opts.stop, dynamics, &counts, initial_plurality) {
            let result = TrialResult {
                rounds: 0,
                reason: StopReason::Stopped,
                winner: Some(winner),
                initial_plurality,
                success: winner == initial_plurality,
                trace,
            };
            return (result, stats);
        }

        let mut sched_rng = stream_rng(seed, STREAM_SCHEDULER);
        let mut update_rng = stream_rng(seed, STREAM_UPDATE);
        let mut streams = MessageStreams::new(derive_stream(seed, STREAM_MESSAGES));
        let mut scratch = NodeScratch::with_states(state_count);
        let mut queue = EventQueue::new();
        let mut versions = vec![0u64; n];

        let nf = n as f64;
        match self.scheduler {
            Scheduler::Sequential => {
                let node = sched_rng.gen_range(0..n) as u32;
                queue.push(1.0 / nf, node, EventKind::Activate);
            }
            Scheduler::Poisson => {
                for v in 0..n {
                    queue.push(exp1(&mut sched_rng), v as u32, EventKind::Activate);
                }
            }
        }

        let max_events = opts.max_events.unwrap_or(u64::MAX);
        let mut events: u64 = 0;
        let mut ticks: u64 = 0;

        while let Some(ev) = queue.pop() {
            events += 1;
            stats.final_time = ev.time;
            let v = ev.node as usize;
            match ev.kind {
                EventKind::Commit { state, version } => {
                    if versions[v] == version {
                        if apply(&mut states, &mut counts, v, state) {
                            if let Some(winner) =
                                evaluate_stop(opts.stop, dynamics, &counts, initial_plurality)
                            {
                                stats.messages = streams.issued();
                                return finish(
                                    winner,
                                    initial_plurality,
                                    stats.activations,
                                    n,
                                    trace,
                                    &counts,
                                    k_colors,
                                    full,
                                    stats,
                                );
                            }
                        }
                    } else {
                        stats.superseded_commits += 1;
                    }
                }
                EventKind::Activate => {
                    stats.activations += 1;
                    versions[v] += 1;
                    let own = states[v];
                    let mut sampler = GossipSampler {
                        topology: self.topology,
                        states: &states,
                        node: v,
                        own,
                        network: self.network,
                        streams: &mut streams,
                        max_extra_ticks: 0.0,
                        lost: 0,
                        delayed: 0,
                    };
                    let new =
                        dynamics.node_update(own, &mut sampler, &mut scratch, &mut update_rng);
                    let max_extra = sampler.max_extra_ticks;
                    stats.lost_messages += sampler.lost;
                    stats.delayed_messages += sampler.delayed;

                    if max_extra == 0.0 {
                        if apply(&mut states, &mut counts, v, new) {
                            if let Some(winner) =
                                evaluate_stop(opts.stop, dynamics, &counts, initial_plurality)
                            {
                                stats.messages = streams.issued();
                                return finish(
                                    winner,
                                    initial_plurality,
                                    stats.activations,
                                    n,
                                    trace,
                                    &counts,
                                    k_colors,
                                    full,
                                    stats,
                                );
                            }
                        }
                    } else {
                        queue.push(
                            ev.time + max_extra,
                            ev.node,
                            EventKind::Commit {
                                state: new,
                                version: versions[v],
                            },
                        );
                    }

                    // Schedule the next activation.
                    match self.scheduler {
                        Scheduler::Sequential => {
                            let node = sched_rng.gen_range(0..n) as u32;
                            let time = (stats.activations + 1) as f64 / nf;
                            queue.push(time, node, EventKind::Activate);
                        }
                        Scheduler::Poisson => {
                            queue.push(
                                ev.time + exp1(&mut sched_rng),
                                ev.node,
                                EventKind::Activate,
                            );
                        }
                    }

                    // Tick boundary: n activations = one unit of parallel
                    // time.
                    if stats.activations % n as u64 == 0 {
                        ticks += 1;
                        if let Some(t) = trace.as_mut() {
                            t.record(ticks, &counts, k_colors, full);
                        }
                        if ticks >= opts.max_rounds {
                            break;
                        }
                    }
                }
            }
            if events >= max_events {
                break;
            }
        }

        stats.messages = streams.issued();
        let result = TrialResult {
            rounds: completed_ticks(stats.activations, n),
            reason: StopReason::MaxRounds,
            winner: None,
            initial_plurality,
            success: false,
            trace,
        };
        (result, stats)
    }
}

/// Parallel time consumed by `activations` activations, in whole ticks
/// (a partial tick counts as one).
fn completed_ticks(activations: u64, n: usize) -> u64 {
    activations.div_ceil(n as u64)
}

/// Recolor node `v`; returns whether the configuration changed.
#[inline]
fn apply(states: &mut [u32], counts: &mut [u64], v: usize, new: u32) -> bool {
    let old = states[v];
    if old == new {
        return false;
    }
    counts[old as usize] -= 1;
    counts[new as usize] += 1;
    states[v] = new;
    true
}

#[allow(clippy::too_many_arguments)]
fn finish(
    winner: usize,
    initial_plurality: usize,
    activations: u64,
    n: usize,
    mut trace: Option<Trace>,
    counts: &[u64],
    k_colors: usize,
    full: bool,
    stats: GossipStats,
) -> (TrialResult, GossipStats) {
    let ticks = completed_ticks(activations, n);
    if let Some(t) = trace.as_mut() {
        // The trace must end with the stopping configuration at index
        // `ticks` (the same contract as the synchronous engines).  If a
        // record for this tick already exists it is stale — it was taken
        // at the tick boundary, before a delayed commit changed the
        // counts — so replace it.
        if t.rounds.last().map(|s| s.round) == Some(ticks) {
            t.rounds.pop();
            if full {
                t.full_states.pop();
            }
        }
        t.record(ticks, counts, k_colors, full);
    }
    let result = TrialResult {
        rounds: ticks,
        reason: StopReason::Stopped,
        winner: Some(winner),
        initial_plurality,
        success: winner == initial_plurality,
        trace,
    };
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_core::{builders, ThreeMajority, UndecidedState, Voter};
    use plurality_engine::StopRule;
    use plurality_topology::{ring, Clique};

    fn clique_engine(n: usize) -> (Clique, Configuration) {
        (
            Clique::new(n),
            builders::biased(n as u64, 4, (n / 3) as u64),
        )
    }

    #[test]
    fn converges_on_clique_with_bias() {
        let (clique, cfg) = clique_engine(2_000);
        let engine = GossipEngine::new(&clique);
        let d = ThreeMajority::new();
        let mut wins = 0;
        for trial in 0..5 {
            let r = engine.run(
                &d,
                &cfg,
                Placement::Shuffled,
                &RunOptions::with_max_rounds(5_000),
                1000 + trial,
            );
            assert_eq!(r.reason, StopReason::Stopped);
            if r.success {
                wins += 1;
            }
        }
        assert!(wins >= 4, "won only {wins}/5");
    }

    #[test]
    fn poisson_scheduler_converges() {
        let (clique, cfg) = clique_engine(1_500);
        let engine = GossipEngine::new(&clique).with_scheduler(Scheduler::Poisson);
        let r = engine.run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(5_000),
            42,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert!(r.success);
    }

    #[test]
    fn deterministic_same_seed_same_trajectory() {
        let (clique, cfg) = clique_engine(800);
        let engine = GossipEngine::new(&clique)
            .with_scheduler(Scheduler::Poisson)
            .with_network(NetworkConfig::new(0.3, 0.05));
        let opts = RunOptions::with_max_rounds(5_000).traced();
        let d = ThreeMajority::new();
        let (a, sa) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 9);
        let (b, sb) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 9);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.winner, b.winner);
        assert_eq!(sa.activations, sb.activations);
        assert_eq!(sa.messages, sb.messages);
        assert_eq!(sa.lost_messages, sb.lost_messages);
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        assert_eq!(ta.rounds.len(), tb.rounds.len());
        for (x, y) in ta.rounds.iter().zip(&tb.rounds) {
            assert_eq!(x, y, "trajectories must be identical");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (clique, cfg) = clique_engine(800);
        let engine = GossipEngine::new(&clique);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(5_000);
        let (_, sa) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 1);
        let (_, sb) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, 2);
        assert_ne!(
            (sa.activations, sa.messages),
            (sb.activations, sb.messages),
            "distinct seeds should yield distinct trajectories"
        );
    }

    #[test]
    fn ideal_network_issues_no_loss_or_delay() {
        let (clique, cfg) = clique_engine(500);
        let engine = GossipEngine::new(&clique);
        let (r, stats) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(5_000),
            3,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert_eq!(stats.lost_messages, 0);
        assert_eq!(stats.delayed_messages, 0);
        assert_eq!(stats.superseded_commits, 0);
        assert_eq!(
            stats.messages,
            3 * stats.activations,
            "3-majority pulls 3 samples"
        );
    }

    #[test]
    fn lossy_network_still_converges_and_counts() {
        let (clique, cfg) = clique_engine(1_000);
        let engine = GossipEngine::new(&clique).with_network(NetworkConfig::new(0.0, 0.2));
        let (r, stats) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(10_000),
            5,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert!(stats.lost_messages > 0);
        let rate = stats.lost_messages as f64 / stats.messages as f64;
        assert!((rate - 0.2).abs() < 0.05, "loss rate {rate}");
    }

    #[test]
    fn delayed_network_produces_delays() {
        let (clique, cfg) = clique_engine(1_000);
        let engine = GossipEngine::new(&clique).with_network(NetworkConfig::new(0.5, 0.0));
        let (r, stats) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(10_000),
            6,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert!(stats.delayed_messages > 0);
        assert!(r.success);
    }

    #[test]
    fn max_rounds_reported() {
        // Balanced two-color voter on a big clique will not absorb fast.
        let clique = Clique::new(10_000);
        let cfg = builders::biased(10_000, 2, 2);
        let engine = GossipEngine::new(&clique);
        let r = engine.run(
            &Voter,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(3),
            7,
        );
        assert_eq!(r.reason, StopReason::MaxRounds);
        assert_eq!(r.rounds, 3);
        assert_eq!(r.winner, None);
    }

    #[test]
    fn max_events_caps_work() {
        let (clique, cfg) = clique_engine(1_000);
        let engine = GossipEngine::new(&clique);
        let opts = RunOptions::with_max_rounds(10_000).with_max_events(500);
        let (r, stats) =
            engine.run_detailed(&ThreeMajority::new(), &cfg, Placement::Shuffled, &opts, 8);
        assert_eq!(r.reason, StopReason::MaxRounds);
        assert!(stats.activations <= 500);
    }

    #[test]
    fn already_monochromatic_stops_at_zero() {
        let clique = Clique::new(100);
        let cfg = Configuration::new(vec![100, 0]);
        let engine = GossipEngine::new(&clique);
        let r = engine.run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::default(),
            1,
        );
        assert_eq!(r.rounds, 0);
        assert_eq!(r.winner, Some(0));
    }

    #[test]
    fn mplurality_stop_rule_respected() {
        let (clique, cfg) = clique_engine(2_000);
        let engine = GossipEngine::new(&clique);
        let opts = RunOptions {
            stop: StopRule::MPlurality(50),
            ..RunOptions::with_max_rounds(10_000)
        };
        let full = engine.run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(10_000),
            11,
        );
        let early = engine.run(&ThreeMajority::new(), &cfg, Placement::Shuffled, &opts, 11);
        assert!(early.rounds <= full.rounds);
        assert!(early.success);
    }

    #[test]
    fn undecided_dynamics_supported() {
        let clique = Clique::new(1_500);
        let cfg = builders::biased(1_500, 3, 500);
        let engine = GossipEngine::new(&clique);
        let r = engine.run(
            &UndecidedState::new(3),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(20_000),
            13,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert!(r.success);
    }

    #[test]
    fn runs_on_sparse_topology() {
        let g = ring(301);
        let cfg = builders::biased(301, 2, 101);
        let engine = GossipEngine::new(&g);
        let r = engine.run(
            &Voter,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(200_000),
            17,
        );
        assert_eq!(r.reason, StopReason::Stopped, "voter on a ring must absorb");
    }

    #[test]
    fn trace_ends_with_the_stopping_configuration() {
        // Regression: the final trace entry must reflect the absorbed
        // state and carry index == rounds, including when absorption
        // lands exactly on a tick boundary or a stale boundary record
        // was taken before a delayed commit finished the run.
        for seed in 0..20 {
            for network in [NetworkConfig::default(), NetworkConfig::new(0.6, 0.05)] {
                let clique = Clique::new(200);
                let cfg = builders::biased(200, 3, 80);
                let engine = GossipEngine::new(&clique).with_network(network);
                let r = engine.run(
                    &ThreeMajority::new(),
                    &cfg,
                    Placement::Shuffled,
                    &RunOptions::with_max_rounds(10_000).traced(),
                    seed,
                );
                assert_eq!(r.reason, StopReason::Stopped, "seed {seed}");
                let trace = r.trace.unwrap();
                let last = trace.rounds.last().unwrap();
                assert_eq!(last.round, r.rounds, "seed {seed}: trace index mismatch");
                assert_eq!(
                    last.minority_mass, 0,
                    "seed {seed}: final trace entry is not the absorbed state"
                );
                // Tick indices strictly increase (no duplicate entries).
                for w in trace.rounds.windows(2) {
                    assert!(w[0].round < w[1].round, "seed {seed}: duplicate tick");
                }
            }
        }
    }

    #[test]
    fn trace_counts_match_population() {
        let (clique, cfg) = clique_engine(900);
        let engine = GossipEngine::new(&clique).with_network(NetworkConfig::new(0.4, 0.1));
        let r = engine.run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(10_000).traced(),
            19,
        );
        let trace = r.trace.unwrap();
        assert!(!trace.rounds.is_empty());
        for s in &trace.rounds {
            assert_eq!(
                s.plurality_count + s.minority_mass + s.extra_state_mass,
                900,
                "tick {}",
                s.round
            );
        }
    }

    #[test]
    #[should_panic(expected = "match topology size")]
    fn size_mismatch_rejected() {
        let clique = Clique::new(10);
        let cfg = builders::biased(11, 2, 3);
        let _ = GossipEngine::new(&clique).run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::default(),
            1,
        );
    }
}
