//! Structured link-failure models: **per-edge** parameters, **time-varying**
//! schedules, and **correlated** (bursty) failures.
//!
//! [`crate::NetworkConfig`] models an unreliable network as i.i.d.
//! per-message loss/delay — every message flips the same coins.  Real
//! degradation is structured: *flaky links* (some edges are persistently
//! worse than others), *degraded windows* (the whole network is bad for a
//! while), *bursty channels* (a link alternates between good and bad
//! regimes), *node outages* (one machine drops off for seconds at a
//! time), and *partitions* (a cut silences all traffic between two node
//! groups).  [`FailureModel`] composes all five on top of a uniform
//! baseline:
//!
//! | layer | knob | scope |
//! |---|---|---|
//! | baseline | [`NetworkConfig`] | every message |
//! | per-edge | [`EdgeDists`] ([`ParamDist`] per parameter) | drawn **once per unordered edge** |
//! | schedule | [`Window`] list | absolute override during `[start, end)` |
//! | Gilbert–Elliott | [`GilbertElliott`] | two-state good/bad chain **per edge** |
//! | outages | [`NodeOutages`] | two-state up/down chain per *node* |
//! | partition | [`Partition`] | cross-cut edges silenced during `[start, end)` |
//!
//! # Resolution order
//!
//! For one message from `src` to `peer` at simulated time `t`, the
//! effective `(loss, delay)` pair is resolved in a fixed, documented
//! order (later layers override earlier ones):
//!
//! 1. start from the **baseline** fractions, or the edge's **per-edge**
//!    draw when [`EdgeDists`] is configured;
//! 2. if `t` falls inside a schedule [`Window`], that window's values
//!    replace both fractions (the *last* matching window wins);
//! 3. if the edge's **Gilbert–Elliott** chain is in the bad state at
//!    `t`, the bad-state values replace both fractions;
//! 4. if either endpoint is **down** (node outage) the message is lost
//!    (`loss = 1`);
//! 5. if a **partition** is active at `t` and the endpoints sit in
//!    different parts, the message is lost (`loss = 1`).
//!
//! # Determinism
//!
//! Model-scoped randomness (per-edge parameter draws, partition part
//! assignment, outage membership) derives from the model's
//! [`FailureModel::with_salt`] — **not** the trial seed — so the same
//! edges stay flaky across every trial of an experiment, the way a
//! persistent infrastructure defect would.  Chain randomness
//! (Gilbert–Elliott holding times, outage up/down times) derives from
//! the trial's failure stream (stream 4 of the trial seed), one
//! independent substream per edge/node, so trials are independent yet
//! each is a pure function of `(seed, model)`.  Chains are advanced
//! lazily and **monotonically in `t`** (the engine issues messages in
//! event order), so only touched edges ever materialize state.
//!
//! # The degenerate case
//!
//! A model with no schedule, no chains, no partition, and uniform (or
//! per-edge `Fixed`) parameters reduces to the plain [`NetworkConfig`]
//! — [`FailureModel::effective_uniform`] detects this and the message
//! layer then reproduces the i.i.d. draws **bit for bit** (pinned by
//! the golden fingerprints and the property tests in
//! `tests/determinism.rs` / `tests/event_queue.rs`).

use crate::network::NetworkConfig;
use crate::scheduler::exp1;
use plurality_sampling::{derive_stream, stream_rng, Xoshiro256PlusPlus};
use rand::Rng;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Default model salt (see [`FailureModel::with_salt`]).
pub const DEFAULT_SALT: u64 = 0x0FA1_1FA1;

// Sub-stream tags hung off the model salt / trial failure stream.
const EDGE_PARAM_STREAM: u64 = 1;
const PARTITION_STREAM: u64 = 2;
const OUTAGE_MEMBER_STREAM: u64 = 3;
const GE_CHAIN_STREAM: u64 = 4;
const OUTAGE_CHAIN_STREAM: u64 = 5;

/// Distribution a per-edge parameter is drawn from (values are
/// probabilities in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamDist {
    /// Every edge gets the same value.
    Fixed(f64),
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Flaky links: a fraction `frac` of edges gets `bad`, the rest
    /// `good`.
    Flaky {
        /// Fraction of bad edges.
        frac: f64,
        /// Value on a good edge.
        good: f64,
        /// Value on a bad edge.
        bad: f64,
    },
}

impl ParamDist {
    /// Draw one value from the distribution.
    fn draw(&self, rng: &mut Xoshiro256PlusPlus) -> f64 {
        match *self {
            Self::Fixed(v) => v,
            Self::Uniform { lo, hi } => lo + (hi - lo) * rng.gen::<f64>(),
            Self::Flaky { frac, good, bad } => {
                if rng.gen::<f64>() < frac {
                    bad
                } else {
                    good
                }
            }
        }
    }

    /// Mean of the distribution (used for equal-average comparisons).
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            Self::Fixed(v) => v,
            Self::Uniform { lo, hi } => 0.5 * (lo + hi),
            Self::Flaky { frac, good, bad } => frac * bad + (1.0 - frac) * good,
        }
    }

    /// Is every value the distribution can produce inside `[0, 1]`?
    fn is_valid(&self) -> bool {
        let in_unit = |x: f64| x.is_finite() && (0.0..=1.0).contains(&x);
        match *self {
            Self::Fixed(v) => in_unit(v),
            Self::Uniform { lo, hi } => in_unit(lo) && in_unit(hi) && lo <= hi,
            Self::Flaky { frac, good, bad } => in_unit(frac) && in_unit(good) && in_unit(bad),
        }
    }

    fn label(&self) -> String {
        match *self {
            Self::Fixed(v) => format!("{v}"),
            Self::Uniform { lo, hi } => format!("{lo}..{hi}"),
            Self::Flaky { frac, good, bad } => format!("flaky({frac},{good},{bad})"),
        }
    }
}

/// Per-edge loss/delay distributions; each unordered edge draws one
/// `(loss, delay)` pair, once, from its own deterministic stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeDists {
    /// Distribution of the per-edge loss fraction.
    pub loss: ParamDist,
    /// Distribution of the per-edge delay fraction.
    pub delay: ParamDist,
}

/// A degraded window: during `[start, end)` (in ticks) every message
/// uses these loss/delay fractions instead of the baseline/per-edge
/// values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Window start (inclusive), in ticks.
    pub start: f64,
    /// Window end (exclusive), in ticks.
    pub end: f64,
    /// Loss fraction inside the window.
    pub loss: f64,
    /// Delay fraction inside the window.
    pub delay: f64,
}

impl Window {
    fn contains(&self, t: f64) -> bool {
        self.start <= t && t < self.end
    }
}

/// Two-state Gilbert–Elliott channel, continuous-time: each edge
/// alternates between a *good* regime (baseline/per-edge parameters
/// apply) and a *bad* regime (`bad_loss`/`bad_delay` apply), with
/// independent exponential holding times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Mean time (ticks) an edge stays good before turning bad.
    pub mean_good: f64,
    /// Mean time (ticks) an edge stays bad before recovering.
    pub mean_bad: f64,
    /// Loss fraction while bad.
    pub bad_loss: f64,
    /// Delay fraction while bad.
    pub bad_delay: f64,
}

impl GilbertElliott {
    /// Stationary probability of the bad state, `D / (U + D)`.
    #[must_use]
    pub fn stationary_bad(&self) -> f64 {
        self.mean_bad / (self.mean_good + self.mean_bad)
    }

    /// Time-average loss fraction when the good state carries
    /// `good_loss` — the i.i.d. loss to compare against at equal
    /// average.
    #[must_use]
    pub fn average_loss(&self, good_loss: f64) -> f64 {
        let pi = self.stationary_bad();
        pi * self.bad_loss + (1.0 - pi) * good_loss
    }
}

/// Node-scoped burst outages: a fraction `frac` of nodes (membership
/// drawn from the model salt, stable across trials) runs an up/down
/// chain with exponential holding times; every message touching a down
/// node is lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeOutages {
    /// Fraction of nodes subject to outages.
    pub frac: f64,
    /// Mean up time (ticks).
    pub mean_up: f64,
    /// Mean down time (ticks).
    pub mean_down: f64,
}

/// A `k`-way partition active during `[start, end)`: nodes are assigned
/// to `parts` groups (salted hash, stable across trials) and every
/// message crossing the cut is lost while the partition is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partition {
    /// Number of parts (≥ 2).
    pub parts: usize,
    /// Partition start (inclusive), in ticks.
    pub start: f64,
    /// Partition end (exclusive), in ticks.
    pub end: f64,
}

impl Partition {
    fn active(&self, t: f64) -> bool {
        self.start <= t && t < self.end
    }
}

/// The composed failure model — see the module docs for the layer
/// taxonomy and resolution order.  Build with [`FailureModel::uniform`]
/// plus the `with_*` layers, or parse the CLI scenario DSL with
/// [`FailureModel::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct FailureModel {
    base: NetworkConfig,
    edge: Option<EdgeDists>,
    windows: Vec<Window>,
    ge: Option<GilbertElliott>,
    outages: Option<NodeOutages>,
    partition: Option<Partition>,
    salt: u64,
}

impl Default for FailureModel {
    fn default() -> Self {
        Self::uniform(NetworkConfig::default())
    }
}

impl FailureModel {
    /// The degenerate model: plain i.i.d. per-message loss/delay,
    /// equivalent to [`NetworkConfig`] bit for bit.
    #[must_use]
    pub fn uniform(base: NetworkConfig) -> Self {
        Self {
            base,
            edge: None,
            windows: Vec::new(),
            ge: None,
            outages: None,
            partition: None,
            salt: DEFAULT_SALT,
        }
    }

    /// Draw loss/delay once per unordered edge from `dists`.
    ///
    /// # Panics
    /// Panics if a distribution can produce a value outside `[0, 1]`.
    #[must_use]
    pub fn with_per_edge(mut self, dists: EdgeDists) -> Self {
        assert!(
            dists.loss.is_valid() && dists.delay.is_valid(),
            "per-edge distributions must stay within [0, 1]: {dists:?}"
        );
        self.edge = Some(dists);
        self
    }

    /// Add a degraded window (may be called repeatedly; the last window
    /// containing a given time wins).
    ///
    /// # Panics
    /// Panics unless `0 ≤ start < end` (finite) and both fractions are
    /// in `[0, 1]`.
    #[must_use]
    pub fn with_window(mut self, window: Window) -> Self {
        assert!(
            window.start.is_finite() && window.end.is_finite() && 0.0 <= window.start,
            "window bounds must be finite and non-negative: {window:?}"
        );
        assert!(window.start < window.end, "empty window: {window:?}");
        assert!(
            (0.0..=1.0).contains(&window.loss) && (0.0..=1.0).contains(&window.delay),
            "window fractions out of [0, 1]: {window:?}"
        );
        self.windows.push(window);
        self
    }

    /// Attach a per-edge Gilbert–Elliott good/bad chain.
    ///
    /// # Panics
    /// Panics unless both mean durations are finite and positive and
    /// both bad-state fractions are in `[0, 1]`.
    #[must_use]
    pub fn with_gilbert_elliott(mut self, ge: GilbertElliott) -> Self {
        assert!(
            ge.mean_good.is_finite() && ge.mean_good > 0.0,
            "mean good duration must be positive: {ge:?}"
        );
        assert!(
            ge.mean_bad.is_finite() && ge.mean_bad > 0.0,
            "mean bad duration must be positive: {ge:?}"
        );
        assert!(
            (0.0..=1.0).contains(&ge.bad_loss) && (0.0..=1.0).contains(&ge.bad_delay),
            "bad-state fractions out of [0, 1]: {ge:?}"
        );
        self.ge = Some(ge);
        self
    }

    /// Attach node-scoped burst outages.
    ///
    /// # Panics
    /// Panics unless `frac ∈ [0, 1]` and both mean durations are finite
    /// and positive.
    #[must_use]
    pub fn with_outages(mut self, outages: NodeOutages) -> Self {
        assert!(
            (0.0..=1.0).contains(&outages.frac),
            "outage fraction out of [0, 1]: {outages:?}"
        );
        assert!(
            outages.mean_up.is_finite()
                && outages.mean_up > 0.0
                && outages.mean_down.is_finite()
                && outages.mean_down > 0.0,
            "outage durations must be positive: {outages:?}"
        );
        self.outages = Some(outages);
        self
    }

    /// Attach a timed `k`-way partition.
    ///
    /// # Panics
    /// Panics unless `parts ≥ 2` and `0 ≤ start < end` (finite).
    #[must_use]
    pub fn with_partition(mut self, partition: Partition) -> Self {
        assert!(partition.parts >= 2, "partition needs ≥ 2 parts");
        assert!(
            partition.start.is_finite()
                && partition.end.is_finite()
                && 0.0 <= partition.start
                && partition.start < partition.end,
            "partition window must satisfy 0 ≤ start < end: {partition:?}"
        );
        self.partition = Some(partition);
        self
    }

    /// Change the model salt — the seed of all *model-scoped*
    /// randomness (per-edge parameter draws, partition assignment,
    /// outage membership), which stays fixed across trials.
    #[must_use]
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// The uniform baseline parameters.
    #[must_use]
    pub fn base(&self) -> NetworkConfig {
        self.base
    }

    /// The per-edge distributions, if configured.
    #[must_use]
    pub fn edge_dists(&self) -> Option<EdgeDists> {
        self.edge
    }

    /// The Gilbert–Elliott layer, if configured.
    #[must_use]
    pub fn gilbert_elliott(&self) -> Option<GilbertElliott> {
        self.ge
    }

    /// The model salt.
    #[must_use]
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// `Some(cfg)` iff the model reduces to plain i.i.d. per-message
    /// conditions: no schedule, no chains, no partition, and parameters
    /// that are either uniform or per-edge `Fixed` (every edge alike).
    /// The message layer uses this to reproduce [`NetworkConfig`] draws
    /// bit for bit in the degenerate case.
    #[must_use]
    pub fn effective_uniform(&self) -> Option<NetworkConfig> {
        if !self.windows.is_empty()
            || self.ge.is_some()
            || self.outages.is_some()
            || self.partition.is_some()
        {
            return None;
        }
        match self.edge {
            None => Some(self.base),
            Some(EdgeDists {
                loss: ParamDist::Fixed(loss),
                delay: ParamDist::Fixed(delay),
            }) => Some(NetworkConfig::new(delay, loss)),
            Some(_) => None,
        }
    }

    /// Does resolving this model need genuinely per-edge static
    /// parameters (i.e. would a dense CSR edge-parameter table help)?
    #[must_use]
    pub fn needs_edge_params(&self) -> bool {
        self.edge.is_some() && self.effective_uniform().is_none()
    }

    /// The `(loss, delay)` pair of the unordered edge `{u, v}` in a
    /// population of `n` nodes — a pure function of `(salt, edge)`,
    /// identical whichever direction asks and whether or not a dense
    /// table caches it.
    #[must_use]
    pub fn edge_params(&self, n: usize, u: usize, v: usize) -> (f64, f64) {
        match self.edge {
            None => (self.base.loss_fraction, self.base.delay_fraction),
            Some(dists) => {
                let master = derive_stream(self.salt, EDGE_PARAM_STREAM);
                let mut rng = stream_rng(master, edge_key(n, u, v));
                let loss = dists.loss.draw(&mut rng);
                let delay = dists.delay.draw(&mut rng);
                (loss, delay)
            }
        }
    }

    /// Compact label for experiment tables and CLI output.
    #[must_use]
    pub fn label(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if !self.base.is_ideal() {
            parts.push(format!(
                "iid(loss={},delay={})",
                self.base.loss_fraction, self.base.delay_fraction
            ));
        }
        if let Some(e) = &self.edge {
            parts.push(format!(
                "edge(loss={},delay={})",
                e.loss.label(),
                e.delay.label()
            ));
        }
        for w in &self.windows {
            parts.push(format!(
                "window({}..{},loss={},delay={})",
                w.start, w.end, w.loss, w.delay
            ));
        }
        if let Some(g) = &self.ge {
            let mut s = format!(
                "ge(up={},down={},loss={}",
                g.mean_good, g.mean_bad, g.bad_loss
            );
            if g.bad_delay > 0.0 {
                let _ = write!(s, ",delay={}", g.bad_delay);
            }
            s.push(')');
            parts.push(s);
        }
        if let Some(o) = &self.outages {
            parts.push(format!(
                "outage(frac={},up={},down={})",
                o.frac, o.mean_up, o.mean_down
            ));
        }
        if let Some(p) = &self.partition {
            parts.push(format!("partition({},{}..{})", p.parts, p.start, p.end));
        }
        if parts.is_empty() {
            "ideal".to_string()
        } else {
            parts.join("+")
        }
    }

    /// Parse the scenario DSL: semicolon-separated clauses layered on
    /// top of `base`.
    ///
    /// ```text
    /// edge:loss=0..0.4[,delay=DIST]        per-edge draws (DIST = X | LO..HI | flaky(F,GOOD,BAD))
    /// window:T0..T1[,loss=F][,delay=F]     degraded window (defaults: base values)
    /// ge:up=U,down=D,loss=F[,delay=F]      Gilbert–Elliott bad state
    /// outage:frac=F,up=U,down=D            node-scoped bursts
    /// partition:parts=K,T0..T1             k-way partition window
    /// salt:N                               model salt (default fixed)
    /// ```
    ///
    /// Example: `"edge:loss=flaky(0.1,0,0.8);window:10..20,loss=0.5"`.
    ///
    /// # Errors
    /// Returns a description of the first malformed clause.
    pub fn parse(spec: &str, base: NetworkConfig) -> Result<Self, String> {
        let mut model = Self::uniform(base);
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (kind, rest) = clause
                .split_once(':')
                .ok_or_else(|| format!("clause '{clause}' is missing ':'"))?;
            match kind.trim() {
                "edge" => {
                    let mut loss = ParamDist::Fixed(base.loss_fraction);
                    let mut delay = ParamDist::Fixed(base.delay_fraction);
                    for item in split_args(rest) {
                        match item.split_once('=') {
                            Some(("loss", d)) => loss = parse_dist(d)?,
                            Some(("delay", d)) => delay = parse_dist(d)?,
                            _ => return Err(format!("edge: unknown item '{item}'")),
                        }
                    }
                    let dists = EdgeDists { loss, delay };
                    if !(dists.loss.is_valid() && dists.delay.is_valid()) {
                        return Err(format!("edge: distribution out of [0, 1] in '{rest}'"));
                    }
                    model.edge = Some(dists);
                }
                "window" => {
                    let mut range = None;
                    let mut loss = base.loss_fraction;
                    let mut delay = base.delay_fraction;
                    for item in split_args(rest) {
                        match item.split_once('=') {
                            Some(("loss", v)) => loss = parse_unit(v, "window loss")?,
                            Some(("delay", v)) => delay = parse_unit(v, "window delay")?,
                            None => range = Some(parse_range(item)?),
                            _ => return Err(format!("window: unknown item '{item}'")),
                        }
                    }
                    let (start, end) =
                        range.ok_or_else(|| format!("window: missing T0..T1 in '{rest}'"))?;
                    model = model.with_window(Window {
                        start,
                        end,
                        loss,
                        delay,
                    });
                }
                "ge" => {
                    let mut up = None;
                    let mut down = None;
                    let mut loss = None;
                    let mut delay = base.delay_fraction;
                    for item in split_args(rest) {
                        match item.split_once('=') {
                            Some(("up", v)) => up = Some(parse_pos(v, "ge up")?),
                            Some(("down", v)) => down = Some(parse_pos(v, "ge down")?),
                            Some(("loss", v)) => loss = Some(parse_unit(v, "ge loss")?),
                            Some(("delay", v)) => delay = parse_unit(v, "ge delay")?,
                            _ => return Err(format!("ge: unknown item '{item}'")),
                        }
                    }
                    model = model.with_gilbert_elliott(GilbertElliott {
                        mean_good: up.ok_or("ge: missing up=")?,
                        mean_bad: down.ok_or("ge: missing down=")?,
                        bad_loss: loss.ok_or("ge: missing loss=")?,
                        bad_delay: delay,
                    });
                }
                "outage" => {
                    let mut frac = None;
                    let mut up = None;
                    let mut down = None;
                    for item in split_args(rest) {
                        match item.split_once('=') {
                            Some(("frac", v)) => frac = Some(parse_unit(v, "outage frac")?),
                            Some(("up", v)) => up = Some(parse_pos(v, "outage up")?),
                            Some(("down", v)) => down = Some(parse_pos(v, "outage down")?),
                            _ => return Err(format!("outage: unknown item '{item}'")),
                        }
                    }
                    model = model.with_outages(NodeOutages {
                        frac: frac.ok_or("outage: missing frac=")?,
                        mean_up: up.ok_or("outage: missing up=")?,
                        mean_down: down.ok_or("outage: missing down=")?,
                    });
                }
                "partition" => {
                    let mut parts = None;
                    let mut range = None;
                    for item in split_args(rest) {
                        match item.split_once('=') {
                            Some(("parts", v)) => {
                                parts = Some(v.trim().parse::<usize>().map_err(|_| {
                                    format!("partition: parts must be an integer, got '{v}'")
                                })?);
                            }
                            None => range = Some(parse_range(item)?),
                            _ => return Err(format!("partition: unknown item '{item}'")),
                        }
                    }
                    let parts = parts.ok_or("partition: missing parts=")?;
                    if parts < 2 {
                        return Err("partition: parts must be ≥ 2".into());
                    }
                    let (start, end) =
                        range.ok_or_else(|| format!("partition: missing T0..T1 in '{rest}'"))?;
                    model = model.with_partition(Partition { parts, start, end });
                }
                "salt" => {
                    model.salt = rest
                        .trim()
                        .parse()
                        .map_err(|_| format!("salt: expects a u64, got '{rest}'"))?;
                }
                other => {
                    return Err(format!(
                        "unknown failure clause '{other}' \
                         (expected edge, window, ge, outage, partition, or salt)"
                    ))
                }
            }
        }
        Ok(model)
    }
}

/// Split a clause body on commas, respecting one level of parentheses
/// (so `flaky(0.1,0,0.8)` survives as a single item).
fn split_args(rest: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                items.push(rest[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(rest[start..].trim());
    items.retain(|s| !s.is_empty());
    items
}

fn parse_f64(s: &str, what: &str) -> Result<f64, String> {
    s.trim()
        .parse::<f64>()
        .map_err(|_| format!("{what}: expected a number, got '{s}'"))
}

fn parse_unit(s: &str, what: &str) -> Result<f64, String> {
    let v = parse_f64(s, what)?;
    if (0.0..=1.0).contains(&v) {
        Ok(v)
    } else {
        Err(format!("{what}: {v} out of [0, 1]"))
    }
}

fn parse_pos(s: &str, what: &str) -> Result<f64, String> {
    let v = parse_f64(s, what)?;
    if v.is_finite() && v > 0.0 {
        Ok(v)
    } else {
        Err(format!("{what}: {v} must be positive"))
    }
}

fn parse_range(s: &str) -> Result<(f64, f64), String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("expected T0..T1, got '{s}'"))?;
    let start = parse_f64(a, "range start")?;
    let end = parse_f64(b, "range end")?;
    if start.is_finite() && end.is_finite() && 0.0 <= start && start < end {
        Ok((start, end))
    } else {
        Err(format!("range must satisfy 0 ≤ start < end, got '{s}'"))
    }
}

fn parse_dist(s: &str) -> Result<ParamDist, String> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix("flaky(").and_then(|r| r.strip_suffix(')')) {
        let parts: Vec<&str> = inner.split(',').collect();
        if parts.len() != 3 {
            return Err(format!("flaky expects (frac,good,bad), got '{s}'"));
        }
        return Ok(ParamDist::Flaky {
            frac: parse_unit(parts[0], "flaky frac")?,
            good: parse_unit(parts[1], "flaky good")?,
            bad: parse_unit(parts[2], "flaky bad")?,
        });
    }
    if let Some((lo, hi)) = s.split_once("..") {
        return Ok(ParamDist::Uniform {
            lo: parse_unit(lo, "dist lo")?,
            hi: parse_unit(hi, "dist hi")?,
        });
    }
    Ok(ParamDist::Fixed(parse_unit(s, "dist value")?))
}

/// Canonical key of the unordered edge `{u, v}` in a population of `n`
/// nodes: `min·n + max` (fits u64 up to `n ≈ 4·10⁹`; self-edges — a
/// clique node sampling itself — key like any other edge).
#[inline]
fn edge_key(n: usize, u: usize, v: usize) -> u64 {
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    (a as u64) * (n as u64) + b as u64
}

/// Project a derived 64-bit stream value onto `[0, 1)`.
#[inline]
fn unit_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// One lazily advanced two-state chain (Gilbert–Elliott edge regime or
/// node up/down): initial state from the stationary law, exponential
/// holding times, advanced monotonically in time.
#[derive(Debug)]
struct TwoStateChain {
    bad: bool,
    until: f64,
    rng: Xoshiro256PlusPlus,
}

impl TwoStateChain {
    fn new(mut rng: Xoshiro256PlusPlus, mean_good: f64, mean_bad: f64) -> Self {
        let stationary_bad = mean_bad / (mean_good + mean_bad);
        let bad = rng.gen::<f64>() < stationary_bad;
        let mean = if bad { mean_bad } else { mean_good };
        let until = mean * exp1(&mut rng);
        Self { bad, until, rng }
    }

    /// Is the chain in the bad state at time `t`?  `t` must be
    /// non-decreasing across calls (the engine guarantees event order).
    fn bad_at(&mut self, t: f64, mean_good: f64, mean_bad: f64) -> bool {
        while self.until <= t {
            self.bad = !self.bad;
            let mean = if self.bad { mean_bad } else { mean_good };
            self.until += mean * exp1(&mut self.rng);
        }
        self.bad
    }
}

/// Which failure layer last determined a message's loss fraction — the
/// attribution telemetry charges a drop against.  Exactly one layer
/// owns each resolved [`LinkConditions`], following the module-level
/// resolution order: the *last* layer that overrode `loss` wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropLayer {
    /// The uniform baseline coin ([`NetworkConfig`]).
    Baseline,
    /// The edge's static per-edge parameter draw ([`EdgeDists`]).
    PerEdge,
    /// A degraded schedule [`Window`].
    Window,
    /// The edge's [`GilbertElliott`] chain in its bad state.
    GeChain,
    /// A down endpoint ([`NodeOutages`]), `loss = 1`.
    Outage,
    /// An active cross-cut [`Partition`], `loss = 1`.
    Partition,
    /// Churn: the dead-peer redraw budget ran out — every candidate
    /// peer the sample drew had departed (`loss = 1`; attributed by
    /// the engine, not by [`LinkConditions`] resolution).
    DeadPeer,
}

impl DropLayer {
    /// All layers, in resolution order (the engine-attributed
    /// [`Self::DeadPeer`] last).
    pub const ALL: [Self; 7] = [
        Self::Baseline,
        Self::PerEdge,
        Self::Window,
        Self::GeChain,
        Self::Outage,
        Self::Partition,
        Self::DeadPeer,
    ];

    /// Stable snake-case label (matches the telemetry counter names).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Baseline => "baseline",
            Self::PerEdge => "per_edge",
            Self::Window => "window",
            Self::GeChain => "ge_chain",
            Self::Outage => "outage",
            Self::Partition => "partition",
            Self::DeadPeer => "dead_peer",
        }
    }
}

/// Resolved conditions of one message: the effective loss/delay
/// fractions after every layer of the model has spoken, plus the layer
/// that owns the loss fraction (for failure attribution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConditions {
    /// Effective loss fraction.
    pub loss: f64,
    /// Effective delay fraction.
    pub delay: f64,
    /// The layer that last set `loss` (charged on a drop).
    pub layer: DropLayer,
}

/// Per-trial mutable state of a [`FailureModel`]: the lazily built
/// Gilbert–Elliott and outage chains, the cached degenerate-case
/// reduction, and (when the engine precomputed one over a CSR topology)
/// the dense per-edge parameter table.
///
/// Created once per trial by the engine; chain randomness derives from
/// the trial's failure stream so trials stay independent and exactly
/// reproducible.
#[derive(Debug)]
pub struct FailureState<'m> {
    model: &'m FailureModel,
    n: usize,
    /// Dense `(loss, delay)` per directed CSR edge slot, if precomputed.
    edge_table: Option<&'m [(f64, f64)]>,
    /// Cached [`FailureModel::effective_uniform`].
    uniform: Option<NetworkConfig>,
    ge_master: u64,
    outage_master: u64,
    partition_master: u64,
    outage_member_master: u64,
    edge_param_master: u64,
    ge_chains: HashMap<u64, TwoStateChain>,
    /// Dense slot-indexed Gilbert–Elliott chains (one per directed CSR
    /// edge slot), replacing the keyed `ge_chains` map when the engine
    /// opts in via [`Self::with_dense_ge_slots`].  Each directed slot
    /// seeds its chain from the *unordered* edge key, and a chain's
    /// trajectory is a pure function of its seed queried monotonically —
    /// so the two directed copies of an edge evolve identically and the
    /// fates match the shared `HashMap` chain bit for bit (pinned by a
    /// property test in `tests/determinism.rs`).
    ge_slots: Option<Vec<Option<TwoStateChain>>>,
    /// `None` marks a node that is not subject to outages.
    outage_chains: HashMap<u32, Option<TwoStateChain>>,
}

impl<'m> FailureState<'m> {
    /// State for one trial.  `trial_master` is the trial's failure
    /// stream (the engine derives stream 4 of the trial seed);
    /// `edge_table`, when given, must hold one `(loss, delay)` pair per
    /// dense directed CSR edge slot, exactly as
    /// [`FailureModel::edge_params`] would produce.
    #[must_use]
    pub fn new(
        model: &'m FailureModel,
        n: usize,
        edge_table: Option<&'m [(f64, f64)]>,
        trial_master: u64,
    ) -> Self {
        Self {
            model,
            n,
            edge_table,
            uniform: model.effective_uniform(),
            ge_master: derive_stream(trial_master, GE_CHAIN_STREAM),
            outage_master: derive_stream(trial_master, OUTAGE_CHAIN_STREAM),
            partition_master: derive_stream(model.salt, PARTITION_STREAM),
            outage_member_master: derive_stream(model.salt, OUTAGE_MEMBER_STREAM),
            edge_param_master: derive_stream(model.salt, EDGE_PARAM_STREAM),
            ge_chains: HashMap::new(),
            ge_slots: None,
            outage_chains: HashMap::new(),
        }
    }

    /// Keep Gilbert–Elliott chains in a flat slot-indexed table over
    /// `slot_count` directed CSR edge slots instead of the keyed
    /// `HashMap` — one lazy `Option<chain>` per slot, no hashing on the
    /// per-message path.  No-op when the model has no GE layer.  Fates
    /// are bit-identical to the map (see the field docs).
    #[must_use]
    pub fn with_dense_ge_slots(mut self, slot_count: usize) -> Self {
        if self.model.ge.is_some() {
            self.ge_slots = Some(std::iter::repeat_with(|| None).take(slot_count).collect());
        }
        self
    }

    /// The degenerate-case reduction, when the model has one
    /// (see [`FailureModel::effective_uniform`]).
    #[must_use]
    pub fn uniform(&self) -> Option<NetworkConfig> {
        self.uniform
    }

    /// The model this state animates.
    #[must_use]
    pub fn model(&self) -> &'m FailureModel {
        self.model
    }

    /// Partition part of node `v` (stable across trials).
    #[must_use]
    pub fn part_of(&self, v: usize) -> usize {
        match self.model.partition {
            Some(p) => (derive_stream(self.partition_master, v as u64) % p.parts as u64) as usize,
            None => 0,
        }
    }

    /// Is `v` subject to outages (membership is model-scoped, stable
    /// across trials)?
    #[must_use]
    pub fn outage_member(&self, v: usize) -> bool {
        match self.model.outages {
            Some(o) => unit_from_bits(derive_stream(self.outage_member_master, v as u64)) < o.frac,
            None => false,
        }
    }

    /// Is node `v` down at time `t`?  Advances the node's chain; `t`
    /// must be non-decreasing across calls.
    pub fn node_down(&mut self, t: f64, v: usize) -> bool {
        let Some(o) = self.model.outages else {
            return false;
        };
        let member = self.outage_member(v);
        let chain = match self.outage_chains.entry(v as u32) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => e.insert(member.then(|| {
                TwoStateChain::new(
                    stream_rng(self.outage_master, v as u64),
                    o.mean_up,
                    o.mean_down,
                )
            })),
        };
        match chain {
            Some(c) => c.bad_at(t, o.mean_up, o.mean_down),
            None => false,
        }
    }

    /// Is the Gilbert–Elliott chain of edge `{u, v}` bad at time `t`?
    /// Advances the edge's chain; `t` must be non-decreasing.  `slot`,
    /// when given and the state was built
    /// [with dense slots](Self::with_dense_ge_slots), selects the flat
    /// table entry; otherwise the keyed map is used.
    pub fn edge_bad(&mut self, t: f64, u: usize, v: usize, slot: Option<usize>) -> bool {
        let Some(ge) = self.model.ge else {
            return false;
        };
        let n = self.n;
        let master = self.ge_master;
        let chain = match (self.ge_slots.as_mut(), slot) {
            (Some(slots), Some(slot)) => slots[slot].get_or_insert_with(|| {
                let key = edge_key(n, u, v);
                TwoStateChain::new(stream_rng(master, key), ge.mean_good, ge.mean_bad)
            }),
            _ => {
                let key = edge_key(n, u, v);
                self.ge_chains.entry(key).or_insert_with(|| {
                    TwoStateChain::new(stream_rng(master, key), ge.mean_good, ge.mean_bad)
                })
            }
        };
        chain.bad_at(t, ge.mean_good, ge.mean_bad)
    }

    /// Resolve the effective conditions of one message from `src` to
    /// `peer` at time `now` (see the module docs for the layer order).
    /// `slot`, when the topology reported a dense directed CSR edge
    /// slot, selects the precomputed per-edge parameters; otherwise the
    /// per-edge draw is recomputed from the edge's stream.
    pub fn conditions(
        &mut self,
        now: f64,
        src: usize,
        peer: usize,
        slot: Option<usize>,
    ) -> LinkConditions {
        let model = self.model;
        // 1. Baseline or per-edge static parameters.
        let mut layer = DropLayer::Baseline;
        let (mut loss, mut delay) = match model.edge {
            None => (model.base.loss_fraction, model.base.delay_fraction),
            Some(dists) => {
                layer = DropLayer::PerEdge;
                match (self.edge_table, slot) {
                    (Some(table), Some(slot)) => table[slot],
                    _ => {
                        let mut rng =
                            stream_rng(self.edge_param_master, edge_key(self.n, src, peer));
                        (dists.loss.draw(&mut rng), dists.delay.draw(&mut rng))
                    }
                }
            }
        };
        // 2. Degraded windows (last matching window wins).
        for w in &model.windows {
            if w.contains(now) {
                loss = w.loss;
                delay = w.delay;
                layer = DropLayer::Window;
            }
        }
        // 3. Gilbert–Elliott bad state.
        if let Some(ge) = model.ge {
            if self.edge_bad(now, src, peer, slot) {
                loss = ge.bad_loss;
                delay = ge.bad_delay;
                layer = DropLayer::GeChain;
            }
        }
        // 4. Node outages: a down endpoint loses the message.
        if model.outages.is_some() && (self.node_down(now, src) || self.node_down(now, peer)) {
            loss = 1.0;
            layer = DropLayer::Outage;
        }
        // 5. Partition: cross-cut messages are lost while active.
        if let Some(p) = model.partition {
            if p.active(now) && self.part_of(src) != self.part_of(peer) {
                loss = 1.0;
                layer = DropLayer::Partition;
            }
        }
        LinkConditions { loss, delay, layer }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(model: &FailureModel, n: usize) -> FailureState<'_> {
        FailureState::new(model, n, None, 99)
    }

    #[test]
    fn uniform_model_reduces_to_network_config() {
        let cfg = NetworkConfig::new(0.3, 0.1);
        let m = FailureModel::uniform(cfg);
        assert_eq!(m.effective_uniform(), Some(cfg));
        assert!(!m.needs_edge_params());
        let mut s = state(&m, 10);
        assert_eq!(s.uniform(), Some(cfg));
        assert_eq!(
            s.conditions(0.5, 1, 2, None),
            LinkConditions {
                loss: 0.1,
                delay: 0.3,
                layer: DropLayer::Baseline
            }
        );
    }

    #[test]
    fn fixed_per_edge_also_reduces() {
        let m = FailureModel::uniform(NetworkConfig::default()).with_per_edge(EdgeDists {
            loss: ParamDist::Fixed(0.2),
            delay: ParamDist::Fixed(0.4),
        });
        assert_eq!(m.effective_uniform(), Some(NetworkConfig::new(0.4, 0.2)));
        assert!(!m.needs_edge_params());
    }

    #[test]
    fn structured_layers_defeat_the_reduction() {
        let base = NetworkConfig::default();
        let per_edge = FailureModel::uniform(base).with_per_edge(EdgeDists {
            loss: ParamDist::Uniform { lo: 0.0, hi: 0.4 },
            delay: ParamDist::Fixed(0.0),
        });
        assert_eq!(per_edge.effective_uniform(), None);
        assert!(per_edge.needs_edge_params());
        let windowed = FailureModel::uniform(base).with_window(Window {
            start: 1.0,
            end: 2.0,
            loss: 0.9,
            delay: 0.0,
        });
        assert_eq!(windowed.effective_uniform(), None);
    }

    #[test]
    fn edge_params_symmetric_and_deterministic() {
        let m = FailureModel::uniform(NetworkConfig::default()).with_per_edge(EdgeDists {
            loss: ParamDist::Uniform { lo: 0.1, hi: 0.5 },
            delay: ParamDist::Uniform { lo: 0.0, hi: 1.0 },
        });
        for (u, v) in [(0usize, 1usize), (3, 7), (9, 2)] {
            let a = m.edge_params(10, u, v);
            let b = m.edge_params(10, v, u);
            assert_eq!(a, b, "edge ({u},{v}) params not direction-invariant");
            assert_eq!(a, m.edge_params(10, u, v), "not deterministic");
            assert!((0.1..=0.5).contains(&a.0));
            assert!((0.0..=1.0).contains(&a.1));
        }
        // Different edges draw different parameters (w.h.p.).
        assert_ne!(m.edge_params(10, 0, 1), m.edge_params(10, 0, 2));
        // A different salt redraws the landscape.
        let other = m.clone().with_salt(77);
        assert_ne!(m.edge_params(10, 0, 1), other.edge_params(10, 0, 1));
    }

    #[test]
    fn flaky_dist_hits_requested_fraction() {
        let m = FailureModel::uniform(NetworkConfig::default()).with_per_edge(EdgeDists {
            loss: ParamDist::Flaky {
                frac: 0.2,
                good: 0.0,
                bad: 0.8,
            },
            delay: ParamDist::Fixed(0.0),
        });
        let n = 400usize;
        let mut bad = 0usize;
        let mut total = 0usize;
        for u in 0..n {
            for v in (u + 1)..n {
                total += 1;
                if m.edge_params(n, u, v).0 > 0.0 {
                    bad += 1;
                }
            }
        }
        let frac = bad as f64 / total as f64;
        assert!((frac - 0.2).abs() < 0.01, "flaky fraction {frac}");
    }

    #[test]
    fn window_overrides_only_inside() {
        let m = FailureModel::uniform(NetworkConfig::new(0.0, 0.05)).with_window(Window {
            start: 2.0,
            end: 4.0,
            loss: 0.9,
            delay: 0.5,
        });
        let mut s = state(&m, 10);
        assert_eq!(s.conditions(1.99, 0, 1, None).loss, 0.05);
        assert_eq!(
            s.conditions(2.0, 0, 1, None),
            LinkConditions {
                loss: 0.9,
                delay: 0.5,
                layer: DropLayer::Window
            }
        );
        assert_eq!(s.conditions(3.99, 0, 1, None).loss, 0.9);
        assert_eq!(s.conditions(4.0, 0, 1, None).loss, 0.05, "end is exclusive");
    }

    #[test]
    fn later_window_wins_overlap() {
        let m = FailureModel::uniform(NetworkConfig::default())
            .with_window(Window {
                start: 0.0,
                end: 10.0,
                loss: 0.3,
                delay: 0.0,
            })
            .with_window(Window {
                start: 5.0,
                end: 6.0,
                loss: 0.7,
                delay: 0.0,
            });
        let mut s = state(&m, 4);
        assert_eq!(s.conditions(5.5, 0, 1, None).loss, 0.7);
        assert_eq!(s.conditions(6.5, 0, 1, None).loss, 0.3);
    }

    #[test]
    fn gilbert_elliott_occupancy_matches_stationary_law() {
        let ge = GilbertElliott {
            mean_good: 3.0,
            mean_bad: 1.0,
            bad_loss: 1.0,
            bad_delay: 0.0,
        };
        assert!((ge.stationary_bad() - 0.25).abs() < 1e-12);
        assert!((ge.average_loss(0.0) - 0.25).abs() < 1e-12);
        let m = FailureModel::uniform(NetworkConfig::default()).with_gilbert_elliott(ge);
        let mut s = state(&m, 2_000);
        // Sample many edges at one instant: the fraction bad should sit
        // at the stationary occupancy.
        let mut bad = 0usize;
        let edges = 4_000usize;
        for e in 0..edges {
            if s.conditions(10.0, 0, e % 1_999 + 1, None).loss == 1.0 {
                bad += 1;
            }
        }
        let frac = bad as f64 / edges as f64;
        assert!((frac - 0.25).abs() < 0.03, "bad fraction {frac}");
    }

    #[test]
    fn gilbert_elliott_state_persists_within_a_burst() {
        let ge = GilbertElliott {
            mean_good: 1_000.0,
            mean_bad: 1_000.0,
            bad_loss: 0.8,
            bad_delay: 0.0,
        };
        let m = FailureModel::uniform(NetworkConfig::default()).with_gilbert_elliott(ge);
        let mut s = state(&m, 50);
        // With mean holding times of 1000 ticks, the state observed over
        // the first few ticks is constant per edge.
        for (u, v) in [(0usize, 1usize), (2, 3), (4, 5), (6, 7)] {
            let first = s.conditions(0.1, u, v, None);
            for i in 1..20 {
                let again = s.conditions(0.1 + i as f64 * 0.1, u, v, None);
                assert_eq!(first, again, "edge ({u},{v}) flapped inside a burst");
            }
        }
    }

    #[test]
    fn outage_downs_all_traffic_of_a_down_node() {
        let m = FailureModel::uniform(NetworkConfig::default()).with_outages(NodeOutages {
            frac: 1.0,
            mean_up: 1.0,
            mean_down: 1_000.0,
        });
        let mut s = state(&m, 10);
        // With mean_down ≫ mean_up, essentially every node is down.
        assert!(s.outage_member(3));
        let c = s.conditions(5.0, 3, 4, None);
        assert_eq!(c.loss, 1.0);
    }

    #[test]
    fn outage_membership_is_stable_and_fractional() {
        let m = FailureModel::uniform(NetworkConfig::default()).with_outages(NodeOutages {
            frac: 0.3,
            mean_up: 1.0,
            mean_down: 1.0,
        });
        let s = state(&m, 10_000);
        let members = (0..10_000).filter(|&v| s.outage_member(v)).count();
        let frac = members as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "member fraction {frac}");
        // Stable across states (model-scoped, not trial-scoped).
        let s2 = FailureState::new(&m, 10_000, None, 12345);
        for v in 0..100 {
            assert_eq!(s.outage_member(v), s2.outage_member(v));
        }
    }

    #[test]
    fn partition_silences_cross_cut_edges_only_during_window() {
        let m = FailureModel::uniform(NetworkConfig::default()).with_partition(Partition {
            parts: 2,
            start: 3.0,
            end: 8.0,
        });
        let mut s = state(&m, 100);
        // Find one cross pair and one same-part pair.
        let p0 = s.part_of(0);
        let cross = (1..100).find(|&v| s.part_of(v) != p0).unwrap();
        let same = (1..100).find(|&v| s.part_of(v) == p0).unwrap();
        assert_eq!(s.conditions(2.9, 0, cross, None).loss, 0.0);
        assert_eq!(s.conditions(3.0, 0, cross, None).loss, 1.0);
        assert_eq!(s.conditions(5.0, 0, same, None).loss, 0.0);
        assert_eq!(s.conditions(8.0, 0, cross, None).loss, 0.0);
    }

    #[test]
    fn partition_parts_are_roughly_balanced() {
        let m = FailureModel::uniform(NetworkConfig::default()).with_partition(Partition {
            parts: 4,
            start: 0.0,
            end: 1.0,
        });
        let s = state(&m, 8_000);
        let mut counts = [0usize; 4];
        for v in 0..8_000 {
            counts[s.part_of(v)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / 8_000.0;
            assert!((frac - 0.25).abs() < 0.03, "part {i} holds {frac}");
        }
    }

    #[test]
    fn parse_round_trips_the_kitchen_sink() {
        let base = NetworkConfig::new(0.1, 0.02);
        let m = FailureModel::parse(
            "edge:loss=flaky(0.1,0,0.8),delay=0..0.5; window:10..20,loss=0.5,delay=0.3; \
             ge:up=4,down=2,loss=0.9; outage:frac=0.2,up=8,down=2; \
             partition:parts=3,5..15; salt:42",
            base,
        )
        .unwrap();
        assert_eq!(m.base(), base);
        assert_eq!(
            m.edge_dists(),
            Some(EdgeDists {
                loss: ParamDist::Flaky {
                    frac: 0.1,
                    good: 0.0,
                    bad: 0.8
                },
                delay: ParamDist::Uniform { lo: 0.0, hi: 0.5 },
            })
        );
        assert_eq!(
            m.gilbert_elliott(),
            Some(GilbertElliott {
                mean_good: 4.0,
                mean_bad: 2.0,
                bad_loss: 0.9,
                bad_delay: 0.1, // defaults to the base delay fraction
            })
        );
        assert_eq!(m.salt(), 42);
        assert!(m.label().contains("ge(up=4,down=2,loss=0.9"));
        assert!(m.label().contains("partition(3,5..15)"));
    }

    #[test]
    fn parse_empty_spec_is_the_uniform_model() {
        let base = NetworkConfig::new(0.5, 0.2);
        let m = FailureModel::parse("", base).unwrap();
        assert_eq!(m, FailureModel::uniform(base));
        assert_eq!(m.effective_uniform(), Some(base));
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        let base = NetworkConfig::default();
        for bad in [
            "bogus:1",
            "ge:up=4,down=2",         // missing loss=
            "ge:up=-1,down=2,loss=1", // negative duration
            "partition:parts=1,0..5", // parts < 2
            "partition:parts=2",      // missing range
            "window:20..10",          // inverted range
            "edge:loss=1.5",          // out of [0, 1]
            "edge",                   // missing ':'
        ] {
            assert!(
                FailureModel::parse(bad, base).is_err(),
                "'{bad}' should not parse"
            );
        }
    }

    #[test]
    fn labels_are_compact_and_distinct() {
        let base = NetworkConfig::default();
        assert_eq!(FailureModel::uniform(base).label(), "ideal");
        assert_eq!(
            FailureModel::uniform(NetworkConfig::new(0.0, 0.3)).label(),
            "iid(loss=0.3,delay=0)"
        );
        let ge = FailureModel::parse("ge:up=4,down=4,loss=0.9", base).unwrap();
        assert_eq!(ge.label(), "ge(up=4,down=4,loss=0.9)");
    }

    #[test]
    fn layers_attribute_their_losses() {
        // Each layer, when it is the one that set the loss fraction,
        // owns the attribution.
        let base = NetworkConfig::new(0.0, 0.05);
        let uniform = FailureModel::uniform(base);
        let mut s_base = state(&uniform, 10);
        assert_eq!(
            s_base.conditions(0.0, 0, 1, None).layer,
            DropLayer::Baseline
        );

        let edge = FailureModel::uniform(base).with_per_edge(EdgeDists {
            loss: ParamDist::Uniform { lo: 0.1, hi: 0.5 },
            delay: ParamDist::Fixed(0.0),
        });
        let mut s_edge = state(&edge, 10);
        assert_eq!(s_edge.conditions(0.0, 0, 1, None).layer, DropLayer::PerEdge);

        let outage = FailureModel::uniform(base).with_outages(NodeOutages {
            frac: 1.0,
            mean_up: 1.0,
            mean_down: 1_000.0,
        });
        let mut s_out = state(&outage, 10);
        let c = s_out.conditions(5.0, 3, 4, None);
        assert_eq!((c.loss, c.layer), (1.0, DropLayer::Outage));

        let part = FailureModel::uniform(base).with_partition(Partition {
            parts: 2,
            start: 0.0,
            end: 10.0,
        });
        let mut s_part = state(&part, 100);
        let p0 = s_part.part_of(0);
        let cross = (1..100).find(|&v| s_part.part_of(v) != p0).unwrap();
        let c = s_part.conditions(5.0, 0, cross, None);
        assert_eq!((c.loss, c.layer), (1.0, DropLayer::Partition));
        let same = (1..100).find(|&v| s_part.part_of(v) == p0).unwrap();
        assert_eq!(
            s_part.conditions(5.0, 0, same, None).layer,
            DropLayer::Baseline,
            "a non-overriding layer must not claim the loss"
        );

        let ge = FailureModel::uniform(base).with_gilbert_elliott(GilbertElliott {
            mean_good: 1.0,
            mean_bad: 1_000.0,
            bad_loss: 0.7,
            bad_delay: 0.0,
        });
        let mut s_ge = state(&ge, 200);
        let bad = (0..200)
            .map(|v| s_ge.conditions(50.0, 0, v + 1, None))
            .find(|c| c.loss == 0.7)
            .expect("some edge is in the bad regime");
        assert_eq!(bad.layer, DropLayer::GeChain);
    }

    #[test]
    fn dense_ge_slots_match_keyed_chains() {
        // A slot-indexed chain copy and the shared keyed chain have the
        // same trajectory: both are pure functions of the unordered edge
        // seed, queried monotonically.
        let m = FailureModel::parse("ge:up=2,down=2,loss=1", NetworkConfig::default()).unwrap();
        let n = 40usize;
        // Directed slots: (u, v) → u * n + v, both directions present.
        let mut keyed = FailureState::new(&m, n, None, 13);
        let mut dense = FailureState::new(&m, n, None, 13).with_dense_ge_slots(n * n);
        for i in 0..400 {
            let t = i as f64 * 0.07;
            let (u, v) = (i % n, (i * 7 + 1) % n);
            let slot = u * n + v;
            assert_eq!(
                keyed.conditions(t, u, v, None),
                dense.conditions(t, u, v, Some(slot)),
                "slot chain diverged at t={t} edge ({u},{v})"
            );
        }
    }

    #[test]
    fn chain_is_reproducible_per_trial_master() {
        let m = FailureModel::parse("ge:up=2,down=2,loss=1", NetworkConfig::default()).unwrap();
        let mut a = FailureState::new(&m, 100, None, 7);
        let mut b = FailureState::new(&m, 100, None, 7);
        let mut c = FailureState::new(&m, 100, None, 8);
        let mut diverged = false;
        for i in 0..200 {
            let t = i as f64 * 0.1;
            let (u, v) = (i % 10, 10 + i % 7);
            assert_eq!(a.conditions(t, u, v, None), b.conditions(t, u, v, None));
            if a.conditions(t, u, v, None) != c.conditions(t, u, v, None) {
                diverged = true;
            }
        }
        assert!(diverged, "distinct trial masters must decorrelate chains");
    }
}
