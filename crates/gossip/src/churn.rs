//! Dynamic membership (churn): Poisson join/crash/leave/rejoin processes
//! layered on top of a static base topology.
//!
//! The paper's model fixes the population for the whole run.  Real gossip
//! deployments don't get that luxury: machines **crash** (state lost,
//! in-flight traffic orphaned), **leave** gracefully, **rejoin** later —
//! either with their stale pre-departure color or wiped fresh — and brand
//! new nodes **join** and must adopt some initial opinion.  The paper's
//! own robustness theorem (Becchetti et al., SPAA 2014) bounds an
//! adversary corrupting `O(√n)` nodes per round; fresh-uniform rejoin
//! churn is the natural stochastic analogue of that adversary, which is
//! what experiment e18 probes for a phase boundary.
//!
//! # Model
//!
//! [`ChurnModel`] holds four per-tick Poisson rates:
//!
//! * `crash` — per **alive** node; the node's color mass leaves the
//!   tally, its inbox is flushed, and any queued commit or in-flight
//!   push to it is orphaned.
//! * `leave` — per alive node; identical mechanics to a crash (one
//!   simulated process cannot distinguish them) but tallied separately
//!   so experiments can attribute decay to failures vs. planned exits.
//! * `rejoin` — per **dead** node; the node re-enters either with its
//!   stale pre-departure color (`state=stale`, the default) or with a
//!   fresh color drawn by the configured [`InitPolicy`]
//!   (`state=fresh`).
//! * `join` — population-level (not per node); activates a node from
//!   the finite `spare` pool, attaches it to `attach` random alive
//!   anchors via overlay edges, and colors it by the [`InitPolicy`].
//!
//! All scheduling randomness comes from one dedicated per-trial stream
//! (stream 6; see `engine::STREAM_CHURN`), so enabling churn never
//! perturbs placement, scheduling, update, message, failure, or inbox
//! draws — and a model whose four rates are all zero is **bit-identical**
//! to no churn at all (pinned in `tests/determinism.rs`).
//!
//! # Scheduling
//!
//! Events are competing exponentials over the total rate
//! `R = (crash + leave)·alive + rejoin·dead + join·[spares > 0 ∧ alive > 0]`.
//! Only churn events change membership counts, so `R` is constant
//! between consecutive churn events and the next event time needs
//! rescheduling only after one fires.  The event *type* is picked
//! proportionally at fire time from a fresh uniform draw.

use crate::scheduler::exp1;
use plurality_sampling::Xoshiro256PlusPlus;
use plurality_topology::Membership;
use rand::Rng;

/// How an arriving node (fresh join, or rejoin with `state=fresh`)
/// chooses its initial color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitPolicy {
    /// Uniform over the experiment's `k` initial colors — the
    /// adversarial choice: arrivals inject opinion mass against the
    /// plurality at rate `(k−1)/k`.
    #[default]
    FreshUniform,
    /// Copy the current color of a uniformly random **alive** node — the
    /// well-behaved choice: arrivals sample the present consensus
    /// distribution, so churn is (in expectation) drift-free.
    CopyRandomAlive,
    /// Start in the undecided state — only meaningful for dynamics with
    /// an undecided color (`undecided-state`); the engine rejects it
    /// otherwise.
    Undecided,
}

impl InitPolicy {
    /// Parse a DSL name: `uniform`, `copy`, or `undecided`.
    ///
    /// # Errors
    /// Returns the unknown name.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "uniform" => Ok(Self::FreshUniform),
            "copy" => Ok(Self::CopyRandomAlive),
            "undecided" => Ok(Self::Undecided),
            other => Err(format!(
                "unknown init policy '{other}' (expected 'uniform', 'copy', or 'undecided')"
            )),
        }
    }

    /// DSL name, round-trippable through [`Self::from_name`].
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::FreshUniform => "uniform",
            Self::CopyRandomAlive => "copy",
            Self::Undecided => "undecided",
        }
    }
}

/// Default number of overlay anchors a joining spare attaches to.
pub const DEFAULT_ATTACH: usize = 8;

/// The composed churn model — see the module docs for semantics.  Build
/// with [`ChurnModel::none`] plus the `with_*` layers, or parse the CLI
/// scenario DSL with [`ChurnModel::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnModel {
    /// Crash rate per alive node per tick.
    pub crash: f64,
    /// Graceful-leave rate per alive node per tick.
    pub leave: f64,
    /// Rejoin rate per dead node per tick.
    pub rejoin: f64,
    /// Population-level join rate per tick (spares permitting).
    pub join: f64,
    /// Size of the spare pool joins draw from.
    pub spare: usize,
    /// Overlay anchors per join (≥ 1).
    pub attach: usize,
    /// Rejoining nodes redraw their color via `init` instead of keeping
    /// their stale pre-departure color.
    pub rejoin_fresh: bool,
    /// Initial-color policy for arrivals (joins, and rejoins when
    /// [`Self::rejoin_fresh`]).
    pub init: InitPolicy,
}

impl Default for ChurnModel {
    fn default() -> Self {
        Self::none()
    }
}

impl ChurnModel {
    /// The inert model: every rate zero, no spares.  Running with it is
    /// bit-identical to running without churn at all.
    #[must_use]
    pub fn none() -> Self {
        Self {
            crash: 0.0,
            leave: 0.0,
            rejoin: 0.0,
            join: 0.0,
            spare: 0,
            attach: DEFAULT_ATTACH,
            rejoin_fresh: false,
            init: InitPolicy::FreshUniform,
        }
    }

    /// Set the per-alive-node crash rate.
    #[must_use]
    pub fn with_crash(mut self, rate: f64) -> Self {
        self.crash = rate;
        self
    }

    /// Set the per-alive-node graceful-leave rate.
    #[must_use]
    pub fn with_leave(mut self, rate: f64) -> Self {
        self.leave = rate;
        self
    }

    /// Set the per-dead-node rejoin rate; `fresh` redraws the color via
    /// the init policy instead of restoring the stale one.
    #[must_use]
    pub fn with_rejoin(mut self, rate: f64, fresh: bool) -> Self {
        self.rejoin = rate;
        self.rejoin_fresh = fresh;
        self
    }

    /// Set the population-level join rate and the spare pool it draws
    /// from.
    #[must_use]
    pub fn with_join(mut self, rate: f64, spare: usize) -> Self {
        self.join = rate;
        self.spare = spare;
        self
    }

    /// Set the arrival init-color policy.
    #[must_use]
    pub fn with_init(mut self, init: InitPolicy) -> Self {
        self.init = init;
        self
    }

    /// Does any process have a positive rate?
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.crash > 0.0 || self.leave > 0.0 || self.rejoin > 0.0 || self.join > 0.0
    }

    /// Check rate/knob sanity (parse output is always valid; this guards
    /// hand-built models).
    ///
    /// # Errors
    /// Returns a description of the first bad knob.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("crash", self.crash),
            ("leave", self.leave),
            ("rejoin", self.rejoin),
            ("join", self.join),
        ] {
            if !(rate.is_finite() && rate >= 0.0) {
                return Err(format!("{name}: rate {rate} must be finite and ≥ 0"));
            }
        }
        if self.attach == 0 {
            return Err("join: attach must be ≥ 1".into());
        }
        if self.join > 0.0 && self.spare == 0 {
            return Err("join: a positive join rate needs spare ≥ 1".into());
        }
        Ok(())
    }

    /// Parse the churn scenario DSL: semicolon-separated clauses, one
    /// per process (mirrors the `--failure` DSL).
    ///
    /// ```text
    /// crash:RATE                                    per alive node per tick
    /// leave:RATE                                    per alive node per tick
    /// rejoin:RATE[,state=stale|fresh]               per dead node per tick
    /// join:RATE[,spare=N][,attach=D][,init=uniform|copy|undecided]
    /// ```
    ///
    /// Example: `"crash:0.01;rejoin:0.1,state=fresh"`.
    ///
    /// # Errors
    /// Returns a description of the first malformed clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut model = Self::none();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (kind, rest) = clause
                .split_once(':')
                .ok_or_else(|| format!("clause '{clause}' is missing ':'"))?;
            match kind.trim() {
                "crash" => model.crash = parse_rate(rest, "crash rate")?,
                "leave" => model.leave = parse_rate(rest, "leave rate")?,
                "rejoin" => {
                    let mut rate = None;
                    for item in split_args(rest) {
                        match item.split_once('=') {
                            Some(("state", "stale")) => model.rejoin_fresh = false,
                            Some(("state", "fresh")) => model.rejoin_fresh = true,
                            Some(("state", v)) => {
                                return Err(format!(
                                    "rejoin: state must be 'stale' or 'fresh', got '{v}'"
                                ));
                            }
                            None => rate = Some(parse_rate(item, "rejoin rate")?),
                            _ => return Err(format!("rejoin: unknown item '{item}'")),
                        }
                    }
                    model.rejoin =
                        rate.ok_or_else(|| format!("rejoin: missing rate in '{rest}'"))?;
                }
                "join" => {
                    let mut rate = None;
                    for item in split_args(rest) {
                        match item.split_once('=') {
                            Some(("spare", v)) => {
                                model.spare = v.trim().parse::<usize>().map_err(|_| {
                                    format!("join: spare must be an integer, got '{v}'")
                                })?;
                            }
                            Some(("attach", v)) => {
                                model.attach = v.trim().parse::<usize>().map_err(|_| {
                                    format!("join: attach must be an integer, got '{v}'")
                                })?;
                            }
                            Some(("init", v)) => model.init = InitPolicy::from_name(v.trim())?,
                            None => rate = Some(parse_rate(item, "join rate")?),
                            _ => return Err(format!("join: unknown item '{item}'")),
                        }
                    }
                    model.join = rate.ok_or_else(|| format!("join: missing rate in '{rest}'"))?;
                }
                other => {
                    return Err(format!(
                        "unknown churn clause '{other}' (expected crash, leave, rejoin, or join)"
                    ));
                }
            }
        }
        model.validate()?;
        Ok(model)
    }

    /// Compact label for tables: clauses joined by `+`, or `none` when
    /// every rate is zero.
    #[must_use]
    pub fn label(&self) -> String {
        if !self.is_active() {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        if self.crash > 0.0 {
            parts.push(format!("crash:{}", self.crash));
        }
        if self.leave > 0.0 {
            parts.push(format!("leave:{}", self.leave));
        }
        if self.rejoin > 0.0 {
            let state = if self.rejoin_fresh { "fresh" } else { "stale" };
            parts.push(format!("rejoin:{},state={state}", self.rejoin));
        }
        if self.join > 0.0 {
            parts.push(format!(
                "join:{},spare={},attach={},init={}",
                self.join,
                self.spare,
                self.attach,
                self.init.name()
            ));
        }
        parts.join("+")
    }
}

/// Which churn process fires next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChurnEvent {
    /// An alive node crashes (state lost, traffic orphaned).
    Crash,
    /// An alive node leaves gracefully (same mechanics, separate tally).
    Leave,
    /// A dead node re-enters (stale or fresh color per the model).
    Rejoin,
    /// A spare joins the population.
    Join,
}

/// Live per-trial churn process state: the model, its dedicated RNG
/// stream, and the scheduled next event time.
#[derive(Debug)]
pub(crate) struct ChurnState {
    model: ChurnModel,
    rng: Xoshiro256PlusPlus,
    next: f64,
}

impl ChurnState {
    /// Fresh state; call [`Self::schedule`] before the first use.
    pub(crate) fn new(model: ChurnModel, rng: Xoshiro256PlusPlus) -> Self {
        Self {
            model,
            rng,
            next: f64::INFINITY,
        }
    }

    /// The dedicated churn RNG, shared with arrival init-color draws so
    /// *all* churn randomness lives on one stream.
    pub(crate) fn rng_mut(&mut self) -> &mut Xoshiro256PlusPlus {
        &mut self.rng
    }

    /// Scheduled next event time (∞ when no process can fire).
    pub(crate) fn next_time(&self) -> f64 {
        self.next
    }

    /// Total event rate under the current membership counts.
    fn total_rate(&self, membership: &Membership) -> f64 {
        let alive = membership.alive_count() as f64;
        let dead = membership.dead_count() as f64;
        let mut r = (self.model.crash + self.model.leave) * alive + self.model.rejoin * dead;
        if self.model.join > 0.0 && membership.spares_left() > 0 && membership.alive_count() > 0 {
            r += self.model.join;
        }
        r
    }

    /// (Re)schedule the next event from `now`.  Correct to call only
    /// after membership changes: the total rate is constant in between,
    /// so the exponential gap drawn here stays valid until the event
    /// fires.
    pub(crate) fn schedule(&mut self, now: f64, membership: &Membership) {
        let r = self.total_rate(membership);
        self.next = if r > 0.0 {
            now + exp1(&mut self.rng) / r
        } else {
            f64::INFINITY
        };
    }

    /// Pick which process fires, proportionally to the per-process rates
    /// at the current membership counts (unchanged since
    /// [`Self::schedule`] — only churn events mutate membership).
    /// Returns `None` if every rate has collapsed to zero.
    pub(crate) fn pick(&mut self, membership: &Membership) -> Option<ChurnEvent> {
        let r = self.total_rate(membership);
        if r <= 0.0 {
            return None;
        }
        let alive = membership.alive_count() as f64;
        let dead = membership.dead_count() as f64;
        let mut u = self.rng.gen::<f64>() * r;
        u -= self.model.crash * alive;
        if u < 0.0 {
            return Some(ChurnEvent::Crash);
        }
        u -= self.model.leave * alive;
        if u < 0.0 {
            return Some(ChurnEvent::Leave);
        }
        u -= self.model.rejoin * dead;
        if u < 0.0 {
            return Some(ChurnEvent::Rejoin);
        }
        Some(ChurnEvent::Join)
    }
}

fn parse_rate(s: &str, what: &str) -> Result<f64, String> {
    let v = s
        .trim()
        .parse::<f64>()
        .map_err(|_| format!("{what}: expected a number, got '{s}'"))?;
    if v.is_finite() && v >= 0.0 {
        Ok(v)
    } else {
        Err(format!("{what}: {v} must be finite and ≥ 0"))
    }
}

/// Split a clause body on top-level commas (future-proof against
/// parenthesised values, same contract as the failure DSL's splitter).
fn split_args(rest: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                items.push(rest[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(rest[start..].trim());
    items.retain(|s| !s.is_empty());
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_sampling::stream_rng;

    #[test]
    fn parse_full_spec() {
        let m = ChurnModel::parse(
            "crash:0.01;leave:0.005;rejoin:0.1,state=fresh;join:0.2,spare=32,attach=4,init=copy",
        )
        .unwrap();
        assert_eq!(m.crash, 0.01);
        assert_eq!(m.leave, 0.005);
        assert_eq!(m.rejoin, 0.1);
        assert!(m.rejoin_fresh);
        assert_eq!(m.join, 0.2);
        assert_eq!(m.spare, 32);
        assert_eq!(m.attach, 4);
        assert_eq!(m.init, InitPolicy::CopyRandomAlive);
        assert!(m.is_active());
    }

    #[test]
    fn parse_defaults_and_empty() {
        let m = ChurnModel::parse("").unwrap();
        assert_eq!(m, ChurnModel::none());
        assert!(!m.is_active());
        assert_eq!(m.label(), "none");
        let m = ChurnModel::parse("rejoin:0.5").unwrap();
        assert!(!m.rejoin_fresh, "stale is the rejoin default");
        let m = ChurnModel::parse("join:1,spare=8").unwrap();
        assert_eq!(m.attach, DEFAULT_ATTACH);
        assert_eq!(m.init, InitPolicy::FreshUniform);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "crash",
            "crash:x",
            "crash:-1",
            "crash:inf",
            "flood:1",
            "rejoin:0.1,state=weird",
            "rejoin:state=fresh",
            "join:1,spare=8,init=psychic",
            "join:1,spare=-3",
            "join:1", // positive join rate without spares
            "join:1,spare=8,attach=0",
        ] {
            assert!(ChurnModel::parse(bad).is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn labels_describe_active_clauses() {
        let m = ChurnModel::parse("crash:0.01;rejoin:0.1,state=fresh").unwrap();
        assert_eq!(m.label(), "crash:0.01+rejoin:0.1,state=fresh");
        let m = ChurnModel::parse("join:0.2,spare=8").unwrap();
        assert_eq!(m.label(), "join:0.2,spare=8,attach=8,init=uniform");
    }

    #[test]
    fn init_policy_names_roundtrip() {
        for p in [
            InitPolicy::FreshUniform,
            InitPolicy::CopyRandomAlive,
            InitPolicy::Undecided,
        ] {
            assert_eq!(InitPolicy::from_name(p.name()).unwrap(), p);
        }
        assert!(InitPolicy::from_name("majority").is_err());
    }

    #[test]
    fn scheduling_is_deterministic_and_rate_scaled() {
        let model = ChurnModel::parse("crash:0.5;rejoin:1").unwrap();
        let membership = Membership::new(100, 0);
        let mut a = ChurnState::new(model.clone(), stream_rng(7, 6));
        let mut b = ChurnState::new(model, stream_rng(7, 6));
        a.schedule(0.0, &membership);
        b.schedule(0.0, &membership);
        assert_eq!(a.next_time(), b.next_time(), "same stream, same gap");
        assert!(a.next_time() > 0.0 && a.next_time().is_finite());
        assert_eq!(a.pick(&membership), b.pick(&membership));
        // All-zero rates never fire.
        let mut idle = ChurnState::new(ChurnModel::none(), stream_rng(7, 6));
        idle.schedule(0.0, &membership);
        assert_eq!(idle.next_time(), f64::INFINITY);
        assert_eq!(idle.pick(&membership), None);
    }

    #[test]
    fn pick_tracks_membership_composition() {
        // With everyone alive, a crash-only model can only pick Crash;
        // after the population dies, only Rejoin has mass.
        let model = ChurnModel::parse("crash:1;rejoin:1").unwrap();
        let mut membership = Membership::new(10, 0);
        let mut st = ChurnState::new(model, stream_rng(3, 6));
        let mut aux = stream_rng(99, 0);
        assert_eq!(st.pick(&membership), Some(ChurnEvent::Crash));
        for _ in 0..10 {
            membership.crash_random(&mut aux);
        }
        assert_eq!(membership.alive_count(), 0);
        assert_eq!(st.pick(&membership), Some(ChurnEvent::Rejoin));
    }

    #[test]
    fn join_requires_spares_and_an_anchor() {
        let model = ChurnModel::parse("join:5,spare=4").unwrap();
        let membership = Membership::new(10, 4);
        let mut st = ChurnState::new(model.clone(), stream_rng(1, 6));
        assert_eq!(st.pick(&membership), Some(ChurnEvent::Join));
        // Exhausted spare pool: the join term drops out of the total
        // rate and the model goes quiet.
        let empty_pool = Membership::new(10, 0);
        let mut st = ChurnState::new(model, stream_rng(1, 6));
        st.schedule(0.0, &empty_pool);
        assert_eq!(st.next_time(), f64::INFINITY);
        assert_eq!(st.pick(&empty_pool), None);
    }
}
