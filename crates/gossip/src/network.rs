//! Network-condition model: per-message loss and delay with
//! deterministic per-message RNG streams.
//!
//! [`NetworkConfig`] is the i.i.d. baseline; structured failure models
//! (per-edge, time-varying, correlated — see [`crate::failure`]) route
//! through the same per-message streams via [`MessageStreams::next_fate_in`]
//! and [`MessageStreams::next_exchange_in`], which reproduce the plain
//! [`NetworkConfig`] draws **bit for bit** when the model reduces to the
//! degenerate uniform case.

use crate::failure::{DropLayer, FailureState, LinkConditions};
use plurality_sampling::{stream_rng, Xoshiro256PlusPlus};
use rand::Rng;

/// Unreliable-network parameters applied to every PULL sample request.
///
/// Both fields are probabilities in `[0, 1]`.  `NetworkConfig::default()`
/// is the ideal network (no loss, no delay), under which the gossip
/// engine reduces to the pure asynchronous dynamics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Probability that a response is delayed by an `Exp(1)` extra time
    /// (in ticks) rather than arriving instantly.
    pub delay_fraction: f64,
    /// Probability that a sample request is dropped entirely (the
    /// requester falls back to its own current state).
    pub loss_fraction: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            delay_fraction: 0.0,
            loss_fraction: 0.0,
        }
    }
}

impl NetworkConfig {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics if either fraction is outside `[0, 1]` or not finite.
    #[must_use]
    pub fn new(delay_fraction: f64, loss_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&delay_fraction),
            "delay_fraction = {delay_fraction} out of [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&loss_fraction),
            "loss_fraction = {loss_fraction} out of [0, 1]"
        );
        Self {
            delay_fraction,
            loss_fraction,
        }
    }

    /// Is this the ideal (lossless, instantaneous) network?
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        self.delay_fraction == 0.0 && self.loss_fraction == 0.0
    }
}

/// The fate of one sample-request message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MessageFate {
    /// The request was dropped; no response will arrive.
    Lost {
        /// The failure layer charged with the drop (always
        /// [`DropLayer::Baseline`] on the uniform i.i.d. paths).
        layer: DropLayer,
    },
    /// The response arrives instantly.
    Delivered {
        /// Index of the peer that answered.
        peer: usize,
    },
    /// The response arrives `extra_ticks` later than the request.
    Delayed {
        /// Index of the peer that answered.
        peer: usize,
        /// Additional in-flight time, in ticks (`Exp(1)`-distributed).
        extra_ticks: f64,
    },
}

/// The fate of one *leg* of a bidirectional PUSH-PULL exchange (the peer
/// is shared by both legs; loss and delay strike each leg independently).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LegFate {
    /// This leg's payload is dropped.
    Lost {
        /// The failure layer charged with the drop.
        layer: DropLayer,
    },
    /// This leg's payload arrives instantly.
    Instant,
    /// This leg's payload arrives `extra_ticks` later.
    Delayed {
        /// Additional in-flight time, in ticks (`Exp(1)`-distributed).
        extra_ticks: f64,
    },
}

/// The fate of one bidirectional PUSH-PULL exchange: the caller pulls the
/// peer's color (the `pull` leg) while its own color travels to the peer
/// (the `push` leg).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeFate {
    /// Index of the contacted peer.
    pub peer: usize,
    /// Peer → caller leg (the caller's sample).
    pub pull: LegFate,
    /// Caller → peer leg (lands in the peer's inbox).
    pub push: LegFate,
}

/// Deterministic per-message randomness.
///
/// Message `m` of a trial draws everything about itself — loss, peer
/// choice, delay flag, and delay duration, in that fixed order — from
/// `stream_rng(message_master, m)`.  Two trials with the same seed agree
/// on every message's fate regardless of what else consumed randomness.
#[derive(Debug)]
pub struct MessageStreams {
    master: u64,
    next_index: u64,
}

impl MessageStreams {
    /// Streams rooted at `message_master` (derive it from the trial seed).
    #[must_use]
    pub fn new(message_master: u64) -> Self {
        Self {
            master: message_master,
            next_index: 0,
        }
    }

    /// Number of messages issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.next_index
    }

    /// Decide the fate of the next message: a PULL sample request from
    /// `node`, whose peer is drawn via the topology sampler `sample_peer`.
    pub fn next_fate(
        &mut self,
        network: &NetworkConfig,
        sample_peer: impl FnOnce(&mut Xoshiro256PlusPlus) -> usize,
    ) -> MessageFate {
        let mut rng = stream_rng(self.master, self.next_index);
        self.next_index += 1;

        if network.loss_fraction > 0.0 && rng.gen::<f64>() < network.loss_fraction {
            return MessageFate::Lost {
                layer: DropLayer::Baseline,
            };
        }
        let peer = sample_peer(&mut rng);
        if network.delay_fraction > 0.0 && rng.gen::<f64>() < network.delay_fraction {
            let extra_ticks = crate::scheduler::exp1(&mut rng);
            return MessageFate::Delayed { peer, extra_ticks };
        }
        MessageFate::Delivered { peer }
    }

    /// Decide the fate of the next message when it is a bidirectional
    /// PUSH-PULL exchange: one peer draw, then loss/delay independently
    /// per leg (pull leg first, then push leg — a fixed order within the
    /// message's own stream, so exchanges stay deterministic per index).
    pub fn next_exchange(
        &mut self,
        network: &NetworkConfig,
        sample_peer: impl FnOnce(&mut Xoshiro256PlusPlus) -> usize,
    ) -> ExchangeFate {
        let mut rng = stream_rng(self.master, self.next_index);
        self.next_index += 1;

        let peer = sample_peer(&mut rng);
        let pull = leg_fate(network, &mut rng);
        let push = leg_fate(network, &mut rng);
        ExchangeFate { peer, pull, push }
    }

    /// Decide the fate of the next message under a structured
    /// [`crate::FailureModel`] (animated by `state`), for a message sent
    /// by `src` at simulated time `now`.
    ///
    /// `sample_peer` returns the drawn peer plus its dense directed CSR
    /// edge slot when the topology has one (used to look per-edge
    /// parameters up in a precomputed table).
    ///
    /// Draw order within the message's stream:
    ///
    /// * **degenerate model** (reduces to a uniform [`NetworkConfig`]) —
    ///   exactly the [`Self::next_fate`] order: conditional loss coin,
    ///   peer, conditional delay coin, duration.  Bit-identical.
    /// * **structured model** — the peer must be known before the edge's
    ///   conditions can be resolved, so the order becomes: peer, loss
    ///   coin (always consumed, even at loss 0), then — only when the
    ///   message survives loss — the delay coin, and a duration if
    ///   delayed.
    pub fn next_fate_in(
        &mut self,
        state: &mut FailureState<'_>,
        now: f64,
        src: usize,
        sample_peer: impl FnOnce(&mut Xoshiro256PlusPlus) -> (usize, Option<usize>),
    ) -> MessageFate {
        let mut rng = stream_rng(self.master, self.next_index);
        self.next_index += 1;

        if let Some(network) = state.uniform() {
            // Degenerate case: replicate the legacy draws bit for bit.
            if network.loss_fraction > 0.0 && rng.gen::<f64>() < network.loss_fraction {
                return MessageFate::Lost {
                    layer: DropLayer::Baseline,
                };
            }
            let (peer, _) = sample_peer(&mut rng);
            if network.delay_fraction > 0.0 && rng.gen::<f64>() < network.delay_fraction {
                let extra_ticks = crate::scheduler::exp1(&mut rng);
                return MessageFate::Delayed { peer, extra_ticks };
            }
            return MessageFate::Delivered { peer };
        }

        let (peer, slot) = sample_peer(&mut rng);
        let link = state.conditions(now, src, peer, slot);
        if rng.gen::<f64>() < link.loss {
            return MessageFate::Lost { layer: link.layer };
        }
        if rng.gen::<f64>() < link.delay {
            let extra_ticks = crate::scheduler::exp1(&mut rng);
            return MessageFate::Delayed { peer, extra_ticks };
        }
        MessageFate::Delivered { peer }
    }

    /// [`Self::next_exchange`] under a structured failure model: one
    /// peer draw, one condition resolution (both legs ride the same
    /// edge at the same instant), then per-leg loss/delay draws — pull
    /// leg first, then push leg, as in the uniform path.
    pub fn next_exchange_in(
        &mut self,
        state: &mut FailureState<'_>,
        now: f64,
        src: usize,
        sample_peer: impl FnOnce(&mut Xoshiro256PlusPlus) -> (usize, Option<usize>),
    ) -> ExchangeFate {
        let mut rng = stream_rng(self.master, self.next_index);
        self.next_index += 1;

        if let Some(network) = state.uniform() {
            let (peer, _) = sample_peer(&mut rng);
            let pull = leg_fate(&network, &mut rng);
            let push = leg_fate(&network, &mut rng);
            return ExchangeFate { peer, pull, push };
        }

        let (peer, slot) = sample_peer(&mut rng);
        let link = state.conditions(now, src, peer, slot);
        let pull = leg_fate_under(link, &mut rng);
        let push = leg_fate_under(link, &mut rng);
        ExchangeFate { peer, pull, push }
    }
}

/// Draw one leg's fate under resolved structured conditions.  Unlike
/// [`leg_fate`], the coins are consumed unconditionally on the resolved
/// *values* (a zero fraction still costs its draw) — but a leg lost to
/// the loss coin returns before the delay coin, so later draws in the
/// same message stream do shift with earlier outcomes.  That is fine:
/// every message owns its stream, so determinism never depends on a
/// fixed within-message draw count.
fn leg_fate_under(link: LinkConditions, rng: &mut Xoshiro256PlusPlus) -> LegFate {
    if rng.gen::<f64>() < link.loss {
        return LegFate::Lost { layer: link.layer };
    }
    if rng.gen::<f64>() < link.delay {
        return LegFate::Delayed {
            extra_ticks: crate::scheduler::exp1(rng),
        };
    }
    LegFate::Instant
}

/// Draw one leg's fate: loss check, then delay check (plus duration).
fn leg_fate(network: &NetworkConfig, rng: &mut Xoshiro256PlusPlus) -> LegFate {
    if network.loss_fraction > 0.0 && rng.gen::<f64>() < network.loss_fraction {
        return LegFate::Lost {
            layer: DropLayer::Baseline,
        };
    }
    if network.delay_fraction > 0.0 && rng.gen::<f64>() < network.delay_fraction {
        return LegFate::Delayed {
            extra_ticks: crate::scheduler::exp1(rng),
        };
    }
    LegFate::Instant
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fate_of(streams: &mut MessageStreams, net: &NetworkConfig) -> MessageFate {
        streams.next_fate(net, |rng| rng.gen_range(0..10usize))
    }

    #[test]
    fn ideal_network_always_delivers() {
        let net = NetworkConfig::default();
        let mut ms = MessageStreams::new(1);
        for _ in 0..1000 {
            assert!(matches!(
                fate_of(&mut ms, &net),
                MessageFate::Delivered { .. }
            ));
        }
    }

    #[test]
    fn full_loss_drops_everything() {
        let net = NetworkConfig::new(0.0, 1.0);
        let mut ms = MessageStreams::new(2);
        for _ in 0..100 {
            assert_eq!(
                fate_of(&mut ms, &net),
                MessageFate::Lost {
                    layer: DropLayer::Baseline
                }
            );
        }
    }

    #[test]
    fn loss_rate_matches_parameter() {
        let net = NetworkConfig::new(0.0, 0.3);
        let mut ms = MessageStreams::new(3);
        let trials = 50_000;
        let lost = (0..trials)
            .filter(|_| matches!(fate_of(&mut ms, &net), MessageFate::Lost { .. }))
            .count();
        let expect = trials as f64 * 0.3;
        let sigma = (trials as f64 * 0.3 * 0.7).sqrt();
        assert!(
            ((lost as f64) - expect).abs() < 5.0 * sigma,
            "lost = {lost}, expected ≈ {expect}"
        );
    }

    #[test]
    fn delay_durations_look_exponential() {
        let net = NetworkConfig::new(1.0, 0.0);
        let mut ms = MessageStreams::new(4);
        let trials = 50_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            match fate_of(&mut ms, &net) {
                MessageFate::Delayed { extra_ticks, .. } => {
                    assert!(extra_ticks >= 0.0);
                    sum += extra_ticks;
                }
                other => panic!("expected delay, got {other:?}"),
            }
        }
        let mean = sum / trials as f64;
        // Exp(1): mean 1, σ_mean = 1/√trials ≈ 0.0045.
        assert!((mean - 1.0).abs() < 0.03, "mean = {mean}");
    }

    #[test]
    fn messages_are_deterministic_per_index() {
        let net = NetworkConfig::new(0.5, 0.2);
        let mut a = MessageStreams::new(9);
        let mut b = MessageStreams::new(9);
        for _ in 0..200 {
            assert_eq!(fate_of(&mut a, &net), fate_of(&mut b, &net));
        }
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn invalid_fraction_rejected() {
        let _ = NetworkConfig::new(1.5, 0.0);
    }

    #[test]
    fn ideal_exchange_delivers_both_legs() {
        let net = NetworkConfig::default();
        let mut ms = MessageStreams::new(5);
        for _ in 0..500 {
            let x = ms.next_exchange(&net, |rng| rng.gen_range(0..10usize));
            assert!(x.peer < 10);
            assert_eq!(x.pull, LegFate::Instant);
            assert_eq!(x.push, LegFate::Instant);
        }
    }

    #[test]
    fn exchange_legs_fail_independently() {
        // With loss 0.5 the four (pull, push) loss patterns must each
        // show up at ≈ 1/4 — the legs may not share one coin.
        let net = NetworkConfig::new(0.0, 0.5);
        let mut ms = MessageStreams::new(6);
        let trials = 40_000;
        let mut both = 0usize;
        let mut pull_only = 0usize;
        let mut push_only = 0usize;
        let mut neither = 0usize;
        for _ in 0..trials {
            let x = ms.next_exchange(&net, |rng| rng.gen_range(0..10usize));
            match (
                matches!(x.pull, LegFate::Lost { .. }),
                matches!(x.push, LegFate::Lost { .. }),
            ) {
                (true, true) => both += 1,
                (true, false) => pull_only += 1,
                (false, true) => push_only += 1,
                (false, false) => neither += 1,
            }
        }
        for (label, count) in [
            ("both", both),
            ("pull-only", pull_only),
            ("push-only", push_only),
            ("neither", neither),
        ] {
            let frac = count as f64 / trials as f64;
            assert!(
                (frac - 0.25).abs() < 0.02,
                "loss pattern {label} at {frac}, expected ≈ 0.25"
            );
        }
    }

    #[test]
    fn exchanges_are_deterministic_per_index() {
        let net = NetworkConfig::new(0.4, 0.3);
        let mut a = MessageStreams::new(12);
        let mut b = MessageStreams::new(12);
        for _ in 0..200 {
            let xa = a.next_exchange(&net, |rng| rng.gen_range(0..7usize));
            let xb = b.next_exchange(&net, |rng| rng.gen_range(0..7usize));
            assert_eq!(xa, xb);
        }
    }
}
