//! Gossip exchange modes: who learns whose color when a node activates.
//!
//! The paper's dynamics are stated in the uniform-PULL model (every node
//! *reads* random peers).  Its companion work — *Plurality Consensus in
//! the Gossip Model* (Becchetti et al. 2014) — studies the symmetric
//! PUSH and PUSH-PULL variants, which this module expresses:
//!
//! * [`ExchangeMode::Pull`] — the activating node issues one PULL sample
//!   request per sample its rule draws and recolors from the responses
//!   (PR 1 semantics, bit-for-bit).
//! * [`ExchangeMode::Push`] — the activating node *sends* its current
//!   color to one random peer per activation (the gossip model's "one
//!   call per activation").  Received colors accumulate in the peer's
//!   [`Inbox`]; a node applies its update rule at its own activation
//!   **only when the inbox holds enough samples** — otherwise the update
//!   is starved and skipped.  For the 3-majority rule this means one
//!   update per ~3 receipts, the honest cost of push-only gossip for
//!   multi-sample rules.  Rules drawing more than [`INBOX_CAP`] samples
//!   per update can never be served and are rejected with a panic (the
//!   engine detects a starved update against a full inbox).
//! * [`ExchangeMode::PushPull`] — every sample request is a
//!   bidirectional call: the contacted peer's color travels back (the
//!   pull leg, recoloring the caller) *and* the caller's color travels
//!   forward into the peer's inbox (the push leg).  Later activations
//!   serve their samples from the inbox first and only place fresh calls
//!   for the remainder, so in steady state one call funds two reads.
//!   Network loss and delay apply independently per leg.

use plurality_sampling::Xoshiro256PlusPlus;
use rand::Rng;
use std::collections::VecDeque;

/// Maximum buffered pushed colors per node; when full the **oldest**
/// entry is evicted (freshest information wins).  The cap is
/// deliberately small: receipt and consumption rates are both ≈ 1 per
/// tick, so an uncapped inbox depth performs an unbiased random walk and
/// drifts `√t` deep — and every buffered entry adds one activation of
/// staleness to future samples, which visibly freezes
/// fluctuation-driven dynamics (the push voter).  A small cap keeps
/// sample staleness bounded by a few ticks, which is also what a real
/// push receiver does: keep the freshest handful of messages.
pub const INBOX_CAP: usize = 8;

/// Which directions colors travel in one gossip exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeMode {
    /// The activating node reads random peers (the paper's model).
    #[default]
    Pull,
    /// The activating node writes its color to a random peer.
    Push,
    /// Both: each call carries one color per direction.
    PushPull,
}

impl ExchangeMode {
    /// Parse a CLI name.
    ///
    /// # Errors
    /// Returns the unknown name.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "pull" => Ok(Self::Pull),
            "push" => Ok(Self::Push),
            "push-pull" | "pushpull" => Ok(Self::PushPull),
            other => Err(format!(
                "unknown exchange mode '{other}' (expected 'pull', 'push', or 'push-pull')"
            )),
        }
    }

    /// Mode name for labels.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Pull => "pull",
            Self::Push => "push",
            Self::PushPull => "push-pull",
        }
    }
}

/// What a full inbox does with the next incoming color.
///
/// The trade-off is a *staleness* one: the inbox is a FIFO whose entries
/// age one activation per buffered predecessor, so the policy decides
/// whether the node's future samples skew fresh or old.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum InboxPolicy {
    /// Evict the **oldest** buffered color to admit the incoming one
    /// (freshest information wins — the PR 2 behavior and the default).
    #[default]
    DropOldest,
    /// Discard the **incoming** color and keep the buffer as is (oldest
    /// information wins; samples skew maximally stale).
    DropNewest,
    /// Evict a **uniformly random** buffered color to admit the incoming
    /// one (staleness skews geometrically rather than cutting off).
    /// The only policy that consumes randomness — one draw per overflow,
    /// from the engine's dedicated inbox stream, so runs under the other
    /// policies stay bit-identical to earlier PRs.
    RandomReplace,
    /// Entries expire `ticks` simulated ticks after arrival (purged
    /// lazily before peeks and admissions); at the cap the policy falls
    /// back to evicting the oldest entry.
    Ttl {
        /// Residence bound, in ticks (an entry of age ≥ `ticks` is
        /// expired).  Must be positive and finite.
        ticks: f64,
    },
}

impl InboxPolicy {
    /// Parse a CLI name: `drop-oldest`, `drop-newest`, `random-replace`,
    /// or `ttl=T` (T in ticks).
    ///
    /// # Errors
    /// Returns the unknown name (a bare `ttl` without `=T` included).
    pub fn from_name(name: &str) -> Result<Self, String> {
        if let Some(t) = name.strip_prefix("ttl=") {
            let ticks: f64 = t
                .parse()
                .map_err(|_| format!("ttl: expected a number of ticks, got '{t}'"))?;
            if !(ticks.is_finite() && ticks > 0.0) {
                return Err(format!("ttl: {ticks} must be positive and finite"));
            }
            return Ok(Self::Ttl { ticks });
        }
        match name {
            "drop-oldest" => Ok(Self::DropOldest),
            "drop-newest" => Ok(Self::DropNewest),
            "random-replace" => Ok(Self::RandomReplace),
            other => Err(format!(
                "unknown inbox policy '{other}' (expected 'drop-oldest', 'drop-newest', \
                 'random-replace', or 'ttl=T')"
            )),
        }
    }

    /// Policy kind name for labels (the TTL value is carried by
    /// [`Self::label`]).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::DropOldest => "drop-oldest",
            Self::DropNewest => "drop-newest",
            Self::RandomReplace => "random-replace",
            Self::Ttl { .. } => "ttl",
        }
    }

    /// Full label, round-trippable through [`Self::from_name`].
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Ttl { ticks } => format!("ttl={ticks}"),
            other => other.name().to_string(),
        }
    }
}

/// What [`Inbox::receive`] did with an incoming color — the per-policy
/// drop accounting telemetry reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InboxAdmit {
    /// Buffered without evicting anything.
    Accepted,
    /// Buffered; the oldest entry was evicted
    /// ([`InboxPolicy::DropOldest`], or [`InboxPolicy::Ttl`] at the cap).
    EvictedOldest,
    /// The incoming color was discarded ([`InboxPolicy::DropNewest`]).
    RejectedNewest,
    /// Buffered; a uniformly random entry was evicted
    /// ([`InboxPolicy::RandomReplace`]).
    EvictedRandom,
}

impl InboxAdmit {
    /// Did the cap force a drop (of anything)?
    #[must_use]
    pub fn dropped(&self) -> bool {
        !matches!(self, Self::Accepted)
    }
}

/// Bounded FIFO of pushed colors awaiting consumption by a node's update
/// rule (see [`INBOX_CAP`] and [`InboxPolicy`]).  Entries carry their
/// arrival time, kept in non-decreasing order, which is what makes TTL
/// expiry a prefix purge and staleness (`now − arrival`) observable when
/// an entry is served.
#[derive(Debug, Default, Clone)]
pub struct Inbox {
    entries: VecDeque<(u32, f64)>,
    policy: InboxPolicy,
}

impl Inbox {
    /// An empty inbox applying `policy` at the cap
    /// (`Inbox::default()` is drop-oldest).
    #[must_use]
    pub fn with_policy(policy: InboxPolicy) -> Self {
        Self {
            entries: VecDeque::new(),
            policy,
        }
    }

    /// Buffer a color received at time `now`.  `rng` is consumed only by
    /// [`InboxPolicy::RandomReplace`] at the cap (one `gen_range` per
    /// overflow) — every other policy leaves it untouched.
    pub fn receive(&mut self, color: u32, now: f64, rng: &mut Xoshiro256PlusPlus) -> InboxAdmit {
        if self.entries.len() < INBOX_CAP {
            self.entries.push_back((color, now));
            return InboxAdmit::Accepted;
        }
        match self.policy {
            InboxPolicy::DropOldest | InboxPolicy::Ttl { .. } => {
                self.entries.pop_front();
                self.entries.push_back((color, now));
                InboxAdmit::EvictedOldest
            }
            InboxPolicy::DropNewest => InboxAdmit::RejectedNewest,
            InboxPolicy::RandomReplace => {
                let idx = rng.gen_range(0..self.entries.len());
                self.entries.remove(idx);
                self.entries.push_back((color, now));
                InboxAdmit::EvictedRandom
            }
        }
    }

    /// Drop every entry whose age at `now` is ≥ the TTL; returns how
    /// many expired.  No-op (0) under the non-TTL policies.  Expired
    /// entries form a prefix (arrival order is non-decreasing), so this
    /// is a front purge.
    pub fn purge_expired(&mut self, now: f64) -> usize {
        let InboxPolicy::Ttl { ticks } = self.policy else {
            return 0;
        };
        let mut expired = 0usize;
        while let Some(&(_, arrival)) = self.entries.front() {
            if now - arrival >= ticks {
                self.entries.pop_front();
                expired += 1;
            } else {
                break;
            }
        }
        expired
    }

    /// Buffered color at `idx` (0 = oldest) without consuming it.
    #[must_use]
    pub fn peek(&self, idx: usize) -> Option<u32> {
        self.entries.get(idx).map(|&(c, _)| c)
    }

    /// Buffered `(color, arrival time)` at `idx` (0 = oldest) without
    /// consuming it.
    #[must_use]
    pub fn peek_entry(&self, idx: usize) -> Option<(u32, f64)> {
        self.entries.get(idx).copied()
    }

    /// Consume the `count` oldest entries (after a successful update).
    pub fn consume(&mut self, count: usize) {
        debug_assert!(count <= self.entries.len());
        self.entries.drain(..count.min(self.entries.len()));
    }

    /// Drop every buffered entry (a churn crash or graceful leave wipes
    /// the node's volatile state); returns how many were discarded so the
    /// engine can attribute them to `inbox_cleared_churn`.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Buffered entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No entries buffered?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_sampling::stream_rng;

    /// Shorthand: receive with a throwaway clock/rng (fine for the
    /// policies that consume neither).
    fn recv(inbox: &mut Inbox, color: u32, now: f64) -> InboxAdmit {
        let mut rng = stream_rng(0xDEAD, 0);
        inbox.receive(color, now, &mut rng)
    }

    #[test]
    fn mode_names_roundtrip() {
        for m in [
            ExchangeMode::Pull,
            ExchangeMode::Push,
            ExchangeMode::PushPull,
        ] {
            assert_eq!(ExchangeMode::from_name(m.name()).unwrap(), m);
        }
        assert_eq!(
            ExchangeMode::from_name("pushpull").unwrap(),
            ExchangeMode::PushPull
        );
        assert!(ExchangeMode::from_name("gossip").is_err());
    }

    #[test]
    fn inbox_is_fifo() {
        let mut inbox = Inbox::default();
        for (t, c) in [3u32, 1, 4].into_iter().enumerate() {
            assert_eq!(recv(&mut inbox, c, t as f64), InboxAdmit::Accepted);
        }
        assert_eq!(inbox.peek(0), Some(3));
        assert_eq!(inbox.peek(2), Some(4));
        assert_eq!(inbox.peek(3), None);
        assert_eq!(inbox.peek_entry(1), Some((1, 1.0)));
        inbox.consume(2);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox.peek(0), Some(4));
    }

    #[test]
    fn inbox_evicts_oldest_at_cap() {
        let mut inbox = Inbox::default();
        for c in 0..INBOX_CAP as u32 {
            assert_eq!(recv(&mut inbox, c, 0.0), InboxAdmit::Accepted);
        }
        assert_eq!(
            recv(&mut inbox, 999, 1.0),
            InboxAdmit::EvictedOldest,
            "cap reached: eviction expected"
        );
        assert_eq!(inbox.len(), INBOX_CAP);
        assert_eq!(inbox.peek(0), Some(1), "oldest entry evicted");
        assert_eq!(inbox.peek(INBOX_CAP - 1), Some(999));
    }

    #[test]
    fn inbox_policy_names_roundtrip() {
        for p in [
            InboxPolicy::DropOldest,
            InboxPolicy::DropNewest,
            InboxPolicy::RandomReplace,
        ] {
            assert_eq!(InboxPolicy::from_name(p.name()).unwrap(), p);
            assert_eq!(InboxPolicy::from_name(&p.label()).unwrap(), p);
        }
        let ttl = InboxPolicy::Ttl { ticks: 2.5 };
        assert_eq!(InboxPolicy::from_name("ttl=2.5").unwrap(), ttl);
        assert_eq!(InboxPolicy::from_name(&ttl.label()).unwrap(), ttl);
        assert_eq!(ttl.name(), "ttl");
        assert!(InboxPolicy::from_name("ttl").is_err(), "bare ttl needs =T");
        assert!(InboxPolicy::from_name("ttl=0").is_err());
        assert!(InboxPolicy::from_name("ttl=-1").is_err());
        assert!(InboxPolicy::from_name("ttl=inf").is_err());
        assert!(InboxPolicy::from_name("ttl=nope").is_err());
        assert_eq!(InboxPolicy::default(), InboxPolicy::DropOldest);
    }

    #[test]
    fn drop_newest_preserves_staleness_ordering() {
        // Under drop-newest the buffer keeps the *first* INBOX_CAP
        // receipts, in arrival order, and overflow discards the
        // incoming color without touching the buffer.
        let mut inbox = Inbox::with_policy(InboxPolicy::DropNewest);
        for c in 0..INBOX_CAP as u32 {
            assert_eq!(recv(&mut inbox, c, f64::from(c)), InboxAdmit::Accepted);
        }
        assert_eq!(
            recv(&mut inbox, 999, 99.0),
            InboxAdmit::RejectedNewest,
            "cap reached: incoming color dropped"
        );
        assert_eq!(inbox.len(), INBOX_CAP);
        for idx in 0..INBOX_CAP {
            assert_eq!(
                inbox.peek(idx),
                Some(idx as u32),
                "buffered order disturbed at {idx}"
            );
        }
        // Consumption frees capacity: the next receipt is admitted and
        // queues behind the survivors (FIFO staleness order intact).
        inbox.consume(2);
        assert_eq!(recv(&mut inbox, 777, 100.0), InboxAdmit::Accepted);
        assert_eq!(inbox.peek(0), Some(2), "oldest survivor still first");
        assert_eq!(inbox.peek(inbox.len() - 1), Some(777));
    }

    #[test]
    fn random_replace_preserves_arrival_order_of_survivors() {
        let mut inbox = Inbox::with_policy(InboxPolicy::RandomReplace);
        let mut rng = stream_rng(42, 5);
        for c in 0..INBOX_CAP as u32 {
            assert_eq!(
                inbox.receive(c, f64::from(c), &mut rng),
                InboxAdmit::Accepted
            );
        }
        for over in 0..20u32 {
            let now = f64::from(INBOX_CAP as u32 + over);
            assert_eq!(
                inbox.receive(1000 + over, now, &mut rng),
                InboxAdmit::EvictedRandom
            );
            assert_eq!(inbox.len(), INBOX_CAP);
            // Survivors stay sorted by arrival time: staleness ordering
            // (and hence TTL prefix purging) is a structural invariant.
            let arrivals: Vec<f64> = (0..inbox.len())
                .map(|i| inbox.peek_entry(i).unwrap().1)
                .collect();
            assert!(
                arrivals.windows(2).all(|w| w[0] <= w[1]),
                "arrival order disturbed: {arrivals:?}"
            );
            assert_eq!(inbox.peek(INBOX_CAP - 1), Some(1000 + over));
        }
    }

    #[test]
    fn ttl_expires_a_prefix_and_falls_back_to_drop_oldest_at_cap() {
        let mut inbox = Inbox::with_policy(InboxPolicy::Ttl { ticks: 2.0 });
        for c in 0..4u32 {
            assert_eq!(recv(&mut inbox, c, f64::from(c)), InboxAdmit::Accepted);
        }
        // At t=4.5 the entries aged {4.5, 3.5, 2.5, 1.5}: the first three
        // are ≥ 2.0 ticks old and expire, the youngest survives.
        assert_eq!(inbox.purge_expired(4.5), 3);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox.peek_entry(0), Some((3, 3.0)));
        // Purge is lazy and idempotent.
        assert_eq!(inbox.purge_expired(4.5), 0);
        // At the cap the TTL policy evicts the oldest entry.
        for c in 10..10 + INBOX_CAP as u32 {
            let _ = recv(&mut inbox, c, 4.5);
        }
        assert_eq!(inbox.len(), INBOX_CAP);
        assert_eq!(recv(&mut inbox, 99, 4.6), InboxAdmit::EvictedOldest);
        // Non-TTL policies never expire anything.
        let mut plain = Inbox::default();
        let _ = recv(&mut plain, 7, 0.0);
        assert_eq!(plain.purge_expired(1e9), 0);
        assert_eq!(plain.len(), 1);
    }

    #[test]
    fn policies_agree_below_the_cap() {
        let mut rng = stream_rng(7, 7);
        let mut boxes = [
            Inbox::with_policy(InboxPolicy::DropOldest),
            Inbox::with_policy(InboxPolicy::DropNewest),
            Inbox::with_policy(InboxPolicy::RandomReplace),
            Inbox::with_policy(InboxPolicy::Ttl { ticks: 1e6 }),
        ];
        for c in 0..INBOX_CAP as u32 {
            for inbox in &mut boxes {
                assert_eq!(inbox.receive(c, 0.0, &mut rng), InboxAdmit::Accepted);
            }
            for inbox in &boxes {
                assert_eq!(inbox.peek(c as usize), boxes[0].peek(c as usize));
            }
        }
    }
}
