//! Gossip exchange modes: who learns whose color when a node activates.
//!
//! The paper's dynamics are stated in the uniform-PULL model (every node
//! *reads* random peers).  Its companion work — *Plurality Consensus in
//! the Gossip Model* (Becchetti et al. 2014) — studies the symmetric
//! PUSH and PUSH-PULL variants, which this module expresses:
//!
//! * [`ExchangeMode::Pull`] — the activating node issues one PULL sample
//!   request per sample its rule draws and recolors from the responses
//!   (PR 1 semantics, bit-for-bit).
//! * [`ExchangeMode::Push`] — the activating node *sends* its current
//!   color to one random peer per activation (the gossip model's "one
//!   call per activation").  Received colors accumulate in the peer's
//!   [`Inbox`]; a node applies its update rule at its own activation
//!   **only when the inbox holds enough samples** — otherwise the update
//!   is starved and skipped.  For the 3-majority rule this means one
//!   update per ~3 receipts, the honest cost of push-only gossip for
//!   multi-sample rules.  Rules drawing more than [`INBOX_CAP`] samples
//!   per update can never be served and are rejected with a panic (the
//!   engine detects a starved update against a full inbox).
//! * [`ExchangeMode::PushPull`] — every sample request is a
//!   bidirectional call: the contacted peer's color travels back (the
//!   pull leg, recoloring the caller) *and* the caller's color travels
//!   forward into the peer's inbox (the push leg).  Later activations
//!   serve their samples from the inbox first and only place fresh calls
//!   for the remainder, so in steady state one call funds two reads.
//!   Network loss and delay apply independently per leg.

use std::collections::VecDeque;

/// Maximum buffered pushed colors per node; when full the **oldest**
/// entry is evicted (freshest information wins).  The cap is
/// deliberately small: receipt and consumption rates are both ≈ 1 per
/// tick, so an uncapped inbox depth performs an unbiased random walk and
/// drifts `√t` deep — and every buffered entry adds one activation of
/// staleness to future samples, which visibly freezes
/// fluctuation-driven dynamics (the push voter).  A small cap keeps
/// sample staleness bounded by a few ticks, which is also what a real
/// push receiver does: keep the freshest handful of messages.
pub const INBOX_CAP: usize = 8;

/// Which directions colors travel in one gossip exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeMode {
    /// The activating node reads random peers (the paper's model).
    #[default]
    Pull,
    /// The activating node writes its color to a random peer.
    Push,
    /// Both: each call carries one color per direction.
    PushPull,
}

impl ExchangeMode {
    /// Parse a CLI name.
    ///
    /// # Errors
    /// Returns the unknown name.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "pull" => Ok(Self::Pull),
            "push" => Ok(Self::Push),
            "push-pull" | "pushpull" => Ok(Self::PushPull),
            other => Err(format!(
                "unknown exchange mode '{other}' (expected 'pull', 'push', or 'push-pull')"
            )),
        }
    }

    /// Mode name for labels.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Pull => "pull",
            Self::Push => "push",
            Self::PushPull => "push-pull",
        }
    }
}

/// What a full inbox does with the next incoming color.
///
/// The trade-off is a *staleness* one: the inbox is a FIFO whose entries
/// age one activation per buffered predecessor, so the policy decides
/// whether the node's future samples skew fresh or old.
/// Random-replacement and TTL policies are listed as follow-ups in
/// ROADMAP.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InboxPolicy {
    /// Evict the **oldest** buffered color to admit the incoming one
    /// (freshest information wins — the PR 2 behavior and the default).
    #[default]
    DropOldest,
    /// Discard the **incoming** color and keep the buffer as is (oldest
    /// information wins; samples skew maximally stale).
    DropNewest,
}

impl InboxPolicy {
    /// Parse a CLI name.
    ///
    /// # Errors
    /// Returns the unknown name.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "drop-oldest" => Ok(Self::DropOldest),
            "drop-newest" => Ok(Self::DropNewest),
            other => Err(format!(
                "unknown inbox policy '{other}' (expected 'drop-oldest' or 'drop-newest')"
            )),
        }
    }

    /// Policy name for labels.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::DropOldest => "drop-oldest",
            Self::DropNewest => "drop-newest",
        }
    }
}

/// Bounded FIFO of pushed colors awaiting consumption by a node's update
/// rule (see [`INBOX_CAP`] and [`InboxPolicy`]).
#[derive(Debug, Default, Clone)]
pub struct Inbox {
    colors: VecDeque<u32>,
    policy: InboxPolicy,
}

impl Inbox {
    /// An empty inbox applying `policy` at the cap
    /// (`Inbox::default()` is drop-oldest).
    #[must_use]
    pub fn with_policy(policy: InboxPolicy) -> Self {
        Self {
            colors: VecDeque::new(),
            policy,
        }
    }

    /// Buffer a received color; returns `true` when the cap forced a
    /// drop — of the oldest buffered entry under
    /// [`InboxPolicy::DropOldest`], of the incoming color under
    /// [`InboxPolicy::DropNewest`].
    pub fn receive(&mut self, color: u32) -> bool {
        let dropped = self.colors.len() == INBOX_CAP;
        if dropped {
            match self.policy {
                InboxPolicy::DropOldest => {
                    self.colors.pop_front();
                }
                InboxPolicy::DropNewest => return true,
            }
        }
        self.colors.push_back(color);
        dropped
    }

    /// Buffered color at `idx` (0 = oldest) without consuming it.
    #[must_use]
    pub fn peek(&self, idx: usize) -> Option<u32> {
        self.colors.get(idx).copied()
    }

    /// Consume the `count` oldest entries (after a successful update).
    pub fn consume(&mut self, count: usize) {
        debug_assert!(count <= self.colors.len());
        self.colors.drain(..count.min(self.colors.len()));
    }

    /// Buffered entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// No entries buffered?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_roundtrip() {
        for m in [
            ExchangeMode::Pull,
            ExchangeMode::Push,
            ExchangeMode::PushPull,
        ] {
            assert_eq!(ExchangeMode::from_name(m.name()).unwrap(), m);
        }
        assert_eq!(
            ExchangeMode::from_name("pushpull").unwrap(),
            ExchangeMode::PushPull
        );
        assert!(ExchangeMode::from_name("gossip").is_err());
    }

    #[test]
    fn inbox_is_fifo() {
        let mut inbox = Inbox::default();
        for c in [3u32, 1, 4] {
            assert!(!inbox.receive(c));
        }
        assert_eq!(inbox.peek(0), Some(3));
        assert_eq!(inbox.peek(2), Some(4));
        assert_eq!(inbox.peek(3), None);
        inbox.consume(2);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox.peek(0), Some(4));
    }

    #[test]
    fn inbox_evicts_oldest_at_cap() {
        let mut inbox = Inbox::default();
        for c in 0..INBOX_CAP as u32 {
            assert!(!inbox.receive(c));
        }
        assert!(inbox.receive(999), "cap reached: eviction expected");
        assert_eq!(inbox.len(), INBOX_CAP);
        assert_eq!(inbox.peek(0), Some(1), "oldest entry evicted");
        assert_eq!(inbox.peek(INBOX_CAP - 1), Some(999));
    }

    #[test]
    fn inbox_policy_names_roundtrip() {
        for p in [InboxPolicy::DropOldest, InboxPolicy::DropNewest] {
            assert_eq!(InboxPolicy::from_name(p.name()).unwrap(), p);
        }
        assert!(InboxPolicy::from_name("ttl").is_err());
        assert_eq!(InboxPolicy::default(), InboxPolicy::DropOldest);
    }

    #[test]
    fn drop_newest_preserves_staleness_ordering() {
        // Under drop-newest the buffer keeps the *first* INBOX_CAP
        // receipts, in arrival order, and overflow discards the
        // incoming color without touching the buffer.
        let mut inbox = Inbox::with_policy(InboxPolicy::DropNewest);
        for c in 0..INBOX_CAP as u32 {
            assert!(!inbox.receive(c));
        }
        assert!(inbox.receive(999), "cap reached: incoming color dropped");
        assert_eq!(inbox.len(), INBOX_CAP);
        for idx in 0..INBOX_CAP {
            assert_eq!(
                inbox.peek(idx),
                Some(idx as u32),
                "buffered order disturbed at {idx}"
            );
        }
        // Consumption frees capacity: the next receipt is admitted and
        // queues behind the survivors (FIFO staleness order intact).
        inbox.consume(2);
        assert!(!inbox.receive(777));
        assert_eq!(inbox.peek(0), Some(2), "oldest survivor still first");
        assert_eq!(inbox.peek(inbox.len() - 1), Some(777));
    }

    #[test]
    fn policies_agree_below_the_cap() {
        let mut oldest = Inbox::with_policy(InboxPolicy::DropOldest);
        let mut newest = Inbox::with_policy(InboxPolicy::DropNewest);
        for c in 0..INBOX_CAP as u32 {
            assert!(!oldest.receive(c));
            assert!(!newest.receive(c));
            assert_eq!(oldest.peek(c as usize), newest.peek(c as usize));
        }
    }
}
