//! Activation scheduling and the lazy-deletion indexed event queue.
//!
//! # Scheduler design
//!
//! PR 1 simulated the Poisson scheduler by keeping **one heap entry per
//! node** (each node's next clock tick), which made every activation a
//! `pop` + `push` on a heap of size `n` — measured at 3–7× the cost of
//! the sequential scheduler (`BENCH_gossip_baseline.json`).  The current
//! design removes activations from the heap entirely:
//!
//! * **Activations** are drawn directly by an [`ActivationClock`].  For
//!   the Poisson scheduler this uses the superposition theorem: the union
//!   of `n` independent Poisson clocks with rates `r_v` is one Poisson
//!   process of rate `R = Σ r_v` whose events land on node `v` with
//!   probability `r_v / R`.  Each activation therefore costs one `Exp(R)`
//!   waiting-time draw plus one node draw — `O(1)` for uniform rates and
//!   `O(1)` for heterogeneous rates via a Walker–Vose
//!   [`AliasTable`] over the rate vector (PR 3; previously a binary
//!   search over a cumulative table, whose `O(log n)` per activation was
//!   the rated-population bottleneck at `n ≥ 10^6`) — instead of
//!   `O(log n)` heap traffic on a size-`n` heap.  The law is *exactly*
//!   the same; only the PRNG consumption pattern (and hence individual
//!   rated trajectories) differs from the cumulative-table draw, the
//!   same caveat PR 2 carried for Poisson trajectories vs PR 1.
//!   Unit-rate runs draw nodes with a single `gen_range` as before and
//!   remain bit-identical across all three generations.
//! * **Network events** (delayed recolor commits, in-flight pushed
//!   colors) go through the [`EventQueue`], a binary heap with **lazy
//!   deletion**: each node carries a generation counter, cancelable
//!   entries are stamped with the generation current at push time, and
//!   [`EventQueue::cancel`] simply bumps the counter — stale entries are
//!   skipped (and discarded) when they surface on [`EventQueue::pop`].
//!   The queue only ever holds in-flight network events, so it stays far
//!   smaller than `n` in every regime.
//!
//! # Rate-weighted parallel time (sequential scheduler)
//!
//! Under unit rates the sequential scheduler stamps activation `i` at
//! `i/n` — one tick per `n` activations, matching the Poisson clock in
//! expectation (`E[t_i] = i/R`, `R = n`).  Under heterogeneous rates the
//! plain `i/n` stamp keeps that reading only if one insists a "tick" is
//! `n` activations regardless of how fast the population runs; the
//! Poisson clock instead compresses real time by the total rate
//! `R = Σ r_v`.  [`ActivationClock::with_rate_weighted_time`] opts the
//! sequential scheduler into the expectation-matched stamps `i/R`, so
//! sequential and Poisson rated runs report comparable parallel times
//! (`tests` pin `t_i = i/R` exactly and against the Poisson mean).
//!
//! # Tie-breaking (deterministic FIFO)
//!
//! `BinaryHeap` alone leaves the order of equal-priority entries
//! implementation-defined.  The queue therefore orders events by the
//! pair `(time, seq)` where `seq` is the insertion sequence number:
//! **events with equal timestamps fire in insertion (FIFO) order**.
//! This is part of the queue's contract, pinned by unit and property
//! tests (`tests/event_queue.rs`), so the processing order of a trial is
//! a pure function of the seed on every platform.

use plurality_sampling::{AliasTable, Xoshiro256PlusPlus};
use rand::Rng;
use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// When do nodes activate?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Discrete sequential activation: at step `i` (time `i/n`) one
    /// random node activates (uniformly, or rate-proportionally when
    /// heterogeneous rates are configured).
    #[default]
    Sequential,
    /// Independent Poisson clock per node (`Exp(rate)` waiting times),
    /// simulated through the exact superposition construction (see the
    /// module docs).  Its embedded jump chain is the sequential process;
    /// only the real-time stamps differ.
    Poisson,
}

impl Scheduler {
    /// Parse a CLI name.
    ///
    /// # Errors
    /// Returns the unknown name.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "sequential" | "seq" => Ok(Self::Sequential),
            "poisson" => Ok(Self::Poisson),
            other => Err(format!(
                "unknown scheduler '{other}' (expected 'sequential' or 'poisson')"
            )),
        }
    }

    /// Scheduler name for labels.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Sequential => "sequential",
            Self::Poisson => "poisson",
        }
    }
}

/// Prebuilt rate-proportional activation sampler: the Walker–Vose alias
/// table over a rate vector plus the total rate `R = Σ r_v`.
///
/// Construction is `O(n)`; build it **once per rate vector** (the
/// [`crate::GossipEngine`] does so in `with_node_rates`) and share it
/// across trials via [`ActivationClock::with_rated`] — rebuilding per
/// trial would put the table build back on the per-run path the alias
/// method just removed from the per-activation one.
#[derive(Debug, Clone)]
pub struct RatedActivation {
    alias: AliasTable,
    total_rate: f64,
}

impl RatedActivation {
    /// Sampler over one strictly positive finite rate per node.
    ///
    /// # Panics
    /// Panics if `rates` is empty or any rate is non-finite or `<= 0`.
    #[must_use]
    pub fn new(rates: &[f64]) -> Self {
        assert!(!rates.is_empty(), "need at least one activation rate");
        for (v, &r) in rates.iter().enumerate() {
            assert!(
                r.is_finite() && r > 0.0,
                "node {v} has invalid activation rate {r}"
            );
        }
        Self {
            alias: AliasTable::new(rates),
            total_rate: rates.iter().sum(),
        }
    }

    /// Total activation rate `R = Σ r_v`.
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.total_rate
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.alias.len()
    }

    /// Never empty once constructed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.alias.is_empty()
    }
}

/// Draws the activation sequence `(time, node)` directly, without heap
/// traffic (see the module docs for the superposition argument).
#[derive(Debug)]
pub struct ActivationClock<'r> {
    scheduler: Scheduler,
    n: usize,
    nf: f64,
    /// Activations drawn so far (drives sequential timestamps).
    count: u64,
    /// Current simulated time (Poisson only).
    now: f64,
    /// Rate-proportional node sampler (heterogeneous rates only):
    /// `O(1)` draws at any `n`, borrowed when prebuilt by the engine.
    rated: Option<Cow<'r, RatedActivation>>,
    /// Total activation rate `R = Σ r_v` (`n` for uniform unit rates).
    total_rate: f64,
    /// Sequential scheduler: stamp activation `i` at `i/R` instead of
    /// `i/n` (see the module docs).
    rate_weighted_time: bool,
}

impl<'r> ActivationClock<'r> {
    /// Clock over `n` nodes.  `rates`, when given, must hold one strictly
    /// positive finite rate per node (the alias table is built here —
    /// prefer [`Self::with_rated`] when reusing rates across trials);
    /// `None` means unit rates for all.
    ///
    /// # Panics
    /// Panics if `n == 0`, a rates slice has the wrong length, or any
    /// rate is non-finite or `<= 0`.
    #[must_use]
    pub fn new(scheduler: Scheduler, n: usize, rates: Option<&[f64]>) -> Self {
        assert!(n > 0, "activation clock over an empty population");
        let rated = rates.map(|rs| {
            assert_eq!(rs.len(), n, "need one activation rate per node");
            Cow::Owned(RatedActivation::new(rs))
        });
        Self::assemble(scheduler, n, rated)
    }

    /// Clock over `n` nodes drawing rate-proportionally from a prebuilt
    /// [`RatedActivation`] (no per-trial table construction).
    ///
    /// # Panics
    /// Panics if `n == 0` or the sampler covers a different node count.
    #[must_use]
    pub fn with_rated(scheduler: Scheduler, n: usize, rated: &'r RatedActivation) -> Self {
        assert!(n > 0, "activation clock over an empty population");
        assert_eq!(rated.len(), n, "need one activation rate per node");
        Self::assemble(scheduler, n, Some(Cow::Borrowed(rated)))
    }

    fn assemble(scheduler: Scheduler, n: usize, rated: Option<Cow<'r, RatedActivation>>) -> Self {
        let total_rate = rated
            .as_deref()
            .map_or(n as f64, RatedActivation::total_rate);
        Self {
            scheduler,
            n,
            nf: n as f64,
            count: 0,
            now: 0.0,
            rated,
            total_rate,
            rate_weighted_time: false,
        }
    }

    /// Stamp *sequential* activations at `i / Σ r_v` (expectation-matched
    /// to the Poisson clock) instead of the uniform `i / n`.  No-op for
    /// unit rates (`Σ r_v = n`) and for the Poisson scheduler, whose
    /// waiting times already carry the total rate.
    #[must_use]
    pub fn with_rate_weighted_time(mut self, on: bool) -> Self {
        self.rate_weighted_time = on;
        self
    }

    /// Number of activations drawn so far.
    #[must_use]
    pub fn activations(&self) -> u64 {
        self.count
    }

    /// Total activation rate `R = Σ r_v` (`n` for unit rates).
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.total_rate
    }

    /// Draw the next activation as `(absolute time in ticks, node)`.
    ///
    /// Sequential: activation `i` (1-based) fires at time `i/n` (or `i/R`
    /// under [`Self::with_rate_weighted_time`]); the node is drawn
    /// uniformly (or rate-proportionally).  Poisson: the waiting time is
    /// `Exp(R)` and the node is drawn with probability `r_v / R`
    /// (uniformly for unit rates).
    pub fn next(&mut self, rng: &mut Xoshiro256PlusPlus) -> (f64, u32) {
        self.count += 1;
        let time = match self.scheduler {
            Scheduler::Sequential => {
                let divisor = if self.rate_weighted_time {
                    self.total_rate
                } else {
                    self.nf
                };
                self.count as f64 / divisor
            }
            Scheduler::Poisson => {
                self.now += exp1(rng) / self.total_rate;
                self.now
            }
        };
        let node = match &self.rated {
            None => rng.gen_range(0..self.n) as u32,
            // O(1) rate-proportional draw (alias method); consumes one
            // `gen_range` + one `gen::<f64>` per activation.
            Some(rated) => rated.alias.sample(rng) as u32,
        };
        (time, node)
    }
}

/// What happens when a queued network event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A previously computed recolor of the node lands (its slowest
    /// delayed PULL response arrived).  Cancelable: a newer activation of
    /// the same node supersedes it via [`EventQueue::cancel`].
    Commit {
        /// The new state to apply.
        state: u32,
    },
    /// A pushed color arrives at the node's inbox after a network delay.
    /// Not cancelable — pushed colors always land.
    PushArrival {
        /// The pushed state.
        color: u32,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Absolute firing time in ticks.
    pub time: f64,
    /// Insertion sequence number — the deterministic FIFO tie-breaker at
    /// equal timestamps, so the processing order is a pure function of
    /// the seed (see the module docs).
    pub seq: u64,
    /// The node concerned.
    pub node: u32,
    /// Payload.
    pub kind: EventKind,
    /// Generation stamp for cancelable entries (`u64::MAX` = immortal).
    generation: u64,
}

/// Generation stamp of entries that [`EventQueue::cancel`] never deletes.
const IMMORTAL: u64 = u64::MAX;

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first,
        // FIFO (smallest seq first) among equal times.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic min-heap of network events ordered by `(time, seq)` with
/// per-node lazy deletion (see the module docs).
#[derive(Debug)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    /// Per-node generation counter; cancelable entries stamped with an
    /// older generation are stale and skipped on pop.
    generation: Vec<u64>,
    /// Live (non-stale) cancelable entries per node.
    live_cancelable: Vec<u32>,
    /// Live entries in total (heap size minus not-yet-discarded stale).
    live: usize,
    /// Stale entries discarded so far (lazy deletions that completed).
    skipped_stale: u64,
}

impl EventQueue {
    /// An empty queue over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            generation: vec![0; n],
            live_cancelable: vec![0; n],
            live: 0,
            skipped_stale: 0,
        }
    }

    /// Schedule `kind` for `node` at absolute `time`.  [`EventKind::Commit`]
    /// entries are stamped with the node's current generation and die when
    /// [`Self::cancel`] is called for the node; [`EventKind::PushArrival`]
    /// entries always fire.
    ///
    /// # Panics
    /// Panics (debug) on a non-finite time; panics on an out-of-range node.
    pub fn push(&mut self, time: f64, node: u32, kind: EventKind) {
        debug_assert!(time.is_finite(), "non-finite event time");
        assert!(
            (node as usize) < self.generation.len(),
            "event for node {node} out of range (queue over {} nodes)",
            self.generation.len()
        );
        let generation = match kind {
            EventKind::Commit { .. } => {
                self.live_cancelable[node as usize] += 1;
                self.generation[node as usize]
            }
            EventKind::PushArrival { .. } => IMMORTAL,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        self.heap.push(Event {
            time,
            seq,
            node,
            kind,
            generation,
        });
    }

    /// Invalidate every pending cancelable entry of `node` (lazily: the
    /// entries are skipped and discarded when they surface).  Returns
    /// whether at least one live entry was canceled.
    pub fn cancel(&mut self, node: u32) -> bool {
        let v = node as usize;
        self.generation[v] = self.generation[v].wrapping_add(1);
        let canceled = std::mem::take(&mut self.live_cancelable[v]);
        self.live -= canceled as usize;
        canceled > 0
    }

    /// Is this entry dead (canceled before firing)?
    fn is_stale(&self, ev: &Event) -> bool {
        ev.generation != IMMORTAL && ev.generation != self.generation[ev.node as usize]
    }

    /// Remove and return the earliest live event, discarding stale
    /// entries on the way.
    pub fn pop(&mut self) -> Option<Event> {
        while let Some(ev) = self.heap.pop() {
            if self.is_stale(&ev) {
                self.skipped_stale += 1;
                continue;
            }
            if let EventKind::Commit { .. } = ev.kind {
                self.live_cancelable[ev.node as usize] -= 1;
            }
            self.live -= 1;
            return Some(ev);
        }
        None
    }

    /// Firing time of the earliest live event, discarding stale entries
    /// on the way (`None` when no live event is pending).
    pub fn peek_time(&mut self) -> Option<f64> {
        while let Some(ev) = self.heap.peek() {
            if self.is_stale(ev) {
                self.heap.pop();
                self.skipped_stale += 1;
                continue;
            }
            return Some(ev.time);
        }
        None
    }

    /// Live entries pending (stale entries awaiting lazy discard are
    /// not counted).
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// No live entries pending?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Stale entries lazily discarded so far.
    #[must_use]
    pub fn skipped_stale(&self) -> u64 {
        self.skipped_stale
    }

    /// Total entries pushed over the queue's lifetime (the insertion
    /// sequence counter — telemetry reconciles this against pops plus
    /// lazy-deletion waste).
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }
}

/// Draw an `Exp(1)` waiting time.
#[inline]
pub(crate) fn exp1(rng: &mut Xoshiro256PlusPlus) -> f64 {
    let u: f64 = rng.gen::<f64>();
    -(1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_sampling::stream_rng;

    fn activate_like(state: u32) -> EventKind {
        // Commit doubles as the "plain cancelable payload" in queue-only
        // tests.
        EventKind::Commit { state }
    }

    #[test]
    fn queue_orders_by_time() {
        let mut q = EventQueue::new(8);
        q.push(2.0, 0, activate_like(0));
        q.push(0.5, 1, activate_like(0));
        q.push(1.0, 2, activate_like(0));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.node).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ties_broken_fifo_by_sequence_number() {
        // The documented contract: equal timestamps fire in insertion
        // order, deterministically, on every platform.
        let mut q = EventQueue::new(64);
        q.push(1.0, 10, activate_like(0));
        q.push(1.0, 20, EventKind::PushArrival { color: 1 });
        q.push(1.0, 30, activate_like(0));
        q.push(0.5, 40, activate_like(0));
        q.push(1.0, 50, activate_like(0));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.node).collect();
        assert_eq!(order, vec![40, 10, 20, 30, 50], "FIFO among equal times");
    }

    #[test]
    fn canceled_commits_never_fire() {
        let mut q = EventQueue::new(4);
        q.push(1.0, 0, EventKind::Commit { state: 7 });
        q.push(2.0, 1, EventKind::Commit { state: 8 });
        assert!(q.cancel(0), "a live commit was pending");
        assert!(!q.cancel(0), "second cancel finds nothing live");
        let popped: Vec<Event> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(popped.len(), 1);
        assert_eq!(popped[0].node, 1);
        assert_eq!(q.skipped_stale(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_rejected_for_commits() {
        let mut q = EventQueue::new(4);
        q.push(1.0, 99, EventKind::Commit { state: 0 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_rejected_for_arrivals() {
        let mut q = EventQueue::new(4);
        q.push(1.0, 99, EventKind::PushArrival { color: 0 });
    }

    #[test]
    fn push_arrivals_survive_cancel() {
        let mut q = EventQueue::new(4);
        q.push(1.0, 0, EventKind::PushArrival { color: 3 });
        assert!(!q.cancel(0), "arrivals are not cancelable");
        let ev = q.pop().expect("arrival still pending");
        assert_eq!(ev.kind, EventKind::PushArrival { color: 3 });
    }

    #[test]
    fn commit_pushed_after_cancel_is_live() {
        let mut q = EventQueue::new(2);
        q.push(1.0, 0, EventKind::Commit { state: 1 });
        q.cancel(0);
        q.push(2.0, 0, EventKind::Commit { state: 2 });
        let popped: Vec<Event> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(popped.len(), 1);
        assert_eq!(popped[0].kind, EventKind::Commit { state: 2 });
    }

    #[test]
    fn peek_time_matches_pop_and_discards_stale() {
        let mut q = EventQueue::new(2);
        q.push(1.0, 0, EventKind::Commit { state: 1 });
        q.push(3.0, 1, EventKind::PushArrival { color: 0 });
        q.cancel(0);
        assert_eq!(q.peek_time(), Some(3.0));
        assert_eq!(q.pop().unwrap().time, 3.0);
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn sequential_clock_times_and_uniform_nodes() {
        let n = 10usize;
        let mut clock = ActivationClock::new(Scheduler::Sequential, n, None);
        let mut rng = stream_rng(1, 1);
        for i in 1..=50u64 {
            let (t, node) = clock.next(&mut rng);
            assert!((t - i as f64 / n as f64).abs() < 1e-12);
            assert!((node as usize) < n);
        }
        assert_eq!(clock.activations(), 50);
    }

    #[test]
    fn poisson_clock_mean_rate_is_n() {
        // n unit-rate clocks superpose to rate n: the time of the
        // (m·n)-th activation concentrates around m ticks.
        let n = 1_000usize;
        let mut clock = ActivationClock::new(Scheduler::Poisson, n, None);
        let mut rng = stream_rng(7, 0);
        let mut last = 0.0;
        for _ in 0..(20 * n) {
            last = clock.next(&mut rng).0;
        }
        assert!((last - 20.0).abs() < 0.5, "t(20n) = {last}");
    }

    #[test]
    fn heterogeneous_rates_bias_the_jump_chain() {
        // Half the nodes run 4× faster: they should take ≈ 4/5 of the
        // activations.
        let n = 200usize;
        let mut rates = vec![1.0; n];
        for r in rates.iter_mut().take(n / 2) {
            *r = 4.0;
        }
        let mut clock = ActivationClock::new(Scheduler::Poisson, n, Some(&rates));
        let mut rng = stream_rng(11, 0);
        let draws = 100_000;
        let fast = (0..draws)
            .filter(|_| (clock.next(&mut rng).1 as usize) < n / 2)
            .count();
        let frac = fast as f64 / draws as f64;
        assert!((frac - 0.8).abs() < 0.01, "fast fraction {frac}");
    }

    #[test]
    fn uniform_rates_scale_time_only() {
        // All-equal rates c: same jump chain as all-ones, times ÷ c.
        let n = 50usize;
        let ones = vec![1.0; n];
        let fours = vec![4.0; n];
        let mut a = ActivationClock::new(Scheduler::Poisson, n, Some(&ones));
        let mut b = ActivationClock::new(Scheduler::Poisson, n, Some(&fours));
        let mut rng_a = stream_rng(3, 3);
        let mut rng_b = stream_rng(3, 3);
        for _ in 0..1_000 {
            let (ta, va) = a.next(&mut rng_a);
            let (tb, vb) = b.next(&mut rng_b);
            assert_eq!(va, vb, "jump chains must coincide");
            assert!((ta - 4.0 * tb).abs() < 1e-9 * ta.max(1.0));
        }
    }

    #[test]
    fn rate_weighted_sequential_time_is_i_over_total_rate() {
        let n = 100usize;
        let mut rates = vec![1.0; n];
        for r in rates.iter_mut().take(n / 2) {
            *r = 3.0;
        }
        let total: f64 = rates.iter().sum(); // 200
        let mut clock = ActivationClock::new(Scheduler::Sequential, n, Some(&rates))
            .with_rate_weighted_time(true);
        assert_eq!(clock.total_rate(), total);
        let mut rng = stream_rng(21, 0);
        for i in 1..=500u64 {
            let (t, _) = clock.next(&mut rng);
            assert!(
                (t - i as f64 / total).abs() < 1e-12,
                "activation {i}: t = {t}"
            );
        }
    }

    #[test]
    fn rate_weighted_time_matches_poisson_clock_mean() {
        // The m-th Poisson activation of a rate-R superposition has mean
        // time m/R — exactly the flagged sequential stamp.  Estimate the
        // Poisson mean over independent clocks and compare.
        let n = 50usize;
        let mut rates = vec![1.0; n];
        for r in rates.iter_mut().take(n / 2) {
            *r = 4.0;
        }
        let total: f64 = rates.iter().sum(); // 125
        let m = 2_000u64;
        let mut seq = ActivationClock::new(Scheduler::Sequential, n, Some(&rates))
            .with_rate_weighted_time(true);
        let mut rng = stream_rng(22, 0);
        let mut seq_t = 0.0;
        for _ in 0..m {
            seq_t = seq.next(&mut rng).0;
        }
        assert!((seq_t - m as f64 / total).abs() < 1e-9);

        let trials = 200;
        let mut acc = 0.0;
        for trial in 0..trials {
            let mut clock = ActivationClock::new(Scheduler::Poisson, n, Some(&rates));
            let mut rng = stream_rng(23, trial);
            let mut t = 0.0;
            for _ in 0..m {
                t = clock.next(&mut rng).0;
            }
            acc += t;
        }
        let poisson_mean = acc / trials as f64;
        // sd of the mean ≈ sqrt(m)/R/sqrt(trials) ≈ 0.025.
        assert!(
            (poisson_mean - seq_t).abs() < 0.15,
            "sequential {seq_t} vs poisson mean {poisson_mean}"
        );
    }

    #[test]
    fn unit_rates_make_rate_weighting_a_noop() {
        let n = 10usize;
        let mut clock =
            ActivationClock::new(Scheduler::Sequential, n, None).with_rate_weighted_time(true);
        let mut rng = stream_rng(24, 0);
        for i in 1..=50u64 {
            let (t, _) = clock.next(&mut rng);
            assert!((t - i as f64 / n as f64).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "invalid activation rate")]
    fn zero_rate_rejected() {
        let _ = ActivationClock::new(Scheduler::Poisson, 3, Some(&[1.0, 0.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "one activation rate per node")]
    fn rate_length_mismatch_rejected() {
        let _ = ActivationClock::new(Scheduler::Poisson, 3, Some(&[1.0, 2.0]));
    }

    #[test]
    fn exp1_mean_is_one() {
        let mut rng = stream_rng(5, 0);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| exp1(&mut rng)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 1.0).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn scheduler_names_roundtrip() {
        for s in [Scheduler::Sequential, Scheduler::Poisson] {
            assert_eq!(Scheduler::from_name(s.name()).unwrap(), s);
        }
        assert!(Scheduler::from_name("bogus").is_err());
        assert_eq!(Scheduler::from_name("seq").unwrap(), Scheduler::Sequential);
    }
}
