//! Activation schedulers and the deterministic binary-heap event queue.

use plurality_sampling::Xoshiro256PlusPlus;
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// When do nodes activate?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Discrete sequential activation: at step `i` (time `i/n`) one
    /// uniformly random node activates.
    #[default]
    Sequential,
    /// Independent unit-rate Poisson clock per node (`Exp(1)` waiting
    /// times), simulated via the event queue.  Its embedded jump chain is
    /// the sequential process; real-time stamps differ.
    Poisson,
}

impl Scheduler {
    /// Parse a CLI name.
    ///
    /// # Errors
    /// Returns the unknown name.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "sequential" | "seq" => Ok(Self::Sequential),
            "poisson" => Ok(Self::Poisson),
            other => Err(format!(
                "unknown scheduler '{other}' (expected 'sequential' or 'poisson')"
            )),
        }
    }

    /// Scheduler name for labels.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Sequential => "sequential",
            Self::Poisson => "poisson",
        }
    }
}

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A node activates and applies its update rule.
    Activate,
    /// A previously computed recolor of `node` lands (delayed responses
    /// arrived).  Applied only if the node has not activated again since
    /// `version` was stamped.
    Commit {
        /// The new state to apply.
        state: u32,
        /// The node's activation counter at computation time.
        version: u64,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Absolute firing time in ticks.
    pub time: f64,
    /// Insertion sequence number — the deterministic tie-breaker, so the
    /// processing order is a pure function of the seed.
    pub seq: u64,
    /// The node concerned.
    pub node: u32,
    /// Payload.
    pub kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic min-heap of events ordered by `(time, seq)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` for `node` at absolute `time`.
    pub fn push(&mut self, time: f64, node: u32, kind: EventKind) {
        debug_assert!(time.is_finite(), "non-finite event time");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            seq,
            node,
            kind,
        });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Draw an `Exp(1)` waiting time.
#[inline]
pub(crate) fn exp1(rng: &mut Xoshiro256PlusPlus) -> f64 {
    let u: f64 = rng.gen::<f64>();
    -(1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_sampling::stream_rng;

    #[test]
    fn queue_orders_by_time() {
        let mut q = EventQueue::new();
        q.push(2.0, 0, EventKind::Activate);
        q.push(0.5, 1, EventKind::Activate);
        q.push(1.0, 2, EventKind::Activate);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.node).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, 10, EventKind::Activate);
        q.push(1.0, 20, EventKind::Activate);
        q.push(1.0, 30, EventKind::Activate);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.node).collect();
        assert_eq!(order, vec![10, 20, 30], "FIFO among equal times");
    }

    #[test]
    fn exp1_mean_is_one() {
        let mut rng = stream_rng(5, 0);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| exp1(&mut rng)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 1.0).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn scheduler_names_roundtrip() {
        for s in [Scheduler::Sequential, Scheduler::Poisson] {
            assert_eq!(Scheduler::from_name(s.name()).unwrap(), s);
        }
        assert!(Scheduler::from_name("bogus").is_err());
        assert_eq!(Scheduler::from_name("seq").unwrap(), Scheduler::Sequential);
    }
}
