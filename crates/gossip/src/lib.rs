//! Event-driven **asynchronous** gossip simulation of the plurality
//! consensus dynamics.
//!
//! The paper analyses its dynamics in the synchronous clique model: in
//! every round, every node simultaneously samples peers and updates.  Its
//! follow-up literature (*Plurality Consensus in the Gossip Model*,
//! Becchetti et al. 2014; *Fast Consensus via the Unconstrained Undecided
//! State Dynamics*, Bankhamer et al. 2021) asks what survives under
//! **asynchrony**, **unreliable communication**, and the **PUSH/PULL
//! trade-off**.  This crate answers those questions experimentally for
//! every [`plurality_core::Dynamics`], through the same
//! run/trace/result contract as the synchronous engines, so Monte-Carlo
//! runners, analysis, experiments, and the CLI compose with it
//! unchanged.
//!
//! # Model
//!
//! Nodes activate one at a time.  What an activation *does* is chosen by
//! the [`ExchangeMode`]:
//!
//! * [`ExchangeMode::Pull`] — the node issues PULL sample requests (one
//!   message per sample its rule draws) and recolors from the responses.
//!   This is the paper's model and the default.
//! * [`ExchangeMode::Push`] — the node sends its own color to one random
//!   peer; received colors queue in per-node inboxes, and a node's rule
//!   runs (at its own activation) only once its inbox can answer every
//!   sample — see [`crate::modes`] for the starvation semantics.
//! * [`ExchangeMode::PushPull`] — every sample request is a
//!   bidirectional call: the peer's color comes back (pull leg) while
//!   the caller's color lands in the peer's inbox (push leg); later
//!   activations consume the inbox before placing fresh calls.  Network
//!   loss/delay strike each leg independently.
//!
//! *When* nodes activate is the [`Scheduler`]'s job:
//!
//! * [`Scheduler::Sequential`] — a discrete-time sequential process: at
//!   each step one random node activates (uniformly, or
//!   rate-proportionally under heterogeneous rates).  Step `i` happens at
//!   time `i/n`, so one unit of time ("tick") is `n` activations — the
//!   asynchronous analogue of one synchronous round.
//! * [`Scheduler::Poisson`] — each node carries an independent Poisson
//!   clock (rate 1, or its own rate from
//!   [`GossipEngine::with_node_rates`]).  The superposition theorem makes
//!   this exact *without* per-node heap entries: the union of the clocks
//!   is one Poisson process of the total rate whose events land on nodes
//!   rate-proportionally, so each activation costs `O(1)` (uniform
//!   rates) instead of `O(log n)` heap traffic — see [`crate::scheduler`]
//!   for the event-queue design and `BENCH_gossip_scheduler.json` for
//!   the measured gap to the sequential scheduler.  The embedded jump
//!   chain is exactly the sequential process; only real-time stamps
//!   differ.  The cross-validation tests pin this down.
//!
//! Network conditions apply per message — and, for PUSH-PULL, per *leg*
//! ([`NetworkConfig`]):
//!
//! * **loss** — with probability `loss_fraction` a payload is dropped.
//!   A lost PULL sample falls back to the requester's *own* current
//!   color (a node can always count itself); a lost push leg simply
//!   never reaches the peer's inbox.
//! * **delay** — with probability `delay_fraction` a payload is slow: it
//!   still carries the state read at send time, but lands after an
//!   `Exp(1)`-distributed extra time (in ticks).  A delayed PULL response
//!   gates the requester's recolor (the commit is superseded if the node
//!   activates again first — last activation wins); a delayed push leg
//!   parks in the event queue and joins the peer's inbox late.
//!
//! PUSH and PUSH-PULL buffer received colors in bounded per-node
//! inboxes ([`INBOX_CAP`]); what a *full* inbox does with the next
//! receipt is the [`InboxPolicy`]: drop-oldest by default, drop-newest
//! as the maximally stale alternative, random-replace for geometric
//! staleness, or a TTL that expires colors by age (`ttl=T` in the CLI).
//!
//! # Telemetry
//!
//! [`GossipEngine::run_recorded`] threads a
//! [`plurality_telemetry::Recorder`] through the monomorphized event
//! loop: message counters attributed per failure layer ([`DropLayer`]),
//! inbox admission/eviction/staleness accounting, scheduler queue depth
//! and lazy-deletion waste, delay distributions, and phase timers.
//! Recording consumes no randomness, and the disabled
//! (`NoopRecorder`) instantiation — what `run`/`run_detailed` use —
//! compiles to the uninstrumented engine, so golden traces stay
//! bit-identical and the hot path stays at parity
//! (`BENCH_metrics_overhead.json`).  The counters obey exact
//! conservation laws (documented on `plurality_telemetry::Counter`)
//! that `tests/metrics_reconcile.rs` pins across mode × scheduler ×
//! failure-scenario grids.
//!
//! # Failure models
//!
//! [`NetworkConfig`] is the i.i.d. baseline: every message flips the
//! same coins.  The [`crate::failure`] module generalizes it to
//! **structured** failures via [`FailureModel`], which layers on top of
//! the baseline (resolution order is documented there):
//!
//! * **per-edge** parameters ([`EdgeDists`]) — loss/delay drawn *once
//!   per unordered edge* from configurable distributions
//!   ([`ParamDist`]: fixed, uniform range, or flaky-fraction), backed
//!   by deterministic per-edge streams; on CSR topologies the engine
//!   precomputes a dense per-directed-slot table (a pure cache —
//!   trajectories are identical without it);
//! * **time-varying** schedules ([`Window`]) — absolute loss/delay
//!   overrides during `[t0, t1)` windows (degraded periods);
//! * **correlated** failures — a per-edge two-state Gilbert–Elliott
//!   good/bad channel ([`GilbertElliott`]), node-scoped burst outages
//!   ([`NodeOutages`]), and a timed `k`-way [`Partition`] that silences
//!   cross-cut edges.
//!
//! Loss and delay still strike *per message* — and per **leg** in
//! PUSH-PULL — whatever layer produced the effective fractions.  A
//! model that reduces to the uniform baseline (no schedule/chains, all
//! edges alike) reproduces plain [`NetworkConfig`] trials **bit for
//! bit**; the golden fingerprints and the degenerate-equivalence
//! property suites pin this.  Configure with
//! [`GossipEngine::with_failure_model`], the CLI's `--failure` scenario
//! DSL ([`FailureModel::parse`]), or experiment e16 (the robustness
//! grid).
//!
//! Every message draws its loss/delay/peer randomness from its own
//! deterministic RNG stream (`stream_rng(message_master, message_index)`),
//! chain randomness (burst holding times) from the trial's dedicated
//! failure stream, and model-scoped randomness (per-edge parameters,
//! partition assignment, outage membership) from the model's salt — so a
//! trial is a pure function of `(seed, mode, scheduler, rates, failure
//! model)` and the condition grid of an experiment cannot perturb the
//! scheduler's randomness.
//!
//! With the default PULL mode, `delay_fraction = 0` and `loss_fraction =
//! 0`, the engine is the standard asynchronous (sequential-activation)
//! version of the dynamics; on the clique its convergence statistics
//! match the synchronous engines' within statistical tolerance, and the
//! PUSH-PULL variant matches PULL's convergence law (see
//! `tests/gossip_vs_sync.rs` and `tests/gossip_modes.rs` at the
//! workspace root).
//!
//! # Churn (dynamic membership)
//!
//! [`ChurnModel`] ([`crate::churn`]) makes the population itself
//! dynamic: Poisson **crash** / graceful-**leave** / **rejoin** / fresh
//! **join** processes mutate a membership overlay on the base topology
//! (`plurality_topology::Membership`) while the run is in flight.  Dead
//! nodes stop activating, their inboxes are flushed and in-flight
//! traffic to them is orphaned; samplers redraw around dead peers (a
//! bounded redraw budget, then the sample is lost to the `dead_peer`
//! layer); rejoining nodes return with their stale color or a fresh one,
//! and joining spares attach via overlay edges and color themselves by a
//! configurable [`InitPolicy`].  All churn randomness lives on its own
//! per-trial stream, so a zero-rate model is bit-identical to no churn
//! at all.  Configure with [`GossipEngine::with_churn_model`], the CLI's
//! `--churn` DSL ([`ChurnModel::parse`]), or experiment e18 (the churn
//! phase-boundary grid).
//!
//! # Quick start
//!
//! ```
//! use plurality_core::{builders, ThreeMajority};
//! use plurality_engine::{Placement, RunOptions};
//! use plurality_gossip::{ExchangeMode, GossipEngine, NetworkConfig, Scheduler};
//! use plurality_topology::Clique;
//!
//! let clique = Clique::new(2_000);
//! let cfg = builders::biased(2_000, 4, 800);
//! let engine = GossipEngine::new(&clique)
//!     .with_mode(ExchangeMode::PushPull)
//!     .with_scheduler(Scheduler::Poisson)
//!     .with_network(NetworkConfig::new(0.25, 0.02));
//! let r = engine.run(
//!     &ThreeMajority::new(),
//!     &cfg,
//!     Placement::Shuffled,
//!     &RunOptions::with_max_rounds(20_000),
//!     7,
//! );
//! assert!(r.success, "biased start should carry the plurality");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod engine;
pub mod failure;
pub mod modes;
pub mod network;
pub mod scheduler;

pub use churn::{ChurnModel, InitPolicy, DEFAULT_ATTACH};
pub use engine::{GossipEngine, GossipStats};
pub use failure::{
    DropLayer, EdgeDists, FailureModel, FailureState, GilbertElliott, LinkConditions, NodeOutages,
    ParamDist, Partition, Window,
};
pub use modes::{ExchangeMode, Inbox, InboxAdmit, InboxPolicy, INBOX_CAP};
pub use network::{ExchangeFate, LegFate, MessageFate, NetworkConfig};
pub use scheduler::{ActivationClock, EventKind, EventQueue, RatedActivation, Scheduler};
