//! Event-driven **asynchronous** gossip simulation of the plurality
//! consensus dynamics.
//!
//! The paper analyses its dynamics in the synchronous clique model: in
//! every round, every node simultaneously samples peers and updates.  Its
//! follow-up literature (*Plurality Consensus in the Gossip Model*,
//! Becchetti et al. 2014; *Fast Consensus via the Unconstrained Undecided
//! State Dynamics*, Bankhamer et al. 2021) asks what survives under
//! **asynchrony** and **unreliable communication**.  This crate answers
//! that question experimentally for every [`plurality_core::Dynamics`],
//! through the same run/trace/result contract as the synchronous engines,
//! so Monte-Carlo runners, analysis, experiments, and the CLI compose
//! with it unchanged.
//!
//! # Model
//!
//! Nodes activate one at a time.  An activating node performs one
//! application of its dynamics' update rule by issuing PULL-gossip sample
//! requests (one message per sample the rule draws) and recoloring from
//! the responses.  Two [`Scheduler`]s decide *when* nodes activate:
//!
//! * [`Scheduler::Sequential`] — a discrete-time sequential process: at
//!   each step one uniformly random node activates.  Step `i` happens at
//!   time `i/n`, so one unit of time ("tick") is `n` activations — the
//!   asynchronous analogue of one synchronous round.
//! * [`Scheduler::Poisson`] — each node carries an independent unit-rate
//!   Poisson clock (i.i.d. `Exp(1)` waiting times) simulated with a
//!   binary-heap event queue.  Since the minimum of `n` unit-rate
//!   exponentials lands on a uniformly random node, the *embedded jump
//!   chain* of this scheduler is exactly the sequential process; only the
//!   real-time stamps differ.  The cross-validation tests pin this down.
//!
//! Network conditions apply per message ([`NetworkConfig`]):
//!
//! * **loss** — with probability `loss_fraction` a sample request is
//!   dropped; the requester falls back to its *own* current color for
//!   that sample slot (a node can always count itself).
//! * **delay** — with probability `delay_fraction` a response is slow:
//!   its payload is still the peer's state at request time, but it
//!   arrives after an `Exp(1)`-distributed extra time (in ticks).  The
//!   requesting node's recolor only *commits* once its slowest response
//!   arrives; if the node activates again first, the stale pending
//!   commit is superseded (last activation wins).  In between, other
//!   nodes keep observing the requester's old color — exactly the stale
//!   reads delayed messages cause in a real gossip network.
//!
//! Every message draws its loss/delay/peer randomness from its own
//! deterministic RNG stream (`stream_rng(message_master, message_index)`),
//! so a trial is a pure function of `(seed, scheduler, network)` and the
//! network-condition grid of an experiment cannot perturb the scheduler's
//! randomness.
//!
//! With `delay_fraction = 0` and `loss_fraction = 0`, the engine is the
//! standard asynchronous (sequential-activation) version of the dynamics;
//! on the clique its convergence statistics match the synchronous
//! engines' within statistical tolerance (see `tests/gossip_vs_sync.rs`
//! at the workspace root).
//!
//! # Quick start
//!
//! ```
//! use plurality_core::{builders, ThreeMajority};
//! use plurality_engine::{Placement, RunOptions};
//! use plurality_gossip::{GossipEngine, NetworkConfig, Scheduler};
//! use plurality_topology::Clique;
//!
//! let clique = Clique::new(2_000);
//! let cfg = builders::biased(2_000, 4, 800);
//! let engine = GossipEngine::new(&clique)
//!     .with_scheduler(Scheduler::Poisson)
//!     .with_network(NetworkConfig::new(0.25, 0.02));
//! let r = engine.run(
//!     &ThreeMajority::new(),
//!     &cfg,
//!     Placement::Shuffled,
//!     &RunOptions::with_max_rounds(20_000),
//!     7,
//! );
//! assert!(r.success, "biased start should carry the plurality");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod network;
pub mod scheduler;

pub use engine::{GossipEngine, GossipStats};
pub use network::NetworkConfig;
pub use scheduler::Scheduler;
