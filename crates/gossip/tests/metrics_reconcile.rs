//! Telemetry reconciliation: the counters of `run_recorded` obey the
//! exact conservation laws documented on `plurality_telemetry::Counter`,
//! and agree with the engine's own `GossipStats` ground truth, across
//! randomized mode × scheduler × inbox-policy × failure-scenario grids.
//!
//! These are *identities*, not statistical checks: one lost increment —
//! a drop not attributed to a layer, an inbox entry that leaves the
//! buffer without being counted — fails the suite deterministically.

use plurality_core::{builders, ThreeMajority};
use plurality_engine::{Placement, RunOptions};
use plurality_gossip::{
    ChurnModel, DropLayer, ExchangeMode, FailureModel, GossipEngine, GossipStats, InboxPolicy,
    NetworkConfig, Scheduler,
};
use plurality_telemetry::{Counter, Gauge, MetricsRecorder};
use proptest::prelude::*;

fn lost_counter(layer: DropLayer) -> Counter {
    match layer {
        DropLayer::Baseline => Counter::LostBaseline,
        DropLayer::PerEdge => Counter::LostPerEdge,
        DropLayer::Window => Counter::LostWindow,
        DropLayer::GeChain => Counter::LostGeChain,
        DropLayer::Outage => Counter::LostOutage,
        DropLayer::Partition => Counter::LostPartition,
        DropLayer::DeadPeer => Counter::LostDeadPeer,
    }
}

/// Every conservation law, cross-checked against `GossipStats`.
fn check_laws(rec: &MetricsRecorder, stats: &GossipStats, label: &str) {
    let c = |x| rec.counter(x);
    let g = |x| rec.gauge(x);
    // Message flow.
    assert_eq!(
        c(Counter::PullSent),
        c(Counter::PullDelivered) + c(Counter::PullLost),
        "{label}: pull flow"
    );
    assert_eq!(
        c(Counter::PushSent),
        c(Counter::PushDelivered) + c(Counter::PushLost),
        "{label}: push flow"
    );
    // Attribution: every drop belongs to exactly one failure layer.
    let attributed: u64 = DropLayer::ALL.iter().map(|&l| c(lost_counter(l))).sum();
    assert_eq!(
        c(Counter::PullLost) + c(Counter::PushLost),
        attributed,
        "{label}: loss attribution"
    );
    // Inbox entry flow.
    assert_eq!(
        c(Counter::InboxOffered),
        c(Counter::InboxAccepted) + c(Counter::InboxEvictedNewest),
        "{label}: inbox admission"
    );
    assert_eq!(
        c(Counter::InboxAccepted),
        c(Counter::InboxServed)
            + c(Counter::InboxExpiredTtl)
            + c(Counter::InboxEvictedOldest)
            + c(Counter::InboxEvictedRandom)
            + c(Counter::InboxClearedChurn)
            + g(Gauge::InboxResidentAtStop),
        "{label}: inbox exit"
    );
    assert_eq!(
        c(Counter::PushDelivered),
        c(Counter::InboxOffered) + c(Counter::OrphanedPushes) + g(Gauge::PushInFlightAtStop),
        "{label}: push delivery"
    );
    // Scheduler queue: everything pushed was either consumed (popped
    // live or skipped stale) or is still live at stop.  Commits and
    // push arrivals are the only event kinds, so pops = fired events;
    // we can't observe pops directly, but the inequality pushed ≥
    // skipped + live always holds and the difference is the fired pops.
    assert!(
        c(Counter::QueuePushed) >= c(Counter::QueueSkippedStale) + g(Gauge::QueueLenAtStop),
        "{label}: queue books"
    );
    // Ground truth: the legacy stats, computed independently.
    assert_eq!(c(Counter::Activations), stats.activations, "{label}");
    assert_eq!(
        c(Counter::PullLost) + c(Counter::PushLost),
        stats.lost_messages,
        "{label}: lost vs stats"
    );
    assert_eq!(
        c(Counter::PullDelayed) + c(Counter::PushDelayed),
        stats.delayed_messages,
        "{label}: delayed vs stats"
    );
    assert_eq!(
        c(Counter::InboxOffered),
        stats.pushes_delivered,
        "{label}: offers vs stats"
    );
    assert_eq!(c(Counter::InboxServed), stats.inbox_served, "{label}");
    assert_eq!(
        c(Counter::InboxEvictedOldest)
            + c(Counter::InboxEvictedNewest)
            + c(Counter::InboxEvictedRandom),
        stats.inbox_dropped,
        "{label}: evictions vs stats"
    );
    assert_eq!(
        c(Counter::StarvedActivations),
        stats.starved_updates,
        "{label}"
    );
    assert_eq!(
        c(Counter::SupersededCommits),
        stats.superseded_commits,
        "{label}"
    );
    // Churn ground truth and orphan attribution.
    assert_eq!(c(Counter::ChurnJoins), stats.churn_joins, "{label}");
    assert_eq!(c(Counter::ChurnCrashes), stats.churn_crashes, "{label}");
    assert_eq!(c(Counter::ChurnLeaves), stats.churn_leaves, "{label}");
    assert_eq!(c(Counter::ChurnRejoins), stats.churn_rejoins, "{label}");
    assert_eq!(
        c(Counter::OrphanedCommits) + c(Counter::OrphanedPushes),
        stats.orphaned_events,
        "{label}: orphans vs stats"
    );
    assert_eq!(
        c(Counter::DeadPeerSamples),
        stats.dead_peer_samples,
        "{label}"
    );
    // Per-mode message identities (messages == per-message RNG streams).
    let (pull, push) = (c(Counter::PullSent), c(Counter::PushSent));
    match (pull, push) {
        _ if push == 0 => assert_eq!(pull, stats.messages, "{label}: pull messages"),
        _ if pull == 0 => assert_eq!(push, stats.messages, "{label}: push messages"),
        _ => {
            assert_eq!(pull, stats.messages, "{label}: exchange pull legs");
            assert_eq!(push, stats.messages, "{label}: exchange push legs");
        }
    }
}

const SCENARIOS: [&str; 6] = [
    "",
    "edge:loss=0..0.4,delay=0..0.3",
    "window:0..2,loss=0.9,delay=0.2",
    "ge:up=2,down=2,loss=0.85",
    "outage:frac=0.3,up=2,down=2;partition:parts=2,1..2",
    "edge:loss=flaky(0.3,0,0.8);ge:up=3,down=1,loss=0.9;outage:frac=0.2,up=3,down=1",
];

const CHURNS: [&str; 4] = [
    "",
    "crash:0.02;rejoin:0.2",
    "crash:0.05;rejoin:0.3,state=fresh;join:0.5,spare=24,attach=4,init=copy",
    "leave:0.03;rejoin:0.1,state=fresh;join:0.2,spare=16,init=uniform",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn counters_reconcile_exactly(
        seed in 0u64..1_000_000,
        mode_ix in 0usize..3,
        sched_ix in 0usize..2,
        policy_ix in 0usize..4,
        scenario_ix in 0usize..SCENARIOS.len(),
        churn_ix in 0usize..CHURNS.len(),
        loss in 0.0f64..0.4,
        delay in 0.0f64..0.4,
    ) {
        let mode = [ExchangeMode::Pull, ExchangeMode::Push, ExchangeMode::PushPull][mode_ix];
        let scheduler = [Scheduler::Sequential, Scheduler::Poisson][sched_ix];
        let policy = [
            InboxPolicy::DropOldest,
            InboxPolicy::DropNewest,
            InboxPolicy::RandomReplace,
            InboxPolicy::Ttl { ticks: 0.5 },
        ][policy_ix];
        let base = NetworkConfig::new(delay, loss);
        let model = if SCENARIOS[scenario_ix].is_empty() {
            FailureModel::uniform(base)
        } else {
            FailureModel::parse(SCENARIOS[scenario_ix], base).unwrap()
        };
        let topology = plurality_topology::random_regular(240, 8, seed ^ 0x5EED);
        let cfg = builders::biased(240, 3, 80);
        let mut engine = GossipEngine::new(&topology)
            .with_mode(mode)
            .with_scheduler(scheduler)
            .with_inbox_policy(policy)
            .with_failure_model(model.clone());
        if !CHURNS[churn_ix].is_empty() {
            engine = engine.with_churn_model(ChurnModel::parse(CHURNS[churn_ix]).unwrap());
        }
        let mut rec = MetricsRecorder::new();
        // Cap rounds low: MaxRounds stops leave residuals (live queue
        // events, resident inbox colors, in-flight pushes), which is
        // exactly when the at-stop gauges earn their keep.
        let opts = RunOptions::with_max_rounds(30);
        let (_, stats) = engine.run_recorded(
            &ThreeMajority::new(), &cfg, Placement::Shuffled, &opts, seed, &mut rec,
        );
        let label = format!(
            "seed={seed} mode={} sched={} policy={} scenario={:?} churn={:?}",
            mode.name(), scheduler.name(), policy.label(), SCENARIOS[scenario_ix],
            CHURNS[churn_ix],
        );
        check_laws(&rec, &stats, &label);
        // Alive-mass conservation: every membership change is accounted.
        prop_assert_eq!(
            240 + stats.churn_joins + stats.churn_rejoins,
            stats.final_alive + stats.churn_crashes + stats.churn_leaves,
            "{}: alive mass", label
        );
    }
}

/// Runs that stop by absorption (not MaxRounds) must reconcile too —
/// the stop fires mid-loop through a different return path.
#[test]
fn absorbing_runs_reconcile() {
    let clique = plurality_topology::Clique::new(400);
    let cfg = builders::biased(400, 4, 140);
    for mode in [
        ExchangeMode::Pull,
        ExchangeMode::Push,
        ExchangeMode::PushPull,
    ] {
        for policy in [
            InboxPolicy::DropOldest,
            InboxPolicy::RandomReplace,
            InboxPolicy::Ttl { ticks: 1.5 },
        ] {
            let engine = GossipEngine::new(&clique)
                .with_mode(mode)
                .with_inbox_policy(policy)
                .with_network(NetworkConfig::new(0.3, 0.2));
            let mut rec = MetricsRecorder::new();
            let (r, stats) = engine.run_recorded(
                &ThreeMajority::new(),
                &cfg,
                Placement::Shuffled,
                &RunOptions::with_max_rounds(100_000),
                5,
                &mut rec,
            );
            assert_eq!(r.reason, plurality_engine::StopReason::Stopped);
            check_laws(&rec, &stats, &format!("{}/{}", mode.name(), policy.label()));
        }
    }
}
