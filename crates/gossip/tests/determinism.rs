//! Determinism-under-fixed-seed guarantees of the gossip engine.
//!
//! A trial is a pure function of `(seed, mode, scheduler, rates, network,
//! topology, dynamics, placement)`; in particular it must not depend on
//! thread scheduling when fanned out through `MonteCarlo`.  Every
//! `ExchangeMode` × `Scheduler` combination is pinned, under delay/loss
//! and (for a second pass) heterogeneous activation rates.
//!
//! The structured [`FailureModel`] layer adds two contracts, both pinned
//! here: the **degenerate case** (uniform / per-edge `Fixed` parameters,
//! no schedule) reproduces plain `NetworkConfig` trials event for event,
//! and the dense CSR per-edge table is a pure cache (bit-identical to
//! the on-the-fly per-edge streams the dyn fallback uses).

use plurality_core::{builders, ThreeMajority};
use plurality_engine::{MonteCarlo, Placement, RunOptions};
use plurality_gossip::{
    ChurnModel, EdgeDists, ExchangeMode, FailureModel, GossipEngine, GossipStats, NetworkConfig,
    ParamDist, Scheduler,
};
use plurality_sampling::derive_stream;
use plurality_topology::{random_regular, Clique, Topology};
use proptest::prelude::*;
use rand::RngCore;

const MODES: [ExchangeMode; 3] = [
    ExchangeMode::Pull,
    ExchangeMode::Push,
    ExchangeMode::PushPull,
];
const SCHEDULERS: [Scheduler; 2] = [Scheduler::Sequential, Scheduler::Poisson];

fn run_fleet(
    mode: ExchangeMode,
    scheduler: Scheduler,
    rated: bool,
    threads: usize,
) -> Vec<(u64, Option<usize>, GossipStats)> {
    let n = 600;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 3, 150);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(20_000);
    let mc = MonteCarlo::new(8).with_threads(threads).with_seed(42);
    let rates: Option<Vec<f64>> =
        rated.then(|| (0..n).map(|v| if v % 3 == 0 { 2.5 } else { 1.0 }).collect());
    mc.run(|i, _| {
        let mut engine = GossipEngine::new(&clique)
            .with_mode(mode)
            .with_scheduler(scheduler)
            .with_network(NetworkConfig::new(0.4, 0.05));
        if let Some(r) = &rates {
            engine = engine.with_node_rates(r.clone());
        }
        let (r, s) = engine.run_detailed(
            &d,
            &cfg,
            Placement::Shuffled,
            &opts,
            derive_stream(42, i as u64),
        );
        (r.rounds, r.winner, s)
    })
}

#[test]
fn montecarlo_results_independent_of_thread_count_for_every_combination() {
    for mode in MODES {
        for scheduler in SCHEDULERS {
            let serial = run_fleet(mode, scheduler, false, 1);
            let parallel = run_fleet(mode, scheduler, false, 8);
            assert_eq!(
                serial,
                parallel,
                "thread count changed outcomes for {} / {}",
                mode.name(),
                scheduler.name()
            );
        }
    }
}

#[test]
fn repeated_runs_bitwise_identical_for_every_combination() {
    for mode in MODES {
        for scheduler in SCHEDULERS {
            let a = run_fleet(mode, scheduler, false, 4);
            let b = run_fleet(mode, scheduler, false, 4);
            assert_eq!(
                a,
                b,
                "repeat run diverged for {} / {}",
                mode.name(),
                scheduler.name()
            );
        }
    }
}

#[test]
fn heterogeneous_rates_are_deterministic_too() {
    for mode in MODES {
        for scheduler in SCHEDULERS {
            let serial = run_fleet(mode, scheduler, true, 1);
            let parallel = run_fleet(mode, scheduler, true, 8);
            assert_eq!(
                serial,
                parallel,
                "rated fleet diverged for {} / {}",
                mode.name(),
                scheduler.name()
            );
        }
    }
}

#[test]
fn modes_produce_genuinely_different_processes() {
    // Same seeds, different modes ⇒ different trajectories (guards
    // against a mode knob that silently falls back to PULL).
    let pull = run_fleet(ExchangeMode::Pull, Scheduler::Sequential, false, 2);
    let push = run_fleet(ExchangeMode::Push, Scheduler::Sequential, false, 2);
    let push_pull = run_fleet(ExchangeMode::PushPull, Scheduler::Sequential, false, 2);
    assert_ne!(pull, push);
    assert_ne!(pull, push_pull);
    assert_ne!(push, push_pull);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The degenerate-case contract: a `FailureModel` with uniform (or
    /// per-edge `Fixed`) parameters and no schedule reproduces plain
    /// `NetworkConfig` trials **event for event** — same rounds, same
    /// winner, identical message accounting — for every exchange mode,
    /// scheduler, and network parameter pair.
    #[test]
    fn uniform_failure_model_reproduces_network_config_event_for_event(
        delay in 0.0f64..1.0,
        loss in 0.0f64..1.0,
        mode_ix in 0usize..3,
        poisson in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mode = MODES[mode_ix];
        let scheduler = if poisson { Scheduler::Poisson } else { Scheduler::Sequential };
        let n = 250;
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 3, (n / 3) as u64);
        let net = NetworkConfig::new(delay, loss);
        let engine = |model: Option<FailureModel>| {
            let e = GossipEngine::new(&clique).with_mode(mode).with_scheduler(scheduler);
            match model {
                None => e.with_network(net),
                Some(m) => e.with_failure_model(m),
            }
        };
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(2_000);
        let run = |e: GossipEngine| e.run_detailed(&d, &cfg, Placement::Shuffled, &opts, seed);

        let (r0, s0) = run(engine(None));
        let (r1, s1) = run(engine(Some(FailureModel::uniform(net))));
        let fixed = FailureModel::uniform(NetworkConfig::default()).with_per_edge(EdgeDists {
            loss: ParamDist::Fixed(loss),
            delay: ParamDist::Fixed(delay),
        });
        let (r2, s2) = run(engine(Some(fixed)));

        prop_assert_eq!((r0.rounds, r0.winner, r0.reason), (r1.rounds, r1.winner, r1.reason));
        prop_assert_eq!(s0, s1, "uniform model diverged from NetworkConfig");
        prop_assert_eq!((r0.rounds, r0.winner, r0.reason), (r2.rounds, r2.winner, r2.reason));
        prop_assert_eq!(s0, s2, "per-edge Fixed model diverged from NetworkConfig");
    }
}

/// A CSR topology the engine's downcast dispatch cannot see: forces the
/// dyn fallback, whose edge-slot sampler reports `None` — so per-edge
/// parameters are recomputed from the edge streams instead of the dense
/// table.  Both paths must produce identical trajectories.
struct OpaqueGraph<T: Topology>(T);

impl<T: Topology> Topology for OpaqueGraph<T> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn n(&self) -> usize {
        self.0.n()
    }

    fn sample_neighbor(&self, node: usize, rng: &mut dyn RngCore) -> usize {
        self.0.sample_neighbor(node, rng)
    }

    fn degree(&self, node: usize) -> usize {
        self.0.degree(node)
    }
}

#[test]
fn dense_edge_table_matches_on_the_fly_edge_streams() {
    let g = random_regular(400, 6, 11);
    let opaque = OpaqueGraph(g.clone());
    let cfg = builders::biased(400, 3, 120);
    let d = ThreeMajority::new();
    let model = FailureModel::uniform(NetworkConfig::new(0.2, 0.02)).with_per_edge(EdgeDists {
        loss: ParamDist::Uniform { lo: 0.0, hi: 0.5 },
        delay: ParamDist::Flaky {
            frac: 0.25,
            good: 0.0,
            bad: 0.9,
        },
    });
    let opts = RunOptions::with_max_rounds(100_000).traced();
    for mode in MODES {
        let table_path = GossipEngine::new(&g)
            .with_mode(mode)
            .with_failure_model(model.clone());
        let hash_path = GossipEngine::new(&opaque)
            .with_mode(mode)
            .with_failure_model(model.clone());
        for seed in [1u64, 2, 3] {
            let (ra, sa) = table_path.run_detailed(&d, &cfg, Placement::Shuffled, &opts, seed);
            let (rb, sb) = hash_path.run_detailed(&d, &cfg, Placement::Shuffled, &opts, seed);
            assert_eq!(
                (ra.rounds, ra.winner),
                (rb.rounds, rb.winner),
                "{} seed {seed}: dense table and hashed edge params diverged",
                mode.name()
            );
            assert_eq!(sa, sb, "{} seed {seed}: stats diverged", mode.name());
        }
    }
}

#[test]
fn structured_failure_fleet_is_thread_invariant() {
    // The correlated layers (chains, partition) keep per-trial state;
    // it must never leak across MonteCarlo threads.
    let n = 500;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 3, 150);
    let d = ThreeMajority::new();
    let model = FailureModel::parse(
        "edge:loss=0..0.2;ge:up=3,down=1,loss=0.8;outage:frac=0.1,up=5,down=1;\
         partition:parts=2,1..2",
        NetworkConfig::new(0.1, 0.0),
    )
    .unwrap();
    let run = |threads: usize| {
        let mc = MonteCarlo::new(8).with_threads(threads).with_seed(7);
        mc.run(|i, _| {
            let engine = GossipEngine::new(&clique).with_failure_model(model.clone());
            let (r, s) = engine.run_detailed(
                &d,
                &cfg,
                Placement::Shuffled,
                &RunOptions::with_max_rounds(50_000),
                derive_stream(7, i as u64),
            );
            (r.rounds, r.winner, s)
        })
    };
    assert_eq!(run(1), run(8), "thread count changed structured outcomes");
}

/// Zero-rate churn must be **bit-identical** to no churn at all: the
/// membership overlay is installed (alive-mask sampler, total-sized
/// buffers), but every overlay draw consumes exactly one `gen_range`
/// over the same range the base sampler used, and the churn stream is
/// never touched when no event can fire.
#[test]
fn zero_rate_churn_is_bit_identical_to_no_churn() {
    let n = 400;
    let clique = Clique::new(n);
    let g = random_regular(n, 8, 13);
    let cfg = builders::biased(n as u64, 3, 110);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(20_000).traced();
    let topologies: [&dyn Topology; 2] = [&clique, &g];
    for topology in topologies {
        for mode in MODES {
            for scheduler in SCHEDULERS {
                let plain = GossipEngine::new(topology)
                    .with_mode(mode)
                    .with_scheduler(scheduler)
                    .with_network(NetworkConfig::new(0.3, 0.05));
                let churned = GossipEngine::new(topology)
                    .with_mode(mode)
                    .with_scheduler(scheduler)
                    .with_network(NetworkConfig::new(0.3, 0.05))
                    .with_churn_model(ChurnModel::none());
                for seed in [3u64, 17, 91] {
                    let (ra, sa) = plain.run_detailed(&d, &cfg, Placement::Shuffled, &opts, seed);
                    let (rb, sb) = churned.run_detailed(&d, &cfg, Placement::Shuffled, &opts, seed);
                    assert_eq!(
                        (ra.rounds, ra.winner, ra.reason),
                        (rb.rounds, rb.winner, rb.reason),
                        "{} {} {} seed {seed}: zero-rate churn perturbed the trajectory",
                        topology.name(),
                        mode.name(),
                        scheduler.name()
                    );
                    let fp = |t: &plurality_engine::Trace| {
                        t.rounds
                            .iter()
                            .map(|s| (s.round, s.plurality_count, s.second_count, s.minority_mass))
                            .collect::<Vec<_>>()
                    };
                    assert_eq!(
                        fp(ra.trace.as_ref().unwrap()),
                        fp(rb.trace.as_ref().unwrap()),
                        "trace diverged under zero-rate churn"
                    );
                    assert_eq!(sa, sb, "stats diverged under zero-rate churn");
                }
            }
        }
    }
}

fn run_churn_fleet(threads: usize, seed: u64) -> Vec<(u64, Option<usize>, GossipStats)> {
    let n = 500;
    let g = random_regular(n, 8, 5);
    let cfg = builders::biased(n as u64, 3, 140);
    let d = ThreeMajority::new();
    let model = ChurnModel::parse(
        "crash:0.05;leave:0.02;rejoin:0.3,state=fresh;join:0.4,spare=50,attach=6,init=copy",
    )
    .unwrap();
    let mc = MonteCarlo::new(8).with_threads(threads).with_seed(seed);
    mc.run(|i, _| {
        let engine = GossipEngine::new(&g)
            .with_mode(ExchangeMode::PushPull)
            .with_scheduler(Scheduler::Poisson)
            .with_network(NetworkConfig::new(0.2, 0.05))
            .with_churn_model(model.clone());
        let (r, s) = engine.run_detailed(
            &d,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(400),
            derive_stream(seed, i as u64),
        );
        (r.rounds, r.winner, s)
    })
}

#[test]
fn churn_fleets_are_deterministic_and_thread_invariant() {
    let a = run_churn_fleet(1, 23);
    let b = run_churn_fleet(8, 23);
    assert_eq!(a, b, "thread count changed churned outcomes");
    let c = run_churn_fleet(4, 23);
    assert_eq!(a, c, "repeat churned fleet diverged");
    // Churn actually happened — the model is not silently inert.
    assert!(
        a.iter()
            .any(|(_, _, s)| s.churn_crashes + s.churn_leaves > 0),
        "no churn events fired across the fleet"
    );
    // A different seed steers the churn stream somewhere else.
    let d = run_churn_fleet(4, 24);
    assert_ne!(a, d, "churn stream ignored the trial seed");
}

#[test]
fn trials_have_distinct_streams() {
    let outcomes = run_fleet(ExchangeMode::PushPull, Scheduler::Poisson, false, 2);
    let mut activation_counts: Vec<u64> = outcomes.iter().map(|o| o.2.activations).collect();
    activation_counts.sort_unstable();
    activation_counts.dedup();
    assert!(
        activation_counts.len() > 1,
        "all trials produced identical activation counts — streams not independent"
    );
}
