//! Determinism-under-fixed-seed guarantees of the gossip engine.
//!
//! A trial is a pure function of `(seed, mode, scheduler, rates, network,
//! topology, dynamics, placement)`; in particular it must not depend on
//! thread scheduling when fanned out through `MonteCarlo`.  Every
//! `ExchangeMode` × `Scheduler` combination is pinned, under delay/loss
//! and (for a second pass) heterogeneous activation rates.

use plurality_core::{builders, ThreeMajority};
use plurality_engine::{MonteCarlo, Placement, RunOptions};
use plurality_gossip::{ExchangeMode, GossipEngine, GossipStats, NetworkConfig, Scheduler};
use plurality_sampling::derive_stream;
use plurality_topology::Clique;

const MODES: [ExchangeMode; 3] = [
    ExchangeMode::Pull,
    ExchangeMode::Push,
    ExchangeMode::PushPull,
];
const SCHEDULERS: [Scheduler; 2] = [Scheduler::Sequential, Scheduler::Poisson];

fn run_fleet(
    mode: ExchangeMode,
    scheduler: Scheduler,
    rated: bool,
    threads: usize,
) -> Vec<(u64, Option<usize>, GossipStats)> {
    let n = 600;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 3, 150);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(20_000);
    let mc = MonteCarlo::new(8).with_threads(threads).with_seed(42);
    let rates: Option<Vec<f64>> =
        rated.then(|| (0..n).map(|v| if v % 3 == 0 { 2.5 } else { 1.0 }).collect());
    mc.run(|i, _| {
        let mut engine = GossipEngine::new(&clique)
            .with_mode(mode)
            .with_scheduler(scheduler)
            .with_network(NetworkConfig::new(0.4, 0.05));
        if let Some(r) = &rates {
            engine = engine.with_node_rates(r.clone());
        }
        let (r, s) = engine.run_detailed(
            &d,
            &cfg,
            Placement::Shuffled,
            &opts,
            derive_stream(42, i as u64),
        );
        (r.rounds, r.winner, s)
    })
}

#[test]
fn montecarlo_results_independent_of_thread_count_for_every_combination() {
    for mode in MODES {
        for scheduler in SCHEDULERS {
            let serial = run_fleet(mode, scheduler, false, 1);
            let parallel = run_fleet(mode, scheduler, false, 8);
            assert_eq!(
                serial,
                parallel,
                "thread count changed outcomes for {} / {}",
                mode.name(),
                scheduler.name()
            );
        }
    }
}

#[test]
fn repeated_runs_bitwise_identical_for_every_combination() {
    for mode in MODES {
        for scheduler in SCHEDULERS {
            let a = run_fleet(mode, scheduler, false, 4);
            let b = run_fleet(mode, scheduler, false, 4);
            assert_eq!(
                a,
                b,
                "repeat run diverged for {} / {}",
                mode.name(),
                scheduler.name()
            );
        }
    }
}

#[test]
fn heterogeneous_rates_are_deterministic_too() {
    for mode in MODES {
        for scheduler in SCHEDULERS {
            let serial = run_fleet(mode, scheduler, true, 1);
            let parallel = run_fleet(mode, scheduler, true, 8);
            assert_eq!(
                serial,
                parallel,
                "rated fleet diverged for {} / {}",
                mode.name(),
                scheduler.name()
            );
        }
    }
}

#[test]
fn modes_produce_genuinely_different_processes() {
    // Same seeds, different modes ⇒ different trajectories (guards
    // against a mode knob that silently falls back to PULL).
    let pull = run_fleet(ExchangeMode::Pull, Scheduler::Sequential, false, 2);
    let push = run_fleet(ExchangeMode::Push, Scheduler::Sequential, false, 2);
    let push_pull = run_fleet(ExchangeMode::PushPull, Scheduler::Sequential, false, 2);
    assert_ne!(pull, push);
    assert_ne!(pull, push_pull);
    assert_ne!(push, push_pull);
}

#[test]
fn trials_have_distinct_streams() {
    let outcomes = run_fleet(ExchangeMode::PushPull, Scheduler::Poisson, false, 2);
    let mut activation_counts: Vec<u64> = outcomes.iter().map(|o| o.2.activations).collect();
    activation_counts.sort_unstable();
    activation_counts.dedup();
    assert!(
        activation_counts.len() > 1,
        "all trials produced identical activation counts — streams not independent"
    );
}
