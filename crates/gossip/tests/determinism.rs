//! Determinism-under-fixed-seed guarantees of the gossip engine.
//!
//! A trial is a pure function of `(seed, scheduler, network, topology,
//! dynamics, placement)`; in particular it must not depend on thread
//! scheduling when fanned out through `MonteCarlo`.

use plurality_core::{builders, ThreeMajority};
use plurality_engine::{MonteCarlo, Placement, RunOptions};
use plurality_gossip::{GossipEngine, NetworkConfig, Scheduler};
use plurality_sampling::derive_stream;
use plurality_topology::Clique;

fn run_fleet(threads: usize) -> Vec<(u64, Option<usize>, u64, u64)> {
    let n = 600;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 3, 150);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(20_000);
    let mc = MonteCarlo::new(16).with_threads(threads).with_seed(42);
    mc.run(|i, _| {
        let engine = GossipEngine::new(&clique)
            .with_scheduler(Scheduler::Poisson)
            .with_network(NetworkConfig::new(0.4, 0.05));
        let (r, s) = engine.run_detailed(
            &d,
            &cfg,
            Placement::Shuffled,
            &opts,
            derive_stream(42, i as u64),
        );
        (r.rounds, r.winner, s.activations, s.messages)
    })
}

#[test]
fn montecarlo_results_independent_of_thread_count() {
    let serial = run_fleet(1);
    let parallel = run_fleet(8);
    assert_eq!(serial, parallel, "thread count changed trial outcomes");
}

#[test]
fn repeated_runs_bitwise_identical() {
    let a = run_fleet(4);
    let b = run_fleet(4);
    assert_eq!(a, b);
}

#[test]
fn trials_have_distinct_streams() {
    let outcomes = run_fleet(2);
    let mut activation_counts: Vec<u64> = outcomes.iter().map(|o| o.2).collect();
    activation_counts.sort_unstable();
    activation_counts.dedup();
    assert!(
        activation_counts.len() > 1,
        "all trials produced identical activation counts — streams not independent"
    );
}
