//! Property tests for the event plumbing below the gossip engine:
//!
//! * the lazy-deletion indexed [`EventQueue`] must agree event-for-event
//!   with a naive reference model (a flat vector scanned for the
//!   minimum) under arbitrary interleavings of pushes, cancels, and
//!   pops — including heavy timestamp ties, which exercise the
//!   documented deterministic FIFO tie-breaking;
//! * the per-message streams under a **degenerate** [`FailureModel`]
//!   (uniform or per-edge `Fixed` parameters, no schedule) must
//!   reproduce the plain [`NetworkConfig`] draws event for event — the
//!   contract that keeps the golden gossip fingerprints valid.

use plurality_gossip::network::MessageStreams;
use plurality_gossip::{
    EdgeDists, EventKind, EventQueue, FailureModel, FailureState, NetworkConfig, ParamDist,
};
use proptest::prelude::*;
use rand::Rng;

/// One step of a random queue workload.
#[derive(Debug, Clone)]
enum Op {
    /// Push an event for `node` at `time` (small grid ⇒ many ties).
    /// `cancelable` selects `Commit` (dies on cancel) vs `PushArrival`.
    Push {
        time: f64,
        node: u32,
        payload: u32,
        cancelable: bool,
    },
    /// Bump `node`'s generation: all its pending commits become stale.
    Cancel { node: u32 },
    /// Pop the earliest live event.
    Pop,
}

const NODES: u32 = 5;

fn push_strategy() -> impl Strategy<Value = Op> {
    (0u32..8, 0..NODES, any::<u32>(), any::<bool>()).prop_map(|(t, node, payload, cancelable)| {
        Op::Push {
            // Quarter-tick grid: collisions are the common case.
            time: f64::from(t) * 0.25,
            node,
            payload,
            cancelable,
        }
    })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest shim has no weighted prop_oneof; repeat the
    // push arm to keep the queue populated most of the time.
    prop_oneof![
        push_strategy(),
        push_strategy(),
        push_strategy(),
        (0..NODES).prop_map(|node| Op::Cancel { node }),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

/// Naive reference: a vector of entries, popped by scanning for the
/// minimum `(time, seq)` among live entries; cancel eagerly deletes.
#[derive(Default)]
struct ReferenceQueue {
    entries: Vec<(f64, u64, u32, EventKind)>,
    next_seq: u64,
}

impl ReferenceQueue {
    fn push(&mut self, time: f64, node: u32, kind: EventKind) {
        self.entries.push((time, self.next_seq, node, kind));
        self.next_seq += 1;
    }

    fn cancel(&mut self, node: u32) -> bool {
        let before = self.entries.len();
        self.entries
            .retain(|e| !(e.2 == node && matches!(e.3, EventKind::Commit { .. })));
        before != self.entries.len()
    }

    fn pop(&mut self) -> Option<(f64, u64, u32, EventKind)> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(i, _)| i)?;
        Some(self.entries.remove(idx))
    }
}

fn kind_of(payload: u32, cancelable: bool) -> EventKind {
    if cancelable {
        EventKind::Commit { state: payload }
    } else {
        EventKind::PushArrival { color: payload }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The heap agrees with the reference on every pop — same event,
    /// same (time, seq, node, payload) — under arbitrary interleavings,
    /// and both drain to the same tail.
    #[test]
    fn agrees_with_reference_model(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut queue = EventQueue::new(NODES as usize);
        let mut reference = ReferenceQueue::default();
        for op in &ops {
            match *op {
                Op::Push { time, node, payload, cancelable } => {
                    let kind = kind_of(payload, cancelable);
                    queue.push(time, node, kind);
                    reference.push(time, node, kind);
                }
                Op::Cancel { node } => {
                    let live = queue.cancel(node);
                    let ref_live = reference.cancel(node);
                    prop_assert_eq!(live, ref_live, "cancel liveness diverged");
                }
                Op::Pop => {
                    let got = queue.pop().map(|e| (e.time, e.seq, e.node, e.kind));
                    let want = reference.pop();
                    prop_assert_eq!(got, want, "pop diverged");
                }
            }
        }
        // Drain both.
        loop {
            let got = queue.pop().map(|e| (e.time, e.seq, e.node, e.kind));
            let want = reference.pop();
            prop_assert_eq!(got, want, "drain diverged");
            if want.is_none() {
                break;
            }
        }
    }

    /// Push-then-drain: the popped sequence is globally ordered by
    /// `(time, seq)` — time never decreases, and equal times fire FIFO
    /// by insertion sequence number.
    #[test]
    fn drain_is_globally_time_ordered_with_fifo_ties(
        pushes in proptest::collection::vec(
            (0u32..6, 0..NODES, any::<u32>(), any::<bool>()),
            1..80,
        ),
    ) {
        let mut queue = EventQueue::new(NODES as usize);
        for &(t, node, payload, cancelable) in &pushes {
            queue.push(f64::from(t) * 0.5, node, kind_of(payload, cancelable));
        }
        let mut popped = Vec::new();
        while let Some(e) = queue.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), pushes.len());
        for w in popped.windows(2) {
            prop_assert!(
                w[0].time < w[1].time || (w[0].time == w[1].time && w[0].seq < w[1].seq),
                "order violated: ({}, {}) before ({}, {})",
                w[0].time, w[0].seq, w[1].time, w[1].seq
            );
        }
    }

    /// Degenerate-case contract at the message-stream level: for any
    /// `(loss, delay)` pair and any message sequence, the fates drawn
    /// through a uniform `FailureModel` — and through a per-edge model
    /// whose distributions are `Fixed` — equal the plain `NetworkConfig`
    /// fates **event for event**, for both PULL requests and PUSH-PULL
    /// exchanges.
    #[test]
    fn degenerate_failure_model_reproduces_network_config_draws(
        delay in 0.0f64..1.0,
        loss in 0.0f64..1.0,
        master in any::<u64>(),
        messages in 1usize..120,
    ) {
        let net = NetworkConfig::new(delay, loss);
        let uniform = FailureModel::uniform(net);
        let fixed = FailureModel::uniform(NetworkConfig::default()).with_per_edge(EdgeDists {
            loss: ParamDist::Fixed(loss),
            delay: ParamDist::Fixed(delay),
        });
        prop_assert_eq!(uniform.effective_uniform(), Some(net));
        prop_assert_eq!(fixed.effective_uniform(), Some(net));

        let n = 64usize;
        let mut legacy = MessageStreams::new(master);
        let mut via_uniform = MessageStreams::new(master);
        let mut via_fixed = MessageStreams::new(master);
        let mut s_uniform = FailureState::new(&uniform, n, None, 5);
        let mut s_fixed = FailureState::new(&fixed, n, None, 5);

        for m in 0..messages {
            let now = m as f64 * 0.25;
            let src = m % n;
            if m % 2 == 0 {
                let a = legacy.next_fate(&net, |rng| rng.gen_range(0..n));
                let b = via_uniform.next_fate_in(&mut s_uniform, now, src, |rng| {
                    (rng.gen_range(0..n), None)
                });
                let c = via_fixed.next_fate_in(&mut s_fixed, now, src, |rng| {
                    (rng.gen_range(0..n), None)
                });
                prop_assert_eq!(a, b, "uniform fate diverged at message {}", m);
                prop_assert_eq!(a, c, "per-edge Fixed fate diverged at message {}", m);
            } else {
                let a = legacy.next_exchange(&net, |rng| rng.gen_range(0..n));
                let b = via_uniform.next_exchange_in(&mut s_uniform, now, src, |rng| {
                    (rng.gen_range(0..n), None)
                });
                let c = via_fixed.next_exchange_in(&mut s_fixed, now, src, |rng| {
                    (rng.gen_range(0..n), None)
                });
                prop_assert_eq!(a, b, "uniform exchange diverged at message {}", m);
                prop_assert_eq!(a, c, "per-edge Fixed exchange diverged at message {}", m);
            }
        }
        prop_assert_eq!(legacy.issued(), via_uniform.issued());
        prop_assert_eq!(legacy.issued(), via_fixed.issued());
    }

    /// A canceled commit never fires, no matter what else happens, and
    /// non-cancelable arrivals always survive.
    #[test]
    fn canceled_entries_never_fire(
        pushes in proptest::collection::vec(
            (0u32..6, 0..NODES, any::<u32>(), any::<bool>()),
            1..40,
        ),
        canceled_node in 0..NODES,
    ) {
        let mut queue = EventQueue::new(NODES as usize);
        for &(t, node, payload, cancelable) in &pushes {
            queue.push(f64::from(t), node, kind_of(payload, cancelable));
        }
        queue.cancel(canceled_node);
        let mut survivors = 0usize;
        while let Some(e) = queue.pop() {
            prop_assert!(
                !(e.node == canceled_node && matches!(e.kind, EventKind::Commit { .. })),
                "canceled commit fired"
            );
            survivors += 1;
        }
        let expected = pushes
            .iter()
            .filter(|&&(_, node, _, cancelable)| !(cancelable && node == canceled_node))
            .count();
        prop_assert_eq!(survivors, expected);
    }
}
