//! Property-based tests: gossip-engine invariants that must hold for
//! arbitrary populations, network conditions, schedulers, and seeds.

use plurality_core::{builders, ThreeMajority, Voter};
use plurality_engine::{Placement, RunOptions, StopReason};
use plurality_gossip::{ExchangeMode, GossipEngine, NetworkConfig, Scheduler};
use plurality_topology::Clique;
use proptest::prelude::*;

fn scheduler_strategy() -> impl Strategy<Value = Scheduler> {
    prop_oneof![Just(Scheduler::Sequential), Just(Scheduler::Poisson)]
}

fn mode_strategy() -> impl Strategy<Value = ExchangeMode> {
    prop_oneof![
        Just(ExchangeMode::Pull),
        Just(ExchangeMode::Push),
        Just(ExchangeMode::PushPull),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The traced population is conserved at every tick, for any
    /// parameters (network conditions must never create or destroy
    /// nodes — the invariant the commit/versioning logic could break).
    #[test]
    fn population_conserved_under_any_network(
        n in 50usize..400,
        k in 2usize..5,
        delay in 0.0f64..1.0,
        loss in 0.0f64..1.0,
        mode in mode_strategy(),
        scheduler in scheduler_strategy(),
        seed in any::<u64>(),
    ) {
        let bias = (n / 4) as u64;
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, k, bias);
        let engine = GossipEngine::new(&clique)
            .with_mode(mode)
            .with_scheduler(scheduler)
            .with_network(NetworkConfig::new(delay, loss));
        let r = engine.run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(60).traced(),
            seed,
        );
        let trace = r.trace.expect("trace requested");
        prop_assert!(!trace.rounds.is_empty());
        for s in &trace.rounds {
            prop_assert_eq!(
                s.plurality_count + s.minority_mass + s.extra_state_mass,
                n as u64,
                "population leaked at tick {}", s.round
            );
        }
    }

    /// Same seed ⇒ identical outcome and identical traffic accounting,
    /// for every exchange mode and scheduler.
    #[test]
    fn fixed_seed_is_deterministic(
        n in 50usize..300,
        delay in 0.0f64..0.8,
        loss in 0.0f64..0.8,
        mode in mode_strategy(),
        scheduler in scheduler_strategy(),
        seed in any::<u64>(),
    ) {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 3, (n / 3) as u64);
        let engine = GossipEngine::new(&clique)
            .with_mode(mode)
            .with_scheduler(scheduler)
            .with_network(NetworkConfig::new(delay, loss));
        let opts = RunOptions::with_max_rounds(5_000);
        let d = ThreeMajority::new();
        let (ra, sa) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, seed);
        let (rb, sb) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, seed);
        prop_assert_eq!(ra.rounds, rb.rounds);
        prop_assert_eq!(ra.winner, rb.winner);
        prop_assert_eq!(sa, sb, "gossip statistics diverged under a fixed seed");
    }

    /// Message accounting closes for every mode: PULL issues one request
    /// per sample, PUSH one send per activation, PUSH-PULL one exchange
    /// per sample not served from the inbox.  (3-majority draws exactly
    /// 3 samples per completed update.)
    #[test]
    fn message_accounting_closes(
        n in 50usize..250,
        mode in mode_strategy(),
        scheduler in scheduler_strategy(),
        seed in any::<u64>(),
    ) {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 3, (n / 3) as u64);
        let engine = GossipEngine::new(&clique)
            .with_mode(mode)
            .with_scheduler(scheduler);
        let opts = RunOptions::with_max_rounds(50_000);
        let (r, s) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &opts,
            seed,
        );
        prop_assert_eq!(r.reason, StopReason::Stopped);
        match mode {
            ExchangeMode::Pull => {
                prop_assert_eq!(s.messages, 3 * s.activations);
                prop_assert_eq!(s.inbox_served, 0);
                prop_assert_eq!(s.starved_updates, 0);
            }
            ExchangeMode::Push => {
                prop_assert_eq!(s.messages, s.activations);
                // Completed updates consume exactly 3 buffered colors.
                prop_assert_eq!(s.inbox_served % 3, 0);
                prop_assert_eq!(
                    s.inbox_served / 3 + s.starved_updates,
                    s.activations
                );
            }
            ExchangeMode::PushPull => {
                prop_assert_eq!(s.messages + s.inbox_served, 3 * s.activations);
                prop_assert_eq!(s.starved_updates, 0);
            }
        }
        // On an ideal network nothing is lost, delayed, or parked.
        prop_assert_eq!(s.lost_messages, 0);
        prop_assert_eq!(s.delayed_messages, 0);
        prop_assert_eq!(s.superseded_commits, 0);
    }

    /// Pushed colors are conserved on an ideal network: every send is
    /// delivered, and deliveries split into served + still-buffered +
    /// evicted.
    #[test]
    fn push_color_conservation(
        n in 50usize..250,
        seed in any::<u64>(),
    ) {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 3, (n / 3) as u64);
        let engine = GossipEngine::new(&clique).with_mode(ExchangeMode::Push);
        let (r, s) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(50_000),
            seed,
        );
        prop_assert_eq!(r.reason, StopReason::Stopped);
        prop_assert_eq!(s.pushes_delivered, s.messages, "ideal network delivers all");
        let buffered = s.pushes_delivered - s.inbox_served - s.inbox_dropped;
        prop_assert!(
            buffered <= plurality_gossip::INBOX_CAP as u64 * n as u64,
            "more colors in flight than the inboxes can hold"
        );
    }

    /// Reported rounds never exceed the cap, and a Stopped trial always
    /// names a winner.
    #[test]
    fn result_contract_respected(
        n in 20usize..200,
        max_rounds in 1u64..50,
        seed in any::<u64>(),
    ) {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 2, 2.min(n as u64));
        let engine = GossipEngine::new(&clique);
        let r = engine.run(
            &Voter,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(max_rounds),
            seed,
        );
        prop_assert!(r.rounds <= max_rounds);
        match r.reason {
            StopReason::Stopped => prop_assert!(r.winner.is_some()),
            StopReason::MaxRounds => prop_assert!(r.winner.is_none()),
        }
    }

    /// An ideal network issues exactly h messages per activation for the
    /// 3-majority rule (h = 3) and loses/delays nothing.
    #[test]
    fn ideal_network_traffic_exact(
        n in 50usize..300,
        scheduler in scheduler_strategy(),
        seed in any::<u64>(),
    ) {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 3, (n / 3) as u64);
        let engine = GossipEngine::new(&clique).with_scheduler(scheduler);
        let (r, s) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(5_000),
            seed,
        );
        prop_assert_eq!(r.reason, StopReason::Stopped);
        prop_assert_eq!(s.messages, 3 * s.activations);
        prop_assert_eq!(s.lost_messages, 0);
        prop_assert_eq!(s.delayed_messages, 0);
        prop_assert_eq!(s.superseded_commits, 0);
    }

    /// Total loss freezes 3-majority (every sample falls back to the
    /// node's own color, so no node ever recolors).
    #[test]
    fn total_loss_freezes_three_majority(
        n in 20usize..200,
        seed in any::<u64>(),
    ) {
        let clique = Clique::new(n);
        let bias = 1 + (n as u64 / 4);
        let cfg = builders::biased(n as u64, 2, bias);
        prop_assume!(cfg.counts()[1] > 0); // genuinely non-monochromatic
        let engine = GossipEngine::new(&clique).with_network(NetworkConfig::new(0.0, 1.0));
        let r = engine.run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(5).traced(),
            seed,
        );
        prop_assert_eq!(r.reason, StopReason::MaxRounds);
        let trace = r.trace.expect("trace requested");
        for s in &trace.rounds {
            prop_assert_eq!(s.plurality_count, cfg.counts()[0], "state drifted under total loss");
        }
    }
}
