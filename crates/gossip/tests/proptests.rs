//! Property-based tests: gossip-engine invariants that must hold for
//! arbitrary populations, network conditions, schedulers, and seeds.

use plurality_core::{builders, ThreeMajority, UndecidedState, Voter};
use plurality_engine::{Placement, RunOptions, StopReason};
use plurality_gossip::{
    ChurnModel, ExchangeMode, GossipEngine, InitPolicy, NetworkConfig, Scheduler,
};
use plurality_topology::Clique;
use proptest::prelude::*;

fn scheduler_strategy() -> impl Strategy<Value = Scheduler> {
    prop_oneof![Just(Scheduler::Sequential), Just(Scheduler::Poisson)]
}

fn mode_strategy() -> impl Strategy<Value = ExchangeMode> {
    prop_oneof![
        Just(ExchangeMode::Pull),
        Just(ExchangeMode::Push),
        Just(ExchangeMode::PushPull),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The traced population is conserved at every tick, for any
    /// parameters (network conditions must never create or destroy
    /// nodes — the invariant the commit/versioning logic could break).
    #[test]
    fn population_conserved_under_any_network(
        n in 50usize..400,
        k in 2usize..5,
        delay in 0.0f64..1.0,
        loss in 0.0f64..1.0,
        mode in mode_strategy(),
        scheduler in scheduler_strategy(),
        seed in any::<u64>(),
    ) {
        let bias = (n / 4) as u64;
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, k, bias);
        let engine = GossipEngine::new(&clique)
            .with_mode(mode)
            .with_scheduler(scheduler)
            .with_network(NetworkConfig::new(delay, loss));
        let r = engine.run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(60).traced(),
            seed,
        );
        let trace = r.trace.expect("trace requested");
        prop_assert!(!trace.rounds.is_empty());
        for s in &trace.rounds {
            prop_assert_eq!(
                s.plurality_count + s.minority_mass + s.extra_state_mass,
                n as u64,
                "population leaked at tick {}", s.round
            );
        }
    }

    /// Same seed ⇒ identical outcome and identical traffic accounting,
    /// for every exchange mode and scheduler.
    #[test]
    fn fixed_seed_is_deterministic(
        n in 50usize..300,
        delay in 0.0f64..0.8,
        loss in 0.0f64..0.8,
        mode in mode_strategy(),
        scheduler in scheduler_strategy(),
        seed in any::<u64>(),
    ) {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 3, (n / 3) as u64);
        let engine = GossipEngine::new(&clique)
            .with_mode(mode)
            .with_scheduler(scheduler)
            .with_network(NetworkConfig::new(delay, loss));
        let opts = RunOptions::with_max_rounds(5_000);
        let d = ThreeMajority::new();
        let (ra, sa) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, seed);
        let (rb, sb) = engine.run_detailed(&d, &cfg, Placement::Shuffled, &opts, seed);
        prop_assert_eq!(ra.rounds, rb.rounds);
        prop_assert_eq!(ra.winner, rb.winner);
        prop_assert_eq!(sa, sb, "gossip statistics diverged under a fixed seed");
    }

    /// Message accounting closes for every mode: PULL issues one request
    /// per sample, PUSH one send per activation, PUSH-PULL one exchange
    /// per sample not served from the inbox.  (3-majority draws exactly
    /// 3 samples per completed update.)
    #[test]
    fn message_accounting_closes(
        n in 50usize..250,
        mode in mode_strategy(),
        scheduler in scheduler_strategy(),
        seed in any::<u64>(),
    ) {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 3, (n / 3) as u64);
        let engine = GossipEngine::new(&clique)
            .with_mode(mode)
            .with_scheduler(scheduler);
        let opts = RunOptions::with_max_rounds(50_000);
        let (r, s) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &opts,
            seed,
        );
        prop_assert_eq!(r.reason, StopReason::Stopped);
        match mode {
            ExchangeMode::Pull => {
                prop_assert_eq!(s.messages, 3 * s.activations);
                prop_assert_eq!(s.inbox_served, 0);
                prop_assert_eq!(s.starved_updates, 0);
            }
            ExchangeMode::Push => {
                prop_assert_eq!(s.messages, s.activations);
                // Completed updates consume exactly 3 buffered colors.
                prop_assert_eq!(s.inbox_served % 3, 0);
                prop_assert_eq!(
                    s.inbox_served / 3 + s.starved_updates,
                    s.activations
                );
            }
            ExchangeMode::PushPull => {
                prop_assert_eq!(s.messages + s.inbox_served, 3 * s.activations);
                prop_assert_eq!(s.starved_updates, 0);
            }
        }
        // On an ideal network nothing is lost, delayed, or parked.
        prop_assert_eq!(s.lost_messages, 0);
        prop_assert_eq!(s.delayed_messages, 0);
        prop_assert_eq!(s.superseded_commits, 0);
    }

    /// Pushed colors are conserved on an ideal network: every send is
    /// delivered, and deliveries split into served + still-buffered +
    /// evicted.
    #[test]
    fn push_color_conservation(
        n in 50usize..250,
        seed in any::<u64>(),
    ) {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 3, (n / 3) as u64);
        let engine = GossipEngine::new(&clique).with_mode(ExchangeMode::Push);
        let (r, s) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(50_000),
            seed,
        );
        prop_assert_eq!(r.reason, StopReason::Stopped);
        prop_assert_eq!(s.pushes_delivered, s.messages, "ideal network delivers all");
        let buffered = s.pushes_delivered - s.inbox_served - s.inbox_dropped;
        prop_assert!(
            buffered <= plurality_gossip::INBOX_CAP as u64 * n as u64,
            "more colors in flight than the inboxes can hold"
        );
    }

    /// Reported rounds never exceed the cap, and a Stopped trial always
    /// names a winner.
    #[test]
    fn result_contract_respected(
        n in 20usize..200,
        max_rounds in 1u64..50,
        seed in any::<u64>(),
    ) {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 2, 2.min(n as u64));
        let engine = GossipEngine::new(&clique);
        let r = engine.run(
            &Voter,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(max_rounds),
            seed,
        );
        prop_assert!(r.rounds <= max_rounds);
        match r.reason {
            StopReason::Stopped => prop_assert!(r.winner.is_some()),
            StopReason::MaxRounds => prop_assert!(r.winner.is_none()),
        }
    }

    /// An ideal network issues exactly h messages per activation for the
    /// 3-majority rule (h = 3) and loses/delays nothing.
    #[test]
    fn ideal_network_traffic_exact(
        n in 50usize..300,
        scheduler in scheduler_strategy(),
        seed in any::<u64>(),
    ) {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 3, (n / 3) as u64);
        let engine = GossipEngine::new(&clique).with_scheduler(scheduler);
        let (r, s) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(5_000),
            seed,
        );
        prop_assert_eq!(r.reason, StopReason::Stopped);
        prop_assert_eq!(s.messages, 3 * s.activations);
        prop_assert_eq!(s.lost_messages, 0);
        prop_assert_eq!(s.delayed_messages, 0);
        prop_assert_eq!(s.superseded_commits, 0);
    }

    /// Alive color mass is conserved under arbitrary churn: every
    /// join/rejoin adds exactly one alive node, every crash/leave
    /// removes exactly one, the ledger closes
    /// (`n + joins + rejoins == final_alive + crashes + leaves`), and
    /// the traced per-tick configuration never exceeds the node budget
    /// `n + spare`.
    #[test]
    fn alive_color_mass_conserved_under_churn(
        n in 60usize..250,
        crash in 0.0f64..0.2,
        leave in 0.0f64..0.1,
        rejoin in 0.0f64..0.5,
        join in 0.0f64..0.5,
        spare in 1usize..40,
        fresh in any::<bool>(),
        copy_init in any::<bool>(),
        mode in mode_strategy(),
        scheduler in scheduler_strategy(),
        seed in any::<u64>(),
    ) {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 3, (n / 3) as u64);
        let init = if copy_init { InitPolicy::CopyRandomAlive } else { InitPolicy::FreshUniform };
        let model = ChurnModel::none()
            .with_crash(crash)
            .with_leave(leave)
            .with_rejoin(rejoin, fresh)
            .with_join(join, spare)
            .with_init(init);
        let engine = GossipEngine::new(&clique)
            .with_mode(mode)
            .with_scheduler(scheduler)
            .with_network(NetworkConfig::new(0.2, 0.1))
            .with_churn_model(model);
        let (r, s) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(80).traced(),
            seed,
        );
        prop_assert_eq!(
            n as u64 + s.churn_joins + s.churn_rejoins,
            s.final_alive + s.churn_crashes + s.churn_leaves,
            "alive-mass ledger does not close"
        );
        prop_assert!(s.final_alive <= (n + spare) as u64);
        let trace = r.trace.expect("trace requested");
        for snap in &trace.rounds {
            let mass = snap.plurality_count + snap.minority_mass + snap.extra_state_mass;
            prop_assert!(
                mass <= (n + spare) as u64,
                "tick {}: color mass {} exceeds node budget {}",
                snap.round, mass, n + spare
            );
        }
        // A Stopped run ends with the stopping configuration: its color
        // mass is exactly the alive population at stop.
        if r.reason == StopReason::Stopped {
            let last = trace.rounds.last().unwrap();
            prop_assert_eq!(
                last.plurality_count + last.minority_mass + last.extra_state_mass,
                s.final_alive,
                "stopping configuration disagrees with final_alive"
            );
        }
    }

    /// Total loss freezes 3-majority (every sample falls back to the
    /// node's own color, so no node ever recolors).
    #[test]
    fn total_loss_freezes_three_majority(
        n in 20usize..200,
        seed in any::<u64>(),
    ) {
        let clique = Clique::new(n);
        let bias = 1 + (n as u64 / 4);
        let cfg = builders::biased(n as u64, 2, bias);
        prop_assume!(cfg.counts()[1] > 0); // genuinely non-monochromatic
        let engine = GossipEngine::new(&clique).with_network(NetworkConfig::new(0.0, 1.0));
        let r = engine.run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(5).traced(),
            seed,
        );
        prop_assert_eq!(r.reason, StopReason::MaxRounds);
        let trace = r.trace.expect("trace requested");
        for s in &trace.rounds {
            prop_assert_eq!(s.plurality_count, cfg.counts()[0], "state drifted under total loss");
        }
    }
}

/// Arrivals under `init=undecided` enter in the extra state, which the
/// undecided-state dynamics then resolves — the run must stay
/// well-formed (ledger closes, mass bounded) with a genuinely populated
/// extra state.
#[test]
fn undecided_init_churn_is_well_formed() {
    let n = 300;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 3, 100);
    let model = ChurnModel::none()
        .with_crash(0.05)
        .with_rejoin(0.4, true)
        .with_join(0.5, 40)
        .with_init(InitPolicy::Undecided);
    let engine = GossipEngine::new(&clique)
        .with_mode(ExchangeMode::Pull)
        .with_scheduler(Scheduler::Poisson)
        .with_churn_model(model);
    let (_, s) = engine.run_detailed(
        &UndecidedState::new(3),
        &cfg,
        Placement::Shuffled,
        &RunOptions::with_max_rounds(200),
        9,
    );
    assert_eq!(
        n as u64 + s.churn_joins + s.churn_rejoins,
        s.final_alive + s.churn_crashes + s.churn_leaves,
        "alive-mass ledger does not close under undecided init"
    );
    assert!(
        s.churn_joins + s.churn_rejoins > 0,
        "churn never fired — the test exercises nothing"
    );
}
