//! Property-based tests on the exact chain: absorption laws that must
//! hold for arbitrary small configurations.

use plurality_exact::{ExactChain, HPluralityKernel, ThreeMajorityKernel, VoterKernel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Win probabilities form a distribution for any start.
    #[test]
    fn win_probabilities_are_distribution(
        c0 in 0u64..12, c1 in 0u64..12, c2 in 0u64..12,
    ) {
        prop_assume!(c0 + c1 + c2 > 0);
        let n = c0 + c1 + c2;
        let chain = ExactChain::new(n, 3);
        let a = chain.analyze(&ThreeMajorityKernel, &[c0, c1, c2]);
        let total: f64 = a.win_probability.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "total = {}", total);
        for &p in &a.win_probability {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        }
        prop_assert!(a.expected_rounds >= 0.0);
    }

    /// The voter absorption law is exactly the martingale c_j/n.
    #[test]
    fn voter_is_exactly_martingale(c0 in 1u64..15, c1 in 1u64..15) {
        let n = c0 + c1;
        let chain = ExactChain::new(n, 2);
        let a = chain.analyze(&VoterKernel, &[c0, c1]);
        prop_assert!((a.win_probability[0] - c0 as f64 / n as f64).abs() < 1e-8);
    }

    /// Color symmetry: permuting the start permutes the win vector.
    #[test]
    fn color_symmetry(c0 in 0u64..10, c1 in 0u64..10) {
        prop_assume!(c0 + c1 > 0);
        let n = c0 + c1;
        let chain = ExactChain::new(n, 2);
        let a = chain.analyze(&ThreeMajorityKernel, &[c0, c1]);
        let b = chain.analyze(&ThreeMajorityKernel, &[c1, c0]);
        prop_assert!((a.win_probability[0] - b.win_probability[1]).abs() < 1e-9);
        prop_assert!((a.expected_rounds - b.expected_rounds).abs() < 1e-7);
    }

    /// Monotonicity in the start: more initial support never hurts.
    #[test]
    fn win_probability_monotone_in_support(c0 in 1u64..12, c1 in 1u64..12) {
        prop_assume!(c0 + 1 + c1 <= 24);
        let n = c0 + c1 + 1;
        let chain = ExactChain::new(n, 2);
        let better = chain.analyze(&ThreeMajorityKernel, &[c0 + 1, c1]);
        let worse = chain.analyze(&ThreeMajorityKernel, &[c0, c1 + 1]);
        prop_assert!(
            better.win_probability[0] >= worse.win_probability[0] - 1e-9,
            "{} < {}",
            better.win_probability[0],
            worse.win_probability[0]
        );
    }

    /// Amplification hierarchy holds exactly for every biased start:
    /// voter ≤ 3-majority ≤ 5-plurality win probability.
    #[test]
    fn amplification_hierarchy(c1 in 1u64..10, extra in 1u64..8) {
        let c0 = c1 + extra;
        let n = c0 + c1;
        let chain = ExactChain::new(n, 2);
        let v = chain.analyze(&VoterKernel, &[c0, c1]).win_probability[0];
        let m = chain.analyze(&ThreeMajorityKernel, &[c0, c1]).win_probability[0];
        let h = chain.analyze(&HPluralityKernel { h: 5 }, &[c0, c1]).win_probability[0];
        prop_assert!(v <= m + 1e-9, "voter {} > majority {}", v, m);
        prop_assert!(m <= h + 1e-9, "majority {} > 5-plurality {}", m, h);
    }
}
