//! Exact absorbing-Markov-chain analysis of consensus dynamics at small
//! `n` — the ground truth the stochastic engines are validated against.
//!
//! On the clique, one synchronous round from configuration `c` is a
//! multinomial draw with the dynamics' adoption probabilities, so for
//! small populations the whole process is an explicit absorbing Markov
//! chain over the `C(n+k−1, k−1)` compositions of `n` into `k` colors.
//! [`ExactChain`] enumerates that chain and solves the absorption
//! equations directly, yielding exact plurality-win probabilities and
//! expected absorption times — numbers the Monte-Carlo engines must (and
//! do — see `tests/exact_vs_simulation.rs`) reproduce within sampling
//! error.
//!
//! ```
//! use plurality_exact::{ExactChain, ThreeMajorityKernel, VoterKernel};
//!
//! let chain = ExactChain::new(12, 2);
//! // The voter model's absorption law is the martingale c_j/n — exactly.
//! let voter = chain.analyze(&VoterKernel, &[9, 3]);
//! assert!((voter.win_probability[0] - 0.75).abs() < 1e-9);
//! // 3-majority amplifies the same bias well past the martingale value.
//! let majority = chain.analyze(&ThreeMajorityKernel, &[9, 3]);
//! assert!(majority.win_probability[0] > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;

pub use chain::{
    Absorption, AdoptionKernel, ExactChain, HPluralityKernel, ThreeMajorityKernel, VoterKernel,
};
