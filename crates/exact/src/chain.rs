//! The consensus process as an explicit absorbing Markov chain.
//!
//! For small populations the chain over color configurations is tiny —
//! the state space is the set of compositions of `n` into `k` parts,
//! `C(n+k−1, k−1)` states — so absorption probabilities and expected
//! absorption times can be computed **exactly** (up to f64 linear
//! algebra) and used as ground truth against the stochastic engines.
//!
//! The transition law follows from the same fact the mean-field engine
//! uses: given configuration `c`, each node's next color is i.i.d. with
//! the dynamics' adoption probabilities `p(c)`, so
//! `P(c → c') = n! · Π_j p_j^{c'_j} / c'_j!` — a multinomial pmf.
//!
//! This module supports any dynamics whose mean-field step is a *single*
//! multinomial over the adoption probabilities (3-majority, h-plurality
//! via enumeration, voter, median-of-3-samples, all `TableD3` rules);
//! group-wise dynamics (2-choices, undecided-state) would need the
//! product law and are not needed for validation.

use std::collections::HashMap;

/// Adoption-probability oracle: fills `out[j] = P(a node adopts j | c)`.
pub trait AdoptionKernel {
    /// Compute the per-node adoption distribution for configuration `c`.
    fn adoption_probs(&self, counts: &[u64], out: &mut [f64]);
    /// Kernel name (diagnostics).
    fn name(&self) -> String;
}

/// Lemma 1 kernel (3-majority).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreeMajorityKernel;

impl AdoptionKernel for ThreeMajorityKernel {
    fn adoption_probs(&self, counts: &[u64], out: &mut [f64]) {
        plurality_core::kernels::three_majority_probs(counts, out);
    }

    fn name(&self) -> String {
        "3-majority".into()
    }
}

/// Voter kernel (`p_j = c_j/n`).
#[derive(Debug, Clone, Copy, Default)]
pub struct VoterKernel;

impl AdoptionKernel for VoterKernel {
    fn adoption_probs(&self, counts: &[u64], out: &mut [f64]) {
        let n: u64 = counts.iter().sum();
        for (p, &c) in out.iter_mut().zip(counts) {
            *p = c as f64 / n as f64;
        }
    }

    fn name(&self) -> String {
        "voter".into()
    }
}

/// h-plurality kernel via exact enumeration.
#[derive(Debug, Clone, Copy)]
pub struct HPluralityKernel {
    /// Sample size.
    pub h: usize,
}

impl AdoptionKernel for HPluralityKernel {
    fn adoption_probs(&self, counts: &[u64], out: &mut [f64]) {
        let ok = plurality_core::kernels::h_plurality_probs(counts, self.h, out);
        assert!(ok, "enumeration budget exceeded; use smaller k/h");
    }

    fn name(&self) -> String {
        format!("{}-plurality", self.h)
    }
}

/// Any color-symmetric 3-input rule.
impl AdoptionKernel for plurality_core::TableD3 {
    fn adoption_probs(&self, counts: &[u64], out: &mut [f64]) {
        plurality_core::TableD3::adoption_probs(self, counts, out);
    }

    fn name(&self) -> String {
        plurality_core::Dynamics::name(self)
    }
}

/// Exact analysis results for one starting configuration.
#[derive(Debug, Clone)]
pub struct Absorption {
    /// Probability of absorbing in each monochromatic color.
    pub win_probability: Vec<f64>,
    /// Expected number of rounds to absorption.
    pub expected_rounds: f64,
}

/// Exact absorbing-chain solver over the composition state space.
pub struct ExactChain {
    n: u64,
    k: usize,
    /// All states, in a fixed enumeration order.
    states: Vec<Vec<u64>>,
    index: HashMap<Vec<u64>, usize>,
    /// Log-factorials `ln i!` for `i ≤ n`.
    ln_fact: Vec<f64>,
}

impl ExactChain {
    /// Budget on the state count (`C(n+k−1, k−1)`), beyond which exact
    /// analysis is refused.
    pub const MAX_STATES: usize = 200_000;

    /// Enumerate the state space for `(n, k)`.
    ///
    /// # Panics
    /// Panics if the state space exceeds [`Self::MAX_STATES`].
    #[must_use]
    pub fn new(n: u64, k: usize) -> Self {
        assert!(k >= 1, "need at least one color");
        let mut states = Vec::new();
        let mut current = vec![0u64; k];
        enumerate_compositions(n, 0, &mut current, &mut states);
        assert!(
            states.len() <= Self::MAX_STATES,
            "state space has {} states (max {})",
            states.len(),
            Self::MAX_STATES
        );
        let index: HashMap<Vec<u64>, usize> = states
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i))
            .collect();
        let mut ln_fact = vec![0.0f64; n as usize + 1];
        for i in 1..=n as usize {
            ln_fact[i] = ln_fact[i - 1] + (i as f64).ln();
        }
        Self {
            n,
            k,
            states,
            index,
            ln_fact,
        }
    }

    /// Number of states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Multinomial pmf `P(target | n, probs)` in log space.
    fn multinomial_pmf(&self, probs: &[f64], target: &[u64]) -> f64 {
        let mut ln_p = self.ln_fact[self.n as usize];
        for (&t, &p) in target.iter().zip(probs) {
            if t == 0 {
                continue;
            }
            if p <= 0.0 {
                return 0.0;
            }
            ln_p += t as f64 * p.ln() - self.ln_fact[t as usize];
        }
        ln_p.exp()
    }

    /// Solve absorption exactly from one starting configuration.
    ///
    /// Builds the full transition kernel row by row and solves the
    /// absorption equations by damped fixed-point iteration (the chain is
    /// absorbing, so the iteration contracts; tolerance 1e-12).
    ///
    /// # Panics
    /// Panics if `start` is not a valid configuration of `(n, k)`.
    #[must_use]
    pub fn analyze(&self, kernel: &dyn AdoptionKernel, start: &[u64]) -> Absorption {
        assert_eq!(start.len(), self.k);
        assert_eq!(start.iter().sum::<u64>(), self.n);
        let s = self.states.len();

        // Transition rows (dense in the reachable support; many entries
        // are numerically zero and dropped at 1e-15).
        let mut rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(s);
        let mut probs = vec![0.0f64; self.k];
        for state in &self.states {
            if is_monochromatic(state) {
                rows.push(Vec::new()); // absorbing
                continue;
            }
            kernel.adoption_probs(state, &mut probs);
            let mut row = Vec::new();
            for (j, target) in self.states.iter().enumerate() {
                let p = self.multinomial_pmf(&probs, target);
                if p > 1e-15 {
                    row.push((j as u32, p));
                }
            }
            // Normalize away the dropped mass.
            let total: f64 = row.iter().map(|&(_, p)| p).sum();
            for entry in &mut row {
                entry.1 /= total;
            }
            rows.push(row);
        }

        // Absorbing states and their colors.
        let mut absorb_color: Vec<Option<usize>> = Vec::with_capacity(s);
        for state in &self.states {
            absorb_color.push(mono_color(state));
        }

        // win[i][color] via value iteration: w = P·w with boundary at the
        // absorbing states; expected rounds t = 1 + P·t likewise.
        let mut win = vec![vec![0.0f64; self.k]; s];
        let mut rounds = vec![0.0f64; s];
        for (i, color) in absorb_color.iter().enumerate() {
            if let Some(c) = color {
                win[i][*c] = 1.0;
            }
        }
        // Gauss-Seidel sweeps.
        for _sweep in 0..100_000 {
            let mut delta: f64 = 0.0;
            for i in 0..s {
                if absorb_color[i].is_some() {
                    continue;
                }
                let mut new_win = vec![0.0f64; self.k];
                let mut new_rounds = 1.0;
                // Self-loop handling: i → i with prob p_ii needs the
                // standard (1 − p_ii) renormalization.
                let mut self_p = 0.0;
                for &(j, p) in &rows[i] {
                    let j = j as usize;
                    if j == i {
                        self_p = p;
                        continue;
                    }
                    for (acc, &w) in new_win.iter_mut().zip(&win[j]) {
                        *acc += p * w;
                    }
                    new_rounds += p * rounds[j];
                }
                let scale = 1.0 / (1.0 - self_p);
                for w in &mut new_win {
                    *w *= scale;
                }
                new_rounds *= scale;
                for (c, &w) in new_win.iter().enumerate() {
                    delta = delta.max((w - win[i][c]).abs());
                }
                delta = delta.max((new_rounds - rounds[i]).abs() / new_rounds.max(1.0));
                win[i] = new_win;
                rounds[i] = new_rounds;
            }
            if delta < 1e-12 {
                break;
            }
        }

        let i0 = self.index[&start.to_vec()];
        Absorption {
            win_probability: win[i0].clone(),
            expected_rounds: rounds[i0],
        }
    }
}

fn enumerate_compositions(
    remaining: u64,
    pos: usize,
    current: &mut Vec<u64>,
    out: &mut Vec<Vec<u64>>,
) {
    let k = current.len();
    if pos == k - 1 {
        current[pos] = remaining;
        out.push(current.clone());
        return;
    }
    for v in 0..=remaining {
        current[pos] = v;
        enumerate_compositions(remaining - v, pos + 1, current, out);
    }
}

fn is_monochromatic(state: &[u64]) -> bool {
    mono_color(state).is_some()
}

fn mono_color(state: &[u64]) -> Option<usize> {
    let total: u64 = state.iter().sum();
    state.iter().position(|&c| c == total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_count() {
        // C(n+k−1, k−1): n = 4, k = 3 → C(6,2) = 15.
        let chain = ExactChain::new(4, 3);
        assert_eq!(chain.state_count(), 15);
        let chain2 = ExactChain::new(10, 2);
        assert_eq!(chain2.state_count(), 11);
    }

    #[test]
    fn voter_absorption_is_martingale() {
        // For the voter model, P(absorb in color j) = c_j/n exactly.
        let chain = ExactChain::new(12, 2);
        let a = chain.analyze(&VoterKernel, &[8, 4]);
        assert!(
            (a.win_probability[0] - 8.0 / 12.0).abs() < 1e-9,
            "P = {}",
            a.win_probability[0]
        );
        assert!((a.win_probability[1] - 4.0 / 12.0).abs() < 1e-9);
        assert!(a.expected_rounds > 0.0);
    }

    #[test]
    fn voter_martingale_three_colors() {
        let chain = ExactChain::new(9, 3);
        let a = chain.analyze(&VoterKernel, &[4, 3, 2]);
        for (j, expect) in [4.0 / 9.0, 3.0 / 9.0, 2.0 / 9.0].iter().enumerate() {
            assert!(
                (a.win_probability[j] - expect).abs() < 1e-8,
                "color {j}: {} vs {expect}",
                a.win_probability[j]
            );
        }
    }

    #[test]
    fn three_majority_beats_voter_from_bias() {
        // 3-majority amplifies bias: its exact win probability from a
        // biased binary start exceeds the voter's martingale value.
        let chain = ExactChain::new(20, 2);
        let maj = chain.analyze(&ThreeMajorityKernel, &[13, 7]);
        let vot = chain.analyze(&VoterKernel, &[13, 7]);
        assert!(
            maj.win_probability[0] > vot.win_probability[0] + 0.05,
            "majority {} vs voter {}",
            maj.win_probability[0],
            vot.win_probability[0]
        );
        // And is faster in expectation.
        assert!(maj.expected_rounds < vot.expected_rounds);
    }

    #[test]
    fn win_probabilities_sum_to_one() {
        let chain = ExactChain::new(10, 3);
        for start in [[4u64, 3, 3], [8, 1, 1], [5, 5, 0]] {
            let a = chain.analyze(&ThreeMajorityKernel, &start);
            let total: f64 = a.win_probability.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "start {start:?}: {total}");
        }
    }

    #[test]
    fn absorbing_start_is_trivial() {
        let chain = ExactChain::new(15, 2);
        let a = chain.analyze(&ThreeMajorityKernel, &[15, 0]);
        assert_eq!(a.win_probability[0], 1.0);
        assert_eq!(a.expected_rounds, 0.0);
    }

    #[test]
    fn symmetry_of_balanced_start() {
        // Perfectly balanced binary start: each color wins w.p. 1/2.
        let chain = ExactChain::new(10, 2);
        let a = chain.analyze(&ThreeMajorityKernel, &[5, 5]);
        assert!((a.win_probability[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn h_plurality_kernel_supported() {
        let chain = ExactChain::new(8, 2);
        let h5 = HPluralityKernel { h: 5 };
        let a = chain.analyze(&h5, &[5, 3]);
        let a3 = chain.analyze(&ThreeMajorityKernel, &[5, 3]);
        // Larger samples amplify harder.
        assert!(a.win_probability[0] > a3.win_probability[0]);
    }

    #[test]
    fn dead_color_stays_dead() {
        let chain = ExactChain::new(10, 3);
        let a = chain.analyze(&ThreeMajorityKernel, &[6, 4, 0]);
        assert!(a.win_probability[2].abs() < 1e-12);
    }
}
