//! Minimal `--key value` argument parsing.
//!
//! `clap` is not in the workspace's allowed dependency set (see DESIGN.md
//! §2), so the CLI parses its own flags: every option is `--name value`
//! (or a bare `--flag`), collected into a map with typed accessors and
//! unknown-flag rejection.

use std::collections::BTreeMap;

/// Parsed command line: positional arguments and `--key [value]` options.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Parse errors (reported to the user with usage text).
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// `--opt` appeared twice.
    Duplicate(String),
    /// An option value failed to parse.
    BadValue {
        /// Option name.
        option: String,
        /// The raw value.
        value: String,
        /// Target type name.
        expected: &'static str,
    },
    /// Option not in the accepted set.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Duplicate(o) => write!(f, "option --{o} given more than once"),
            Self::BadValue {
                option,
                value,
                expected,
            } => write!(f, "--{option} expects {expected}, got '{value}'"),
            Self::Unknown(o) => write!(f, "unknown option --{o}"),
        }
    }
}

impl Args {
    /// Parse raw arguments.  `value_options` take one value; `flag_options`
    /// are bare switches; anything else starting with `--` is an error.
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        value_options: &[&str],
        flag_options: &[&str],
    ) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut it = raw.into_iter();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if flag_options.contains(&name) {
                    args.flags.push(name.to_string());
                } else if value_options.contains(&name) {
                    let value = it.next().unwrap_or_default();
                    if args.options.insert(name.to_string(), value).is_some() {
                        return Err(ArgError::Duplicate(name.to_string()));
                    }
                } else {
                    return Err(ArgError::Unknown(name.to_string()));
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// Positional arguments in order.
    #[must_use]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Was a bare flag present?
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Raw string option.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Typed option with default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                option: name.to_string(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(
            tokens.iter().map(|s| (*s).to_string()),
            &["n", "k", "bias", "seed"],
            &["verbose"],
        )
    }

    #[test]
    fn positional_and_options() {
        let a = parse(&["run", "--n", "1000", "--k", "8", "--verbose"]).unwrap();
        assert_eq!(a.positional(), &["run".to_string()]);
        assert_eq!(a.get("n"), Some("1000"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn typed_access_with_default() {
        let a = parse(&["--n", "42"]).unwrap();
        assert_eq!(a.get_parsed("n", 0u64).unwrap(), 42);
        assert_eq!(a.get_parsed("k", 7usize).unwrap(), 7);
    }

    #[test]
    fn bad_value_reported() {
        let a = parse(&["--n", "xyz"]).unwrap();
        let err = a.get_parsed("n", 0u64).unwrap_err();
        assert!(matches!(err, ArgError::BadValue { .. }));
        assert!(err.to_string().contains("xyz"));
    }

    #[test]
    fn unknown_option_rejected() {
        let err = parse(&["--what", "1"]).unwrap_err();
        assert_eq!(err, ArgError::Unknown("what".into()));
    }

    #[test]
    fn duplicate_rejected() {
        let err = parse(&["--n", "1", "--n", "2"]).unwrap_err();
        assert_eq!(err, ArgError::Duplicate("n".into()));
    }
}
