//! `plurality` — command-line runner for the plurality-consensus
//! simulators.
//!
//! ```text
//! plurality run   --dynamics 3-majority --n 1000000 --k 8 --bias auto --trials 50
//! plurality trace --dynamics undecided  --n 100000  --k 4 --bias 20000
//! plurality zoo   --n 100000 --k 3 --bias 5000 --trials 100
//! plurality list
//! ```
//!
//! `run` measures convergence statistics over many trials, `trace` prints
//! one full trajectory, `zoo` compares every dynamics on one start, and
//! `list` shows the available dynamics names.

mod args;

use args::Args;
use plurality_analysis::{fmt_f64, wilson, Summary, Table};
use plurality_core::{builders, Configuration, Dynamics};
use plurality_engine::{
    AgentEngine, MeanFieldEngine, MonteCarlo, Placement, RunOptions, StopReason, TraceLevel,
    TrialResult,
};
use plurality_sampling::{derive_stream, stream_rng};
use plurality_telemetry::{MetricsRecorder, MetricsReport};
use plurality_topology::TopologySpec;

const VALUE_OPTS: &[&str] = &[
    "dynamics",
    "n",
    "k",
    "bias",
    "trials",
    "max-rounds",
    "seed",
    "threads",
    "h",
    "noise",
    "bins",
    "loss",
    "delay",
    "failure",
    "churn",
    "timeout-ms",
    "inbox-policy",
    "scheduler",
    "mode",
    "fast-frac",
    "fast-rate",
    "topology",
    "degree",
    "metrics",
    "metrics-out",
    "addr",
    "workers",
    "engine",
    "freq",
    "secs",
    "probe",
    "attempts",
    "bench-out",
];
const FLAG_OPTS: &[&str] = &["help", "quiet", "rate-time", "smoke", "shutdown"];

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(raw, VALUE_OPTS, FLAG_OPTS) {
        Ok(p) => p,
        Err(e) => die(&format!("{e}")),
    };
    if parsed.flag("help") || parsed.positional().is_empty() {
        usage();
        return;
    }
    let command = parsed.positional()[0].clone();
    let result = match command.as_str() {
        "run" => cmd_run(&parsed),
        "trace" => cmd_trace(&parsed),
        "zoo" => cmd_zoo(&parsed),
        "hist" => cmd_hist(&parsed),
        "exact" => cmd_exact(&parsed),
        "gossip" => cmd_gossip(&parsed),
        "serve" => cmd_serve(&parsed),
        "bench-client" => cmd_bench_client(&parsed),
        "experiment" => cmd_experiment(&parsed),
        "list" => {
            list_dynamics();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    if let Err(e) = result {
        die(&e);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    usage();
    std::process::exit(2);
}

fn usage() {
    eprintln!(
        "plurality — simple dynamics for plurality consensus (Becchetti et al., SPAA'14)\n\
         \n\
         commands:\n\
         \x20 run    measure convergence over --trials independent runs\n\
         \x20 trace  print one traced trajectory round by round\n\
         \x20 zoo    compare all dynamics from the same start\n\
         \x20 hist   ASCII histogram of rounds-to-consensus over --trials runs\n\
         \x20 exact  exact absorption analysis at small n (ground truth)\n\
         \x20 gossip asynchronous gossip simulation with message --delay / --loss\n\
         \x20 serve  long-running job server: NDJSON job specs over TCP, streamed results\n\
         \x20 bench-client  open-loop load driver for 'serve' (--freq jobs/s for --secs)\n\
         \x20 experiment  run registry experiments by id (e01..e18); --smoke for test scale\n\
         \x20 list   list available --dynamics names\n\
         \n\
         options:\n\
         \x20 --dynamics NAME   update rule (default 3-majority; see 'list')\n\
         \x20 --n N             population size (default 1000000)\n\
         \x20 --k K             number of colors (default 8)\n\
         \x20 --bias S          initial additive bias, or 'auto' for the paper threshold\n\
         \x20 --h H             sample size for h-plurality (default 5)\n\
         \x20 --noise P         per-message noise for 'noisy' dynamics (default 0.1)\n\
         \x20 --bins B          histogram bins for 'hist' (default 30)\n\
         \x20 --loss Q          gossip: per-message (per-leg) loss probability (default 0)\n\
         \x20 --delay P         gossip: per-message (per-leg) delay probability (default 0)\n\
         \x20 --failure SPEC    gossip: structured failure scenario layered on --loss/--delay;\n\
         \x20                   ';'-separated clauses: edge:loss=DIST[,delay=DIST] with DIST =\n\
         \x20                   X | LO..HI | flaky(F,G,B) - window:T0..T1[,loss=F][,delay=F] -\n\
         \x20                   ge:up=U,down=D,loss=F[,delay=F] - outage:frac=F,up=U,down=D -\n\
         \x20                   partition:parts=K,T0..T1 - salt:N\n\
         \x20 --churn SPEC      gossip: dynamic membership; ';'-separated clauses:\n\
         \x20                   crash:RATE - leave:RATE - rejoin:RATE[,state=stale|fresh] -\n\
         \x20                   join:RATE[,spare=N][,attach=D][,init=uniform|copy|undecided]\n\
         \x20                   (rates are per-node per-tick Poisson intensities)\n\
         \x20 --inbox-policy P  gossip: full-inbox policy 'drop-oldest' (default), 'drop-newest',\n\
         \x20                   'random-replace', or 'ttl=T' (entries expire after T time units)\n\
         \x20 --scheduler S     gossip: 'sequential' (default) or 'poisson'\n\
         \x20 --mode M          gossip: 'pull' (default), 'push', or 'push-pull'\n\
         \x20 --fast-frac F     gossip: fraction of nodes activating at --fast-rate (default 0)\n\
         \x20 --fast-rate R     gossip: activation rate of the fast nodes (default 1)\n\
         \x20 --rate-time       gossip: stamp sequential activations at i/Σr (rate-weighted)\n\
         \x20 --topology T      run/gossip: clique (default), ring, torus,\n\
         \x20                   random-regular[:d=D], or an implicit O(n)-memory family:\n\
         \x20                   ring-gradient[:alpha=A,span=S] (peer prob ~ dist^-alpha),\n\
         \x20                   ring-gaussian[:sigma=S] (Gaussian kernel, span 3*sigma),\n\
         \x20                   chung-lu[:dmin=A,dmax=B,gamma=G] (power-law degrees)\n\
         \x20 --degree D        gossip: degree for a bare --topology random-regular (default 8)\n\
         \x20 --metrics LEVEL   record telemetry and print it: 'summary' or 'full'\n\
         \x20 --metrics-out F   write the merged telemetry report to F as one JSONL line\n\
         \x20                   (schema plurality-metrics/v1; implies recording)\n\
         \x20 --addr A          serve/bench-client: TCP address (default 127.0.0.1:7117)\n\
         \x20 --workers W       serve: job worker threads (default: all cores)\n\
         \x20 --engine E        run: 'mean-field' (default) or 'agent' (per-node, sharded);\n\
         \x20                   bench-client: 'gossip' (default), 'agent', or 'mean-field'\n\
         \x20 --freq F          bench-client: target job submissions per second (default 50)\n\
         \x20 --secs S          bench-client: open-loop phase length in seconds (default 5)\n\
         \x20 --probe N         bench-client: cold/warm cache-probe jobs per phase (default 8)\n\
         \x20 --attempts A      bench-client: connect/submit attempt budget with jittered\n\
         \x20                   exponential backoff between failures (default 4)\n\
         \x20 --timeout-ms T    bench-client: per-job wall-clock budget forwarded in the spec\n\
         \x20 --bench-out F     bench-client: write the bench report JSON to F\n\
         \x20 --shutdown        bench-client: ask the server to drain and exit afterwards\n\
         \x20 --smoke           experiment: run at smoke scale (seconds, test grids)\n\
         \x20 --trials T        independent trials for 'run'/'zoo' (default 50)\n\
         \x20 --max-rounds R    round cap (default 1000000)\n\
         \x20 --seed S          master seed (default 1)\n\
         \x20 --threads T       worker threads: trial-level parallelism, except with\n\
         \x20                   'run --engine agent' where each trial's rounds are sharded\n\
         \x20                   across T threads, bit-identically (default: all cores)\n\
         \x20 --quiet           suppress per-round output in 'trace'"
    );
}

fn build_dynamics(name: &str, k: usize, h: usize, noise: f64) -> Result<Box<dyn Dynamics>, String> {
    // Shared with the job server so `plurality serve` resolves specs to
    // bit-identical dynamics.
    plurality_server::build_dynamics(name, k, h, noise)
        .map_err(|e| format!("{e} (try 'plurality list')"))
}

fn list_dynamics() {
    println!(
        "3-majority      the paper's dynamics (first-sample tie rule)\n\
         3-majority-uar  3-majority with uniform tie-breaking (same law)\n\
         h-plurality     plurality of --h samples (Theorem 4)\n\
         voter           copy one random node (polling / 1-majority)\n\
         2-sample        two samples + uniform tie (equivalent to voter)\n\
         2-choices       adopt only when two samples agree\n\
         median          Doerr et al. median of own + 2 samples\n\
         median3         median of 3 samples (in D3; fails plurality)\n\
         undecided       undecided-state dynamics (one extra state)\n\
         d3-132          Lemma 8 rule δ=(1,3,2) (fails plurality)\n\
         d3-141          Lemma 8 rule δ=(1,4,1) (fails plurality)\n\
         d3-min          min-of-3 rule δ=(6,0,0)\n\
         d3-anti         anti-majority rule (no clear-majority property)\n\
         noisy           3-majority with per-message uniform noise --noise"
    );
}

struct Common {
    cfg: Configuration,
    dynamics: Box<dyn Dynamics>,
    trials: usize,
    opts: RunOptions,
    seed: u64,
    threads: usize,
}

fn common(parsed: &Args) -> Result<Common, String> {
    let n: u64 = parsed
        .get_parsed("n", 1_000_000u64)
        .map_err(|e| e.to_string())?;
    let k: usize = parsed.get_parsed("k", 8usize).map_err(|e| e.to_string())?;
    let h: usize = parsed.get_parsed("h", 5usize).map_err(|e| e.to_string())?;
    let trials: usize = parsed
        .get_parsed("trials", 50usize)
        .map_err(|e| e.to_string())?;
    let max_rounds: u64 = parsed
        .get_parsed("max-rounds", 1_000_000u64)
        .map_err(|e| e.to_string())?;
    let seed: u64 = parsed.get_parsed("seed", 1u64).map_err(|e| e.to_string())?;
    let threads: usize = parsed
        .get_parsed(
            "threads",
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
        .map_err(|e| e.to_string())?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }

    let bias = match parsed.get("bias") {
        None | Some("auto") => plurality_server::auto_bias(n, k),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--bias expects a number or 'auto', got '{v}'"))?,
    };
    if bias > n {
        return Err(format!("bias {bias} exceeds population {n}"));
    }

    let noise: f64 = parsed
        .get_parsed("noise", 0.1f64)
        .map_err(|e| e.to_string())?;
    let name = parsed.get("dynamics").unwrap_or("3-majority");
    let dynamics = build_dynamics(name, k, h, noise)?;
    let cfg = builders::biased(n, k, bias);
    Ok(Common {
        cfg,
        dynamics,
        trials,
        opts: RunOptions::with_max_rounds(max_rounds),
        seed,
        threads,
    })
}

/// What `--metrics` / `--metrics-out` asked for.  `--metrics-out` alone
/// still records (the report goes to the file), it just prints nothing.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MetricsPrint {
    Off,
    Summary,
    Full,
}

struct MetricsOpt {
    print: MetricsPrint,
    out: Option<String>,
}

impl MetricsOpt {
    fn from_args(parsed: &Args) -> Result<Self, String> {
        let print = match parsed.get("metrics") {
            None => MetricsPrint::Off,
            Some("summary") => MetricsPrint::Summary,
            Some("full") => MetricsPrint::Full,
            Some(other) => {
                return Err(format!(
                    "--metrics expects 'summary' or 'full', got '{other}'"
                ))
            }
        };
        Ok(Self {
            print,
            out: parsed.get("metrics-out").map(str::to_string),
        })
    }

    /// Telemetry must be recorded at all (print, file, or both).
    fn enabled(&self) -> bool {
        self.print != MetricsPrint::Off || self.out.is_some()
    }

    /// Print and/or persist the merged report.
    fn emit(&self, report: &MetricsReport) -> Result<(), String> {
        match self.print {
            MetricsPrint::Off => {}
            MetricsPrint::Summary => print!("{}", report.summary_table().markdown()),
            MetricsPrint::Full => {
                for t in report.full_tables() {
                    print!("{}", t.markdown());
                }
            }
        }
        if let Some(path) = &self.out {
            let mut line = report.to_json();
            line.push('\n');
            std::fs::write(path, line).map_err(|e| format!("--metrics-out {path}: {e}"))?;
        }
        Ok(())
    }
}

fn cmd_run(parsed: &Args) -> Result<(), String> {
    match parsed.get("engine").unwrap_or("mean-field") {
        "mean-field" => {
            // The mean-field engine is clique-only; anything else on
            // --topology must be refused, not silently ignored.
            if parse_topology_spec(parsed)? != TopologySpec::Clique {
                return Err(format!(
                    "--topology {} requires --engine agent (the mean-field \
                     engine models the clique only)",
                    parsed.get("topology").unwrap_or("clique")
                ));
            }
            cmd_run_mean_field(parsed)
        }
        "agent" => cmd_run_agent(parsed),
        other => Err(format!(
            "run supports --engine mean-field|agent, got '{other}'"
        )),
    }
}

/// Convergence-statistics table shared by the `run` engine paths.
fn print_run_table(title: String, trials: usize, results: &[TrialResult]) {
    let mut rounds = Summary::new();
    let mut wins = 0usize;
    let mut converged = 0usize;
    for r in results {
        if r.reason == StopReason::Stopped {
            converged += 1;
            rounds.push(r.rounds_f64());
        }
        if r.success {
            wins += 1;
        }
    }
    let iv = wilson(wins, trials, 0.05);

    let mut t = Table::new(title, &["metric", "value"]);
    t.push_row(vec!["converged".into(), format!("{converged}/{trials}")]);
    t.push_row(vec!["plurality wins".into(), format!("{wins}/{trials}")]);
    t.push_row(vec![
        "win rate (95% CI)".into(),
        format!(
            "{} [{}, {}]",
            fmt_f64(wins as f64 / trials as f64),
            fmt_f64(iv.lo),
            fmt_f64(iv.hi)
        ),
    ]);
    if rounds.count() > 0 {
        t.push_row(vec!["mean rounds".into(), fmt_f64(rounds.mean())]);
        t.push_row(vec!["sd rounds".into(), fmt_f64(rounds.std_dev())]);
        t.push_row(vec![
            "min/max rounds".into(),
            format!("{} / {}", fmt_f64(rounds.min()), fmt_f64(rounds.max())),
        ]);
    } else {
        t.push_row(vec![
            "rounds".into(),
            "n/a (no trial converged; note that noisy dynamics never absorb)".into(),
        ]);
    }
    print!("{}", t.markdown());
}

fn cmd_run_mean_field(parsed: &Args) -> Result<(), String> {
    let c = common(parsed)?;
    let metrics = MetricsOpt::from_args(parsed)?;
    let engine = MeanFieldEngine::new(c.dynamics.as_ref());
    let mc = MonteCarlo {
        trials: c.trials,
        threads: c.threads,
        master_seed: c.seed,
    };
    let start = std::time::Instant::now();
    let mut fleet = MetricsReport::new(format!(
        "run {} n={} k={} bias={} trials={}",
        c.dynamics.name(),
        c.cfg.n(),
        c.cfg.k(),
        c.cfg.bias(),
        c.trials
    ));
    let results = if metrics.enabled() {
        // Per-trial recorders merged as each trial lands; the trajectory
        // is bit-identical to the unrecorded path (recording draws no
        // randomness), so the stats table below is unaffected.
        mc.run_streaming(
            |_, rng| {
                let mut rec = MetricsRecorder::new();
                let r = engine.run_recorded(&c.cfg, &c.opts, None, rng, &mut rec);
                (r, rec.report())
            },
            |_, (_, rep)| fleet.merge(rep),
        )
        .into_iter()
        .map(|(r, _)| r)
        .collect()
    } else {
        mc.run(|_, rng| engine.run(&c.cfg, &c.opts, rng))
    };
    let elapsed = start.elapsed();

    print_run_table(
        format!(
            "{} on clique: n = {}, k = {}, bias = {} ({} trials, {:.2}s)",
            c.dynamics.name(),
            c.cfg.n(),
            c.cfg.k(),
            c.cfg.bias(),
            c.trials,
            elapsed.as_secs_f64()
        ),
        c.trials,
        &results,
    );
    metrics.emit(&fleet)?;
    Ok(())
}

/// `run --engine agent`: explicit per-node simulation on `--topology`.
///
/// `--threads` here parallelizes **within** each trial (the engine's
/// sharded round loop); trials run serially, so the trajectory of trial
/// `i` is bit-identical to the server's agent path (seed stream
/// `derive_stream(seed, i)`) at every thread count — see
/// `docs/DETERMINISM.md`.
fn cmd_run_agent(parsed: &Args) -> Result<(), String> {
    let c = common(parsed)?;
    let metrics = MetricsOpt::from_args(parsed)?;
    let n = c.cfg.n() as usize;
    let topology = build_gossip_topology(parsed, n, c.seed)?;
    let engine = AgentEngine::new(topology.as_ref()).with_threads(c.threads);
    let start = std::time::Instant::now();
    let mut fleet = MetricsReport::new(format!(
        "run-agent {} {} n={} k={} bias={} trials={}",
        c.dynamics.name(),
        topology.name(),
        c.cfg.n(),
        c.cfg.k(),
        c.cfg.bias(),
        c.trials
    ));
    let mut results = Vec::with_capacity(c.trials);
    for i in 0..c.trials {
        let seed = derive_stream(c.seed, i as u64);
        let r = if metrics.enabled() {
            let mut rec = MetricsRecorder::new();
            let r = engine.run_recorded(
                c.dynamics.as_ref(),
                &c.cfg,
                Placement::Shuffled,
                &c.opts,
                seed,
                &mut rec,
            );
            fleet.merge(&rec.report());
            r
        } else {
            engine.run(
                c.dynamics.as_ref(),
                &c.cfg,
                Placement::Shuffled,
                &c.opts,
                seed,
            )
        };
        results.push(r);
    }
    let elapsed = start.elapsed();

    print_run_table(
        format!(
            "{} agent engine on {}: n = {}, k = {}, bias = {}, threads = {} \
             ({} trials, {:.2}s)",
            c.dynamics.name(),
            topology.name(),
            c.cfg.n(),
            c.cfg.k(),
            c.cfg.bias(),
            c.threads,
            c.trials,
            elapsed.as_secs_f64()
        ),
        c.trials,
        &results,
    );
    metrics.emit(&fleet)?;
    Ok(())
}

fn cmd_trace(parsed: &Args) -> Result<(), String> {
    let c = common(parsed)?;
    let engine = MeanFieldEngine::new(c.dynamics.as_ref());
    let mut opts = c.opts;
    opts.trace = TraceLevel::Summary;
    let mut rng = stream_rng(c.seed, 0);
    let r = engine.run(&c.cfg, &opts, &mut rng);
    let trace = r.trace.expect("trace requested");

    if !parsed.flag("quiet") {
        println!("round  c1          c2          bias        minority    undecided");
        for s in &trace.rounds {
            println!(
                "{:>5}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
                s.round,
                s.plurality_count,
                s.second_count,
                s.bias,
                s.minority_mass,
                s.extra_state_mass
            );
        }
    }
    println!(
        "\n{}: {:?} after {} rounds; winner = {:?}; plurality {}",
        c.dynamics.name(),
        r.reason,
        r.rounds,
        r.winner,
        if r.success { "WON" } else { "lost" }
    );
    Ok(())
}

fn cmd_zoo(parsed: &Args) -> Result<(), String> {
    let c = common(parsed)?;
    let k = c.cfg.k();
    let names = [
        "3-majority",
        "h-plurality",
        "voter",
        "2-choices",
        "median",
        "median3",
        "undecided",
        "d3-132",
    ];
    let mut t = Table::new(
        format!(
            "dynamics zoo: n = {}, k = {}, bias = {} ({} trials each)",
            c.cfg.n(),
            k,
            c.cfg.bias(),
            c.trials
        ),
        &["dynamics", "converged", "win rate", "mean rounds"],
    );
    for (i, name) in names.iter().enumerate() {
        let h: usize = parsed.get_parsed("h", 5usize).map_err(|e| e.to_string())?;
        let noise: f64 = parsed
            .get_parsed("noise", 0.1f64)
            .map_err(|e| e.to_string())?;
        let d = build_dynamics(name, k, h, noise)?;
        let engine = MeanFieldEngine::new(d.as_ref());
        let mc = MonteCarlo {
            trials: c.trials,
            threads: c.threads,
            master_seed: c.seed ^ (i as u64) << 32,
        };
        let results = mc.run(|_, rng| engine.run(&c.cfg, &c.opts, rng));
        let converged = results
            .iter()
            .filter(|r| r.reason == StopReason::Stopped)
            .count();
        let wins = results.iter().filter(|r| r.success).count();
        let mut rounds = Summary::new();
        for r in results.iter().filter(|r| r.reason == StopReason::Stopped) {
            rounds.push(r.rounds_f64());
        }
        t.push_row(vec![
            d.name(),
            format!("{converged}/{}", c.trials),
            fmt_f64(wins as f64 / c.trials as f64),
            fmt_f64(rounds.mean()),
        ]);
    }
    print!("{}", t.markdown());
    Ok(())
}

fn cmd_hist(parsed: &Args) -> Result<(), String> {
    let c = common(parsed)?;
    let bins: usize = parsed
        .get_parsed("bins", 30usize)
        .map_err(|e| e.to_string())?;
    let engine = MeanFieldEngine::new(c.dynamics.as_ref());
    let mc = MonteCarlo {
        trials: c.trials,
        threads: c.threads,
        master_seed: c.seed,
    };
    let results = mc.run(|_, rng| engine.run(&c.cfg, &c.opts, rng));
    let rounds: Vec<f64> = results
        .iter()
        .filter(|r| r.reason == StopReason::Stopped)
        .map(|r| r.rounds_f64())
        .collect();
    if rounds.is_empty() {
        return Err("no trial converged within --max-rounds".into());
    }
    let s = Summary::of(&rounds);
    let lo = s.min().floor();
    let hi = (s.max() + 1.0).ceil();
    let mut hist = plurality_analysis::Histogram::new(lo, hi, bins);
    hist.record_all(&rounds);
    println!(
        "{} rounds-to-consensus over {} converged trials (n = {}, k = {}, bias = {}):\n",
        c.dynamics.name(),
        rounds.len(),
        c.cfg.n(),
        c.cfg.k(),
        c.cfg.bias()
    );
    print!("{}", hist.ascii(50));
    println!(
        "\nmean {} · sd {} · median {} · min {} · max {}",
        fmt_f64(s.mean()),
        fmt_f64(s.std_dev()),
        fmt_f64(plurality_analysis::median(&rounds)),
        fmt_f64(s.min()),
        fmt_f64(s.max())
    );
    Ok(())
}

/// Parse the `--topology` / `--degree` flags into the shared
/// [`TopologySpec`] grammar — the same parser the job server's wire
/// spec uses, so `plurality serve` resolves an identical spec to a
/// bit-identical wiring (including the seed salt).
fn parse_topology_spec(parsed: &Args) -> Result<TopologySpec, String> {
    let degree: usize = parsed
        .get_parsed("degree", plurality_topology::DEFAULT_REGULAR_DEGREE)
        .map_err(|e| e.to_string())?;
    TopologySpec::parse_with_degree(parsed.get("topology").unwrap_or("clique"), degree)
        .map_err(|e| format!("--topology: {e}"))
}

/// Build the topology selected by `--topology` / `--degree`.
fn build_gossip_topology(
    parsed: &Args,
    n: usize,
    seed: u64,
) -> Result<Box<dyn plurality_topology::Topology>, String> {
    parse_topology_spec(parsed)?
        .build(n, seed)
        .map_err(|e| format!("--topology: {e}"))
}

fn cmd_gossip(parsed: &Args) -> Result<(), String> {
    use plurality_gossip::{
        ExchangeMode, FailureModel, GossipEngine, InboxPolicy, NetworkConfig, Scheduler,
    };

    let c = common(parsed)?;
    let metrics = MetricsOpt::from_args(parsed)?;
    let delay: f64 = parsed
        .get_parsed("delay", 0.0f64)
        .map_err(|e| e.to_string())?;
    let loss: f64 = parsed
        .get_parsed("loss", 0.0f64)
        .map_err(|e| e.to_string())?;
    if !(0.0..=1.0).contains(&delay) {
        return Err(format!("--delay {delay} out of [0, 1]"));
    }
    if !(0.0..=1.0).contains(&loss) {
        return Err(format!("--loss {loss} out of [0, 1]"));
    }
    let failure = match parsed.get("failure") {
        Some(spec) => Some(
            FailureModel::parse(spec, NetworkConfig::new(delay, loss))
                .map_err(|e| format!("--failure: {e}"))?,
        ),
        None => None,
    };
    let churn = match parsed.get("churn") {
        Some(spec) => {
            Some(plurality_gossip::ChurnModel::parse(spec).map_err(|e| format!("--churn: {e}"))?)
        }
        None => None,
    };
    let inbox_policy = InboxPolicy::from_name(parsed.get("inbox-policy").unwrap_or("drop-oldest"))?;
    let scheduler = Scheduler::from_name(parsed.get("scheduler").unwrap_or("sequential"))?;
    let mode = ExchangeMode::from_name(parsed.get("mode").unwrap_or("pull"))?;
    let fast_frac: f64 = parsed
        .get_parsed("fast-frac", 0.0f64)
        .map_err(|e| e.to_string())?;
    let fast_rate: f64 = parsed
        .get_parsed("fast-rate", 1.0f64)
        .map_err(|e| e.to_string())?;
    if !(0.0..=1.0).contains(&fast_frac) {
        return Err(format!("--fast-frac {fast_frac} out of [0, 1]"));
    }
    if !(fast_rate.is_finite() && fast_rate > 0.0) {
        return Err(format!("--fast-rate {fast_rate} must be finite and > 0"));
    }
    // Per-trial event simulation is heavier than a mean-field round;
    // default to fewer trials than 'run' unless --trials is explicit.
    let trials = match parsed.get("trials") {
        Some(_) => c.trials,
        None => c.trials.min(20),
    };

    let n = c.cfg.n() as usize;
    let topology = build_gossip_topology(parsed, n, c.seed)?;
    let mut engine = GossipEngine::new(topology.as_ref())
        .with_mode(mode)
        .with_scheduler(scheduler)
        .with_inbox_policy(inbox_policy);
    engine = match &failure {
        Some(model) => engine.with_failure_model(model.clone()),
        None => engine.with_network(NetworkConfig::new(delay, loss)),
    };
    let fast_nodes = (fast_frac * n as f64).round() as usize;
    if churn.is_some() && fast_nodes > 0 && fast_rate != 1.0 {
        return Err("--churn cannot be combined with heterogeneous rates (--fast-frac)".into());
    }
    if fast_nodes > 0 && fast_rate != 1.0 {
        let rates: Vec<f64> = (0..n)
            .map(|v| if v < fast_nodes { fast_rate } else { 1.0 })
            .collect();
        engine = engine.with_node_rates(rates);
    }
    if parsed.flag("rate-time") {
        engine = engine.with_rate_weighted_time(true);
    }
    if let Some(model) = &churn {
        if !topology.supports_indexed_neighbors() {
            return Err(format!(
                "--churn is not supported on implicit topology '{}': the membership \
                 overlay needs indexed neighbor access (pick clique, ring, torus, or \
                 random-regular)",
                topology.name()
            ));
        }
        engine = engine.with_churn_model(model.clone());
    }
    let mc = MonteCarlo {
        trials,
        threads: c.threads,
        master_seed: c.seed,
    };
    let start = std::time::Instant::now();
    let mut fleet = MetricsReport::new(format!(
        "gossip {} {} n={} mode={} trials={trials}",
        c.dynamics.name(),
        topology.name(),
        c.cfg.n(),
        mode.name()
    ));
    let results = if metrics.enabled() {
        mc.run_streaming(
            |i, _| {
                let mut rec = MetricsRecorder::new();
                let (r, s) = engine.run_recorded(
                    c.dynamics.as_ref(),
                    &c.cfg,
                    plurality_engine::Placement::Shuffled,
                    &c.opts,
                    plurality_sampling::derive_stream(c.seed, i as u64),
                    &mut rec,
                );
                (r, s, rec.report())
            },
            |_, (_, _, rep)| fleet.merge(rep),
        )
        .into_iter()
        .map(|(r, s, _)| (r, s))
        .collect()
    } else {
        mc.run(|i, _| {
            engine.run_detailed(
                c.dynamics.as_ref(),
                &c.cfg,
                plurality_engine::Placement::Shuffled,
                &c.opts,
                plurality_sampling::derive_stream(c.seed, i as u64),
            )
        })
    };
    let elapsed = start.elapsed();

    let mut t = Table::new(
        format!(
            "{} async gossip on {}: n = {}, k = {}, bias = {}, mode = {}, scheduler = {}, \
             delay = {delay}, loss = {loss}{}{}{} ({trials} trials, {:.2}s)",
            c.dynamics.name(),
            topology.name(),
            c.cfg.n(),
            c.cfg.k(),
            c.cfg.bias(),
            mode.name(),
            scheduler.name(),
            match &failure {
                Some(model) => format!(", failure = {}", model.label()),
                None => String::new(),
            },
            match &churn {
                Some(model) => format!(", churn = {}", model.label()),
                None => String::new(),
            },
            if fast_nodes > 0 && fast_rate != 1.0 {
                format!(", {fast_nodes} nodes at rate {fast_rate}")
            } else {
                String::new()
            },
            elapsed.as_secs_f64()
        ),
        &[
            "trial",
            "ticks",
            "winner",
            "plurality",
            "activations",
            "messages",
            "lost",
            "delayed",
            "superseded",
            "inbox",
            "starved",
        ],
    );
    let mut ticks = Summary::new();
    let mut wins = 0usize;
    let mut converged = 0usize;
    for (i, (r, s)) in results.iter().enumerate() {
        if r.reason == StopReason::Stopped {
            converged += 1;
            ticks.push(r.rounds as f64);
        }
        if r.success {
            wins += 1;
        }
        t.push_row(vec![
            i.to_string(),
            if r.reason == StopReason::Stopped {
                r.rounds.to_string()
            } else {
                format!(">{} (cap)", r.rounds)
            },
            r.winner.map_or("-".into(), |w| w.to_string()),
            if r.success { "WON" } else { "lost" }.to_string(),
            s.activations.to_string(),
            s.messages.to_string(),
            s.lost_messages.to_string(),
            s.delayed_messages.to_string(),
            s.superseded_commits.to_string(),
            s.inbox_served.to_string(),
            s.starved_updates.to_string(),
        ]);
    }
    print!("{}", t.markdown());

    let iv = wilson(wins, trials, 0.05);
    let mut summary = Table::new("summary".to_string(), &["metric", "value"]);
    summary.push_row(vec!["converged".into(), format!("{converged}/{trials}")]);
    summary.push_row(vec![
        "win rate (95% CI)".into(),
        format!(
            "{} [{}, {}]",
            fmt_f64(wins as f64 / trials as f64),
            fmt_f64(iv.lo),
            fmt_f64(iv.hi)
        ),
    ]);
    if ticks.count() > 0 {
        summary.push_row(vec!["mean ticks".into(), fmt_f64(ticks.mean())]);
        summary.push_row(vec!["sd ticks".into(), fmt_f64(ticks.std_dev())]);
        summary.push_row(vec![
            "min/max ticks".into(),
            format!("{} / {}", fmt_f64(ticks.min()), fmt_f64(ticks.max())),
        ]);
    }
    if churn.is_some() {
        let (mut joins, mut crashes, mut leaves, mut rejoins, mut alive) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for (_, s) in &results {
            joins += s.churn_joins;
            crashes += s.churn_crashes;
            leaves += s.churn_leaves;
            rejoins += s.churn_rejoins;
            alive += s.final_alive;
        }
        summary.push_row(vec![
            "churn events (join/crash/leave/rejoin)".into(),
            format!("{joins} / {crashes} / {leaves} / {rejoins}"),
        ]);
        summary.push_row(vec![
            "mean final alive".into(),
            fmt_f64(alive as f64 / trials as f64),
        ]);
    }
    print!("{}", summary.markdown());
    metrics.emit(&fleet)?;
    Ok(())
}

/// Build a server [`plurality_server::JobSpec`] from the shared CLI
/// flags — the same names `gossip` takes, plus `--engine`.
fn spec_from_args(parsed: &Args) -> Result<plurality_server::JobSpec, String> {
    use plurality_gossip::{ExchangeMode, InboxPolicy, Scheduler};
    let mut spec = plurality_server::JobSpec {
        engine: plurality_server::EngineKind::from_name(parsed.get("engine").unwrap_or("gossip"))?,
        ..plurality_server::JobSpec::default()
    };
    if let Some(name) = parsed.get("dynamics") {
        spec.dynamics = name.to_string();
    }
    spec.n = parsed.get_parsed("n", spec.n).map_err(|e| e.to_string())?;
    spec.k = parsed.get_parsed("k", spec.k).map_err(|e| e.to_string())?;
    spec.h = parsed.get_parsed("h", spec.h).map_err(|e| e.to_string())?;
    spec.noise = parsed
        .get_parsed("noise", spec.noise)
        .map_err(|e| e.to_string())?;
    spec.bias = match parsed.get("bias") {
        None | Some("auto") => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("--bias expects a number or 'auto', got '{v}'"))?,
        ),
    };
    if let Some(name) = parsed.get("topology") {
        spec.topology = name.to_string();
    }
    spec.degree = parsed
        .get_parsed("degree", spec.degree)
        .map_err(|e| e.to_string())?;
    spec.mode = ExchangeMode::from_name(parsed.get("mode").unwrap_or(spec.mode.name()))?;
    spec.scheduler =
        Scheduler::from_name(parsed.get("scheduler").unwrap_or(spec.scheduler.name()))?;
    spec.loss = parsed
        .get_parsed("loss", spec.loss)
        .map_err(|e| e.to_string())?;
    spec.delay = parsed
        .get_parsed("delay", spec.delay)
        .map_err(|e| e.to_string())?;
    spec.failure = parsed.get("failure").map(str::to_string);
    spec.churn = parsed.get("churn").map(str::to_string);
    spec.timeout_ms = match parsed.get("timeout-ms") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("--timeout-ms expects milliseconds, got '{v}'"))?,
        ),
    };
    if let Some(p) = parsed.get("inbox-policy") {
        spec.inbox_policy = InboxPolicy::from_name(p)?;
    }
    spec.fast_frac = parsed
        .get_parsed("fast-frac", spec.fast_frac)
        .map_err(|e| e.to_string())?;
    spec.fast_rate = parsed
        .get_parsed("fast-rate", spec.fast_rate)
        .map_err(|e| e.to_string())?;
    spec.rate_time = parsed.flag("rate-time");
    spec.trials = parsed
        .get_parsed("trials", spec.trials)
        .map_err(|e| e.to_string())?;
    spec.seed = parsed
        .get_parsed("seed", spec.seed)
        .map_err(|e| e.to_string())?;
    spec.max_rounds = parsed
        .get_parsed("max-rounds", spec.max_rounds)
        .map_err(|e| e.to_string())?;
    spec.threads = parsed
        .get_parsed("threads", spec.threads)
        .map_err(|e| e.to_string())?;
    spec.validate()?;
    Ok(spec)
}

fn cmd_serve(parsed: &Args) -> Result<(), String> {
    let addr = parsed.get("addr").unwrap_or("127.0.0.1:7117");
    let workers: usize = parsed
        .get_parsed(
            "workers",
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
        .map_err(|e| e.to_string())?;
    if workers == 0 {
        return Err("--workers must be >= 1".into());
    }
    let server =
        plurality_server::Server::bind(addr, workers).map_err(|e| format!("bind {addr}: {e}"))?;
    // Scripts (CI smoke, bench drivers) parse this line for the bound
    // port, so flush it before blocking in the accept loop.
    println!(
        "plurality serve: listening on {} ({workers} workers); send {{\"op\":\"shutdown\"}} to stop",
        server.local_addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run();
    println!("plurality serve: drained, bye");
    Ok(())
}

fn cmd_bench_client(parsed: &Args) -> Result<(), String> {
    let spec = spec_from_args(parsed)?;
    let cfg = plurality_server::BenchConfig {
        addr: parsed.get("addr").unwrap_or("127.0.0.1:7117").to_string(),
        freq: parsed
            .get_parsed("freq", 50.0f64)
            .map_err(|e| e.to_string())?,
        secs: parsed
            .get_parsed("secs", 5.0f64)
            .map_err(|e| e.to_string())?,
        probe: parsed
            .get_parsed("probe", 8usize)
            .map_err(|e| e.to_string())?,
        attempts: parsed
            .get_parsed("attempts", 4usize)
            .map_err(|e| e.to_string())?,
        progress: !parsed.flag("quiet"),
        spec,
    };
    let report = plurality_server::run_bench(&cfg)?;
    print!("{}", report.render());
    if let Some(path) = parsed.get("bench-out") {
        std::fs::write(path, report.to_json(&cfg) + "\n")
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if parsed.flag("shutdown") {
        plurality_server::send_shutdown(&cfg.addr)?;
        println!("server shut down");
    }
    Ok(())
}

fn cmd_experiment(parsed: &Args) -> Result<(), String> {
    use plurality_experiments::{registry, Context};

    let ids: Vec<&str> = parsed.positional()[1..]
        .iter()
        .map(String::as_str)
        .collect();
    if ids.is_empty() {
        return Err(
            "experiment: give at least one id, e.g. 'plurality experiment e18 --smoke' \
                    (ids e01..e18)"
                .into(),
        );
    }
    let metrics = MetricsOpt::from_args(parsed)?;
    let mut ctx = if parsed.flag("smoke") {
        Context::smoke()
    } else {
        Context::paper()
    };
    ctx.seed = parsed
        .get_parsed("seed", ctx.seed)
        .map_err(|e| e.to_string())?;
    ctx.threads = parsed
        .get_parsed("threads", ctx.threads)
        .map_err(|e| e.to_string())?;
    if ctx.threads == 0 {
        return Err("--threads must be at least 1".into());
    }

    let mut fleet = MetricsReport::new(format!("experiment {}", ids.join(",")));
    let mut recorded = false;
    for id in &ids {
        let exp = registry::by_id(id)
            .ok_or_else(|| format!("unknown experiment id '{id}' (valid: e01..e18)"))?;
        println!("## {} — {}\n", exp.id(), exp.title());
        let (tables, report) = if metrics.enabled() {
            exp.run_with_metrics(&ctx)
        } else {
            (exp.run(&ctx), None)
        };
        for t in &tables {
            print!("{}", t.markdown());
        }
        if let Some(rep) = report {
            fleet.merge(&rep);
            recorded = true;
        }
    }
    if metrics.enabled() && !recorded {
        eprintln!(
            "note: none of the selected experiments record telemetry \
             (instrumented: e17); --metrics had nothing to report"
        );
    }
    metrics.emit(&fleet)?;
    Ok(())
}

fn cmd_exact(parsed: &Args) -> Result<(), String> {
    use plurality_exact::{ExactChain, HPluralityKernel, ThreeMajorityKernel, VoterKernel};
    let n: u64 = parsed.get_parsed("n", 20u64).map_err(|e| e.to_string())?;
    let k: usize = parsed.get_parsed("k", 2usize).map_err(|e| e.to_string())?;
    let h: usize = parsed.get_parsed("h", 5usize).map_err(|e| e.to_string())?;
    let bias: u64 = parsed
        .get("bias")
        .unwrap_or("4")
        .parse()
        .map_err(|_| "exact: --bias must be an integer".to_string())?;
    if bias > n {
        return Err(format!("bias {bias} exceeds population {n}"));
    }
    let cfg = builders::biased(n, k, bias);
    let chain = ExactChain::new(n, k);
    println!(
        "exact absorbing-chain analysis: n = {n}, k = {k}, start {:?} ({} states)\n",
        cfg.counts(),
        chain.state_count()
    );
    let mut t = Table::new(
        "exact absorption (ground truth)",
        &["kernel", "P(win color 0)", "P(win others)", "E[rounds]"],
    );
    let name = parsed.get("dynamics").unwrap_or("all");
    let mut kernels: Vec<(&str, Box<dyn plurality_exact::AdoptionKernel>)> = Vec::new();
    match name {
        "3-majority" => kernels.push(("3-majority", Box::new(ThreeMajorityKernel))),
        "voter" => kernels.push(("voter", Box::new(VoterKernel))),
        "h-plurality" => kernels.push(("h-plurality", Box::new(HPluralityKernel { h }))),
        "all" => {
            kernels.push(("voter", Box::new(VoterKernel)));
            kernels.push(("3-majority", Box::new(ThreeMajorityKernel)));
            kernels.push(("h-plurality", Box::new(HPluralityKernel { h })));
        }
        other => {
            return Err(format!(
                "exact supports --dynamics voter|3-majority|h-plurality|all, got '{other}'"
            ))
        }
    }
    for (label, kernel) in &kernels {
        let a = chain.analyze(kernel.as_ref(), cfg.counts());
        let others: f64 = a.win_probability.iter().skip(1).sum();
        t.push_row(vec![
            (*label).to_string(),
            fmt_f64(a.win_probability[0]),
            fmt_f64(others),
            fmt_f64(a.expected_rounds),
        ]);
    }
    print!("{}", t.markdown());
    Ok(())
}
