//! End-to-end smokes for the CLI binary: every surface the observability
//! layer added — `--metrics`, `--metrics-out`, `gossip --topology`, and
//! the `experiment` subcommand — runs through the real executable, and
//! the JSONL artifact round-trips through the schema validator.

use std::process::{Command, Output};

use plurality_telemetry::{Counter, MetricsReport};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_plurality-cli"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "exit {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn run_with_metrics_summary_prints_counters() {
    let out = run(&[
        "run",
        "--n",
        "20000",
        "--k",
        "3",
        "--trials",
        "4",
        "--seed",
        "7",
        "--metrics",
        "summary",
    ]);
    let text = stdout(&out);
    // The stats table and the telemetry table both render.
    assert!(text.contains("win rate"), "stats table missing:\n{text}");
    assert!(text.contains("rounds"), "counter rows missing:\n{text}");
    assert!(
        text.contains("completed_ticks"),
        "gauge rows missing:\n{text}"
    );
}

#[test]
fn metrics_out_writes_schema_valid_jsonl() {
    let dir = std::env::temp_dir().join(format!("plurality-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.jsonl");
    let path_s = path.to_str().unwrap();

    // --metrics-out alone must record (no --metrics needed).
    let out = run(&[
        "gossip",
        "--n",
        "400",
        "--k",
        "2",
        "--trials",
        "3",
        "--seed",
        "9",
        "--mode",
        "push-pull",
        "--loss",
        "0.2",
        "--metrics-out",
        path_s,
    ]);
    stdout(&out);

    let line = std::fs::read_to_string(&path).expect("metrics file written");
    assert_eq!(line.lines().count(), 1, "one JSONL line");
    let report = MetricsReport::from_json(line.lines().next().unwrap())
        .expect("line validates against plurality-metrics/v1");
    // The merged fleet report reconciles: every sent leg was delivered
    // or attributed to a failure layer.
    assert!(report.counter(Counter::PullSent) > 0);
    assert_eq!(
        report.counter(Counter::PullSent),
        report.counter(Counter::PullDelivered) + report.counter(Counter::PullLost)
    );
    assert!(
        report.counter(Counter::PullLost) > 0,
        "20% loss over 3 trials must drop something"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gossip_topology_flag_selects_the_graph() {
    for (topo, expect) in [
        ("ring", "ring(n=300)"),
        ("torus", "torus(15x20)"),
        ("random-regular", "regular(n=300,d=8)"),
    ] {
        let out = run(&[
            "gossip",
            "--n",
            "300",
            "--k",
            "2",
            "--trials",
            "2",
            "--seed",
            "5",
            "--topology",
            topo,
        ]);
        let text = stdout(&out);
        assert!(
            text.contains(expect),
            "--topology {topo}: expected '{expect}' in title:\n{text}"
        );
    }
}

#[test]
fn gossip_topology_rejects_bad_input() {
    let out = run(&["gossip", "--n", "300", "--topology", "hypercube"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--topology"), "unhelpful error:\n{err}");

    // 251 is prime: no torus factorization with both sides >= 3.
    let out = run(&["gossip", "--n", "251", "--topology", "torus"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("torus"), "unhelpful error:\n{err}");
}

#[test]
fn experiment_subcommand_runs_and_reports_metrics() {
    let dir = std::env::temp_dir().join(format!("plurality-cli-e17-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e17.jsonl");
    let path_s = path.to_str().unwrap();

    let out = run(&[
        "experiment",
        "e17",
        "--smoke",
        "--metrics",
        "summary",
        "--metrics-out",
        path_s,
    ]);
    let text = stdout(&out);
    assert!(text.contains("e17"), "experiment header missing:\n{text}");
    assert!(text.contains("msg tax"), "grid table missing:\n{text}");
    assert!(
        text.contains("lost_ge_chain"),
        "per-layer attribution missing from telemetry summary:\n{text}"
    );

    let line = std::fs::read_to_string(&path).expect("metrics file written");
    let report = MetricsReport::from_json(line.trim()).expect("schema-valid");
    assert!(report.counter(Counter::PullSent) > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inbox_policies_random_replace_and_ttl_run_end_to_end() {
    // `from_name` accepts four policies; the two beyond drop-oldest /
    // drop-newest must work through the real binary, not just the API.
    for policy in ["random-replace", "ttl=3"] {
        let out = run(&[
            "gossip",
            "--n",
            "300",
            "--k",
            "2",
            "--trials",
            "2",
            "--seed",
            "5",
            "--mode",
            "push",
            "--delay",
            "0.3",
            "--inbox-policy",
            policy,
        ]);
        let text = stdout(&out);
        assert!(
            text.contains("win rate"),
            "--inbox-policy {policy} failed:\n{text}"
        );
    }

    // And the help text documents every accepted name.
    let out = run(&["--help"]);
    let help = String::from_utf8_lossy(&out.stderr);
    for name in ["drop-oldest", "drop-newest", "random-replace", "ttl=T"] {
        assert!(
            help.contains(name),
            "help text missing inbox policy '{name}':\n{help}"
        );
    }
}

#[test]
fn gossip_churn_flag_runs_and_reports_membership() {
    let out = run(&[
        "gossip",
        "--n",
        "400",
        "--k",
        "3",
        "--trials",
        "2",
        "--seed",
        "11",
        "--churn",
        "crash:0.05;rejoin:0.3,state=fresh;join:0.2,spare=20,attach=4,init=copy",
    ]);
    let text = stdout(&out);
    assert!(
        text.contains("churn = crash:0.05"),
        "churn label missing from title:\n{text}"
    );
    assert!(
        text.contains("churn events"),
        "membership summary row missing:\n{text}"
    );
    assert!(
        text.contains("mean final alive"),
        "final-alive row missing:\n{text}"
    );

    // Bad DSL and illegal combinations fail with a pointed message.
    let out = run(&["gossip", "--n", "300", "--churn", "crash:-1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--churn"), "unhelpful error:\n{err}");

    let out = run(&[
        "gossip",
        "--n",
        "300",
        "--churn",
        "crash:0.01",
        "--fast-frac",
        "0.25",
        "--fast-rate",
        "4",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("heterogeneous"),
        "churn × rates guard missing:\n{err}"
    );
}

#[test]
fn serve_and_bench_client_round_trip() {
    use std::io::{BufRead, BufReader};

    let mut serve = Command::new(env!("CARGO_BIN_EXE_plurality-cli"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    // Keep the pipe's read end open until serve exits — dropping it
    // early makes the server's final println panic on a broken pipe.
    let mut serve_out = BufReader::new(serve.stdout.take().unwrap());
    let mut first = String::new();
    serve_out.read_line(&mut first).expect("listening line");
    let addr = first
        .split("listening on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("unparseable listening line: {first:?}"))
        .to_string();

    let dir = std::env::temp_dir().join(format!("plurality-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.json");
    let out = run(&[
        "bench-client",
        "--addr",
        &addr,
        "--freq",
        "40",
        "--secs",
        "2",
        "--probe",
        "2",
        "--n",
        "300",
        "--k",
        "2",
        "--trials",
        "2",
        "--bench-out",
        path.to_str().unwrap(),
        "--shutdown",
    ]);
    let text = stdout(&out);
    assert!(
        text.contains("open-loop:"),
        "latency report missing:\n{text}"
    );
    assert!(text.contains("p50"), "percentiles missing:\n{text}");
    assert!(text.contains("cache probe"), "probe line missing:\n{text}");
    // The per-second progress line must fire (and not deadlock: it once
    // self-locked the client state mutex twice in one statement).
    assert!(
        text.contains("submitted="),
        "progress line missing:\n{text}"
    );

    let json = std::fs::read_to_string(&path).expect("bench-out written");
    assert!(json.contains("\"schema\":\"plurality-bench-server/v1\""));
    assert!(json.contains("\"cache_probe\""));
    assert!(json.contains("\"throughput_per_sec\""));

    // --shutdown drains the server: the serve process must exit cleanly.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        match serve.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "serve exited with {status:?}");
                break;
            }
            None if std::time::Instant::now() > deadline => {
                serve.kill().ok();
                panic!("serve did not exit within 60s of shutdown");
            }
            None => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    }
    drop(serve_out);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn experiment_rejects_unknown_id() {
    let out = run(&["experiment", "e99", "--smoke"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("e99"), "unhelpful error:\n{err}");
}
