//! Property-based tests on the engines: arbitrary starts must produce
//! well-formed trials, monotone traces, and scheduling-independent
//! Monte-Carlo output.

use plurality_core::{builders, Dynamics, HPlurality, ThreeMajority, UndecidedState, Voter};
use plurality_engine::{
    AgentEngine, MeanFieldEngine, MonteCarlo, Placement, RunOptions, StateWidth, StopReason,
};
use plurality_sampling::stream_rng;
use plurality_topology::{random_regular, Clique, Topology};
use proptest::prelude::*;

/// The dispatch-table rules the determinism contract is pinned over:
/// one batched fixed-draws rule (3-majority), one with data-dependent
/// randomness (h-plurality's reservoir tie-break), one lifted-state rule
/// (undecided), and the single-draw baseline (voter).
fn zoo_dynamics(idx: usize, k: usize) -> Box<dyn Dynamics> {
    match idx {
        0 => Box::new(ThreeMajority::new()),
        1 => Box::new(HPlurality::new(4)),
        2 => Box::new(UndecidedState::new(k)),
        _ => Box::new(Voter),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any biased start: the trial result is internally consistent.
    #[test]
    fn mean_field_trial_consistency(
        n in 1_000u64..200_000,
        k in 2usize..10,
        bias_frac in 0.05f64..0.6,
        seed in any::<u64>(),
    ) {
        let s = ((n as f64) * bias_frac) as u64;
        prop_assume!(s >= 1 && s <= n);
        let cfg = builders::biased(n, k, s);
        let d = ThreeMajority::new();
        let engine = MeanFieldEngine::new(&d);
        let opts = RunOptions::with_max_rounds(100_000).traced();
        let mut rng = stream_rng(seed, 0);
        let r = engine.run(&cfg, &opts, &mut rng);

        prop_assert_eq!(r.initial_plurality, 0);
        match r.reason {
            StopReason::Stopped => {
                prop_assert!(r.winner.is_some());
                prop_assert_eq!(r.success, r.winner == Some(0));
            }
            StopReason::MaxRounds => {
                prop_assert!(r.winner.is_none());
                prop_assert!(!r.success);
            }
        }
        let trace = r.trace.expect("traced");
        prop_assert_eq!(trace.rounds.len() as u64, r.rounds + 1);
        // Population conserved every recorded round.
        for stats in &trace.rounds {
            prop_assert_eq!(
                stats.plurality_count + stats.minority_mass + stats.extra_state_mass,
                n
            );
        }
        // Round indices are 0..=rounds in order.
        for (i, stats) in trace.rounds.iter().enumerate() {
            prop_assert_eq!(stats.round, i as u64);
        }
    }

    /// The agent engine is bit-identical across thread counts — full
    /// per-round traces, not just the outcome — for every dispatch-table
    /// topology (clique, CSR) × dynamics (3-majority, h-plurality,
    /// undecided, voter) pair, any seed, and any thread count.
    #[test]
    fn agent_threads_invariant(
        n in 64usize..400,
        k in 2usize..5,
        seed in any::<u64>(),
        threads in 2usize..6,
        use_csr in any::<bool>(),
        dyn_idx in 0usize..4,
    ) {
        let n_u = n as u64;
        let cfg = builders::biased(n_u, k, n_u / 4);
        let topo: Box<dyn Topology> = if use_csr {
            // degree 8 keeps n·d even for every n.
            Box::new(random_regular(n, 8, seed ^ 0x70B0))
        } else {
            Box::new(Clique::new(n))
        };
        let d = zoo_dynamics(dyn_idx, k);
        let opts = RunOptions::with_max_rounds(120).traced();
        let small_chunk = 64; // force multiple chunks even at small n
        let a = AgentEngine::new(&*topo)
            .with_chunk_size(small_chunk)
            .run(d.as_ref(), &cfg, Placement::Shuffled, &opts, seed);
        let b = AgentEngine::new(&*topo)
            .with_threads(threads)
            .with_chunk_size(small_chunk)
            .run(d.as_ref(), &cfg, Placement::Shuffled, &opts, seed);
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.winner, b.winner);
        prop_assert_eq!(
            a.trace.expect("traced").rounds,
            b.trace.expect("traced").rounds
        );
    }

    /// Narrow state words are storage only: forcing `u8` produces the
    /// same trajectory as the widest word, sequential or sharded.
    #[test]
    fn agent_state_width_invariant(
        n in 64usize..300,
        k in 2usize..5,
        seed in any::<u64>(),
        threads in 1usize..4,
        dyn_idx in 0usize..4,
    ) {
        let n_u = n as u64;
        let cfg = builders::biased(n_u, k, n_u / 4);
        let clique = Clique::new(n);
        let d = zoo_dynamics(dyn_idx, k);
        let opts = RunOptions::with_max_rounds(120).traced();
        let run_width = |w: StateWidth| {
            AgentEngine::new(&clique)
                .with_threads(threads)
                .with_chunk_size(64)
                .with_state_width(w)
                .run(d.as_ref(), &cfg, Placement::Shuffled, &opts, seed)
        };
        let narrow = run_width(StateWidth::U8);
        let wide = run_width(StateWidth::U32);
        prop_assert_eq!(narrow.rounds, wide.rounds);
        prop_assert_eq!(narrow.winner, wide.winner);
        prop_assert_eq!(
            narrow.trace.expect("traced").rounds,
            wide.trace.expect("traced").rounds
        );
    }

    /// Monte-Carlo output is a pure function of (seed, trials), not of
    /// the thread count, for an arbitrary stochastic job.
    #[test]
    fn montecarlo_scheduling_free(
        trials in 1usize..24,
        seed in any::<u64>(),
        threads in 2usize..8,
    ) {
        let cfg = builders::binary(10_000, 4_000);
        let engine_dynamics = Voter;
        let engine = MeanFieldEngine::new(&engine_dynamics);
        let opts = RunOptions::with_max_rounds(200);
        let serial = MonteCarlo { trials, threads: 1, master_seed: seed }
            .run(|_, rng| engine.run(&cfg, &opts, rng).rounds);
        let parallel = MonteCarlo { trials, threads, master_seed: seed }
            .run(|_, rng| engine.run(&cfg, &opts, rng).rounds);
        prop_assert_eq!(serial, parallel);
    }

    /// M-plurality stopping is never later than full consensus under the
    /// same randomness.
    #[test]
    fn mplurality_stops_no_later(
        n in 10_000u64..100_000,
        m_frac in 0.001f64..0.2,
        seed in any::<u64>(),
    ) {
        let cfg = builders::biased(n, 4, n / 3);
        let d = ThreeMajority::new();
        let engine = MeanFieldEngine::new(&d);
        let m = ((n as f64) * m_frac) as u64;
        let full = engine.run(
            &cfg,
            &RunOptions::with_max_rounds(100_000),
            &mut stream_rng(seed, 0),
        );
        let early = engine.run(
            &cfg,
            &RunOptions {
                stop: plurality_engine::StopRule::MPlurality(m),
                ..RunOptions::with_max_rounds(100_000)
            },
            &mut stream_rng(seed, 0),
        );
        prop_assert!(early.rounds <= full.rounds);
    }
}
