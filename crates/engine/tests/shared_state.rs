//! The job server shares prebuilt state across its worker pool: one
//! `Arc<dyn Topology>` (and the alias/edge tables derived from it)
//! serves every concurrently-running job.  These tests pin the two
//! properties that sharing relies on:
//!
//! 1. the shared handles are `Send + Sync`, so they may cross worker
//!    threads at all;
//! 2. an engine borrowing a shared topology is bit-identical to one
//!    that built its own copy — the cache changes *when* state is
//!    built, never *what* a trial computes.

use std::sync::Arc;

use plurality_core::{builders, ThreeMajority};
use plurality_engine::{AgentEngine, Placement, RunOptions};
use plurality_sampling::derive_stream;
use plurality_topology::{random_regular, Topology};

fn assert_send_sync<T: Send + Sync + ?Sized>() {}

#[test]
fn shared_engine_state_is_send_and_sync() {
    // `Arc<dyn Topology>` is the cache's currency; the rest is the
    // per-job state a worker thread carries alongside it.
    assert_send_sync::<Arc<dyn Topology>>();
    assert_send_sync::<dyn Topology>();
    assert_send_sync::<plurality_core::Configuration>();
    assert_send_sync::<RunOptions>();
}

#[test]
fn engines_on_a_shared_arc_topology_match_owned_construction() {
    const N: usize = 400;
    const DEGREE: usize = 6;
    const WIRING_SEED: u64 = 0xABCD;
    const TRIALS: u64 = 4;

    let cfg = builders::biased(N as u64, 3, 60);
    let opts = RunOptions::with_max_rounds(50_000);

    // Reference: every trial builds its own topology, as the one-shot
    // CLI path does.
    let mut owned = Vec::new();
    for trial in 0..TRIALS {
        let topology = random_regular(N, DEGREE, WIRING_SEED);
        let r = AgentEngine::new(&topology).run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &opts,
            derive_stream(9, trial),
        );
        owned.push((r.rounds, r.winner, r.success));
    }

    // Shared: one Arc'd topology, each trial on its own thread.
    let shared: Arc<dyn Topology> = Arc::new(random_regular(N, DEGREE, WIRING_SEED));
    let handles: Vec<_> = (0..TRIALS)
        .map(|trial| {
            let topology = Arc::clone(&shared);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let r = AgentEngine::new(&*topology).run(
                    &ThreeMajority::new(),
                    &cfg,
                    Placement::Shuffled,
                    &opts,
                    derive_stream(9, trial),
                );
                (r.rounds, r.winner, r.success)
            })
        })
        .collect();
    let from_shared: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("trial thread"))
        .collect();

    assert_eq!(
        owned, from_shared,
        "sharing a topology across threads must not change any trial"
    );
}
