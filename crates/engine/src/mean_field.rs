//! The exact mean-field engine: `O(k)` rounds on the clique.
//!
//! On the clique, every node's next state is independent given the current
//! configuration (the rules sample u.a.r. with repetition), so the next
//! configuration is distributed as a (group-wise) multinomial whose
//! parameters each dynamics computes exactly (`Dynamics::step_mean_field`).
//! Sampling that multinomial *is* simulating the round — this engine is a
//! distribution-preserving simulation of the process, not an
//! approximation, and it reaches populations of `10^9+` that an explicit
//! per-node simulation cannot.

use crate::run::{
    evaluate_stop, unique_initial_plurality, RoundHook, RunOptions, StopReason, TraceLevel,
    TrialResult,
};
use crate::trace::Trace;
use plurality_core::{Configuration, Dynamics};
use plurality_telemetry::{ticks_to_fp, Counter, Gauge, Hist, NoopRecorder, Phase, Recorder};
use rand::RngCore;
use std::time::Instant;

/// Exact clique simulator driven by mean-field kernels.
pub struct MeanFieldEngine<'d> {
    dynamics: &'d dyn Dynamics,
}

impl<'d> MeanFieldEngine<'d> {
    /// Engine for one dynamics.
    #[must_use]
    pub fn new(dynamics: &'d dyn Dynamics) -> Self {
        Self { dynamics }
    }

    /// The wrapped dynamics.
    #[must_use]
    pub fn dynamics(&self) -> &'d dyn Dynamics {
        self.dynamics
    }

    /// Run one trial from a color configuration.
    pub fn run(
        &self,
        initial: &Configuration,
        opts: &RunOptions,
        rng: &mut dyn RngCore,
    ) -> TrialResult {
        self.run_hooked(initial, opts, None, rng)
    }

    /// Run one trial with an optional per-round hook (adversary).
    pub fn run_hooked(
        &self,
        initial: &Configuration,
        opts: &RunOptions,
        hook: Option<&mut dyn RoundHook>,
        rng: &mut dyn RngCore,
    ) -> TrialResult {
        self.run_recorded(initial, opts, hook, rng, &mut NoopRecorder)
    }

    /// [`MeanFieldEngine::run`] with a telemetry [`Recorder`] (and an
    /// optional hook).  Records rounds, per-round wall-clock, the
    /// leading-color occupancy, and setup/run/finalize phase timers.
    /// Recording consumes no randomness and never branches the
    /// simulation; the [`NoopRecorder`] instantiation is the
    /// uninstrumented engine.
    pub fn run_recorded<Rec: Recorder>(
        &self,
        initial: &Configuration,
        opts: &RunOptions,
        mut hook: Option<&mut dyn RoundHook>,
        rng: &mut dyn RngCore,
        rec: &mut Rec,
    ) -> TrialResult {
        rec.phase_start(Phase::Setup);
        let initial_plurality = unique_initial_plurality(initial);
        let k_colors = initial.k();
        let lifted = self.dynamics.lift(initial);
        let mut cur: Vec<u64> = lifted.counts().to_vec();
        let mut next: Vec<u64> = vec![0; cur.len()];
        let n = lifted.n();

        let mut trace = match opts.trace {
            TraceLevel::Off => None,
            _ => Some(Trace::new()),
        };
        let full = opts.trace == TraceLevel::Full;
        if let Some(t) = trace.as_mut() {
            t.record(0, &cur, k_colors, full);
        }
        rec.phase_end(Phase::Setup);

        let finish = |rec: &mut Rec, rounds: u64, out: TrialResult| -> TrialResult {
            rec.phase_end(Phase::Run);
            if Rec::ENABLED {
                rec.gauge_set(Gauge::CompletedTicks, rounds);
                rec.gauge_set(Gauge::FinalTimeFp, ticks_to_fp(rounds as f64));
            }
            rec.phase_start(Phase::Finalize);
            rec.phase_end(Phase::Finalize);
            out
        };

        // The initial configuration may already satisfy the stop rule.
        if let Some(winner) = evaluate_stop(opts.stop, self.dynamics, &cur, initial_plurality) {
            let out = TrialResult {
                rounds: 0,
                reason: StopReason::Stopped,
                winner: Some(winner),
                initial_plurality,
                success: winner == initial_plurality,
                trace,
            };
            return finish(rec, 0, out);
        }

        let mut rounds = 0u64;
        rec.phase_start(Phase::Run);
        loop {
            let round_t0 = if Rec::ENABLED {
                Some(Instant::now())
            } else {
                None
            };
            self.dynamics.step_mean_field(&cur, &mut next, rng);
            std::mem::swap(&mut cur, &mut next);
            rounds += 1;
            if let Some(h) = hook.as_deref_mut() {
                h.after_step(rounds, &mut cur, rng);
                debug_assert_eq!(cur.iter().sum::<u64>(), n, "hook changed the population");
            }
            if Rec::ENABLED {
                if let Some(t0) = round_t0 {
                    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    rec.observe(Hist::RoundWallNanos, ns);
                }
                rec.incr(Counter::Rounds);
                let leader = cur[..k_colors].iter().copied().max().unwrap_or(0);
                rec.observe(Hist::LeaderOccupancy, leader);
            }
            if let Some(t) = trace.as_mut() {
                t.record(rounds, &cur, k_colors, full);
            }
            if let Some(winner) = evaluate_stop(opts.stop, self.dynamics, &cur, initial_plurality) {
                let out = TrialResult {
                    rounds,
                    reason: StopReason::Stopped,
                    winner: Some(winner),
                    initial_plurality,
                    success: winner == initial_plurality,
                    trace,
                };
                return finish(rec, rounds, out);
            }
            if rounds >= opts.max_rounds {
                let out = TrialResult {
                    rounds,
                    reason: StopReason::MaxRounds,
                    winner: None,
                    initial_plurality,
                    success: false,
                    trace,
                };
                return finish(rec, rounds, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::StopRule;
    use plurality_core::{builders, HPlurality, Median3, ThreeMajority, UndecidedState, Voter};
    use plurality_sampling::stream_rng;

    #[test]
    fn three_majority_converges_to_plurality_with_strong_bias() {
        // n = 100k, k = 5, bias well above the theorem threshold:
        // every trial should hit the initial plurality.
        let cfg = builders::biased(100_000, 5, 30_000);
        let d = ThreeMajority::new();
        let engine = MeanFieldEngine::new(&d);
        let opts = RunOptions::with_max_rounds(10_000);
        for trial in 0..10 {
            let mut rng = stream_rng(42, trial);
            let r = engine.run(&cfg, &opts, &mut rng);
            assert_eq!(r.reason, StopReason::Stopped, "trial {trial}");
            assert!(r.success, "trial {trial} lost the plurality");
            assert!(r.rounds < 200, "trial {trial} took {} rounds", r.rounds);
        }
    }

    #[test]
    fn already_monochromatic_stops_at_zero() {
        let cfg = Configuration::new(vec![1000, 0, 0]);
        let d = ThreeMajority::new();
        let engine = MeanFieldEngine::new(&d);
        let mut rng = stream_rng(1, 0);
        let r = engine.run(&cfg, &RunOptions::default(), &mut rng);
        assert_eq!(r.rounds, 0);
        assert_eq!(r.winner, Some(0));
        assert!(r.success);
    }

    #[test]
    fn max_rounds_reported() {
        // Voter on a big balanced-ish config won't converge in 3 rounds.
        let cfg = builders::biased(1_000_000, 2, 10);
        let d = Voter;
        let engine = MeanFieldEngine::new(&d);
        let mut rng = stream_rng(2, 0);
        let r = engine.run(&cfg, &RunOptions::with_max_rounds(3), &mut rng);
        assert_eq!(r.reason, StopReason::MaxRounds);
        assert_eq!(r.winner, None);
        assert!(!r.success);
        assert_eq!(r.rounds, 3);
    }

    #[test]
    fn trace_records_every_round() {
        let cfg = builders::biased(10_000, 3, 3_000);
        let d = ThreeMajority::new();
        let engine = MeanFieldEngine::new(&d);
        let mut rng = stream_rng(3, 0);
        let r = engine.run(&cfg, &RunOptions::default().traced(), &mut rng);
        let trace = r.trace.expect("trace requested");
        assert_eq!(trace.rounds.len() as u64, r.rounds + 1);
        assert_eq!(trace.rounds[0].plurality_count, cfg.plurality().1);
        // Trace ends monochromatic.
        let last = trace.rounds.last().unwrap();
        assert_eq!(last.minority_mass, 0);
    }

    #[test]
    fn mplurality_stops_early() {
        let cfg = builders::biased(100_000, 4, 30_000);
        let d = ThreeMajority::new();
        let engine = MeanFieldEngine::new(&d);
        let mut rng_full = stream_rng(4, 0);
        let mut rng_m = stream_rng(4, 0);
        let full = engine.run(&cfg, &RunOptions::default(), &mut rng_full);
        let opts_m = RunOptions {
            stop: StopRule::MPlurality(1000),
            ..RunOptions::default()
        };
        let m = engine.run(&cfg, &opts_m, &mut rng_m);
        assert!(m.rounds <= full.rounds);
        assert!(m.success);
    }

    #[test]
    fn undecided_dynamics_through_engine() {
        let d = UndecidedState::new(3);
        let cfg = builders::biased(50_000, 3, 15_000);
        let engine = MeanFieldEngine::new(&d);
        let mut rng = stream_rng(5, 0);
        let r = engine.run(&cfg, &RunOptions::with_max_rounds(100_000), &mut rng);
        assert_eq!(r.reason, StopReason::Stopped);
        assert!(r.success, "undecided-state lost a heavily biased start");
    }

    #[test]
    fn median3_converges_to_median_not_plurality() {
        // (n/3 + s, n/3, n/3 − s): median color = 1, plurality = 0.
        let cfg = builders::three_colors(30_000, 900);
        let d = Median3;
        let engine = MeanFieldEngine::new(&d);
        let mut to_median = 0;
        for trial in 0..10 {
            let mut rng = stream_rng(6, trial);
            let r = engine.run(&cfg, &RunOptions::with_max_rounds(100_000), &mut rng);
            assert_eq!(r.reason, StopReason::Stopped);
            if r.winner == Some(1) {
                to_median += 1;
            }
            assert!(!r.success || r.winner != Some(1));
        }
        assert!(to_median >= 8, "median won only {to_median}/10");
    }

    #[test]
    fn h_plurality_with_fallback_path_converges() {
        // k large enough that enumeration is refused → per-node path.
        let cfg = builders::biased(20_000, 40, 8_000);
        let d = HPlurality::new(7);
        let engine = MeanFieldEngine::new(&d);
        let mut rng = stream_rng(7, 0);
        let r = engine.run(&cfg, &RunOptions::with_max_rounds(10_000), &mut rng);
        assert!(r.success);
    }

    #[test]
    fn hook_is_invoked_every_round() {
        struct Counter(u64);
        impl RoundHook for Counter {
            fn after_step(&mut self, _round: u64, _states: &mut [u64], _rng: &mut dyn RngCore) {
                self.0 += 1;
            }
        }
        let cfg = builders::biased(10_000, 3, 4_000);
        let d = ThreeMajority::new();
        let engine = MeanFieldEngine::new(&d);
        let mut hook = Counter(0);
        let mut rng = stream_rng(8, 0);
        let r = engine.run_hooked(&cfg, &RunOptions::default(), Some(&mut hook), &mut rng);
        assert_eq!(hook.0, r.rounds);
    }

    #[test]
    fn recording_does_not_perturb_and_counts_rounds() {
        use plurality_telemetry::MetricsRecorder;
        let cfg = builders::biased(50_000, 4, 15_000);
        let d = ThreeMajority::new();
        let engine = MeanFieldEngine::new(&d);
        let opts = RunOptions::default().traced();
        let mut a = stream_rng(10, 0);
        let mut b = stream_rng(10, 0);
        let plain = engine.run(&cfg, &opts, &mut a);
        let mut rec = MetricsRecorder::new();
        let recorded = engine.run_recorded(&cfg, &opts, None, &mut b, &mut rec);
        assert_eq!(plain.rounds, recorded.rounds);
        assert_eq!(
            plain.trace.unwrap().rounds,
            recorded.trace.unwrap().rounds,
            "recording must not perturb the trajectory"
        );
        assert_eq!(rec.counter(Counter::Rounds), recorded.rounds);
        assert_eq!(rec.gauge(Gauge::CompletedTicks), recorded.rounds);
        assert_eq!(rec.hist(Hist::LeaderOccupancy).count(), recorded.rounds);
        // The last leader observation is the full population (absorbed).
        assert_eq!(rec.hist(Hist::LeaderOccupancy).max(), 50_000);
    }

    #[test]
    fn deterministic_given_stream() {
        let cfg = builders::biased(50_000, 6, 10_000);
        let d = ThreeMajority::new();
        let engine = MeanFieldEngine::new(&d);
        let mut a = stream_rng(9, 1);
        let mut b = stream_rng(9, 1);
        let ra = engine.run(&cfg, &RunOptions::default(), &mut a);
        let rb = engine.run(&cfg, &RunOptions::default(), &mut b);
        assert_eq!(ra.rounds, rb.rounds);
        assert_eq!(ra.winner, rb.winner);
    }
}
