//! Parallel Monte-Carlo trial runner.
//!
//! Experiments estimate "w.h.p." statements by running hundreds to
//! thousands of independent trials.  Trials are embarrassingly parallel;
//! this runner fans them out over worker threads (std scoped threads,
//! work-stealing via a chunked atomic cursor) while keeping the result
//! order and every trial's PRNG stream independent of scheduling: trial
//! `i` always runs with `stream_rng(master_seed, i)`.
//!
//! Workers grab trials in **chunks** (up to [`MonteCarlo::MAX_GRAB`] at a
//! time) off one atomic cursor and buffer results **locally** — the
//! hand-off back to trial order is one scatter on the coordinating
//! thread after the scope joins, with no per-trial locks at all.  The
//! earlier design (one `Mutex<Option<T>>` slot per trial) paid an
//! uncontended-but-real lock plus a cache line per trial, which the
//! `montecarlo-short-trials` bench group showed dominating
//! sub-millisecond trials.

use plurality_sampling::{stream_rng, Xoshiro256PlusPlus};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parallel independent-trials runner.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Number of independent trials.
    pub trials: usize,
    /// Worker threads (1 = run inline).
    pub threads: usize,
    /// Master seed; trial `i` uses stream `i`.
    pub master_seed: u64,
}

impl MonteCarlo {
    /// Largest number of trials a worker grabs off the cursor at once.
    /// Chunking amortizes the cursor contention for sub-millisecond
    /// trials; the cap keeps the tail balanced when trials are slow.
    pub const MAX_GRAB: usize = 16;

    /// Runner with all available parallelism and a fixed default seed.
    #[must_use]
    pub fn new(trials: usize) -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self {
            trials,
            threads,
            master_seed: 0xC0FF_EE00,
        }
    }

    /// Override the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Override the thread count.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// How many trials each cursor grab claims: aim for several grabs
    /// per worker (so the tail stays balanced), capped at
    /// [`Self::MAX_GRAB`] and floored at 1.
    fn grab_size(&self, workers: usize) -> usize {
        (self.trials / (workers * 4)).clamp(1, Self::MAX_GRAB)
    }

    /// Run `job(trial_index, trial_rng)` for every trial; results are
    /// returned in trial order regardless of scheduling.
    pub fn run<T, F>(&self, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut Xoshiro256PlusPlus) -> T + Sync,
    {
        self.run_streaming(job, |_, _| ())
    }

    /// [`MonteCarlo::run`] with a per-trial streaming hook.
    ///
    /// `hook(trial_index, &result)` fires exactly once per trial, as
    /// soon as that trial completes — in **completion order**, which
    /// under parallelism is not trial order (the returned `Vec` still
    /// is).  The hook runs under a mutex, so it may accumulate into
    /// captured state without further locking; keep it cheap — workers
    /// serialize on it.  This is how per-trial metrics reports stream
    /// into a merged fleet report without buffering every trial's
    /// telemetry until the end.
    pub fn run_streaming<T, F, H>(&self, job: F, mut hook: H) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut Xoshiro256PlusPlus) -> T + Sync,
        H: FnMut(usize, &T) + Send,
    {
        if self.trials == 0 {
            return Vec::new();
        }
        if self.threads <= 1 || self.trials == 1 {
            return (0..self.trials)
                .map(|i| {
                    let mut rng = stream_rng(self.master_seed, i as u64);
                    let result = job(i, &mut rng);
                    hook(i, &result);
                    result
                })
                .collect();
        }

        let workers = self.threads.min(self.trials);
        let grab = self.grab_size(workers);
        let cursor = AtomicUsize::new(0);
        let hook = Mutex::new(hook);

        // Workers buffer `(index, result)` pairs locally — lock-free on
        // the result path — and hand the buffers back through the scope
        // join; one scatter restores trial order.
        let buffers: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(grab, Ordering::Relaxed);
                            if start >= self.trials {
                                break;
                            }
                            let end = (start + grab).min(self.trials);
                            for i in start..end {
                                let mut rng = stream_rng(self.master_seed, i as u64);
                                let result = job(i, &mut rng);
                                (hook.lock().expect("hook panicked"))(i, &result);
                                local.push((i, result));
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let mut slots: Vec<Option<T>> = (0..self.trials).map(|_| None).collect();
        for (i, result) in buffers.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "trial {i} produced twice");
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every trial slot filled"))
            .collect()
    }

    /// Run a boolean job and return the number of successes — the common
    /// shape of "does the plurality win?" estimates.
    pub fn count_successes<F>(&self, job: F) -> usize
    where
        F: Fn(usize, &mut Xoshiro256PlusPlus) -> bool + Sync,
    {
        self.run(job).into_iter().filter(|&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn preserves_trial_order() {
        let mc = MonteCarlo::new(64).with_threads(8).with_seed(1);
        let out = mc.run(|i, _rng| i * 10);
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_serial() {
        // Same master seed ⇒ identical per-trial randomness regardless of
        // thread count.
        let serial = MonteCarlo::new(32).with_threads(1).with_seed(5);
        let parallel = MonteCarlo::new(32).with_threads(8).with_seed(5);
        let a = serial.run(|_, rng| rng.next_u64());
        let b = parallel.run(|_, rng| rng.next_u64());
        assert_eq!(a, b);
    }

    #[test]
    fn different_trials_different_streams() {
        let mc = MonteCarlo::new(16).with_threads(4).with_seed(9);
        let outs = mc.run(|_, rng| rng.next_u64());
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len(), "trial streams must differ");
    }

    #[test]
    fn zero_trials() {
        let mc = MonteCarlo::new(0);
        let out: Vec<u8> = mc.run(|_, _| 0u8);
        assert!(out.is_empty());
    }

    #[test]
    fn count_successes() {
        let mc = MonteCarlo::new(100).with_threads(4).with_seed(2);
        let n = mc.count_successes(|i, _| i % 4 == 0);
        assert_eq!(n, 25);
    }

    #[test]
    fn streaming_hook_sees_every_trial_exactly_once() {
        let mc = MonteCarlo::new(48).with_threads(8).with_seed(11);
        let mut seen: Vec<(usize, u64)> = Vec::new();
        let out = mc.run_streaming(
            |i, rng| (i as u64) ^ rng.next_u64(),
            |i, &v| seen.push((i, v)),
        );
        assert_eq!(seen.len(), 48, "hook must fire once per trial");
        // Completion order is arbitrary; sorted, the stream matches the
        // trial-ordered results exactly.
        seen.sort_unstable_by_key(|&(i, _)| i);
        for (slot, (i, v)) in seen.into_iter().enumerate() {
            assert_eq!(slot, i);
            assert_eq!(out[i], v, "streamed value must be the stored result");
        }
    }

    #[test]
    fn streaming_hook_serial_is_in_trial_order() {
        let mc = MonteCarlo::new(10).with_threads(1).with_seed(12);
        let mut order = Vec::new();
        mc.run_streaming(|i, _| i, |i, _| order.push(i));
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_trials() {
        let mc = MonteCarlo::new(3).with_threads(16).with_seed(3);
        let out = mc.run(|i, _| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn chunked_grabs_cover_every_trial() {
        // Trial count chosen to not divide the grab size: the last grab
        // is partial and must still run every remaining trial.
        for trials in [7usize, 129, 1000] {
            let mc = MonteCarlo::new(trials).with_threads(4).with_seed(13);
            let out = mc.run(|i, _| i);
            assert_eq!(out, (0..trials).collect::<Vec<_>>(), "trials={trials}");
        }
    }

    #[test]
    fn grab_size_bounds() {
        let mc = MonteCarlo::new(4096).with_threads(4);
        assert_eq!(mc.grab_size(4), MonteCarlo::MAX_GRAB);
        let small = MonteCarlo::new(8).with_threads(8);
        assert_eq!(small.grab_size(8), 1);
    }
}
