//! Simulation engines for the plurality-consensus dynamics.
//!
//! Two engines, one exact law:
//!
//! * [`MeanFieldEngine`] — `O(k)`-per-round **exact** simulation on the
//!   clique, by sampling the (group-wise) multinomial transition each
//!   dynamics exposes.  This is the workhorse for the paper's theorems,
//!   reaching populations of `10^9+`.
//! * [`AgentEngine`] — explicit per-node simulation (`O(n·h)` per round)
//!   on any [`plurality_topology::Topology`], deterministically
//!   parallelized over node chunks.  Cross-validates the mean-field
//!   engine and powers the non-clique extension experiments.
//!
//! Plus [`MonteCarlo`], a scheduling-independent parallel runner for
//! independent trials, and the shared run options / trial results /
//! trajectory tracing in [`run`] and [`trace`].
//!
//! Every engine draws from per-purpose PRNG streams of its trial seed;
//! the full stream registry and the parallel draw-order contract live in
//! `docs/DETERMINISM.md` at the repository root.
//!
//! ```
//! use plurality_core::{builders, ThreeMajority};
//! use plurality_engine::{MeanFieldEngine, RunOptions};
//! use plurality_sampling::stream_rng;
//!
//! let cfg = builders::biased(1_000_000, 10, 50_000);
//! let dynamics = ThreeMajority::new();
//! let engine = MeanFieldEngine::new(&dynamics);
//! let mut rng = stream_rng(7, 0);
//! let result = engine.run(&cfg, &RunOptions::default(), &mut rng);
//! assert!(result.success, "strong bias should carry the plurality");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod mean_field;
pub mod montecarlo;
pub mod run;
pub mod trace;

pub use agent::{layout_initial_states, AgentEngine, Placement, StateWidth};
pub use mean_field::MeanFieldEngine;
pub use montecarlo::MonteCarlo;
pub use run::{
    evaluate_stop, unique_initial_plurality, NoHook, RoundHook, RunOptions, StopReason, StopRule,
    TraceLevel, TrialResult,
};
pub use trace::{RoundStats, Trace};
