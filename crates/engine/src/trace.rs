//! Trajectory recording: the per-round statistics the phase-portrait
//! experiments (Lemmas 3–5, experiment E11) are built on.

/// Summary statistics of one round's state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Round index (0 = the initial configuration).
    pub round: u64,
    /// Count of the currently largest color.
    pub plurality_count: u64,
    /// Count of the runner-up color.
    pub second_count: u64,
    /// Additive bias `c_(1) − c_(2)`.
    pub bias: u64,
    /// Total mass on non-plurality colors (`Σ_{i≠1} c_i` of Lemma 4).
    pub minority_mass: u64,
    /// Nodes in non-color states (undecided dynamics; 0 otherwise).
    pub extra_state_mass: u64,
    /// Number of colors still alive.
    pub support: usize,
}

impl RoundStats {
    /// Compute stats from a state slice, given how many leading entries
    /// are colors.
    #[must_use]
    pub fn from_states(round: u64, states: &[u64], k_colors: usize) -> Self {
        let colors = &states[..k_colors];
        let mut c1 = 0u64;
        let mut c2 = 0u64;
        let mut colored_mass = 0u64;
        let mut support = 0usize;
        for &c in colors {
            colored_mass += c;
            if c > 0 {
                support += 1;
            }
            if c > c1 {
                c2 = c1;
                c1 = c;
            } else if c > c2 {
                c2 = c;
            }
        }
        let extra: u64 = states[k_colors..].iter().sum();
        Self {
            round,
            plurality_count: c1,
            second_count: c2,
            bias: c1 - c2,
            minority_mass: colored_mass - c1,
            extra_state_mass: extra,
            support,
        }
    }
}

/// A recorded trajectory.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Per-round summaries, starting with round 0 (the initial state).
    pub rounds: Vec<RoundStats>,
    /// Full state counts per round (only with `TraceLevel::Full`).
    pub full_states: Vec<Vec<u64>>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a round (summary always; full counts if `full`).
    pub fn record(&mut self, round: u64, states: &[u64], k_colors: usize, full: bool) {
        self.rounds
            .push(RoundStats::from_states(round, states, k_colors));
        if full {
            self.full_states.push(states.to_vec());
        }
    }

    /// Per-round multiplicative bias growth factors
    /// `s(t+1)/s(t)` (Lemma 3's `1 + c1/4n` lower bound target).
    /// Rounds with zero bias are skipped.
    #[must_use]
    pub fn bias_growth_factors(&self) -> Vec<f64> {
        self.rounds
            .windows(2)
            .filter(|w| w[0].bias > 0)
            .map(|w| w[1].bias as f64 / w[0].bias as f64)
            .collect()
    }

    /// Per-round minority-mass decay factors (Lemma 4's 8/9 target).
    /// Rounds with zero minority mass are skipped.
    #[must_use]
    pub fn minority_decay_factors(&self) -> Vec<f64> {
        self.rounds
            .windows(2)
            .filter(|w| w[0].minority_mass > 0)
            .map(|w| w[1].minority_mass as f64 / w[0].minority_mass as f64)
            .collect()
    }

    /// First round at which the plurality count reached `threshold`.
    #[must_use]
    pub fn first_round_reaching(&self, threshold: u64) -> Option<u64> {
        self.rounds
            .iter()
            .find(|r| r.plurality_count >= threshold)
            .map(|r| r.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_states_basic() {
        let s = RoundStats::from_states(3, &[10, 40, 30, 0], 4);
        assert_eq!(s.round, 3);
        assert_eq!(s.plurality_count, 40);
        assert_eq!(s.second_count, 30);
        assert_eq!(s.bias, 10);
        assert_eq!(s.minority_mass, 40);
        assert_eq!(s.extra_state_mass, 0);
        assert_eq!(s.support, 3);
    }

    #[test]
    fn stats_with_extra_state() {
        // 2 colors + an undecided slot of 5.
        let s = RoundStats::from_states(0, &[7, 3, 5], 2);
        assert_eq!(s.plurality_count, 7);
        assert_eq!(s.minority_mass, 3);
        assert_eq!(s.extra_state_mass, 5);
    }

    #[test]
    fn stats_tied_colors() {
        let s = RoundStats::from_states(0, &[5, 5, 0], 3);
        assert_eq!(s.bias, 0);
        assert_eq!(s.plurality_count, 5);
        assert_eq!(s.second_count, 5);
    }

    #[test]
    fn trace_growth_factors() {
        let mut t = Trace::new();
        t.record(0, &[60, 40], 2, false);
        t.record(1, &[70, 30], 2, false);
        t.record(2, &[90, 10], 2, false);
        let g = t.bias_growth_factors();
        assert_eq!(g.len(), 2);
        assert!((g[0] - 2.0).abs() < 1e-12); // 40 → 20... bias 20 → 40
        assert!((g[1] - 2.0).abs() < 1e-12); // bias 40 → 80
    }

    #[test]
    fn trace_minority_decay() {
        let mut t = Trace::new();
        t.record(0, &[60, 40], 2, false);
        t.record(1, &[80, 20], 2, false);
        t.record(2, &[100, 0], 2, false);
        let d = t.minority_decay_factors();
        assert_eq!(d.len(), 2);
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn trace_threshold_crossing() {
        let mut t = Trace::new();
        t.record(0, &[50, 50], 2, false);
        t.record(1, &[65, 35], 2, false);
        t.record(2, &[90, 10], 2, false);
        assert_eq!(t.first_round_reaching(60), Some(1));
        assert_eq!(t.first_round_reaching(95), None);
    }

    #[test]
    fn full_trace_stores_counts() {
        let mut t = Trace::new();
        t.record(0, &[3, 7], 2, true);
        assert_eq!(t.full_states, vec![vec![3, 7]]);
    }
}
