//! Run options, stopping rules, round hooks, and trial results shared by
//! both engines.

use plurality_core::Configuration;
use rand::RngCore;

/// When a run stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopRule {
    /// Stop at full consensus (a monochromatic color configuration).
    Consensus,
    /// Stop once all but at most `M` nodes support the *initial plurality*
    /// color — the paper's M-plurality consensus (§3.1), the right notion
    /// under a dynamic adversary where full consensus is impossible.
    MPlurality(u64),
}

/// How much per-round state to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Record nothing (fastest).
    #[default]
    Off,
    /// Record summary statistics per round (bias, plurality mass, …).
    Summary,
    /// Summary plus the full state counts each round (small `k` only).
    Full,
}

/// Options controlling a single trial.
///
/// The same options drive synchronous and asynchronous engines.  For the
/// synchronous engines a "round" is one parallel update of all nodes; for
/// the asynchronous gossip engine a round is one *tick* of parallel time
/// (`n` node activations), so `max_rounds` caps comparable amounts of
/// work in both models.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Hard cap on rounds (synchronous) / parallel-time ticks
    /// (asynchronous); exceeding it marks the trial unconverged.
    pub max_rounds: u64,
    /// Optional hard cap on raw scheduler events for asynchronous,
    /// event-driven engines (`None` = derived from `max_rounds`).
    /// Synchronous engines ignore it.
    pub max_events: Option<u64>,
    /// Stopping rule.
    pub stop: StopRule,
    /// Trace recording level.
    pub trace: TraceLevel,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            max_rounds: 1_000_000,
            max_events: None,
            stop: StopRule::Consensus,
            trace: TraceLevel::Off,
        }
    }
}

impl RunOptions {
    /// Default options with a different round cap.
    #[must_use]
    pub fn with_max_rounds(max_rounds: u64) -> Self {
        Self {
            max_rounds,
            ..Self::default()
        }
    }

    /// Enable summary tracing.
    #[must_use]
    pub fn traced(mut self) -> Self {
        self.trace = TraceLevel::Summary;
        self
    }

    /// Cap raw scheduler events (asynchronous engines only).
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }
}

/// Why a trial ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The stop rule was satisfied.
    Stopped,
    /// The round cap was hit first.
    MaxRounds,
}

/// Outcome of one simulated trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Rounds executed before stopping.
    pub rounds: u64,
    /// Why the run ended.
    pub reason: StopReason,
    /// The consensus color if the run ended in (M-)plurality agreement.
    pub winner: Option<usize>,
    /// The plurality color of the initial configuration.
    pub initial_plurality: usize,
    /// `winner == Some(initial_plurality)` — the paper's success event.
    pub success: bool,
    /// Recorded trajectory, if requested.
    pub trace: Option<crate::trace::Trace>,
}

impl TrialResult {
    /// Convenience: rounds as f64 (for statistics).
    #[must_use]
    pub fn rounds_f64(&self) -> f64 {
        self.rounds as f64
    }
}

/// A per-round intervention with mutable access to the state counts —
/// the mechanism behind the F-bounded dynamic adversary of §3.1.
///
/// Called after every synchronous step (the paper's two-phase round:
/// random step, then adversarial step).
pub trait RoundHook {
    /// Mutate the state counts in place; must preserve the total.
    fn after_step(&mut self, round: u64, states: &mut [u64], rng: &mut dyn RngCore);
}

/// A no-op hook (useful default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHook;

impl RoundHook for NoHook {
    fn after_step(&mut self, _round: u64, _states: &mut [u64], _rng: &mut dyn RngCore) {}
}

/// Shared stop-rule evaluation over a state slice.
///
/// Returns the winning color when the rule is satisfied.
#[must_use]
pub fn evaluate_stop(
    rule: StopRule,
    dynamics: &dyn plurality_core::Dynamics,
    states: &[u64],
    initial_plurality: usize,
) -> Option<usize> {
    match rule {
        StopRule::Consensus => dynamics.consensus(states),
        StopRule::MPlurality(m) => {
            let total: u64 = states.iter().sum();
            let plur = states[initial_plurality];
            if total - plur <= m {
                Some(initial_plurality)
            } else {
                None
            }
        }
    }
}

/// Compute the initial plurality of a color configuration, asserting it
/// is unique so that "success" is well-defined.
///
/// # Panics
/// Panics if the initial plurality is tied.
#[must_use]
pub fn unique_initial_plurality(cfg: &Configuration) -> usize {
    let (p, c1) = cfg.plurality();
    assert!(
        cfg.bias() > 0 || cfg.k() == 1,
        "initial plurality is tied (c1 = {c1}); success is ill-defined"
    );
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_core::{builders, ThreeMajority};

    #[test]
    fn defaults() {
        let o = RunOptions::default();
        assert_eq!(o.stop, StopRule::Consensus);
        assert_eq!(o.trace, TraceLevel::Off);
        let t = RunOptions::with_max_rounds(10).traced();
        assert_eq!(t.max_rounds, 10);
        assert_eq!(t.trace, TraceLevel::Summary);
    }

    #[test]
    fn evaluate_consensus_rule() {
        let d = ThreeMajority::new();
        assert_eq!(
            evaluate_stop(StopRule::Consensus, &d, &[0, 7, 0], 1),
            Some(1)
        );
        assert_eq!(evaluate_stop(StopRule::Consensus, &d, &[1, 6, 0], 1), None);
    }

    #[test]
    fn evaluate_mplurality_rule() {
        let d = ThreeMajority::new();
        // All but 2 nodes on color 0, M = 2: satisfied.
        assert_eq!(
            evaluate_stop(StopRule::MPlurality(2), &d, &[8, 1, 1], 0),
            Some(0)
        );
        assert_eq!(
            evaluate_stop(StopRule::MPlurality(1), &d, &[8, 1, 1], 0),
            None
        );
        // The rule watches the *initial* plurality, not the current one.
        assert_eq!(
            evaluate_stop(StopRule::MPlurality(2), &d, &[1, 9, 0], 0),
            None
        );
    }

    #[test]
    fn unique_plurality_ok() {
        let cfg = builders::biased(100, 4, 10);
        assert_eq!(unique_initial_plurality(&cfg), 0);
    }

    #[test]
    #[should_panic(expected = "tied")]
    fn tied_plurality_panics() {
        let cfg = plurality_core::Configuration::new(vec![5, 5]);
        let _ = unique_initial_plurality(&cfg);
    }
}
