//! The agent-based engine: explicit per-node simulation on arbitrary
//! topologies.
//!
//! Where the mean-field engine exploits the clique's exchangeability, this
//! engine keeps one state per node and executes every sample the dynamics
//! draws — `O(n·h)` per round — which is what makes non-clique topologies
//! (and cross-validation of the mean-field engine) possible.
//!
//! # Determinism under parallelism
//!
//! Rounds are parallelized over *fixed-size node chunks*; chunk `c` of
//! round `r` always draws from the PRNG stream `1 + r·C + c` of the trial
//! seed, regardless of how chunks are assigned to threads.  A run is
//! therefore bit-for-bit identical for any `threads` setting — the
//! property the determinism tests pin down.
//!
//! # Devirtualization
//!
//! The public constructors still take `&dyn Topology` / `&dyn Dynamics`
//! so the CLI, experiments, and adversary hooks compose unchanged, but
//! [`AgentEngine::run`] resolves both to concrete types up front
//! (`downcast_topology` / `downcast_dynamics`) and runs a round loop
//! monomorphized over `(Topology, Dynamics, Xoshiro256PlusPlus)` — the
//! three layers of per-sample virtual dispatch inline away.  Types
//! outside the dispatch tables fall back to [`DynTopology`] /
//! [`DynDynamics`] wrappers, which cost exactly what the pre-refactor
//! engine cost.  Both paths consume the PRNG identically; golden-trace
//! tests (`tests/agent_golden.rs`) pin them bit-for-bit.
//!
//! # Telemetry
//!
//! [`AgentEngine::run_recorded`] threads a
//! [`plurality_telemetry::Recorder`] through the round loop: samples
//! drawn, per-round wall-clock, leading-color occupancy, and phase
//! timers.  Recording consumes no randomness and never branches the
//! simulation, so the trajectory is independent of the recorder; the
//! disabled ([`NoopRecorder`]) instantiation — what [`AgentEngine::run`]
//! uses — compiles the instrumentation away.

use crate::run::{
    evaluate_stop, unique_initial_plurality, RunOptions, StopReason, TraceLevel, TrialResult,
};
use crate::trace::Trace;
use plurality_core::{
    downcast_dynamics, Configuration, DynDynamics, Dynamics, DynamicsCore, HPlurality, NodeScratch,
    SampleSource, ThreeMajority, UndecidedState, Voter,
};
use plurality_sampling::stream_rng;
use plurality_telemetry::{ticks_to_fp, Counter, Gauge, Hist, NoopRecorder, Phase, Recorder};
use plurality_topology::{
    downcast_topology, Clique, CsrGraph, DynTopology, Topology, TopologyCore,
};
use rand::{Rng, RngCore};
use std::time::Instant;

/// How initial colors are laid onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Random assignment (uniform over placements with the given counts).
    /// The right default: on non-clique topologies adversarial placements
    /// change the process.
    #[default]
    Shuffled,
    /// Contiguous blocks of equal color (worst-case-ish for sparse
    /// topologies; useful for placement-sensitivity experiments).
    Blocks,
}

/// Lay a (lifted) state configuration onto nodes: contiguous blocks per
/// state, Fisher–Yates-shuffled on PRNG stream 0 of the trial seed when
/// `placement` is [`Placement::Shuffled`].
///
/// This is the one layout convention shared by every per-node engine
/// (the agent engine here and the asynchronous gossip engine), so that
/// their trials start from identically distributed placements.
#[must_use]
pub fn layout_initial_states(lifted: &Configuration, placement: Placement, seed: u64) -> Vec<u32> {
    let mut states: Vec<u32> = Vec::with_capacity(lifted.n() as usize);
    for (state, &count) in lifted.counts().iter().enumerate() {
        states.extend(std::iter::repeat_n(state as u32, count as usize));
    }
    if placement == Placement::Shuffled {
        let mut rng = stream_rng(seed, 0);
        for i in (1..states.len()).rev() {
            let j = rng.gen_range(0..=i);
            states.swap(i, j);
        }
    }
    states
}

/// Per-node simulator over a [`Topology`].
pub struct AgentEngine<'t> {
    topology: &'t dyn Topology,
    threads: usize,
    chunk_size: usize,
}

/// Draws the state of a random neighbor of one node; monomorphic over
/// the topology so the whole sampling chain inlines.
struct NeighborSource<'a, T> {
    topology: &'a T,
    states: &'a [u32],
    node: usize,
}

impl<T: TopologyCore> SampleSource for NeighborSource<'_, T> {
    #[inline]
    fn draw<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> u32 {
        self.states[self.topology.sample_neighbor_core(self.node, rng)]
    }
}

/// Counts draws on the way through to an inner source.  Used only on the
/// recorder-enabled path, so the disabled engine keeps the bare source.
struct CountingSource<S> {
    inner: S,
    drawn: u64,
}

impl<S: SampleSource> SampleSource for CountingSource<S> {
    #[inline]
    fn draw<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> u32 {
        self.drawn += 1;
        self.inner.draw(rng)
    }
}

impl<'t> AgentEngine<'t> {
    /// Default chunk granularity (nodes per RNG stream).
    pub const DEFAULT_CHUNK: usize = 4096;

    /// Single-threaded engine on a topology.
    #[must_use]
    pub fn new(topology: &'t dyn Topology) -> Self {
        Self {
            topology,
            threads: 1,
            chunk_size: Self::DEFAULT_CHUNK,
        }
    }

    /// Use up to `threads` worker threads per round.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Override the chunk granularity (testing/benchmarking only; changes
    /// the random stream layout and therefore exact trajectories).
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunk_size = chunk_size;
        self
    }

    /// Run one trial.  `seed` fully determines the trajectory.
    ///
    /// Dispatches to a round loop monomorphized over the concrete
    /// topology and dynamics (see the module docs); unknown types run
    /// through dyn fallback wrappers with identical results.
    ///
    /// # Panics
    /// Panics if the configuration population differs from the topology
    /// size.
    pub fn run(
        &self,
        dynamics: &dyn Dynamics,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
    ) -> TrialResult {
        self.run_recorded(dynamics, initial, placement, opts, seed, &mut NoopRecorder)
    }

    /// [`AgentEngine::run`] with a telemetry [`Recorder`].
    ///
    /// Records [`Counter::Rounds`], [`Counter::SamplesDrawn`],
    /// [`Hist::RoundWallNanos`], [`Hist::LeaderOccupancy`], the
    /// completed-ticks gauge, and setup/run/finalize phase timers.
    /// Recording consumes no randomness and never branches the
    /// simulation: the trajectory is identical for every recorder, and
    /// the [`NoopRecorder`] instantiation is the uninstrumented engine.
    ///
    /// # Panics
    /// Panics if the configuration population differs from the topology
    /// size.
    pub fn run_recorded<Rec: Recorder>(
        &self,
        dynamics: &dyn Dynamics,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
        rec: &mut Rec,
    ) -> TrialResult {
        if let Some(t) = downcast_topology::<Clique>(self.topology) {
            self.run_with_topology(t, dynamics, initial, placement, opts, seed, rec)
        } else if let Some(t) = downcast_topology::<CsrGraph>(self.topology) {
            self.run_with_topology(t, dynamics, initial, placement, opts, seed, rec)
        } else {
            self.run_with_topology(
                &DynTopology(self.topology),
                dynamics,
                initial,
                placement,
                opts,
                seed,
                rec,
            )
        }
    }

    /// Second dispatch level: resolve the dynamics to a concrete type.
    #[allow(clippy::too_many_arguments)]
    fn run_with_topology<T: TopologyCore, Rec: Recorder>(
        &self,
        topology: &T,
        dynamics: &dyn Dynamics,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
        rec: &mut Rec,
    ) -> TrialResult {
        if let Some(d) = downcast_dynamics::<ThreeMajority>(dynamics) {
            self.run_core(topology, d, initial, placement, opts, seed, rec)
        } else if let Some(d) = downcast_dynamics::<HPlurality>(dynamics) {
            self.run_core(topology, d, initial, placement, opts, seed, rec)
        } else if let Some(d) = downcast_dynamics::<UndecidedState>(dynamics) {
            self.run_core(topology, d, initial, placement, opts, seed, rec)
        } else if let Some(d) = downcast_dynamics::<Voter>(dynamics) {
            self.run_core(topology, d, initial, placement, opts, seed, rec)
        } else {
            self.run_core(
                topology,
                &DynDynamics(dynamics),
                initial,
                placement,
                opts,
                seed,
                rec,
            )
        }
    }

    /// The monomorphized trial loop.
    #[allow(clippy::too_many_arguments)]
    fn run_core<T: TopologyCore, D: DynamicsCore, Rec: Recorder>(
        &self,
        topology: &T,
        dynamics: &D,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
        rec: &mut Rec,
    ) -> TrialResult {
        rec.phase_start(Phase::Setup);
        let n = topology.n();
        assert_eq!(
            initial.n() as usize,
            n,
            "configuration population must match topology size"
        );
        let initial_plurality = unique_initial_plurality(initial);
        let k_colors = initial.k();
        let lifted = dynamics.lift(initial);
        let state_count = lifted.k();

        let mut states = layout_initial_states(&lifted, placement, seed);
        let mut next_states = vec![0u32; n];
        let mut counts: Vec<u64> = lifted.counts().to_vec();

        let mut trace = match opts.trace {
            TraceLevel::Off => None,
            _ => Some(Trace::new()),
        };
        let full = opts.trace == TraceLevel::Full;
        if let Some(t) = trace.as_mut() {
            t.record(0, &counts, k_colors, full);
        }
        rec.phase_end(Phase::Setup);

        if let Some(winner) = evaluate_stop(opts.stop, dynamics, &counts, initial_plurality) {
            record_stop(rec, 0);
            let out = TrialResult {
                rounds: 0,
                reason: StopReason::Stopped,
                winner: Some(winner),
                initial_plurality,
                success: winner == initial_plurality,
                trace,
            };
            rec.phase_end(Phase::Finalize);
            return out;
        }

        let num_chunks = n.div_ceil(self.chunk_size);
        let mut rounds = 0u64;
        rec.phase_start(Phase::Run);
        loop {
            let round_t0 = if Rec::ENABLED {
                Some(Instant::now())
            } else {
                None
            };
            let drawn = self.step::<T, D, Rec>(
                topology,
                dynamics,
                &states,
                &mut next_states,
                &mut counts,
                state_count,
                rounds,
                num_chunks,
                seed,
            );
            std::mem::swap(&mut states, &mut next_states);
            rounds += 1;
            if Rec::ENABLED {
                if let Some(t0) = round_t0 {
                    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    rec.observe(Hist::RoundWallNanos, ns);
                }
                rec.incr(Counter::Rounds);
                rec.add(Counter::SamplesDrawn, drawn);
                let leader = counts[..k_colors].iter().copied().max().unwrap_or(0);
                rec.observe(Hist::LeaderOccupancy, leader);
            }
            if let Some(t) = trace.as_mut() {
                t.record(rounds, &counts, k_colors, full);
            }
            if let Some(winner) = evaluate_stop(opts.stop, dynamics, &counts, initial_plurality) {
                rec.phase_end(Phase::Run);
                record_stop(rec, rounds);
                let out = TrialResult {
                    rounds,
                    reason: StopReason::Stopped,
                    winner: Some(winner),
                    initial_plurality,
                    success: winner == initial_plurality,
                    trace,
                };
                rec.phase_end(Phase::Finalize);
                return out;
            }
            if rounds >= opts.max_rounds {
                rec.phase_end(Phase::Run);
                record_stop(rec, rounds);
                let out = TrialResult {
                    rounds,
                    reason: StopReason::MaxRounds,
                    winner: None,
                    initial_plurality,
                    success: false,
                    trace,
                };
                rec.phase_end(Phase::Finalize);
                return out;
            }
        }
    }

    /// One synchronous round: read `states`, write `next`, refresh
    /// `counts`.  Returns the number of neighbor samples drawn (always 0
    /// when `Rec` is disabled — counting rides the recorder-enabled
    /// instantiation only, so the disabled hot loop stays untouched).
    #[allow(clippy::too_many_arguments)]
    fn step<T: TopologyCore, D: DynamicsCore, Rec: Recorder>(
        &self,
        topology: &T,
        dynamics: &D,
        states: &[u32],
        next: &mut [u32],
        counts: &mut [u64],
        state_count: usize,
        round: u64,
        num_chunks: usize,
        seed: u64,
    ) -> u64 {
        let chunk = self.chunk_size;
        let stream_base = 1 + round * num_chunks as u64;

        let process_span = |span_start_chunk: usize,
                            span: &mut [u32],
                            local_counts: &mut [u64]|
         -> u64 {
            let mut scratch = NodeScratch::with_states(state_count);
            let mut local_drawn = 0u64;
            for (ci, chunk_slice) in span.chunks_mut(chunk).enumerate() {
                let chunk_index = span_start_chunk + ci;
                let mut rng = stream_rng(seed, stream_base + chunk_index as u64);
                let base_node = chunk_index * chunk;
                for (offset, out) in chunk_slice.iter_mut().enumerate() {
                    let node = base_node + offset;
                    let source = NeighborSource {
                        topology,
                        states,
                        node,
                    };
                    // `Rec::ENABLED` is a monomorphization-time constant:
                    // the disabled arm compiles to the bare source chain.
                    let new = if Rec::ENABLED {
                        let mut counting = CountingSource {
                            inner: source,
                            drawn: 0,
                        };
                        let new = dynamics.node_update_core(
                            states[node],
                            &mut counting,
                            &mut scratch,
                            &mut rng,
                        );
                        local_drawn += counting.drawn;
                        new
                    } else {
                        let mut source = source;
                        dynamics.node_update_core(states[node], &mut source, &mut scratch, &mut rng)
                    };
                    *out = new;
                    local_counts[new as usize] += 1;
                }
            }
            local_drawn
        };

        counts.fill(0);
        if self.threads <= 1 || num_chunks <= 1 {
            return process_span(0, next, counts);
        }

        // Static contiguous partition: worker w gets a span of whole
        // chunks; chunk→stream mapping is thread-count independent.
        let workers = self.threads.min(num_chunks);
        let chunks_per = num_chunks.div_ceil(workers);
        let mut spans: Vec<(usize, &mut [u32])> = Vec::with_capacity(workers);
        let mut rest = next;
        let mut chunk_cursor = 0usize;
        while !rest.is_empty() {
            let take = (chunks_per * chunk).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            spans.push((chunk_cursor, head));
            chunk_cursor += chunks_per;
            rest = tail;
        }

        let process_span = &process_span;
        let all_counts = std::thread::scope(|scope| {
            let handles: Vec<_> = spans
                .into_iter()
                .map(|(start_chunk, span)| {
                    scope.spawn(move || {
                        let mut local = vec![0u64; state_count];
                        let drawn = process_span(start_chunk, span, &mut local);
                        (local, drawn)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        });

        let mut drawn = 0u64;
        for (local, local_drawn) in all_counts {
            for (slot, x) in counts.iter_mut().zip(local) {
                *slot += x;
            }
            drawn += local_drawn;
        }
        drawn
    }
}

/// Close the books at stop: completed-round gauges, then open the
/// finalize phase (the caller closes it once the result is assembled).
fn record_stop<Rec: Recorder>(rec: &mut Rec, rounds: u64) {
    if Rec::ENABLED {
        rec.gauge_set(Gauge::CompletedTicks, rounds);
        rec.gauge_set(Gauge::FinalTimeFp, ticks_to_fp(rounds as f64));
    }
    rec.phase_start(Phase::Finalize);
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_core::{builders, ThreeMajority, UndecidedState, Voter};
    use plurality_topology::{ring, torus, Clique};

    #[test]
    fn converges_on_clique_with_bias() {
        let clique = Clique::new(2_000);
        let engine = AgentEngine::new(&clique);
        let cfg = builders::biased(2_000, 4, 800);
        let d = ThreeMajority::new();
        let mut wins = 0;
        for trial in 0..5 {
            let r = engine.run(
                &d,
                &cfg,
                Placement::Shuffled,
                &RunOptions::with_max_rounds(5_000),
                1000 + trial,
            );
            assert_eq!(r.reason, StopReason::Stopped);
            if r.success {
                wins += 1;
            }
        }
        assert!(wins >= 4, "won only {wins}/5");
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let clique = Clique::new(3_000);
        let cfg = builders::biased(3_000, 3, 600);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(2_000).traced();
        let r1 = AgentEngine::new(&clique).run(&d, &cfg, Placement::Shuffled, &opts, 7);
        let r4 =
            AgentEngine::new(&clique)
                .with_threads(4)
                .run(&d, &cfg, Placement::Shuffled, &opts, 7);
        assert_eq!(r1.rounds, r4.rounds);
        assert_eq!(r1.winner, r4.winner);
        let t1 = r1.trace.unwrap();
        let t4 = r4.trace.unwrap();
        for (a, b) in t1.rounds.iter().zip(&t4.rounds) {
            assert_eq!(a, b, "trajectories must be identical");
        }
    }

    #[test]
    fn deterministic_same_seed_same_result() {
        let clique = Clique::new(1_000);
        let cfg = builders::biased(1_000, 3, 300);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(2_000);
        let a = AgentEngine::new(&clique).run(&d, &cfg, Placement::Shuffled, &opts, 9);
        let b = AgentEngine::new(&clique).run(&d, &cfg, Placement::Shuffled, &opts, 9);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.winner, b.winner);
    }

    #[test]
    fn works_on_torus() {
        let g = torus(20, 20);
        let engine = AgentEngine::new(&g);
        let cfg = builders::biased(400, 2, 200);
        let d = ThreeMajority::new();
        let r = engine.run(
            &d,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(20_000),
            11,
        );
        assert_eq!(r.reason, StopReason::Stopped, "torus run did not settle");
        assert!(r.success, "heavily biased start should win on the torus");
    }

    #[test]
    fn voter_on_odd_ring_eventually_absorbs() {
        // Odd ring on purpose: on an *even* cycle the synchronous voter
        // can reach the perfectly alternating configuration, where both
        // neighbors of every node hold the opposite color and the whole
        // ring flips deterministically forever (a genuine oscillation
        // trap of the synchronous model; observed at ring(60), seed 13).
        // No alternating trap exists when n is odd.
        let g = ring(61);
        let engine = AgentEngine::new(&g);
        let cfg = builders::biased(61, 2, 21);
        let r = engine.run(
            &Voter,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(200_000),
            13,
        );
        assert_eq!(
            r.reason,
            StopReason::Stopped,
            "voter on odd ring must absorb"
        );
    }

    #[test]
    fn undecided_state_on_clique_agents() {
        let clique = Clique::new(2_000);
        let engine = AgentEngine::new(&clique);
        let cfg = builders::biased(2_000, 3, 700);
        let d = UndecidedState::new(3);
        let r = engine.run(
            &d,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(50_000),
            17,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert!(r.success);
    }

    #[test]
    fn blocks_placement_supported() {
        let clique = Clique::new(500);
        let engine = AgentEngine::new(&clique);
        let cfg = builders::biased(500, 2, 200);
        let d = ThreeMajority::new();
        let r = engine.run(
            &d,
            &cfg,
            Placement::Blocks,
            &RunOptions::with_max_rounds(5_000),
            19,
        );
        // On the clique placement is irrelevant; it must still converge.
        assert_eq!(r.reason, StopReason::Stopped);
    }

    #[test]
    #[should_panic(expected = "match topology size")]
    fn size_mismatch_rejected() {
        let clique = Clique::new(10);
        let engine = AgentEngine::new(&clique);
        let cfg = builders::biased(11, 2, 3);
        let _ = engine.run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::default(),
            1,
        );
    }

    #[test]
    fn recording_does_not_perturb_the_trajectory() {
        use plurality_telemetry::MetricsRecorder;
        let clique = Clique::new(1_500);
        let cfg = builders::biased(1_500, 3, 450);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(2_000).traced();
        let engine = AgentEngine::new(&clique);
        let plain = engine.run(&d, &cfg, Placement::Shuffled, &opts, 31);
        let mut rec = MetricsRecorder::new();
        let recorded = engine.run_recorded(&d, &cfg, Placement::Shuffled, &opts, 31, &mut rec);
        assert_eq!(plain.rounds, recorded.rounds);
        assert_eq!(plain.winner, recorded.winner);
        assert_eq!(
            plain.trace.unwrap().rounds,
            recorded.trace.unwrap().rounds,
            "recording must not perturb the trajectory"
        );
    }

    #[test]
    fn counters_reconcile_with_known_sample_budgets() {
        use plurality_telemetry::{Counter, Gauge, Hist, MetricsRecorder, Phase};
        let clique = Clique::new(600);
        let cfg = builders::biased(600, 3, 220);
        let opts = RunOptions::with_max_rounds(40);
        // Three-majority draws exactly 3 samples per node per round;
        // voter exactly 1 — samples_drawn is an identity, not an estimate.
        let mut rec = MetricsRecorder::new();
        let r = AgentEngine::new(&clique).run_recorded(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &opts,
            37,
            &mut rec,
        );
        assert_eq!(rec.counter(Counter::Rounds), r.rounds);
        assert_eq!(rec.counter(Counter::SamplesDrawn), 3 * 600 * r.rounds);
        assert_eq!(rec.gauge(Gauge::CompletedTicks), r.rounds);
        assert_eq!(rec.hist(Hist::RoundWallNanos).count(), r.rounds);
        assert_eq!(rec.hist(Hist::LeaderOccupancy).count(), r.rounds);
        assert!(rec.hist(Hist::LeaderOccupancy).max() <= 600);
        assert!(rec.phase_nanos(Phase::Run) > 0, "run phase must be timed");

        let mut vrec = MetricsRecorder::new();
        let vr = AgentEngine::new(&clique).run_recorded(
            &Voter,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(25),
            41,
            &mut vrec,
        );
        assert_eq!(vrec.counter(Counter::SamplesDrawn), 600 * vr.rounds);
    }

    #[test]
    fn counters_identical_across_thread_counts() {
        use plurality_telemetry::{Counter, MetricsRecorder};
        let clique = Clique::new(9_000);
        let cfg = builders::biased(9_000, 4, 2_600);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(400);
        let mut r1 = MetricsRecorder::new();
        let mut r4 = MetricsRecorder::new();
        AgentEngine::new(&clique)
            .with_chunk_size(1024)
            .run_recorded(&d, &cfg, Placement::Shuffled, &opts, 43, &mut r1);
        AgentEngine::new(&clique)
            .with_chunk_size(1024)
            .with_threads(4)
            .run_recorded(&d, &cfg, Placement::Shuffled, &opts, 43, &mut r4);
        for c in [Counter::Rounds, Counter::SamplesDrawn] {
            assert_eq!(r1.counter(c), r4.counter(c), "{}", c.name());
        }
    }

    #[test]
    fn trace_counts_match_population() {
        let clique = Clique::new(800);
        let engine = AgentEngine::new(&clique);
        let cfg = builders::biased(800, 3, 300);
        let d = ThreeMajority::new();
        let r = engine.run(
            &d,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(3_000).traced(),
            23,
        );
        let trace = r.trace.unwrap();
        for stats in &trace.rounds {
            assert_eq!(
                stats.plurality_count + stats.minority_mass + stats.extra_state_mass,
                800,
                "round {}",
                stats.round
            );
        }
    }
}
