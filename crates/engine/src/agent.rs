//! The agent-based engine: explicit per-node simulation on arbitrary
//! topologies.
//!
//! Where the mean-field engine exploits the clique's exchangeability, this
//! engine keeps one state per node and executes every sample the dynamics
//! draws — `O(n·h)` per round — which is what makes non-clique topologies
//! (and cross-validation of the mean-field engine) possible.
//!
//! # Determinism under parallelism
//!
//! Rounds are parallelized over *fixed-size node chunks*; chunk `c` of
//! round `r` always draws from the PRNG stream `1 + r·C + c` of the trial
//! seed (`C` = number of chunks), regardless of how chunks are assigned
//! to threads.  A run is therefore bit-for-bit identical for any
//! `threads` setting — the property the determinism tests pin down.  The
//! full draw-order contract, including the batched-draw and state-width
//! invariances below, is written down in `docs/DETERMINISM.md`.
//!
//! # Worker pool
//!
//! With `threads > 1` the round loop runs on a persistent pool: workers
//! are spawned once per trial and synchronize on a [`Barrier`] twice per
//! round (once after writing their span of the next-state array, once
//! after the coordinator has merged counts and evaluated the stop rule).
//! Node states live in two shared buffers of relaxed atomics — each node
//! is written by exactly one worker and reads only the previous round's
//! buffer, so the barrier provides all the ordering the round needs.
//!
//! # Narrow state words
//!
//! The per-node state arrays store `u8`/`u16`/`u32` words, picked by the
//! dynamics' state count (`k ≤ 256` → `u8`, `k ≤ 65 536` → `u16`).  All
//! randomness is consumed sampling *node indices*, never states, so the
//! trajectory is independent of the word width; a pin test forces each
//! width over the same seed and compares traces.
//!
//! # Batched neighbor draws
//!
//! Rules that declare [`Dynamics::fixed_draws`]`= Some(s)` (exactly `s`
//! sampler draws, no other randomness) run a two-pass chunk loop: first a
//! tight gather of `s` neighbor states per node for a batch of nodes in
//! node order, then the branchy rule evaluation over the prefilled
//! buffer.  The PRNG sequence is identical to the one-pass path — the
//! draws happen in the same order — so golden fingerprints pin both.
//!
//! # Devirtualization
//!
//! The public constructors still take `&dyn Topology` / `&dyn Dynamics`
//! so the CLI, experiments, and adversary hooks compose unchanged, but
//! [`AgentEngine::run`] resolves both to concrete types up front
//! (`downcast_topology` / `downcast_dynamics`) and runs a round loop
//! monomorphized over `(Topology, Dynamics, Xoshiro256PlusPlus)` — the
//! three layers of per-sample virtual dispatch inline away.  Types
//! outside the dispatch tables fall back to [`DynTopology`] /
//! [`DynDynamics`] wrappers, which cost exactly what the pre-refactor
//! engine cost.  Both paths consume the PRNG identically; golden-trace
//! tests (`tests/agent_golden.rs`) pin them bit-for-bit.
//!
//! # Telemetry
//!
//! [`AgentEngine::run_recorded`] threads a
//! [`plurality_telemetry::Recorder`] through the round loop: samples
//! drawn, per-round wall-clock, leading-color occupancy, and phase
//! timers.  Recording consumes no randomness and never branches the
//! simulation, so the trajectory is independent of the recorder; the
//! disabled ([`NoopRecorder`]) instantiation — what [`AgentEngine::run`]
//! uses — compiles the instrumentation away.

use crate::run::{
    evaluate_stop, unique_initial_plurality, RunOptions, StopReason, TraceLevel, TrialResult,
};
use crate::trace::Trace;
use plurality_core::{
    downcast_dynamics, Configuration, DynDynamics, Dynamics, DynamicsCore, HPlurality, NodeScratch,
    SampleSource, ThreeMajority, UndecidedState, Voter,
};
use plurality_sampling::stream_rng;
use plurality_telemetry::{ticks_to_fp, Counter, Gauge, Hist, NoopRecorder, Phase, Recorder};
use plurality_topology::{
    downcast_topology, ChungLu, Clique, CsrGraph, DynTopology, ImplicitRing, Topology, TopologyCore,
};
use rand::{Rng, RngCore};
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU32, AtomicU8, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// How initial colors are laid onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Random assignment (uniform over placements with the given counts).
    /// The right default: on non-clique topologies adversarial placements
    /// change the process.
    #[default]
    Shuffled,
    /// Contiguous blocks of equal color (worst-case-ish for sparse
    /// topologies; useful for placement-sensitivity experiments).
    Blocks,
}

/// Storage width of the per-node state array.
///
/// [`StateWidth::Auto`] (the default) picks the narrowest word the
/// dynamics' state count fits; the explicit widths exist for the
/// width-equivalence pin tests and benchmarks.  The trajectory is
/// independent of the width — randomness samples node indices, never
/// state words — so forcing a wider word changes memory traffic only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StateWidth {
    /// Narrowest word that fits the state count (`u8`, `u16`, or `u32`).
    #[default]
    Auto,
    /// Force `u8` words (panics at run time if the state count exceeds 256).
    U8,
    /// Force `u16` words (panics at run time if the state count exceeds 65 536).
    U16,
    /// Force `u32` words (always fits).
    U32,
}

/// Lay a (lifted) state configuration onto nodes: contiguous blocks per
/// state, Fisher–Yates-shuffled on PRNG stream 0 of the trial seed when
/// `placement` is [`Placement::Shuffled`].
///
/// This is the one layout convention shared by every per-node engine
/// (the agent engine here and the asynchronous gossip engine), so that
/// their trials start from identically distributed placements.
#[must_use]
pub fn layout_initial_states(lifted: &Configuration, placement: Placement, seed: u64) -> Vec<u32> {
    let mut states: Vec<u32> = Vec::with_capacity(lifted.n() as usize);
    for (state, &count) in lifted.counts().iter().enumerate() {
        states.extend(std::iter::repeat_n(state as u32, count as usize));
    }
    if placement == Placement::Shuffled {
        let mut rng = stream_rng(seed, 0);
        for i in (1..states.len()).rev() {
            let j = rng.gen_range(0..=i);
            states.swap(i, j);
        }
    }
    states
}

/// Per-node simulator over a [`Topology`].
pub struct AgentEngine<'t> {
    topology: &'t dyn Topology,
    threads: usize,
    chunk_size: usize,
    width: StateWidth,
}

/// Nodes per prefill batch on the batched-draw path; bounds the gather
/// buffer at `BATCH_NODES · s` words so it stays cache-resident.
const BATCH_NODES: usize = 1024;

/// A state word narrow enough for the dynamics' state count, with the
/// atomic twin the shared (parallel) buffers use.  All loads/stores are
/// `Relaxed`: each node is written by exactly one worker per round and
/// the per-round [`Barrier`] orders rounds against each other.
trait StateWord: Copy + Send + Sync + 'static {
    /// The matching atomic cell type.
    type Atomic: Send + Sync;
    /// Largest representable state count.
    const CAPACITY: usize;
    fn from_u32(v: u32) -> Self;
    fn to_u32(self) -> u32;
    fn atomic_from(v: u32) -> Self::Atomic;
    fn atomic_load(a: &Self::Atomic) -> u32;
    fn atomic_store(a: &Self::Atomic, v: u32);
}

macro_rules! impl_state_word {
    ($word:ty, $atomic:ty) => {
        impl StateWord for $word {
            type Atomic = $atomic;
            const CAPACITY: usize = (<$word>::MAX as usize) + 1;

            #[inline(always)]
            fn from_u32(v: u32) -> Self {
                v as $word
            }

            #[inline(always)]
            fn to_u32(self) -> u32 {
                self as u32
            }

            #[inline(always)]
            fn atomic_from(v: u32) -> Self::Atomic {
                <$atomic>::new(v as $word)
            }

            #[inline(always)]
            fn atomic_load(a: &Self::Atomic) -> u32 {
                a.load(Ordering::Relaxed) as u32
            }

            #[inline(always)]
            fn atomic_store(a: &Self::Atomic, v: u32) {
                a.store(v as $word, Ordering::Relaxed);
            }
        }
    };
}

impl_state_word!(u8, AtomicU8);
impl_state_word!(u16, AtomicU16);
impl_state_word!(u32, AtomicU32);

/// Read access to the current round's state array, abstracting over the
/// plain (sequential) and atomic (shared) buffers so the chunk processor
/// is written once.
trait ReadStates: Sync {
    fn read(&self, i: usize) -> u32;
}

struct PlainStates<'a, W>(&'a [W]);

impl<W: StateWord> ReadStates for PlainStates<'_, W> {
    #[inline(always)]
    fn read(&self, i: usize) -> u32 {
        self.0[i].to_u32()
    }
}

struct SharedStates<'a, W: StateWord>(&'a [W::Atomic]);

impl<W: StateWord> ReadStates for SharedStates<'_, W> {
    #[inline(always)]
    fn read(&self, i: usize) -> u32 {
        W::atomic_load(&self.0[i])
    }
}

/// Draws the state of a random neighbor of one node; monomorphic over
/// the topology and state buffer so the whole sampling chain inlines.
struct NeighborSource<'a, T, S: ?Sized> {
    topology: &'a T,
    states: &'a S,
    node: usize,
}

impl<T: TopologyCore, S: ReadStates + ?Sized> SampleSource for NeighborSource<'_, T, S> {
    #[inline]
    fn draw<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> u32 {
        self.states
            .read(self.topology.sample_neighbor_core(self.node, rng))
    }
}

/// Replays prefilled neighbor states on the batched-draw path.  Consumes
/// no randomness: the prefill pass already drew every sample, in node
/// order, from the chunk's stream.
struct SliceSource<'a> {
    buf: &'a [u32],
    pos: usize,
}

impl SampleSource for SliceSource<'_> {
    #[inline(always)]
    fn draw<R: RngCore + ?Sized>(&mut self, _rng: &mut R) -> u32 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }
}

/// Counts draws on the way through to an inner source.  Used only on the
/// recorder-enabled path, so the disabled engine keeps the bare source.
struct CountingSource<S> {
    inner: S,
    drawn: u64,
}

impl<S: SampleSource> SampleSource for CountingSource<S> {
    #[inline]
    fn draw<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> u32 {
        self.drawn += 1;
        self.inner.draw(rng)
    }
}

/// Per-worker reusable buffers: the dynamics scratch plus the
/// batched-draw gather buffer.
struct WorkerScratch {
    scratch: NodeScratch,
    batch: Vec<u32>,
}

impl WorkerScratch {
    fn new(state_count: usize, fixed: Option<usize>) -> Self {
        Self {
            scratch: NodeScratch::with_states(state_count),
            batch: Vec::with_capacity(fixed.map_or(0, |s| BATCH_NODES * s)),
        }
    }
}

/// Process a contiguous span of chunks `[first_chunk, last_chunk)` for
/// one round: read states through `src`, write each node's next state
/// through `write`, tally into `counts`.  Returns the number of neighbor
/// samples drawn (always 0 when `Rec` is disabled — counting rides the
/// recorder-enabled instantiation only, so the disabled hot loop stays
/// untouched).
///
/// Chunk `c` always draws from stream `stream_base + c` of the trial
/// seed, and, when `fixed = Some(s)`, the prefill pass draws the same
/// samples in the same node order as the one-pass path — both halves of
/// the determinism contract (see the module docs).
#[allow(clippy::too_many_arguments)]
fn process_span<T, D, S, Rec, Out>(
    topology: &T,
    dynamics: &D,
    src: &S,
    n: usize,
    first_chunk: usize,
    last_chunk: usize,
    chunk: usize,
    stream_base: u64,
    seed: u64,
    fixed: Option<usize>,
    ws: &mut WorkerScratch,
    counts: &mut [u64],
    write: &mut Out,
) -> u64
where
    T: TopologyCore,
    D: DynamicsCore,
    S: ReadStates,
    Rec: Recorder,
    Out: FnMut(usize, u32),
{
    let mut drawn = 0u64;
    for chunk_index in first_chunk..last_chunk {
        let start = chunk_index * chunk;
        if start >= n {
            break;
        }
        let end = ((chunk_index + 1) * chunk).min(n);
        let mut rng = stream_rng(seed, stream_base + chunk_index as u64);
        if let Some(s) = fixed {
            // Two-pass batched path: gather, then evaluate.
            let mut node = start;
            while node < end {
                let batch_end = (node + BATCH_NODES).min(end);
                ws.batch.clear();
                for node_i in node..batch_end {
                    for _ in 0..s {
                        let idx = topology.sample_neighbor_core(node_i, &mut rng);
                        ws.batch.push(src.read(idx));
                    }
                }
                let mut pos = 0usize;
                for node_i in node..batch_end {
                    let own = src.read(node_i);
                    let slice = SliceSource {
                        buf: &ws.batch,
                        pos,
                    };
                    // `Rec::ENABLED` is a monomorphization-time constant:
                    // the disabled arm compiles to the bare source chain.
                    let new = if Rec::ENABLED {
                        let mut counting = CountingSource {
                            inner: slice,
                            drawn: 0,
                        };
                        let new = dynamics.node_update_core(
                            own,
                            &mut counting,
                            &mut ws.scratch,
                            &mut rng,
                        );
                        drawn += counting.drawn;
                        pos = counting.inner.pos;
                        new
                    } else {
                        let mut slice = slice;
                        let new =
                            dynamics.node_update_core(own, &mut slice, &mut ws.scratch, &mut rng);
                        pos = slice.pos;
                        new
                    };
                    debug_assert_eq!(
                        pos,
                        (node_i - node + 1) * s,
                        "fixed_draws promised exactly {s} draws per node"
                    );
                    write(node_i, new);
                    counts[new as usize] += 1;
                }
                node = batch_end;
            }
        } else {
            for node_i in start..end {
                let own = src.read(node_i);
                let source = NeighborSource {
                    topology,
                    states: src,
                    node: node_i,
                };
                let new = if Rec::ENABLED {
                    let mut counting = CountingSource {
                        inner: source,
                        drawn: 0,
                    };
                    let new =
                        dynamics.node_update_core(own, &mut counting, &mut ws.scratch, &mut rng);
                    drawn += counting.drawn;
                    new
                } else {
                    let mut source = source;
                    dynamics.node_update_core(own, &mut source, &mut ws.scratch, &mut rng)
                };
                write(node_i, new);
                counts[new as usize] += 1;
            }
        }
    }
    drawn
}

/// Per-round bookkeeping shared by the sequential and pooled drivers:
/// recorder updates, trace recording, stop evaluation.  Returns
/// `Some(result)` when the trial ends this round.
#[allow(clippy::too_many_arguments)]
fn after_round<D: DynamicsCore, Rec: Recorder>(
    dynamics: &D,
    opts: &RunOptions,
    rec: &mut Rec,
    trace: &mut Option<Trace>,
    full: bool,
    k_colors: usize,
    initial_plurality: usize,
    counts: &[u64],
    drawn: u64,
    rounds: u64,
    round_t0: Option<Instant>,
) -> Option<TrialResult> {
    if Rec::ENABLED {
        if let Some(t0) = round_t0 {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            rec.observe(Hist::RoundWallNanos, ns);
        }
        rec.incr(Counter::Rounds);
        rec.add(Counter::SamplesDrawn, drawn);
        let leader = counts[..k_colors].iter().copied().max().unwrap_or(0);
        rec.observe(Hist::LeaderOccupancy, leader);
    }
    if let Some(t) = trace.as_mut() {
        t.record(rounds, counts, k_colors, full);
    }
    if let Some(winner) = evaluate_stop(opts.stop, dynamics, counts, initial_plurality) {
        rec.phase_end(Phase::Run);
        record_stop(rec, rounds);
        let out = TrialResult {
            rounds,
            reason: StopReason::Stopped,
            winner: Some(winner),
            initial_plurality,
            success: winner == initial_plurality,
            trace: trace.take(),
        };
        rec.phase_end(Phase::Finalize);
        return Some(out);
    }
    if rounds >= opts.max_rounds {
        rec.phase_end(Phase::Run);
        record_stop(rec, rounds);
        let out = TrialResult {
            rounds,
            reason: StopReason::MaxRounds,
            winner: None,
            initial_plurality,
            success: false,
            trace: trace.take(),
        };
        rec.phase_end(Phase::Finalize);
        return Some(out);
    }
    None
}

impl<'t> AgentEngine<'t> {
    /// Default chunk granularity (nodes per RNG stream).
    pub const DEFAULT_CHUNK: usize = 4096;

    /// Single-threaded engine on a topology.
    #[must_use]
    pub fn new(topology: &'t dyn Topology) -> Self {
        Self {
            topology,
            threads: 1,
            chunk_size: Self::DEFAULT_CHUNK,
            width: StateWidth::Auto,
        }
    }

    /// Use up to `threads` worker threads per round.
    ///
    /// The trajectory is bit-identical for every value — see the module
    /// docs and `docs/DETERMINISM.md`.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Override the chunk granularity (testing/benchmarking only; changes
    /// the random stream layout and therefore exact trajectories).
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunk_size = chunk_size;
        self
    }

    /// Override the state-array word width (testing/benchmarking only;
    /// the trajectory is width-independent, unlike
    /// [`AgentEngine::with_chunk_size`] which *does* move trajectories).
    ///
    /// # Panics
    /// The subsequent run panics if the dynamics' state count does not
    /// fit the forced width.
    #[must_use]
    pub fn with_state_width(mut self, width: StateWidth) -> Self {
        self.width = width;
        self
    }

    /// Run one trial.  `seed` fully determines the trajectory.
    ///
    /// Dispatches to a round loop monomorphized over the concrete
    /// topology and dynamics (see the module docs); unknown types run
    /// through dyn fallback wrappers with identical results.
    ///
    /// # Panics
    /// Panics if the configuration population differs from the topology
    /// size.
    pub fn run(
        &self,
        dynamics: &dyn Dynamics,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
    ) -> TrialResult {
        self.run_recorded(dynamics, initial, placement, opts, seed, &mut NoopRecorder)
    }

    /// [`AgentEngine::run`] with a telemetry [`Recorder`].
    ///
    /// Records [`Counter::Rounds`], [`Counter::SamplesDrawn`],
    /// [`Hist::RoundWallNanos`], [`Hist::LeaderOccupancy`], the
    /// completed-ticks gauge, and setup/run/finalize phase timers.
    /// Recording consumes no randomness and never branches the
    /// simulation: the trajectory is identical for every recorder, and
    /// the [`NoopRecorder`] instantiation is the uninstrumented engine.
    ///
    /// # Panics
    /// Panics if the configuration population differs from the topology
    /// size.
    pub fn run_recorded<Rec: Recorder>(
        &self,
        dynamics: &dyn Dynamics,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
        rec: &mut Rec,
    ) -> TrialResult {
        if let Some(t) = downcast_topology::<Clique>(self.topology) {
            self.run_with_topology(t, dynamics, initial, placement, opts, seed, rec)
        } else if let Some(t) = downcast_topology::<CsrGraph>(self.topology) {
            self.run_with_topology(t, dynamics, initial, placement, opts, seed, rec)
        } else if let Some(t) = downcast_topology::<ImplicitRing>(self.topology) {
            self.run_with_topology(t, dynamics, initial, placement, opts, seed, rec)
        } else if let Some(t) = downcast_topology::<ChungLu>(self.topology) {
            self.run_with_topology(t, dynamics, initial, placement, opts, seed, rec)
        } else {
            self.run_with_topology(
                &DynTopology(self.topology),
                dynamics,
                initial,
                placement,
                opts,
                seed,
                rec,
            )
        }
    }

    /// Second dispatch level: resolve the dynamics to a concrete type.
    #[allow(clippy::too_many_arguments)]
    fn run_with_topology<T: TopologyCore, Rec: Recorder>(
        &self,
        topology: &T,
        dynamics: &dyn Dynamics,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
        rec: &mut Rec,
    ) -> TrialResult {
        if let Some(d) = downcast_dynamics::<ThreeMajority>(dynamics) {
            self.run_core(topology, d, initial, placement, opts, seed, rec)
        } else if let Some(d) = downcast_dynamics::<HPlurality>(dynamics) {
            self.run_core(topology, d, initial, placement, opts, seed, rec)
        } else if let Some(d) = downcast_dynamics::<UndecidedState>(dynamics) {
            self.run_core(topology, d, initial, placement, opts, seed, rec)
        } else if let Some(d) = downcast_dynamics::<Voter>(dynamics) {
            self.run_core(topology, d, initial, placement, opts, seed, rec)
        } else {
            self.run_core(
                topology,
                &DynDynamics(dynamics),
                initial,
                placement,
                opts,
                seed,
                rec,
            )
        }
    }

    /// Third dispatch level: trial setup, then pick the state-word width
    /// and enter the monomorphized round loop.
    #[allow(clippy::too_many_arguments)]
    fn run_core<T: TopologyCore, D: DynamicsCore, Rec: Recorder>(
        &self,
        topology: &T,
        dynamics: &D,
        initial: &Configuration,
        placement: Placement,
        opts: &RunOptions,
        seed: u64,
        rec: &mut Rec,
    ) -> TrialResult {
        rec.phase_start(Phase::Setup);
        let n = topology.n();
        assert_eq!(
            initial.n() as usize,
            n,
            "configuration population must match topology size"
        );
        let initial_plurality = unique_initial_plurality(initial);
        let k_colors = initial.k();
        let lifted = dynamics.lift(initial);
        let state_count = lifted.k();

        let layout = layout_initial_states(&lifted, placement, seed);
        let counts: Vec<u64> = lifted.counts().to_vec();

        let mut trace = match opts.trace {
            TraceLevel::Off => None,
            _ => Some(Trace::new()),
        };
        let full = opts.trace == TraceLevel::Full;
        if let Some(t) = trace.as_mut() {
            t.record(0, &counts, k_colors, full);
        }
        rec.phase_end(Phase::Setup);

        if let Some(winner) = evaluate_stop(opts.stop, dynamics, &counts, initial_plurality) {
            record_stop(rec, 0);
            let out = TrialResult {
                rounds: 0,
                reason: StopReason::Stopped,
                winner: Some(winner),
                initial_plurality,
                success: winner == initial_plurality,
                trace,
            };
            rec.phase_end(Phase::Finalize);
            return out;
        }

        let check_fit = |cap: usize, width: &str| {
            assert!(
                state_count <= cap,
                "state count {state_count} does not fit forced StateWidth::{width}"
            );
        };
        match self.width {
            StateWidth::Auto => {
                if state_count <= u8::CAPACITY {
                    self.run_sized::<T, D, u8, Rec>(
                        topology,
                        dynamics,
                        layout,
                        counts,
                        state_count,
                        k_colors,
                        initial_plurality,
                        opts,
                        seed,
                        trace,
                        full,
                        rec,
                    )
                } else if state_count <= u16::CAPACITY {
                    self.run_sized::<T, D, u16, Rec>(
                        topology,
                        dynamics,
                        layout,
                        counts,
                        state_count,
                        k_colors,
                        initial_plurality,
                        opts,
                        seed,
                        trace,
                        full,
                        rec,
                    )
                } else {
                    self.run_sized::<T, D, u32, Rec>(
                        topology,
                        dynamics,
                        layout,
                        counts,
                        state_count,
                        k_colors,
                        initial_plurality,
                        opts,
                        seed,
                        trace,
                        full,
                        rec,
                    )
                }
            }
            StateWidth::U8 => {
                check_fit(u8::CAPACITY, "U8");
                self.run_sized::<T, D, u8, Rec>(
                    topology,
                    dynamics,
                    layout,
                    counts,
                    state_count,
                    k_colors,
                    initial_plurality,
                    opts,
                    seed,
                    trace,
                    full,
                    rec,
                )
            }
            StateWidth::U16 => {
                check_fit(u16::CAPACITY, "U16");
                self.run_sized::<T, D, u16, Rec>(
                    topology,
                    dynamics,
                    layout,
                    counts,
                    state_count,
                    k_colors,
                    initial_plurality,
                    opts,
                    seed,
                    trace,
                    full,
                    rec,
                )
            }
            StateWidth::U32 => self.run_sized::<T, D, u32, Rec>(
                topology,
                dynamics,
                layout,
                counts,
                state_count,
                k_colors,
                initial_plurality,
                opts,
                seed,
                trace,
                full,
                rec,
            ),
        }
    }

    /// The monomorphized round loop: sequential double-buffer when
    /// `threads == 1` (or a single chunk), persistent barrier-synced
    /// worker pool otherwise.
    #[allow(clippy::too_many_arguments)]
    fn run_sized<T: TopologyCore, D: DynamicsCore, W: StateWord, Rec: Recorder>(
        &self,
        topology: &T,
        dynamics: &D,
        layout: Vec<u32>,
        mut counts: Vec<u64>,
        state_count: usize,
        k_colors: usize,
        initial_plurality: usize,
        opts: &RunOptions,
        seed: u64,
        mut trace: Option<Trace>,
        full: bool,
        rec: &mut Rec,
    ) -> TrialResult {
        let n = layout.len();
        let chunk = self.chunk_size;
        let num_chunks = n.div_ceil(chunk);
        let fixed = dynamics.fixed_draws().filter(|&s| s > 0);
        rec.phase_start(Phase::Run);

        if self.threads <= 1 || num_chunks <= 1 {
            let mut cur: Vec<W> = layout.iter().map(|&s| W::from_u32(s)).collect();
            let mut nxt: Vec<W> = vec![W::from_u32(0); n];
            let mut ws = WorkerScratch::new(state_count, fixed);
            let mut rounds = 0u64;
            loop {
                let round_t0 = if Rec::ENABLED {
                    Some(Instant::now())
                } else {
                    None
                };
                counts.fill(0);
                let stream_base = 1 + rounds * num_chunks as u64;
                let drawn = process_span::<T, D, _, Rec, _>(
                    topology,
                    dynamics,
                    &PlainStates::<W>(&cur),
                    n,
                    0,
                    num_chunks,
                    chunk,
                    stream_base,
                    seed,
                    fixed,
                    &mut ws,
                    &mut counts,
                    &mut |i, v| nxt[i] = W::from_u32(v),
                );
                std::mem::swap(&mut cur, &mut nxt);
                rounds += 1;
                if let Some(out) = after_round(
                    dynamics,
                    opts,
                    rec,
                    &mut trace,
                    full,
                    k_colors,
                    initial_plurality,
                    &counts,
                    drawn,
                    rounds,
                    round_t0,
                ) {
                    return out;
                }
            }
        }

        // Persistent worker pool.  Worker `w` owns the contiguous chunk
        // range [w·chunks_per, (w+1)·chunks_per) — the same static
        // partition as the sequential path walks, so the chunk→stream
        // mapping (and hence the trajectory) is thread-count independent.
        let workers = self.threads.min(num_chunks);
        let chunks_per = num_chunks.div_ceil(workers);
        let bufs: [Vec<W::Atomic>; 2] = [
            layout.iter().map(|&s| W::atomic_from(s)).collect(),
            (0..n).map(|_| W::atomic_from(0)).collect(),
        ];
        let barrier = Barrier::new(workers);
        let done = AtomicBool::new(false);
        // One slot per helper worker: (state counts, samples drawn).
        // Each lock is touched once per round by its owner and once by
        // the coordinator after the barrier — never contended.
        let slots: Vec<Mutex<(Vec<u64>, u64)>> = (1..workers)
            .map(|_| Mutex::new((vec![0u64; state_count], 0u64)))
            .collect();

        std::thread::scope(|scope| {
            for w in 1..workers {
                let slot = &slots[w - 1];
                let bufs = &bufs;
                let barrier = &barrier;
                let done = &done;
                scope.spawn(move || {
                    let first_chunk = w * chunks_per;
                    let last_chunk = ((w + 1) * chunks_per).min(num_chunks);
                    let mut ws = WorkerScratch::new(state_count, fixed);
                    let mut local = vec![0u64; state_count];
                    let mut round = 0u64;
                    loop {
                        let (cur, nxt) = if round.is_multiple_of(2) {
                            (&bufs[0], &bufs[1])
                        } else {
                            (&bufs[1], &bufs[0])
                        };
                        local.fill(0);
                        let drawn = process_span::<T, D, _, Rec, _>(
                            topology,
                            dynamics,
                            &SharedStates::<W>(cur),
                            n,
                            first_chunk,
                            last_chunk,
                            chunk,
                            1 + round * num_chunks as u64,
                            seed,
                            fixed,
                            &mut ws,
                            &mut local,
                            &mut |i, v| W::atomic_store(&nxt[i], v),
                        );
                        {
                            let mut s = slot.lock().expect("coordinator panicked");
                            s.0.copy_from_slice(&local);
                            s.1 = drawn;
                        }
                        // Barrier 1: all next-state writes visible.
                        barrier.wait();
                        // Barrier 2: coordinator merged counts and
                        // decided whether to stop.
                        barrier.wait();
                        if done.load(Ordering::Relaxed) {
                            break;
                        }
                        round += 1;
                    }
                });
            }

            // The coordinator is worker 0: it processes the first span,
            // then merges counts and runs the bookkeeping between the
            // two barriers.
            let mut ws = WorkerScratch::new(state_count, fixed);
            let mut rounds = 0u64;
            loop {
                let round_t0 = if Rec::ENABLED {
                    Some(Instant::now())
                } else {
                    None
                };
                let (cur, nxt) = if rounds.is_multiple_of(2) {
                    (&bufs[0], &bufs[1])
                } else {
                    (&bufs[1], &bufs[0])
                };
                counts.fill(0);
                let mut drawn = process_span::<T, D, _, Rec, _>(
                    topology,
                    dynamics,
                    &SharedStates::<W>(cur),
                    n,
                    0,
                    chunks_per,
                    chunk,
                    1 + rounds * num_chunks as u64,
                    seed,
                    fixed,
                    &mut ws,
                    &mut counts,
                    &mut |i, v| W::atomic_store(&nxt[i], v),
                );
                barrier.wait();
                for slot in &slots {
                    let s = slot.lock().expect("worker panicked");
                    for (dst, &x) in counts.iter_mut().zip(&s.0) {
                        *dst += x;
                    }
                    drawn += s.1;
                }
                rounds += 1;
                let outcome = after_round(
                    dynamics,
                    opts,
                    rec,
                    &mut trace,
                    full,
                    k_colors,
                    initial_plurality,
                    &counts,
                    drawn,
                    rounds,
                    round_t0,
                );
                if outcome.is_some() {
                    done.store(true, Ordering::Relaxed);
                }
                barrier.wait();
                if let Some(out) = outcome {
                    break out;
                }
            }
        })
    }
}

/// Close the books at stop: completed-round gauges, then open the
/// finalize phase (the caller closes it once the result is assembled).
fn record_stop<Rec: Recorder>(rec: &mut Rec, rounds: u64) {
    if Rec::ENABLED {
        rec.gauge_set(Gauge::CompletedTicks, rounds);
        rec.gauge_set(Gauge::FinalTimeFp, ticks_to_fp(rounds as f64));
    }
    rec.phase_start(Phase::Finalize);
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_core::{builders, ThreeMajority, UndecidedState, Voter};
    use plurality_topology::{ring, torus, Clique};

    #[test]
    fn converges_on_clique_with_bias() {
        let clique = Clique::new(2_000);
        let engine = AgentEngine::new(&clique);
        let cfg = builders::biased(2_000, 4, 800);
        let d = ThreeMajority::new();
        let mut wins = 0;
        for trial in 0..5 {
            let r = engine.run(
                &d,
                &cfg,
                Placement::Shuffled,
                &RunOptions::with_max_rounds(5_000),
                1000 + trial,
            );
            assert_eq!(r.reason, StopReason::Stopped);
            if r.success {
                wins += 1;
            }
        }
        assert!(wins >= 4, "won only {wins}/5");
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let clique = Clique::new(3_000);
        let cfg = builders::biased(3_000, 3, 600);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(2_000).traced();
        let r1 = AgentEngine::new(&clique).run(&d, &cfg, Placement::Shuffled, &opts, 7);
        let r4 =
            AgentEngine::new(&clique)
                .with_threads(4)
                .run(&d, &cfg, Placement::Shuffled, &opts, 7);
        assert_eq!(r1.rounds, r4.rounds);
        assert_eq!(r1.winner, r4.winner);
        let t1 = r1.trace.unwrap();
        let t4 = r4.trace.unwrap();
        for (a, b) in t1.rounds.iter().zip(&t4.rounds) {
            assert_eq!(a, b, "trajectories must be identical");
        }
    }

    #[test]
    fn deterministic_across_state_widths() {
        // The width pin: u8, u16, and u32 state arrays must walk the
        // same trajectory (randomness samples node indices, not words).
        let clique = Clique::new(2_500);
        let cfg = builders::biased(2_500, 3, 500);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(2_000).traced();
        let narrow = AgentEngine::new(&clique)
            .with_state_width(StateWidth::U8)
            .run(&d, &cfg, Placement::Shuffled, &opts, 21);
        for width in [StateWidth::U16, StateWidth::U32, StateWidth::Auto] {
            let wide = AgentEngine::new(&clique).with_state_width(width).run(
                &d,
                &cfg,
                Placement::Shuffled,
                &opts,
                21,
            );
            assert_eq!(narrow.rounds, wide.rounds, "{width:?}");
            assert_eq!(narrow.winner, wide.winner, "{width:?}");
            assert_eq!(
                narrow.trace.as_ref().unwrap().rounds,
                wide.trace.as_ref().unwrap().rounds,
                "{width:?}: trajectory must be width-independent"
            );
        }
    }

    #[test]
    #[should_panic(expected = "does not fit forced StateWidth::U8")]
    fn forced_narrow_width_rejects_large_state_counts() {
        let clique = Clique::new(600);
        let mut counts = vec![1u64; 300];
        counts[0] = 301;
        let cfg = Configuration::new(counts);
        let _ = AgentEngine::new(&clique)
            .with_state_width(StateWidth::U8)
            .run(
                &ThreeMajority::new(),
                &cfg,
                Placement::Shuffled,
                &RunOptions::with_max_rounds(1),
                1,
            );
    }

    #[test]
    fn deterministic_same_seed_same_result() {
        let clique = Clique::new(1_000);
        let cfg = builders::biased(1_000, 3, 300);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(2_000);
        let a = AgentEngine::new(&clique).run(&d, &cfg, Placement::Shuffled, &opts, 9);
        let b = AgentEngine::new(&clique).run(&d, &cfg, Placement::Shuffled, &opts, 9);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.winner, b.winner);
    }

    #[test]
    fn works_on_torus() {
        let g = torus(20, 20);
        let engine = AgentEngine::new(&g);
        let cfg = builders::biased(400, 2, 200);
        let d = ThreeMajority::new();
        let r = engine.run(
            &d,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(20_000),
            11,
        );
        assert_eq!(r.reason, StopReason::Stopped, "torus run did not settle");
        assert!(r.success, "heavily biased start should win on the torus");
    }

    #[test]
    fn voter_on_odd_ring_eventually_absorbs() {
        // Odd ring on purpose: on an *even* cycle the synchronous voter
        // can reach the perfectly alternating configuration, where both
        // neighbors of every node hold the opposite color and the whole
        // ring flips deterministically forever (a genuine oscillation
        // trap of the synchronous model; observed at ring(60), seed 13).
        // No alternating trap exists when n is odd.
        let g = ring(61);
        let engine = AgentEngine::new(&g);
        let cfg = builders::biased(61, 2, 21);
        let r = engine.run(
            &Voter,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(200_000),
            13,
        );
        assert_eq!(
            r.reason,
            StopReason::Stopped,
            "voter on odd ring must absorb"
        );
    }

    #[test]
    fn undecided_state_on_clique_agents() {
        let clique = Clique::new(2_000);
        let engine = AgentEngine::new(&clique);
        let cfg = builders::biased(2_000, 3, 700);
        let d = UndecidedState::new(3);
        let r = engine.run(
            &d,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(50_000),
            17,
        );
        assert_eq!(r.reason, StopReason::Stopped);
        assert!(r.success);
    }

    #[test]
    fn blocks_placement_supported() {
        let clique = Clique::new(500);
        let engine = AgentEngine::new(&clique);
        let cfg = builders::biased(500, 2, 200);
        let d = ThreeMajority::new();
        let r = engine.run(
            &d,
            &cfg,
            Placement::Blocks,
            &RunOptions::with_max_rounds(5_000),
            19,
        );
        // On the clique placement is irrelevant; it must still converge.
        assert_eq!(r.reason, StopReason::Stopped);
    }

    #[test]
    #[should_panic(expected = "match topology size")]
    fn size_mismatch_rejected() {
        let clique = Clique::new(10);
        let engine = AgentEngine::new(&clique);
        let cfg = builders::biased(11, 2, 3);
        let _ = engine.run(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::default(),
            1,
        );
    }

    #[test]
    fn recording_does_not_perturb_the_trajectory() {
        use plurality_telemetry::MetricsRecorder;
        let clique = Clique::new(1_500);
        let cfg = builders::biased(1_500, 3, 450);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(2_000).traced();
        let engine = AgentEngine::new(&clique);
        let plain = engine.run(&d, &cfg, Placement::Shuffled, &opts, 31);
        let mut rec = MetricsRecorder::new();
        let recorded = engine.run_recorded(&d, &cfg, Placement::Shuffled, &opts, 31, &mut rec);
        assert_eq!(plain.rounds, recorded.rounds);
        assert_eq!(plain.winner, recorded.winner);
        assert_eq!(
            plain.trace.unwrap().rounds,
            recorded.trace.unwrap().rounds,
            "recording must not perturb the trajectory"
        );
    }

    #[test]
    fn counters_reconcile_with_known_sample_budgets() {
        use plurality_telemetry::{Counter, Gauge, Hist, MetricsRecorder, Phase};
        let clique = Clique::new(600);
        let cfg = builders::biased(600, 3, 220);
        let opts = RunOptions::with_max_rounds(40);
        // Three-majority draws exactly 3 samples per node per round;
        // voter exactly 1 — samples_drawn is an identity, not an estimate.
        let mut rec = MetricsRecorder::new();
        let r = AgentEngine::new(&clique).run_recorded(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &opts,
            37,
            &mut rec,
        );
        assert_eq!(rec.counter(Counter::Rounds), r.rounds);
        assert_eq!(rec.counter(Counter::SamplesDrawn), 3 * 600 * r.rounds);
        assert_eq!(rec.gauge(Gauge::CompletedTicks), r.rounds);
        assert_eq!(rec.hist(Hist::RoundWallNanos).count(), r.rounds);
        assert_eq!(rec.hist(Hist::LeaderOccupancy).count(), r.rounds);
        assert!(rec.hist(Hist::LeaderOccupancy).max() <= 600);
        assert!(rec.phase_nanos(Phase::Run) > 0, "run phase must be timed");

        let mut vrec = MetricsRecorder::new();
        let vr = AgentEngine::new(&clique).run_recorded(
            &Voter,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(25),
            41,
            &mut vrec,
        );
        assert_eq!(vrec.counter(Counter::SamplesDrawn), 600 * vr.rounds);
    }

    #[test]
    fn counters_identical_across_thread_counts() {
        use plurality_telemetry::{Counter, MetricsRecorder};
        let clique = Clique::new(9_000);
        let cfg = builders::biased(9_000, 4, 2_600);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(400);
        let mut r1 = MetricsRecorder::new();
        let mut r4 = MetricsRecorder::new();
        AgentEngine::new(&clique)
            .with_chunk_size(1024)
            .run_recorded(&d, &cfg, Placement::Shuffled, &opts, 43, &mut r1);
        AgentEngine::new(&clique)
            .with_chunk_size(1024)
            .with_threads(4)
            .run_recorded(&d, &cfg, Placement::Shuffled, &opts, 43, &mut r4);
        for c in [Counter::Rounds, Counter::SamplesDrawn] {
            assert_eq!(r1.counter(c), r4.counter(c), "{}", c.name());
        }
    }

    #[test]
    fn trace_counts_match_population() {
        let clique = Clique::new(800);
        let engine = AgentEngine::new(&clique);
        let cfg = builders::biased(800, 3, 300);
        let d = ThreeMajority::new();
        let r = engine.run(
            &d,
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(3_000).traced(),
            23,
        );
        let trace = r.trace.unwrap();
        for stats in &trace.rounds {
            assert_eq!(
                stats.plurality_count + stats.minority_mass + stats.extra_state_mass,
                800,
                "round {}",
                stats.round
            );
        }
    }
}
