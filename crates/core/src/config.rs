//! Color configurations: the state of the plurality-consensus process.
//!
//! A *k-color configuration* (k-cd in the paper, §2) is a tuple
//! `c = (c_1, …, c_k)` of non-negative integers with `Σ c_j = n`.  Unlike
//! the paper — which sorts `c_1 ≥ c_2 ≥ …` without loss of generality —
//! the simulator keeps color *identity*: colors are indices `0..k`, and the
//! plurality/bias accessors compute order statistics on demand.  This is
//! what lets an experiment check that the process converged to the
//! *initial* plurality color rather than just to *some* color.

use std::fmt;

/// An exact integer color configuration.
///
/// Invariant: at least one color slot; the cached total always equals the
/// sum of the counts.  All mutation goes through methods that preserve it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Configuration {
    counts: Vec<u64>,
    total: u64,
}

impl Configuration {
    /// Wrap a counts vector.
    ///
    /// # Panics
    /// Panics if `counts` is empty or the total overflows `u64`.
    #[must_use]
    pub fn new(counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "configuration needs at least one color");
        let total = counts
            .iter()
            .try_fold(0u64, |acc, &c| acc.checked_add(c))
            .expect("configuration total overflows u64");
        Self { counts, total }
    }

    /// Population size `n = Σ c_j`.
    #[inline]
    #[must_use]
    pub fn n(&self) -> u64 {
        self.total
    }

    /// Number of color slots `k` (slots may hold zero nodes).
    #[inline]
    #[must_use]
    pub fn k(&self) -> usize {
        self.counts.len()
    }

    /// The counts slice.
    #[inline]
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of one color.
    ///
    /// # Panics
    /// Panics if `color >= k`.
    #[inline]
    #[must_use]
    pub fn count(&self, color: usize) -> u64 {
        self.counts[color]
    }

    /// Plurality color and its count; ties broken toward the smallest
    /// index (stable, so experiments can pin "the" plurality color at 0).
    #[must_use]
    pub fn plurality(&self) -> (usize, u64) {
        let mut best = 0usize;
        let mut best_count = self.counts[0];
        for (j, &c) in self.counts.iter().enumerate().skip(1) {
            if c > best_count {
                best = j;
                best_count = c;
            }
        }
        (best, best_count)
    }

    /// The runner-up count `c_(2)` (largest count over colors other than
    /// the plurality index). Zero when `k == 1`.
    #[must_use]
    pub fn second_count(&self) -> u64 {
        let (p, _) = self.plurality();
        self.counts
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != p)
            .map(|(_, &c)| c)
            .max()
            .unwrap_or(0)
    }

    /// Additive bias `s(c) = c_(1) − c_(2)` (paper §2).
    #[must_use]
    pub fn bias(&self) -> u64 {
        let (_, c1) = self.plurality();
        c1 - self.second_count()
    }

    /// If every node holds one color, that color.
    #[must_use]
    pub fn monochromatic(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        self.counts.iter().position(|&c| c == self.total)
    }

    /// Counts sorted in non-increasing order (the paper's canonical view).
    #[must_use]
    pub fn sorted_desc(&self) -> Vec<u64> {
        let mut v = self.counts.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// The *monochromatic distance* `md(c) = Σ_j (c_j / c_max)²` of
    /// Becchetti et al. SODA'15 — the quantity that governs the
    /// undecided-state dynamics' convergence time (see DESIGN.md E10).
    #[must_use]
    pub fn monochromatic_distance(&self) -> f64 {
        let (_, cmax) = self.plurality();
        if cmax == 0 {
            return 0.0;
        }
        let cm = cmax as f64;
        self.counts
            .iter()
            .map(|&c| {
                let r = c as f64 / cm;
                r * r
            })
            .sum()
    }

    /// Number of colors currently supported by at least one node.
    #[must_use]
    pub fn support(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Color fractions `c_j / n` as `f64` (kernel input).
    #[must_use]
    pub fn fractions(&self) -> Vec<f64> {
        let n = self.total as f64;
        self.counts.iter().map(|&c| c as f64 / n).collect()
    }

    /// Shannon entropy (nats) of the color distribution.
    #[must_use]
    pub fn entropy(&self) -> f64 {
        let n = self.total as f64;
        self.counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    }

    /// Sum of squared counts `Σ c_h²` (appears in the Lemma 1 kernel);
    /// computed in `u128` to avoid overflow for `n` up to `2^64`.
    #[must_use]
    pub fn sum_of_squares(&self) -> u128 {
        self.counts
            .iter()
            .map(|&c| u128::from(c) * u128::from(c))
            .sum()
    }

    /// Move `amount` nodes from one color to another (adversary use).
    ///
    /// # Panics
    /// Panics if `from` holds fewer than `amount` nodes or an index is out
    /// of range.
    pub fn transfer(&mut self, from: usize, to: usize, amount: u64) {
        assert!(
            self.counts[from] >= amount,
            "transfer of {amount} exceeds count {} of color {from}",
            self.counts[from]
        );
        self.counts[from] -= amount;
        self.counts[to] += amount;
    }

    /// Append an empty state slot (lifting into a dynamics' extended state
    /// space, e.g. the undecided state).
    pub fn push_empty_state(&mut self) {
        self.counts.push(0);
    }

    /// Replace the counts in place from a slice with the same total.
    ///
    /// # Panics
    /// Panics (debug builds) if the slice total differs from `n`.
    pub fn copy_from_slice(&mut self, counts: &[u64]) {
        debug_assert_eq!(counts.iter().sum::<u64>(), self.total);
        self.counts.clear();
        self.counts.extend_from_slice(counts);
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[n={} |", self.total)?;
        // Show up to 8 leading counts, then an ellipsis.
        for (j, &c) in self.counts.iter().take(8).enumerate() {
            write!(f, " {j}:{c}")?;
        }
        if self.counts.len() > 8 {
            write!(f, " …(k={})", self.counts.len())?;
        }
        write!(f, "]")
    }
}

/// Builders for every initial condition used in the paper's analysis.
pub mod builders {
    use super::Configuration;

    /// Perfectly balanced-as-possible configuration: `n/k` per color, the
    /// `n mod k` remainder spread one node each over the *last* colors so
    /// that color 0 is never accidentally advantaged.
    ///
    /// # Panics
    /// Panics if `k == 0` or `n < k` leaves some color empty is allowed —
    /// only `k == 0` panics.
    #[must_use]
    pub fn balanced(n: u64, k: usize) -> Configuration {
        assert!(k > 0, "k must be positive");
        let base = n / k as u64;
        let rem = (n % k as u64) as usize;
        let counts = (0..k).map(|j| base + u64::from(j >= k - rem)).collect();
        Configuration::new(counts)
    }

    /// Biased configuration of the paper's upper-bound theorems and of
    /// Lemma 10: every non-plurality color holds `x = (n−s)/k` nodes and
    /// color 0 holds `x + s` plus the integer remainder.  The realized
    /// bias is therefore in `[s, s+k)`; read it back with
    /// [`Configuration::bias`].
    ///
    /// # Panics
    /// Panics if `s > n` or `k == 0`.
    #[must_use]
    pub fn biased(n: u64, k: usize, s: u64) -> Configuration {
        assert!(k > 0, "k must be positive");
        assert!(s <= n, "bias cannot exceed n");
        let x = (n - s) / k as u64;
        let rem = (n - s) % k as u64;
        let mut counts = vec![x; k];
        counts[0] += s + rem;
        Configuration::new(counts)
    }

    /// The near-balanced start of Theorem 2: all colors at `n/k`, except
    /// the plurality (color 0) raised by `⌊(n/k)^{1−ε}⌋`, the surplus taken
    /// from the last color.  Requires `k | n` for exactness; the remainder
    /// is spread like [`balanced`].
    ///
    /// # Panics
    /// Panics if the imbalance exceeds the last color's count.
    #[must_use]
    pub fn near_balanced(n: u64, k: usize, eps: f64) -> Configuration {
        let mut cfg = balanced(n, k);
        let per = n / k as u64;
        let imb = ((per as f64).powf(1.0 - eps)).floor() as u64;
        assert!(
            cfg.count(k - 1) > imb,
            "imbalance {imb} would exhaust color {}",
            k - 1
        );
        cfg.transfer(k - 1, 0, imb);
        cfg
    }

    /// The three-color configuration of Lemma 8 / Theorem 3:
    /// `(n/3 + s, n/3, n/3 − s)`, rounding absorbed by the middle color.
    ///
    /// # Panics
    /// Panics if `s > n/3`.
    #[must_use]
    pub fn three_colors(n: u64, s: u64) -> Configuration {
        let base = n / 3;
        assert!(s <= base, "s must be at most n/3");
        let rem = n - 3 * base;
        Configuration::new(vec![base + s, base + rem, base - s])
    }

    /// Geometric profile: color `j` weighted `ratio^j` (`0 < ratio ≤ 1`),
    /// integerized by largest-remainder so the total is exactly `n`.
    /// Sweeping `ratio` sweeps the monochromatic distance (experiment E10).
    ///
    /// # Panics
    /// Panics if `ratio` is not in `(0, 1]` or `k == 0`.
    #[must_use]
    pub fn geometric(n: u64, k: usize, ratio: f64) -> Configuration {
        assert!(k > 0, "k must be positive");
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
        let weights: Vec<f64> = (0..k).map(|j| ratio.powi(j as i32)).collect();
        Configuration::new(integerize(n, &weights))
    }

    /// "Almost all nodes on few colors": `heavy` colors share `n − (k −
    /// heavy)` nodes equally (color 0 gets a `+bias` edge), every other
    /// color holds exactly one node.  This is the family on which the
    /// undecided-state dynamics is exponentially faster than 3-majority
    /// (paper's Related Work, citing SODA'15).
    ///
    /// # Panics
    /// Panics if `heavy == 0`, `heavy > k`, or `n` is too small.
    #[must_use]
    pub fn polylog_support(n: u64, k: usize, heavy: usize, bias: u64) -> Configuration {
        assert!(heavy > 0 && heavy <= k, "need 0 < heavy <= k");
        let light = (k - heavy) as u64;
        assert!(n > light + bias, "population too small");
        let heavy_mass = n - light - bias;
        let base = heavy_mass / heavy as u64;
        let rem = heavy_mass % heavy as u64;
        let mut counts = vec![1u64; k];
        for (j, c) in counts.iter_mut().take(heavy).enumerate() {
            *c = base + u64::from((j as u64) < rem);
        }
        counts[0] += bias;
        Configuration::new(counts)
    }

    /// Two-color configuration `(n/2 + s/2, n/2 − s/2)` with bias ≈ `s`
    /// (exact when `n` and `s` are even): the binary case where 3-majority
    /// meets the median process of Doerr et al.
    ///
    /// # Panics
    /// Panics if `s > n`.
    #[must_use]
    pub fn binary(n: u64, s: u64) -> Configuration {
        assert!(s <= n, "bias cannot exceed n");
        let minority = (n - s) / 2;
        Configuration::new(vec![n - minority, minority])
    }

    /// Largest-remainder integerization of non-negative weights to total
    /// exactly `n`.
    fn integerize(n: u64, weights: &[f64]) -> Vec<u64> {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive total");
        let mut counts: Vec<u64> = Vec::with_capacity(weights.len());
        let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(weights.len());
        let mut assigned: u64 = 0;
        for (j, &w) in weights.iter().enumerate() {
            let ideal = w / total * n as f64;
            let fl = ideal.floor();
            counts.push(fl as u64);
            assigned += fl as u64;
            fracs.push((ideal - fl, j));
        }
        let mut short = (n - assigned) as usize;
        // Give the leftover units to the largest fractional parts
        // (ties broken by color index for determinism).
        fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        for &(_, j) in fracs.iter().take(short.min(fracs.len())) {
            counts[j] += 1;
        }
        short = short.saturating_sub(fracs.len());
        // Degenerate case (all weights zero handled above): dump remainder.
        counts[0] += short as u64;
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::builders::*;
    use super::*;

    #[test]
    fn new_computes_total() {
        let c = Configuration::new(vec![3, 0, 7]);
        assert_eq!(c.n(), 10);
        assert_eq!(c.k(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one color")]
    fn new_rejects_empty() {
        let _ = Configuration::new(vec![]);
    }

    #[test]
    fn plurality_tie_breaks_low_index() {
        let c = Configuration::new(vec![5, 7, 7, 1]);
        assert_eq!(c.plurality(), (1, 7));
        assert_eq!(c.second_count(), 7);
        assert_eq!(c.bias(), 0);
    }

    #[test]
    fn bias_of_sorted_view() {
        let c = Configuration::new(vec![2, 10, 5]);
        assert_eq!(c.bias(), 5);
        assert_eq!(c.sorted_desc(), vec![10, 5, 2]);
    }

    #[test]
    fn monochromatic_detection() {
        assert_eq!(Configuration::new(vec![0, 9, 0]).monochromatic(), Some(1));
        assert_eq!(Configuration::new(vec![1, 8, 0]).monochromatic(), None);
    }

    #[test]
    fn monochromatic_distance_examples() {
        // Uniform over k colors: md = k (each ratio is 1).
        let c = Configuration::new(vec![4, 4, 4]);
        assert!((c.monochromatic_distance() - 3.0).abs() < 1e-12);
        // One dominant color: md → 1.
        let d = Configuration::new(vec![1_000_000, 1, 1]);
        assert!((d.monochromatic_distance() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn entropy_bounds() {
        let u = Configuration::new(vec![5, 5, 5, 5]);
        assert!((u.entropy() - (4.0f64).ln()).abs() < 1e-12);
        let m = Configuration::new(vec![20, 0, 0, 0]);
        assert_eq!(m.entropy(), 0.0);
    }

    #[test]
    fn transfer_preserves_total() {
        let mut c = Configuration::new(vec![6, 4]);
        c.transfer(0, 1, 3);
        assert_eq!(c.counts(), &[3, 7]);
        assert_eq!(c.n(), 10);
    }

    #[test]
    #[should_panic(expected = "exceeds count")]
    fn transfer_rejects_overdraw() {
        let mut c = Configuration::new(vec![2, 4]);
        c.transfer(0, 1, 3);
    }

    #[test]
    fn sum_of_squares_exact() {
        let c = Configuration::new(vec![3, 4]);
        assert_eq!(c.sum_of_squares(), 25);
        // Values that would overflow u64 squared.
        let big = Configuration::new(vec![1 << 40, 1 << 40]);
        assert_eq!(c.k(), 2);
        assert_eq!(big.sum_of_squares(), 2 * (1u128 << 80));
    }

    #[test]
    fn builder_balanced_exact_total() {
        for (n, k) in [(10u64, 3usize), (7, 7), (100, 6), (5, 10)] {
            let c = balanced(n, k);
            assert_eq!(c.n(), n, "n={n} k={k}");
            assert_eq!(c.k(), k);
            let sorted = c.sorted_desc();
            assert!(sorted[0] - sorted[k - 1] <= 1, "spread > 1");
        }
    }

    #[test]
    fn builder_balanced_remainder_goes_last() {
        let c = balanced(11, 3);
        assert_eq!(c.counts(), &[3, 4, 4]);
    }

    #[test]
    fn builder_biased_bias_at_least_s() {
        for (n, k, s) in [(1000u64, 5usize, 100u64), (999, 7, 50), (10_000, 32, 333)] {
            let c = biased(n, k, s);
            assert_eq!(c.n(), n);
            assert!(c.bias() >= s, "bias {} < s {s}", c.bias());
            assert!(c.bias() < s + k as u64);
            assert_eq!(c.plurality().0, 0);
        }
    }

    #[test]
    fn builder_biased_exact_when_divisible() {
        let c = biased(1000, 4, 200); // (1000-200)/4 = 200 exactly
        assert_eq!(c.counts(), &[400, 200, 200, 200]);
        assert_eq!(c.bias(), 200);
    }

    #[test]
    fn builder_near_balanced_matches_theorem2() {
        let n = 1_000_000u64;
        let k = 10usize;
        let c = near_balanced(n, k, 0.5);
        assert_eq!(c.n(), n);
        let per = n / k as u64; // 100_000
        let imb = ((per as f64).powf(0.5)).floor() as u64; // 316
        assert_eq!(c.count(0), per + imb);
        assert_eq!(c.count(k - 1), per - imb);
        assert!(c.plurality().1 <= per + imb);
    }

    #[test]
    fn builder_three_colors() {
        let c = three_colors(1_000, 30);
        assert_eq!(c.n(), 1_000);
        assert_eq!(c.counts(), &[363, 334, 303]);
        assert_eq!(c.plurality().0, 0);
    }

    #[test]
    fn builder_geometric_monotone() {
        let c = geometric(10_000, 8, 0.5);
        assert_eq!(c.n(), 10_000);
        for w in c.counts().windows(2) {
            assert!(w[0] >= w[1], "geometric counts must be non-increasing");
        }
    }

    #[test]
    fn builder_geometric_uniform_ratio_one() {
        let c = geometric(100, 4, 1.0);
        assert_eq!(c.sorted_desc(), vec![25, 25, 25, 25]);
    }

    #[test]
    fn builder_polylog_support() {
        let c = polylog_support(1_000_000, 1000, 4, 100);
        assert_eq!(c.n(), 1_000_000);
        assert_eq!(c.plurality().0, 0);
        // 996 light colors hold one node each.
        assert_eq!(c.counts().iter().filter(|&&x| x == 1).count(), 996);
        assert!(c.bias() >= 100);
    }

    #[test]
    fn builder_binary() {
        let c = binary(1000, 100);
        assert_eq!(c.counts(), &[550, 450]);
        assert_eq!(c.bias(), 100);
        let odd = binary(1001, 100);
        assert_eq!(odd.n(), 1001);
    }

    #[test]
    fn display_formats() {
        let c = Configuration::new(vec![1, 2, 3]);
        let s = format!("{c}");
        assert!(s.contains("n=6"));
    }
}
