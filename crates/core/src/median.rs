//! The **median dynamics** of Doerr, Goldberg, Minder, Sauerwald,
//! Scheideler (SPAA'11) — the paper's principal comparator.
//!
//! Colors are interpreted as *ordered values* `0 < 1 < … < k−1`.  Two
//! variants are provided:
//!
//! * [`MedianOwn`] — Doerr et al.'s rule: adopt the median of *own value
//!   and two random samples*.  Solves (approximate) **median** consensus
//!   in `O(log n)` rounds; for `k = 2` it coincides with 3-majority.
//! * [`Median3`] — the 3-input-dynamics variant inside the paper's class
//!   `D3(k)`: adopt the median of *three random samples*.  It has the
//!   clear-majority property but **not** the uniform property
//!   (`δ = (0,6,0)`), so by Theorem 3 it cannot solve plurality consensus
//!   — the paper's "exponential time-gap" example.

use crate::dynamics::sealed::SealedDynamics;
use crate::dynamics::{
    DynSampler, Dynamics, DynamicsCore, NodeScratch, SampleSource, StateSampler,
};
use plurality_sampling::multinomial::sample_multinomial;
use rand::RngCore;

/// Median of three `u32` values without allocation.
#[inline]
#[must_use]
pub fn median3_of(a: u32, b: u32, c: u32) -> u32 {
    a.max(b).min(a.min(b).max(c))
}

/// Doerr et al.'s median rule: `new = median(own, X, Y)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MedianOwn;

impl Dynamics for MedianOwn {
    fn name(&self) -> String {
        "median(own+2)".into()
    }

    fn node_update(
        &self,
        own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        self.node_update_core(own, &mut DynSampler(sampler), scratch, rng)
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        // Group-wise kernel: conditioned on own value i,
        //   P(median ≤ m | own = i) = 1 − (1 − F_m)²  if i ≤ m,
        //                             F_m²            if i > m,
        // where F is the sample CDF.  The pmf over the next value follows
        // by differencing; each current-color group is an independent
        // multinomial.
        let k = cur.len();
        assert_eq!(k, next.len());
        let n: u64 = cur.iter().sum();
        let n_f = n as f64;
        next.fill(0);

        // CDF of one sample.
        let mut cdf = vec![0.0f64; k];
        let mut acc = 0.0;
        for (j, &c) in cur.iter().enumerate() {
            acc += c as f64 / n_f;
            cdf[j] = acc;
        }

        let mut probs = vec![0.0f64; k];
        let mut group_out = vec![0u64; k];
        for (i, &ci) in cur.iter().enumerate() {
            if ci == 0 {
                continue;
            }
            let mut prev = 0.0;
            for m in 0..k {
                let f = cdf[m].min(1.0);
                let le = if i <= m {
                    1.0 - (1.0 - f) * (1.0 - f)
                } else {
                    f * f
                };
                probs[m] = (le - prev).max(0.0);
                prev = le;
            }
            crate::kernels::normalize_in_place(&mut probs);
            sample_multinomial(ci, &probs, &mut group_out, rng);
            for (slot, &x) in next.iter_mut().zip(&group_out) {
                *slot += x;
            }
        }
        debug_assert_eq!(next.iter().sum::<u64>(), n);
    }

    fn has_fast_kernel(&self) -> bool {
        true
    }
}

impl SealedDynamics for MedianOwn {}

impl DynamicsCore for MedianOwn {
    #[inline]
    fn node_update_core<S: SampleSource + ?Sized, R: RngCore + ?Sized>(
        &self,
        own: u32,
        source: &mut S,
        _scratch: &mut NodeScratch,
        rng: &mut R,
    ) -> u32 {
        let x = source.draw(rng);
        let y = source.draw(rng);
        median3_of(own, x, y)
    }
}

/// The in-class variant: `new = median(X₁, X₂, X₃)` over three samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct Median3;

impl Dynamics for Median3 {
    fn name(&self) -> String {
        "median(3 samples)".into()
    }

    fn node_update(
        &self,
        own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        self.node_update_core(own, &mut DynSampler(sampler), scratch, rng)
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        // P(median of 3 samples ≤ m) = 3F²(1−F) + F³ = F²(3 − 2F):
        // the node's own value plays no role, so one multinomial suffices.
        let k = cur.len();
        assert_eq!(k, next.len());
        let n: u64 = cur.iter().sum();
        let n_f = n as f64;

        let mut probs = vec![0.0f64; k];
        let mut acc = 0.0;
        let mut prev = 0.0;
        for (j, &c) in cur.iter().enumerate() {
            acc += c as f64 / n_f;
            let f = acc.min(1.0);
            let le = f * f * (3.0 - 2.0 * f);
            probs[j] = (le - prev).max(0.0);
            prev = le;
        }
        crate::kernels::normalize_in_place(&mut probs);
        sample_multinomial(n, &probs, next, rng);
    }

    fn has_fast_kernel(&self) -> bool {
        true
    }
}

impl SealedDynamics for Median3 {}

impl DynamicsCore for Median3 {
    #[inline]
    fn node_update_core<S: SampleSource + ?Sized, R: RngCore + ?Sized>(
        &self,
        _own: u32,
        source: &mut S,
        _scratch: &mut NodeScratch,
        rng: &mut R,
    ) -> u32 {
        let a = source.draw(rng);
        let b = source.draw(rng);
        let c = source.draw(rng);
        median3_of(a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::CliqueSampler;
    use plurality_sampling::{CountSampler, Xoshiro256PlusPlus};
    use rand::SeedableRng;

    #[test]
    fn median3_of_all_orders() {
        for &(a, b, c) in &[
            (1u32, 2, 3),
            (3, 1, 2),
            (2, 3, 1),
            (1, 3, 2),
            (3, 2, 1),
            (2, 1, 3),
        ] {
            assert_eq!(median3_of(a, b, c), 2, "({a},{b},{c})");
        }
        assert_eq!(median3_of(5, 5, 1), 5);
        assert_eq!(median3_of(1, 5, 5), 5);
        assert_eq!(median3_of(7, 7, 7), 7);
    }

    fn node_freq(d: &dyn Dynamics, own: u32, counts: &[u64], trials: usize, seed: u64) -> Vec<f64> {
        let cs = CountSampler::new(counts);
        let mut sampler = CliqueSampler::new(&cs);
        let mut scratch = NodeScratch::with_states(counts.len());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut freq = vec![0u64; counts.len()];
        for _ in 0..trials {
            freq[d.node_update(own, &mut sampler, &mut scratch, &mut rng) as usize] += 1;
        }
        freq.iter().map(|&f| f as f64 / trials as f64).collect()
    }

    #[test]
    fn median3_kernel_matches_node_rule() {
        let counts = [300u64, 450, 250];
        let n = 1000.0;
        // Analytic pmf.
        let f0 = 300.0 / n;
        let f1 = 750.0 / n;
        let le = |f: f64| f * f * (3.0 - 2.0 * f);
        let expect = [le(f0), le(f1) - le(f0), 1.0 - le(f1)];
        let freq = node_freq(&Median3, 0, &counts, 300_000, 1);
        for j in 0..3 {
            let sigma = (expect[j] * (1.0 - expect[j]) / 300_000.0).sqrt();
            assert!(
                (freq[j] - expect[j]).abs() < 5.0 * sigma,
                "color {j}: {} vs {}",
                freq[j],
                expect[j]
            );
        }
    }

    #[test]
    fn median_own_conditional_law() {
        // own = 2 (the largest of three colors): P(new ≤ m) = F_m².
        let counts = [300u64, 450, 250];
        let freq = node_freq(&MedianOwn, 2, &counts, 300_000, 2);
        let f0: f64 = 0.3;
        let f1: f64 = 0.75;
        let expect = [f0 * f0, f1 * f1 - f0 * f0, 1.0 - f1 * f1];
        for j in 0..3 {
            let sigma = (expect[j] * (1.0 - expect[j]) / 300_000.0).sqrt();
            assert!(
                (freq[j] - expect[j]).abs() < 5.0 * sigma,
                "color {j}: {} vs {}",
                freq[j],
                expect[j]
            );
        }
    }

    #[test]
    fn median_own_kernel_population_and_expectation() {
        let cur = [400u64, 300, 300];
        let d = MedianOwn;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let trials = 3_000;
        let mut mean = [0.0f64; 3];
        let mut next = [0u64; 3];
        for _ in 0..trials {
            d.step_mean_field(&cur, &mut next, &mut rng);
            assert_eq!(next.iter().sum::<u64>(), 1000);
            for (m, &x) in mean.iter_mut().zip(&next) {
                *m += x as f64;
            }
        }
        for m in &mut mean {
            *m /= trials as f64;
        }
        // Analytic expectation per group.
        let f = [0.4f64, 0.7, 1.0];
        let mut expect = [0.0f64; 3];
        for (i, &ci) in cur.iter().enumerate() {
            let mut prev = 0.0;
            for m in 0..3 {
                let le = if i <= m {
                    1.0 - (1.0 - f[m]) * (1.0 - f[m])
                } else {
                    f[m] * f[m]
                };
                expect[m] += ci as f64 * (le - prev);
                prev = le;
            }
        }
        for j in 0..3 {
            assert!(
                (mean[j] - expect[j]).abs() < 0.02 * 1000.0,
                "color {j}: {} vs {}",
                mean[j],
                expect[j]
            );
        }
    }

    #[test]
    fn binary_median_own_equals_majority_drift() {
        // For k = 2, median(own, X, Y) is the majority of {own, X, Y}:
        // the plurality should gain in expectation from a biased start.
        let cur = [600u64, 400];
        let d = MedianOwn;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut next = [0u64; 2];
        let trials = 2_000;
        let mut acc = 0.0;
        for _ in 0..trials {
            d.step_mean_field(&cur, &mut next, &mut rng);
            acc += next[0] as f64;
        }
        let mean = acc / trials as f64;
        assert!(mean > 620.0, "expected amplification, mean = {mean}");
    }

    #[test]
    fn median3_pulls_toward_median_not_plurality() {
        // Configuration (n/3 + s, n/3, n/3 − s): color 0 is the plurality,
        // color 1 is the median value.  One Median3 round must favor the
        // median color in expectation (this is the Theorem 3 seed).
        let cur = [360u64, 330, 310];
        let d = Median3;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut next = [0u64; 3];
        let trials = 2_000;
        let mut mean = [0.0f64; 3];
        for _ in 0..trials {
            d.step_mean_field(&cur, &mut next, &mut rng);
            for (m, &x) in mean.iter_mut().zip(&next) {
                *m += x as f64;
            }
        }
        for m in &mut mean {
            *m /= trials as f64;
        }
        assert!(mean[1] > 330.0, "median color should grow, got {:?}", mean);
        assert!(
            mean[1] - 330.0 > mean[0] - 360.0,
            "median must outgrow plurality"
        );
    }

    #[test]
    fn names() {
        assert_eq!(MedianOwn.name(), "median(own+2)");
        assert_eq!(Median3.name(), "median(3 samples)");
    }
}
