//! 3-majority under **uniform communication noise** — the extension
//! studied in the follow-up literature (d'Amore–Clementi–Natale): each of
//! the three sampled messages is independently replaced, with probability
//! `p`, by a uniformly random color.
//!
//! The effective sample distribution becomes
//! `q_j = (1−p)·c_j/n + p/k`, and the round is still a multinomial with
//! Lemma 1 evaluated at `q` — samples remain i.i.d.  With `p > 0` the
//! monochromatic states are no longer absorbing: the object of study is
//! the *equilibrium bias*.  Linearizing the mean map around the uniform
//! configuration gives a per-round bias growth factor of
//! `(1−p)(1 + 1/k)`, so the dynamics keeps (breaks toward) a plurality
//! iff `p < 1/(k+1)` — a sharp phase transition that experiment E13
//! measures (`p* = 1/3` for k = 2, matching the published threshold).

use crate::dynamics::sealed::SealedDynamics;
use crate::dynamics::{
    DynSampler, Dynamics, DynamicsCore, NodeScratch, SampleSource, StateSampler,
};
use plurality_sampling::multinomial::sample_multinomial;
use rand::{Rng, RngCore};

/// 3-majority where each sample is uniform noise with probability `p`.
#[derive(Debug, Clone, Copy)]
pub struct NoisyThreeMajority {
    noise: f64,
    k_colors: usize,
}

impl NoisyThreeMajority {
    /// Construct for `k` colors with per-message noise probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]` or `k == 0`.
    #[must_use]
    pub fn new(k_colors: usize, noise: f64) -> Self {
        assert!((0.0..=1.0).contains(&noise), "noise must be in [0,1]");
        assert!(k_colors > 0, "need at least one color");
        Self { noise, k_colors }
    }

    /// The noise probability.
    #[must_use]
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// The critical noise of the uniform phase transition, `1/(k+1)`.
    #[must_use]
    pub fn critical_noise(k_colors: usize) -> f64 {
        1.0 / (k_colors as f64 + 1.0)
    }

    /// Effective sample distribution `q_j = (1−p)c_j/n + p/k`.
    fn effective_probs(&self, counts: &[u64], q: &mut [f64]) {
        let n: u64 = counts.iter().sum();
        let n_f = n as f64;
        let uniform = self.noise / self.k_colors as f64;
        for (slot, &c) in q.iter_mut().zip(counts) {
            *slot = (1.0 - self.noise) * (c as f64 / n_f) + uniform;
        }
    }
}

impl Dynamics for NoisyThreeMajority {
    fn name(&self) -> String {
        format!("3-majority(noise={})", self.noise)
    }

    fn node_update(
        &self,
        own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        self.node_update_core(own, &mut DynSampler(sampler), scratch, rng)
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        assert_eq!(
            cur.len(),
            self.k_colors,
            "configuration has {} colors, dynamics built for {}",
            cur.len(),
            self.k_colors
        );
        let n: u64 = cur.iter().sum();
        let k = cur.len();
        let mut q = vec![0.0f64; k];
        self.effective_probs(cur, &mut q);
        // Lemma 1 evaluated on the effective distribution.
        let sum_sq: f64 = q.iter().map(|&x| x * x).sum();
        let mut probs = vec![0.0f64; k];
        for (slot, &x) in probs.iter_mut().zip(&q) {
            *slot = x * (1.0 + x - sum_sq);
        }
        crate::kernels::normalize_in_place(&mut probs);
        sample_multinomial(n, &probs, next, rng);
    }

    fn has_fast_kernel(&self) -> bool {
        true
    }

    fn consensus(&self, states: &[u64]) -> Option<usize> {
        // With positive noise, monochromatic states are not absorbing;
        // report consensus only in the noiseless case so that runs under
        // noise are driven by round caps, as the experiments intend.
        if self.noise > 0.0 {
            None
        } else {
            let total: u64 = states.iter().sum();
            if total == 0 {
                return None;
            }
            states.iter().position(|&c| c == total)
        }
    }
}

impl SealedDynamics for NoisyThreeMajority {}

impl DynamicsCore for NoisyThreeMajority {
    #[inline]
    fn node_update_core<S: SampleSource + ?Sized, R: RngCore + ?Sized>(
        &self,
        _own: u32,
        source: &mut S,
        _scratch: &mut NodeScratch,
        rng: &mut R,
    ) -> u32 {
        let mut draw = |rng: &mut R| -> u32 {
            if self.noise > 0.0 && rng.gen::<f64>() < self.noise {
                rng.gen_range(0..self.k_colors as u32)
            } else {
                source.draw(rng)
            }
        };
        let a = draw(rng);
        let b = draw(rng);
        let c = draw(rng);
        if a == b || a == c {
            a
        } else if b == c {
            b
        } else {
            a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::CliqueSampler;
    use plurality_sampling::{CountSampler, Xoshiro256PlusPlus};
    use rand::SeedableRng;

    #[test]
    fn zero_noise_matches_three_majority_kernel() {
        let counts = [500u64, 300, 200];
        let d = NoisyThreeMajority::new(3, 0.0);
        let mut q = [0.0f64; 3];
        d.effective_probs(&counts, &mut q);
        assert!((q[0] - 0.5).abs() < 1e-12);
        // One round expectation equals Lemma 1.
        let mut expect = [0.0f64; 3];
        crate::kernels::three_majority_probs(&counts, &mut expect);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let trials = 3_000;
        let mut mean = [0.0f64; 3];
        let mut next = [0u64; 3];
        for _ in 0..trials {
            d.step_mean_field(&counts, &mut next, &mut rng);
            for (m, &x) in mean.iter_mut().zip(&next) {
                *m += x as f64;
            }
        }
        for j in 0..3 {
            let sim = mean[j] / trials as f64;
            let exact = expect[j] * 1000.0;
            assert!((sim - exact).abs() < 10.0, "color {j}: {sim} vs {exact}");
        }
    }

    #[test]
    fn full_noise_is_uniform() {
        let counts = [1000u64, 0];
        let d = NoisyThreeMajority::new(2, 1.0);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut next = [0u64; 2];
        let trials = 2_000;
        let mut acc = 0.0;
        for _ in 0..trials {
            d.step_mean_field(&counts, &mut next, &mut rng);
            acc += next[0] as f64;
        }
        let mean = acc / trials as f64;
        // All-noise: every node flips a fair 3-sample coin → mean n/2.
        assert!((mean - 500.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn node_rule_matches_kernel_under_noise() {
        let counts = [600u64, 250, 150];
        let d = NoisyThreeMajority::new(3, 0.2);
        let cs = CountSampler::new(&counts);
        let mut sampler = CliqueSampler::new(&cs);
        let mut scratch = NodeScratch::with_states(3);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let trials = 200_000;
        let mut freq = [0u64; 3];
        for _ in 0..trials {
            freq[d.node_update(0, &mut sampler, &mut scratch, &mut rng) as usize] += 1;
        }
        // Kernel expectation.
        let mut q = [0.0f64; 3];
        d.effective_probs(&counts, &mut q);
        let s2: f64 = q.iter().map(|x| x * x).sum();
        for j in 0..3 {
            let expect = q[j] * (1.0 + q[j] - s2);
            let sim = freq[j] as f64 / trials as f64;
            let sigma = (expect * (1.0 - expect) / trials as f64).sqrt();
            assert!(
                (sim - expect).abs() < 6.0 * sigma,
                "color {j}: {sim} vs {expect}"
            );
        }
    }

    #[test]
    fn monochromatic_not_absorbing_under_noise() {
        let d = NoisyThreeMajority::new(2, 0.3);
        let counts = [1000u64, 0];
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut next = [0u64; 2];
        d.step_mean_field(&counts, &mut next, &mut rng);
        assert!(next[1] > 0, "noise must reintroduce the dead color");
        assert_eq!(d.consensus(&[1000, 0]), None);
        let clean = NoisyThreeMajority::new(2, 0.0);
        assert_eq!(clean.consensus(&[1000, 0]), Some(0));
    }

    #[test]
    fn critical_noise_values() {
        assert!((NoisyThreeMajority::critical_noise(2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((NoisyThreeMajority::critical_noise(4) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn below_critical_keeps_bias_above_loses_it() {
        // n = 10^6, k = 2: run 600 rounds from a 55/45 start and compare
        // the surviving bias below vs above p* = 1/3.
        let n = 1_000_000u64;
        let start = [550_000u64, 450_000];
        let run = |p: f64, seed: u64| -> f64 {
            let d = NoisyThreeMajority::new(2, p);
            let mut cur = start.to_vec();
            let mut next = vec![0u64; 2];
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            for _ in 0..600 {
                d.step_mean_field(&cur, &mut next, &mut rng);
                std::mem::swap(&mut cur, &mut next);
            }
            (cur[0] as f64 - cur[1] as f64).abs() / n as f64
        };
        let sub = run(0.15, 5); // well below 1/3
        let sup = run(0.55, 6); // well above 1/3
        assert!(sub > 0.3, "sub-critical bias collapsed: {sub}");
        assert!(sup < 0.05, "super-critical bias survived: {sup}");
    }

    #[test]
    #[should_panic(expected = "noise must be in")]
    fn rejects_invalid_noise() {
        let _ = NoisyThreeMajority::new(2, 1.5);
    }
}
