//! The paper's protagonist: the **3-majority dynamics**, and its
//! generalization, the **h-plurality dynamics** (paper §1 and §4.3).
//!
//! * 3-majority: sample three nodes u.a.r. (self included, with
//!   repetition) and adopt the majority color of the sample; on three
//!   distinct colors, take the first (the paper notes this is equivalent
//!   to a u.a.r. tie-break).
//! * h-plurality: sample `h` nodes and adopt the plurality color of the
//!   sample, ties broken u.a.r.  `h = 1` is the voter/polling rule, and
//!   `h = 3` coincides in law with 3-majority.

use crate::dynamics::sealed::SealedDynamics;
use crate::dynamics::{
    clique_step_core, DynSampler, Dynamics, DynamicsCore, NodeScratch, SampleSource, StateSampler,
};
use crate::kernels::{h_plurality_probs, multiset_count, three_majority_probs};
use plurality_sampling::multinomial::sample_multinomial;
use rand::{Rng, RngCore};
use std::any::Any;

/// Tie-breaking rule when all three samples are distinct.
///
/// The paper (§2) observes these produce the same process law; we keep
/// both to verify that claim empirically (DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieRule {
    /// Adopt the first sampled color (the paper's stated rule).
    #[default]
    FirstSample,
    /// Adopt a uniformly random one of the three.
    UniformRandom,
}

/// The 3-majority dynamics with its exact Lemma 1 mean-field kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreeMajority {
    /// Tie handling on three distinct samples.
    pub tie_rule: TieRule,
}

impl ThreeMajority {
    /// 3-majority with the paper's first-sample tie rule.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// 3-majority breaking three-way ties uniformly at random.
    #[must_use]
    pub fn with_uniform_ties() -> Self {
        Self {
            tie_rule: TieRule::UniformRandom,
        }
    }
}

impl Dynamics for ThreeMajority {
    fn name(&self) -> String {
        "3-majority".into()
    }

    fn node_update(
        &self,
        own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        self.node_update_core(own, &mut DynSampler(sampler), scratch, rng)
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        let n: u64 = cur.iter().sum();
        let mut probs = vec![0.0f64; cur.len()];
        three_majority_probs(cur, &mut probs);
        sample_multinomial(n, &probs, next, rng);
    }

    fn has_fast_kernel(&self) -> bool {
        true
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn fixed_draws(&self) -> Option<usize> {
        match self.tie_rule {
            // Exactly three draws, tie resolved without randomness.
            TieRule::FirstSample => Some(3),
            // Three-way ties consume an extra `gen_range` — draw count is
            // fixed but RNG consumption is not.
            TieRule::UniformRandom => None,
        }
    }
}

impl SealedDynamics for ThreeMajority {}

impl DynamicsCore for ThreeMajority {
    #[inline]
    fn node_update_core<S: SampleSource + ?Sized, R: RngCore + ?Sized>(
        &self,
        _own: u32,
        source: &mut S,
        _scratch: &mut NodeScratch,
        rng: &mut R,
    ) -> u32 {
        let a = source.draw(rng);
        let b = source.draw(rng);
        let c = source.draw(rng);
        // Majority if any two agree; otherwise the tie rule.
        if a == b || a == c {
            a
        } else if b == c {
            b
        } else {
            match self.tie_rule {
                TieRule::FirstSample => a,
                TieRule::UniformRandom => match rng.gen_range(0..3u8) {
                    0 => a,
                    1 => b,
                    _ => c,
                },
            }
        }
    }
}

/// The h-plurality dynamics: adopt the plurality among `h` u.a.r. samples,
/// ties broken u.a.r. among the most frequent sampled colors.
///
/// # Mean-field path and the enumeration-refusal threshold
///
/// A mean-field round is exact either way, but takes one of two paths:
///
/// * **Enumeration kernel** — visits all `C(h+k−1, h)` sample multisets
///   and draws one multinomial.  Used iff
///   [`HPlurality::enumeration_feasible`] holds, i.e. the multiset count
///   is at most [`crate::kernels::ENUMERATION_BUDGET`] (2·10⁶).
/// * **Per-node fallback** — simulates all `n` node updates
///   (`O(n·h)`, monomorphized via
///   [`crate::dynamics::clique_step_core`]) when the budget is exceeded.
///
/// The threshold is a pure function of `(k, h)` — never of `n` or the
/// counts — so which path a configuration takes is deterministic and
/// documented rather than an accident of the kernel internals.
#[derive(Debug, Clone, Copy)]
pub struct HPlurality {
    /// Sample size `h ≥ 1`.
    pub h: usize,
}

impl HPlurality {
    /// h-plurality with the given sample size.
    ///
    /// # Panics
    /// Panics if `h == 0`.
    #[must_use]
    pub fn new(h: usize) -> Self {
        assert!(h > 0, "h must be positive");
        Self { h }
    }

    /// Whether the exact enumeration kernel is used for a `k_colors`
    /// state space: `C(h+k−1, h) ≤` [`crate::kernels::ENUMERATION_BUDGET`].
    /// When `false`, [`Dynamics::step_mean_field`] takes the `O(n·h)`
    /// per-node fallback (still exact).
    #[must_use]
    pub fn enumeration_feasible(&self, k_colors: usize) -> bool {
        multiset_count(k_colors, self.h).is_some()
    }
}

impl Dynamics for HPlurality {
    fn name(&self) -> String {
        format!("{}-plurality", self.h)
    }

    fn node_update(
        &self,
        own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        self.node_update_core(own, &mut DynSampler(sampler), scratch, rng)
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        if self.enumeration_feasible(cur.len()) {
            let n: u64 = cur.iter().sum();
            let mut probs = vec![0.0f64; cur.len()];
            let enumerated = h_plurality_probs(cur, self.h, &mut probs);
            debug_assert!(enumerated, "feasibility check and kernel disagree");
            sample_multinomial(n, &probs, next, rng);
        } else {
            clique_step_core(self, cur, next, rng);
        }
    }

    fn has_fast_kernel(&self) -> bool {
        // `k` is unknown here; report conservatively.  Callers that know
        // the state count should ask `has_fast_kernel_for`.
        false
    }

    fn has_fast_kernel_for(&self, k_states: usize) -> bool {
        self.enumeration_feasible(k_states)
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn fixed_draws(&self) -> Option<usize> {
        // The argmax tie-break is a reservoir pass that consumes
        // `gen_range` even for a unique winner, so RNG consumption is
        // never limited to the `h` sampler draws.
        None
    }
}

impl SealedDynamics for HPlurality {}

impl DynamicsCore for HPlurality {
    #[inline]
    fn node_update_core<S: SampleSource + ?Sized, R: RngCore + ?Sized>(
        &self,
        _own: u32,
        source: &mut S,
        scratch: &mut NodeScratch,
        rng: &mut R,
    ) -> u32 {
        // Tally h samples, tracking the running maximum.
        let mut best_count = 0u32;
        for _ in 0..self.h {
            let s = source.draw(rng);
            scratch.ensure_states(s as usize + 1);
            scratch.tally(s);
            let c = scratch.counts[s as usize];
            if c > best_count {
                best_count = c;
            }
        }
        // Uniform choice among the argmax colors via reservoir sampling
        // over the touched set (≤ h entries).
        let mut winner = u32::MAX;
        let mut seen = 0u32;
        for &state in &scratch.touched {
            if scratch.counts[state as usize] == best_count {
                seen += 1;
                if rng.gen_range(0..seen) == 0 {
                    winner = state;
                }
            }
        }
        scratch.clear_counts();
        debug_assert_ne!(winner, u32::MAX);
        winner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::CliqueSampler;
    use plurality_sampling::{CountSampler, Xoshiro256PlusPlus};
    use rand::SeedableRng;

    fn node_update_frequencies(
        d: &dyn Dynamics,
        counts: &[u64],
        trials: usize,
        seed: u64,
    ) -> Vec<f64> {
        let cs = CountSampler::new(counts);
        let mut sampler = CliqueSampler::new(&cs);
        let mut scratch = NodeScratch::with_states(counts.len());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut freq = vec![0u64; counts.len()];
        for _ in 0..trials {
            let s = d.node_update(0, &mut sampler, &mut scratch, &mut rng);
            freq[s as usize] += 1;
        }
        freq.iter().map(|&f| f as f64 / trials as f64).collect()
    }

    #[test]
    fn three_majority_node_rule_matches_lemma1() {
        let counts = [500u64, 300, 200];
        let mut expect = [0.0; 3];
        crate::kernels::three_majority_probs(&counts, &mut expect);
        let freq = node_update_frequencies(&ThreeMajority::new(), &counts, 200_000, 1);
        for (j, (&f, &e)) in freq.iter().zip(&expect).enumerate() {
            let sigma = (e * (1.0 - e) / 200_000.0).sqrt();
            assert!((f - e).abs() < 5.0 * sigma, "color {j}: {f} vs {e}");
        }
    }

    #[test]
    fn tie_rules_agree_in_law() {
        // Paper §2: first-sample vs uniform tie-breaking is immaterial.
        let counts = [400u64, 350, 250];
        let f_first = node_update_frequencies(&ThreeMajority::new(), &counts, 300_000, 2);
        let f_unif =
            node_update_frequencies(&ThreeMajority::with_uniform_ties(), &counts, 300_000, 3);
        for (j, (&a, &b)) in f_first.iter().zip(&f_unif).enumerate() {
            // Two independent estimates of the same probability.
            let sigma = (2.0 * 0.5 * 0.5 / 300_000.0f64).sqrt();
            assert!((a - b).abs() < 6.0 * sigma, "color {j}: {a} vs {b}");
        }
    }

    #[test]
    fn h3_node_rule_matches_three_majority_law() {
        let counts = [500u64, 300, 200];
        let f3 = node_update_frequencies(&ThreeMajority::new(), &counts, 300_000, 4);
        let fh = node_update_frequencies(&HPlurality::new(3), &counts, 300_000, 5);
        for (j, (&a, &b)) in f3.iter().zip(&fh).enumerate() {
            let sigma = (2.0 * 0.5 * 0.5 / 300_000.0f64).sqrt();
            assert!((a - b).abs() < 6.0 * sigma, "color {j}: {a} vs {b}");
        }
    }

    #[test]
    fn h_plurality_node_rule_matches_enumeration_kernel() {
        let counts = [450u64, 350, 200];
        let mut expect = [0.0; 3];
        assert!(h_plurality_probs(&counts, 5, &mut expect));
        let freq = node_update_frequencies(&HPlurality::new(5), &counts, 200_000, 6);
        for (j, (&f, &e)) in freq.iter().zip(&expect).enumerate() {
            let sigma = (e.max(1e-9) * (1.0 - e) / 200_000.0).sqrt();
            assert!((f - e).abs() < 6.0 * sigma, "color {j}: {f} vs {e}");
        }
    }

    #[test]
    fn mean_field_step_preserves_population() {
        let d = ThreeMajority::new();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let cur = [600u64, 250, 150];
        let mut next = [0u64; 3];
        d.step_mean_field(&cur, &mut next, &mut rng);
        assert_eq!(next.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn mean_field_absorbs_consensus() {
        let d = ThreeMajority::new();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let cur = [0u64, 0, 12345];
        let mut next = [0u64; 3];
        d.step_mean_field(&cur, &mut next, &mut rng);
        assert_eq!(next, [0, 0, 12345]);
    }

    #[test]
    fn h_plurality_large_k_falls_back_and_preserves_population() {
        let d = HPlurality::new(9);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let cur = vec![10u64; 300]; // enumeration infeasible
        let mut next = vec![0u64; 300];
        d.step_mean_field(&cur, &mut next, &mut rng);
        assert_eq!(next.iter().sum::<u64>(), 3000);
    }

    #[test]
    fn h_plurality_amplifies_with_h() {
        // One mean-field round from a biased start: larger h should give
        // the plurality a larger expected boost.
        let cur = [6_000u64, 4_000];
        let trials = 300;
        let mut mean_gain = Vec::new();
        for (h, seed) in [(3usize, 10u64), (9, 11)] {
            let d = HPlurality::new(h);
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            let mut next = [0u64; 2];
            let mut acc = 0i64;
            for _ in 0..trials {
                d.step_mean_field(&cur, &mut next, &mut rng);
                acc += next[0] as i64 - cur[0] as i64;
            }
            mean_gain.push(acc as f64 / trials as f64);
        }
        assert!(
            mean_gain[1] > mean_gain[0],
            "9-plurality gain {} should exceed 3-plurality gain {}",
            mean_gain[1],
            mean_gain[0]
        );
    }

    #[test]
    fn enumeration_threshold_is_explicit_and_sharp() {
        // h = 7: C(k+6, 7) crosses ENUMERATION_BUDGET = 2·10⁶ between
        // k = 23 (C(29,7) = 1 560 780) and k = 24 (C(30,7) = 2 035 800).
        let d = HPlurality::new(7);
        assert_eq!(crate::kernels::multiset_count(23, 7), Some(1_560_780));
        assert_eq!(crate::kernels::multiset_count(24, 7), None);
        assert!(d.enumeration_feasible(23));
        assert!(!d.enumeration_feasible(24));
        // The advertised kernel speed agrees with the path taken.
        assert!(d.has_fast_kernel_for(23));
        assert!(!d.has_fast_kernel_for(24));
        // And the blanket `has_fast_kernel` stays conservative.
        assert!(!d.has_fast_kernel());
    }

    #[test]
    fn enumeration_threshold_depends_only_on_k_and_h() {
        // Feasibility must not depend on n or the counts: both a tiny and
        // a huge population at the same (k, h) take the same path.
        let d = HPlurality::new(9);
        for k in [2usize, 8, 300] {
            let feasible = d.enumeration_feasible(k);
            assert_eq!(
                feasible,
                crate::kernels::multiset_count(k, 9).is_some(),
                "k = {k}"
            );
            assert_eq!(d.has_fast_kernel_for(k), feasible, "k = {k}");
        }
    }

    #[test]
    fn fallback_path_matches_enumeration_law_at_the_boundary() {
        // k just below vs just above the refusal threshold for h = 3:
        // both paths are exact, so one mean-field round from the same
        // counts must produce statistically identical expectations.
        let d = HPlurality::new(3);
        let k_feasible = 200; // C(202, 3) ≈ 1.37e6 ≤ budget
        assert!(d.enumeration_feasible(k_feasible));
        let k_fallback = 300; // C(302, 3) ≈ 4.6e6 > budget
        assert!(!d.enumeration_feasible(k_fallback));
        // Exercise the fallback: population preserved, plurality favored.
        let mut counts = vec![20u64; k_fallback];
        counts[0] = 2_000;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(12);
        let mut next = vec![0u64; k_fallback];
        let trials = 60;
        let mut plurality_mean = 0.0;
        for _ in 0..trials {
            d.step_mean_field(&counts, &mut next, &mut rng);
            assert_eq!(
                next.iter().sum::<u64>(),
                counts.iter().sum::<u64>(),
                "population must be preserved on the fallback path"
            );
            plurality_mean += next[0] as f64;
        }
        plurality_mean /= trials as f64;
        assert!(
            plurality_mean > 2_000.0,
            "3-plurality must amplify the plurality, got {plurality_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "h must be positive")]
    fn h_zero_rejected() {
        let _ = HPlurality::new(0);
    }

    #[test]
    fn names() {
        assert_eq!(ThreeMajority::new().name(), "3-majority");
        assert_eq!(HPlurality::new(7).name(), "7-plurality");
    }
}
