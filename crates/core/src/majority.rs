//! The paper's protagonist: the **3-majority dynamics**, and its
//! generalization, the **h-plurality dynamics** (paper §1 and §4.3).
//!
//! * 3-majority: sample three nodes u.a.r. (self included, with
//!   repetition) and adopt the majority color of the sample; on three
//!   distinct colors, take the first (the paper notes this is equivalent
//!   to a u.a.r. tie-break).
//! * h-plurality: sample `h` nodes and adopt the plurality color of the
//!   sample, ties broken u.a.r.  `h = 1` is the voter/polling rule, and
//!   `h = 3` coincides in law with 3-majority.

use crate::dynamics::{Dynamics, NodeScratch, StateSampler};
use crate::kernels::{h_plurality_probs, three_majority_probs};
use plurality_sampling::multinomial::sample_multinomial;
use rand::{Rng, RngCore};

/// Tie-breaking rule when all three samples are distinct.
///
/// The paper (§2) observes these produce the same process law; we keep
/// both to verify that claim empirically (DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieRule {
    /// Adopt the first sampled color (the paper's stated rule).
    #[default]
    FirstSample,
    /// Adopt a uniformly random one of the three.
    UniformRandom,
}

/// The 3-majority dynamics with its exact Lemma 1 mean-field kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreeMajority {
    /// Tie handling on three distinct samples.
    pub tie_rule: TieRule,
}

impl ThreeMajority {
    /// 3-majority with the paper's first-sample tie rule.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// 3-majority breaking three-way ties uniformly at random.
    #[must_use]
    pub fn with_uniform_ties() -> Self {
        Self {
            tie_rule: TieRule::UniformRandom,
        }
    }
}

impl Dynamics for ThreeMajority {
    fn name(&self) -> String {
        "3-majority".into()
    }

    fn node_update(
        &self,
        _own: u32,
        sampler: &mut dyn StateSampler,
        _scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        let a = sampler.sample_state(rng);
        let b = sampler.sample_state(rng);
        let c = sampler.sample_state(rng);
        // Majority if any two agree; otherwise the tie rule.
        if a == b || a == c {
            a
        } else if b == c {
            b
        } else {
            match self.tie_rule {
                TieRule::FirstSample => a,
                TieRule::UniformRandom => match rng.gen_range(0..3u8) {
                    0 => a,
                    1 => b,
                    _ => c,
                },
            }
        }
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        let n: u64 = cur.iter().sum();
        let mut probs = vec![0.0f64; cur.len()];
        three_majority_probs(cur, &mut probs);
        sample_multinomial(n, &probs, next, rng);
    }

    fn has_fast_kernel(&self) -> bool {
        true
    }
}

/// The h-plurality dynamics: adopt the plurality among `h` u.a.r. samples,
/// ties broken u.a.r. among the most frequent sampled colors.
///
/// Mean-field rounds use exact multiset enumeration when
/// `C(h+k−1, h)` is within budget and fall back to explicit per-node
/// simulation otherwise (both exact; see `plurality-core::kernels`).
#[derive(Debug, Clone, Copy)]
pub struct HPlurality {
    /// Sample size `h ≥ 1`.
    pub h: usize,
}

impl HPlurality {
    /// h-plurality with the given sample size.
    ///
    /// # Panics
    /// Panics if `h == 0`.
    #[must_use]
    pub fn new(h: usize) -> Self {
        assert!(h > 0, "h must be positive");
        Self { h }
    }
}

impl Dynamics for HPlurality {
    fn name(&self) -> String {
        format!("{}-plurality", self.h)
    }

    fn node_update(
        &self,
        _own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        // Tally h samples, tracking the running maximum.
        let mut best_count = 0u32;
        for _ in 0..self.h {
            let s = sampler.sample_state(rng);
            scratch.ensure_states(s as usize + 1);
            scratch.tally(s);
            let c = scratch.counts[s as usize];
            if c > best_count {
                best_count = c;
            }
        }
        // Uniform choice among the argmax colors via reservoir sampling
        // over the touched set (≤ h entries).
        let mut winner = u32::MAX;
        let mut seen = 0u32;
        for &state in &scratch.touched {
            if scratch.counts[state as usize] == best_count {
                seen += 1;
                if rng.gen_range(0..seen) == 0 {
                    winner = state;
                }
            }
        }
        scratch.clear_counts();
        debug_assert_ne!(winner, u32::MAX);
        winner
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        let n: u64 = cur.iter().sum();
        let mut probs = vec![0.0f64; cur.len()];
        if h_plurality_probs(cur, self.h, &mut probs) {
            sample_multinomial(n, &probs, next, rng);
        } else {
            crate::dynamics::generic_clique_step(self, cur, next, rng);
        }
    }

    fn has_fast_kernel(&self) -> bool {
        // Only when enumeration is feasible; report conservatively.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::CliqueSampler;
    use plurality_sampling::{CountSampler, Xoshiro256PlusPlus};
    use rand::SeedableRng;

    fn node_update_frequencies(
        d: &dyn Dynamics,
        counts: &[u64],
        trials: usize,
        seed: u64,
    ) -> Vec<f64> {
        let cs = CountSampler::new(counts);
        let mut sampler = CliqueSampler::new(&cs);
        let mut scratch = NodeScratch::with_states(counts.len());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut freq = vec![0u64; counts.len()];
        for _ in 0..trials {
            let s = d.node_update(0, &mut sampler, &mut scratch, &mut rng);
            freq[s as usize] += 1;
        }
        freq.iter().map(|&f| f as f64 / trials as f64).collect()
    }

    #[test]
    fn three_majority_node_rule_matches_lemma1() {
        let counts = [500u64, 300, 200];
        let mut expect = [0.0; 3];
        crate::kernels::three_majority_probs(&counts, &mut expect);
        let freq = node_update_frequencies(&ThreeMajority::new(), &counts, 200_000, 1);
        for (j, (&f, &e)) in freq.iter().zip(&expect).enumerate() {
            let sigma = (e * (1.0 - e) / 200_000.0).sqrt();
            assert!((f - e).abs() < 5.0 * sigma, "color {j}: {f} vs {e}");
        }
    }

    #[test]
    fn tie_rules_agree_in_law() {
        // Paper §2: first-sample vs uniform tie-breaking is immaterial.
        let counts = [400u64, 350, 250];
        let f_first = node_update_frequencies(&ThreeMajority::new(), &counts, 300_000, 2);
        let f_unif =
            node_update_frequencies(&ThreeMajority::with_uniform_ties(), &counts, 300_000, 3);
        for (j, (&a, &b)) in f_first.iter().zip(&f_unif).enumerate() {
            // Two independent estimates of the same probability.
            let sigma = (2.0 * 0.5 * 0.5 / 300_000.0f64).sqrt();
            assert!((a - b).abs() < 6.0 * sigma, "color {j}: {a} vs {b}");
        }
    }

    #[test]
    fn h3_node_rule_matches_three_majority_law() {
        let counts = [500u64, 300, 200];
        let f3 = node_update_frequencies(&ThreeMajority::new(), &counts, 300_000, 4);
        let fh = node_update_frequencies(&HPlurality::new(3), &counts, 300_000, 5);
        for (j, (&a, &b)) in f3.iter().zip(&fh).enumerate() {
            let sigma = (2.0 * 0.5 * 0.5 / 300_000.0f64).sqrt();
            assert!((a - b).abs() < 6.0 * sigma, "color {j}: {a} vs {b}");
        }
    }

    #[test]
    fn h_plurality_node_rule_matches_enumeration_kernel() {
        let counts = [450u64, 350, 200];
        let mut expect = [0.0; 3];
        assert!(h_plurality_probs(&counts, 5, &mut expect));
        let freq = node_update_frequencies(&HPlurality::new(5), &counts, 200_000, 6);
        for (j, (&f, &e)) in freq.iter().zip(&expect).enumerate() {
            let sigma = (e.max(1e-9) * (1.0 - e) / 200_000.0).sqrt();
            assert!((f - e).abs() < 6.0 * sigma, "color {j}: {f} vs {e}");
        }
    }

    #[test]
    fn mean_field_step_preserves_population() {
        let d = ThreeMajority::new();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let cur = [600u64, 250, 150];
        let mut next = [0u64; 3];
        d.step_mean_field(&cur, &mut next, &mut rng);
        assert_eq!(next.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn mean_field_absorbs_consensus() {
        let d = ThreeMajority::new();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let cur = [0u64, 0, 12345];
        let mut next = [0u64; 3];
        d.step_mean_field(&cur, &mut next, &mut rng);
        assert_eq!(next, [0, 0, 12345]);
    }

    #[test]
    fn h_plurality_large_k_falls_back_and_preserves_population() {
        let d = HPlurality::new(9);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let cur = vec![10u64; 300]; // enumeration infeasible
        let mut next = vec![0u64; 300];
        d.step_mean_field(&cur, &mut next, &mut rng);
        assert_eq!(next.iter().sum::<u64>(), 3000);
    }

    #[test]
    fn h_plurality_amplifies_with_h() {
        // One mean-field round from a biased start: larger h should give
        // the plurality a larger expected boost.
        let cur = [6_000u64, 4_000];
        let trials = 300;
        let mut mean_gain = Vec::new();
        for (h, seed) in [(3usize, 10u64), (9, 11)] {
            let d = HPlurality::new(h);
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            let mut next = [0u64; 2];
            let mut acc = 0i64;
            for _ in 0..trials {
                d.step_mean_field(&cur, &mut next, &mut rng);
                acc += next[0] as i64 - cur[0] as i64;
            }
            mean_gain.push(acc as f64 / trials as f64);
        }
        assert!(
            mean_gain[1] > mean_gain[0],
            "9-plurality gain {} should exceed 3-plurality gain {}",
            mean_gain[1],
            mean_gain[0]
        );
    }

    #[test]
    #[should_panic(expected = "h must be positive")]
    fn h_zero_rejected() {
        let _ = HPlurality::new(0);
    }

    #[test]
    fn names() {
        assert_eq!(ThreeMajority::new().name(), "3-majority");
        assert_eq!(HPlurality::new(7).name(), "7-plurality");
    }
}
