//! The **undecided-state dynamics** (Angluin–Aspnes–Eisenstat's protocol in
//! the parallel pull model analyzed by Becchetti et al., SODA'15): the
//! paper's Related Work comparator that trades one extra state for
//! configuration-dependent speed.
//!
//! Each round every node pulls one random node's state:
//! * an **undecided** node adopts whatever it pulled (color or undecided);
//! * a **colored** node that pulls a *different* color becomes undecided;
//!   pulling its own color or an undecided node leaves it unchanged.
//!
//! States are `0..k` (colors) plus the extra state `k` (undecided); a
//! color configuration is lifted by appending an empty undecided slot.
//! Because the rule must distinguish "a different color" from "undecided",
//! the dynamics is constructed for a fixed number of colors.
//!
//! The comparison facts reproduced in experiment E10: convergence time is
//! linear in the *monochromatic distance* `md(c)`, exponentially faster
//! than 3-majority on configurations supported on few colors — but for
//! `k = ω(√n)` there are configurations where the plurality color
//! disappears outright in one round with constant probability.

use crate::config::Configuration;
use crate::dynamics::sealed::SealedDynamics;
use crate::dynamics::{
    DynSampler, Dynamics, DynamicsCore, NodeScratch, SampleSource, StateSampler,
};
use plurality_sampling::binomial::sample_binomial;
use plurality_sampling::multinomial::sample_multinomial;
use rand::RngCore;
use std::any::Any;

/// The undecided-state dynamics over a fixed color count.
#[derive(Debug, Clone, Copy)]
pub struct UndecidedState {
    k_colors: usize,
}

impl UndecidedState {
    /// Construct for `k` colors (the undecided state gets index `k`).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k_colors: usize) -> Self {
        assert!(k_colors > 0, "need at least one color");
        Self { k_colors }
    }

    /// The undecided state index (`k`).
    #[must_use]
    pub fn undecided_index(&self) -> u32 {
        self.k_colors as u32
    }
}

impl Dynamics for UndecidedState {
    fn name(&self) -> String {
        "undecided-state".into()
    }

    fn state_count(&self, k_colors: usize) -> usize {
        k_colors + 1
    }

    fn color_count(&self, n_states: usize) -> usize {
        n_states - 1
    }

    fn lift(&self, colors: &Configuration) -> Configuration {
        assert_eq!(
            colors.k(),
            self.k_colors,
            "configuration has {} colors but dynamics was built for {}",
            colors.k(),
            self.k_colors
        );
        let mut lifted = colors.clone();
        lifted.push_empty_state();
        lifted
    }

    fn node_update(
        &self,
        own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        self.node_update_core(own, &mut DynSampler(sampler), scratch, rng)
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        // `cur` is a lifted state vector: k colors then the undecided slot.
        let states = cur.len();
        assert_eq!(
            states,
            self.k_colors + 1,
            "state vector must hold k colors + undecided"
        );
        assert_eq!(states, next.len());
        let k = self.k_colors;
        let n: u64 = cur.iter().sum();
        let n_f = n as f64;
        let undecided = cur[k];
        next.fill(0);

        // Colored groups: stay with prob (c_j + u)/n, else become undecided.
        for j in 0..k {
            let cj = cur[j];
            if cj == 0 {
                continue;
            }
            let stay_p = (cj + undecided) as f64 / n_f;
            let stay = sample_binomial(cj, stay_p, rng);
            next[j] += stay;
            next[k] += cj - stay;
        }
        // Undecided group: adopt a random node's state verbatim.
        if undecided > 0 {
            let probs: Vec<f64> = cur.iter().map(|&c| c as f64 / n_f).collect();
            let mut out = vec![0u64; states];
            sample_multinomial(undecided, &probs, &mut out, rng);
            for (slot, &x) in next.iter_mut().zip(&out) {
                *slot += x;
            }
        }
        debug_assert_eq!(next.iter().sum::<u64>(), n);
    }

    fn has_fast_kernel(&self) -> bool {
        true
    }

    fn consensus(&self, states: &[u64]) -> Option<usize> {
        let total: u64 = states.iter().sum();
        if total == 0 {
            return None;
        }
        let k = states.len() - 1;
        states[..k].iter().position(|&c| c == total)
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn fixed_draws(&self) -> Option<usize> {
        Some(1)
    }
}

impl SealedDynamics for UndecidedState {}

impl DynamicsCore for UndecidedState {
    #[inline]
    fn node_update_core<S: SampleSource + ?Sized, R: RngCore + ?Sized>(
        &self,
        own: u32,
        source: &mut S,
        _scratch: &mut NodeScratch,
        rng: &mut R,
    ) -> u32 {
        let undecided = self.undecided_index();
        let pulled = source.draw(rng);
        if own == undecided {
            pulled
        } else if pulled == undecided || pulled == own {
            own
        } else {
            undecided
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::builders;
    use plurality_sampling::Xoshiro256PlusPlus;
    use rand::SeedableRng;

    #[test]
    fn lift_appends_empty_undecided() {
        let colors = builders::biased(100, 3, 10);
        let d = UndecidedState::new(3);
        let lifted = d.lift(&colors);
        assert_eq!(lifted.k(), 4);
        assert_eq!(lifted.count(3), 0);
        assert_eq!(lifted.n(), 100);
        assert_eq!(d.state_count(3), 4);
        assert_eq!(d.color_count(4), 3);
    }

    #[test]
    #[should_panic(expected = "built for")]
    fn lift_rejects_mismatched_k() {
        let d = UndecidedState::new(3);
        let _ = d.lift(&builders::balanced(10, 4));
    }

    #[test]
    fn node_rule_truth_table() {
        let d = UndecidedState::new(3); // states 0..=3, undecided = 3
        struct Fixed(u32);
        impl StateSampler for Fixed {
            fn sample_state(&mut self, _rng: &mut dyn RngCore) -> u32 {
                self.0
            }
        }
        let mut scratch = NodeScratch::with_states(4);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        // Undecided adopts anything.
        assert_eq!(d.node_update(3, &mut Fixed(1), &mut scratch, &mut rng), 1);
        assert_eq!(d.node_update(3, &mut Fixed(3), &mut scratch, &mut rng), 3);
        // Colored keeps own on same color or undecided pull.
        assert_eq!(d.node_update(0, &mut Fixed(0), &mut scratch, &mut rng), 0);
        assert_eq!(d.node_update(0, &mut Fixed(3), &mut scratch, &mut rng), 0);
        // Colored pulls different color → undecided.
        assert_eq!(d.node_update(0, &mut Fixed(2), &mut scratch, &mut rng), 3);
    }

    #[test]
    fn kernel_population_preserved_and_matches_expectation() {
        let d = UndecidedState::new(3);
        let cur = [500u64, 300, 0, 200]; // 2 live colors + empty + 200 undecided
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let trials = 3_000;
        let mut mean = [0.0f64; 4];
        let mut next = [0u64; 4];
        for _ in 0..trials {
            d.step_mean_field(&cur, &mut next, &mut rng);
            assert_eq!(next.iter().sum::<u64>(), 1000);
            for (m, &x) in mean.iter_mut().zip(&next) {
                *m += x as f64;
            }
        }
        for m in &mut mean {
            *m /= trials as f64;
        }
        // E[next_j] = c_j(c_j + u)/n + u·c_j/n = c_j(c_j + 2u)/n.
        let n = 1000.0;
        let u = 200.0;
        for (j, &cj) in [500.0f64, 300.0, 0.0].iter().enumerate() {
            let expect = cj * (cj + 2.0 * u) / n;
            assert!(
                (mean[j] - expect).abs() < 0.02 * n,
                "color {j}: {} vs {expect}",
                mean[j]
            );
        }
    }

    #[test]
    fn kernel_matches_node_rule_distribution() {
        // One round from a mixed state, compared against the generic
        // per-node path (both exact; their laws must agree).
        let d = UndecidedState::new(2);
        let cur = [400u64, 350, 250];
        let trials = 4_000;
        let mut mean_kernel = [0.0f64; 3];
        let mut mean_generic = [0.0f64; 3];
        let mut next = [0u64; 3];
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        for _ in 0..trials {
            d.step_mean_field(&cur, &mut next, &mut rng);
            for (m, &x) in mean_kernel.iter_mut().zip(&next) {
                *m += x as f64;
            }
            crate::dynamics::generic_clique_step(&d, &cur, &mut next, &mut rng);
            for (m, &x) in mean_generic.iter_mut().zip(&next) {
                *m += x as f64;
            }
        }
        for j in 0..3 {
            let a = mean_kernel[j] / trials as f64;
            let b = mean_generic[j] / trials as f64;
            assert!((a - b).abs() < 10.0, "state {j}: kernel {a} vs generic {b}");
        }
    }

    #[test]
    fn consensus_requires_no_undecided() {
        let d = UndecidedState::new(2);
        assert_eq!(d.consensus(&[10, 0, 0]), Some(0));
        assert_eq!(d.consensus(&[9, 0, 1]), None); // one undecided left
        assert_eq!(d.consensus(&[0, 10, 0]), Some(1));
    }

    #[test]
    fn plurality_death_for_huge_k() {
        // SODA'15 §3 phenomenon: with k = ω(√n) there are configurations
        // where the plurality disappears in one round with constant
        // probability.  Extreme case: c_0 = 2, every other color 1.
        // Each plurality node stays colored only with prob 2/n.
        let k = 999usize;
        let n = 1000u64;
        let d = UndecidedState::new(k);
        let mut counts = vec![1u64; k + 1]; // k colors + undecided slot
        counts[0] = 2;
        counts[k] = 0; // undecided empty
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut next = vec![0u64; k + 1];
        let mut died = 0;
        let trials = 200;
        for _ in 0..trials {
            d.step_mean_field(&counts, &mut next, &mut rng);
            assert_eq!(next.iter().sum::<u64>(), n);
            if next[0] == 0 {
                died += 1;
            }
        }
        // P(both plurality nodes go undecided) = (1 − 2/n)² ≈ 0.996.
        assert!(
            died > trials * 9 / 10,
            "plurality died only {died}/{trials} times"
        );
    }

    #[test]
    fn binary_biased_start_drifts_to_plurality() {
        // k = 2 with a solid bias: undecided-state should converge to the
        // plurality color (Angluin et al.).  Run the kernel to absorption.
        let d = UndecidedState::new(2);
        let start = d.lift(&builders::binary(10_000, 2_000));
        let mut cur = start.counts().to_vec();
        let mut next = vec![0u64; cur.len()];
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut wins = 0;
        for trial in 0..20 {
            cur.copy_from_slice(start.counts());
            let mut rounds = 0;
            loop {
                d.step_mean_field(&cur, &mut next, &mut rng);
                std::mem::swap(&mut cur, &mut next);
                rounds += 1;
                if let Some(w) = d.consensus(&cur) {
                    if w == 0 {
                        wins += 1;
                    }
                    break;
                }
                assert!(rounds < 10_000, "trial {trial} did not converge");
            }
        }
        assert!(wins >= 18, "plurality won only {wins}/20");
    }
}
