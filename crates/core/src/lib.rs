//! Core objects of *Simple Dynamics for Plurality Consensus* (Becchetti,
//! Clementi, Natale, Pasquale, Silvestri, Trevisan — SPAA'14 / Distributed
//! Computing 2017): color configurations and the full zoo of anonymous
//! synchronous dynamics the paper studies or compares against.
//!
//! # The problem
//!
//! `n` anonymous agents each support a color from `[k]`; the initial
//! configuration has additive bias `s = c₍₁₎ − c₍₂₎` toward a plurality
//! color.  A *dynamics* is a memoryless synchronous update rule by which
//! every agent resamples its color from a few random peers.  The goal is
//! **plurality consensus**: absorb in the monochromatic configuration of
//! the initial plurality color.
//!
//! # What lives here
//!
//! * [`config::Configuration`] — exact integer configurations, with
//!   builders for every initial condition the paper's theorems use;
//! * [`dynamics::Dynamics`] — the common interface (per-node rule +
//!   exact mean-field kernel on the clique);
//! * [`majority::ThreeMajority`] — the paper's protagonist (Lemma 1
//!   kernel);
//! * [`majority::HPlurality`] — the `h`-sample generalization (§4.3);
//! * [`voter`] — voter/polling, 2-sample, and 2-choices baselines;
//! * [`median`] — the median dynamics of Doerr et al. (SPAA'11), in both
//!   the own+2-samples and 3-samples variants;
//! * [`undecided`] — the undecided-state dynamics (SODA'15 comparator);
//! * [`noisy::NoisyThreeMajority`] — 3-majority under uniform
//!   communication noise (follow-up literature; phase transition at
//!   `p = 1/(k+1)`);
//! * [`d3::TableD3`] — the whole class `D3(k)` of color-symmetric
//!   3-input rules, with the paper's clear-majority / uniform property
//!   checkers and the Lemma 8 counterexamples.
//!
//! # Quick start
//!
//! ```
//! use plurality_core::config::builders;
//! use plurality_core::dynamics::Dynamics;
//! use plurality_core::majority::ThreeMajority;
//! use plurality_sampling::stream_rng;
//!
//! // n = 100k nodes, k = 8 colors, bias 4000 toward color 0.
//! let cfg = builders::biased(100_000, 8, 4_000);
//! let dynamics = ThreeMajority::new();
//! let mut rng = stream_rng(1, 0);
//!
//! // One exact synchronous round on the clique (O(k) time).
//! let mut next = vec![0u64; cfg.k()];
//! dynamics.step_mean_field(cfg.counts(), &mut next, &mut rng);
//! assert_eq!(next.iter().sum::<u64>(), 100_000);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod d3;
pub mod dynamics;
pub mod kernels;
pub mod majority;
pub mod median;
pub mod noisy;
pub mod undecided;
pub mod voter;

pub use config::{builders, Configuration};
pub use d3::{ClearRule, TableD3};
pub use dynamics::{
    downcast_dynamics, CliqueSampler, DynDynamics, DynSampler, Dynamics, DynamicsCore, NodeScratch,
    SampleSource, SourceSampler, StateSampler,
};
pub use majority::{HPlurality, ThreeMajority, TieRule};
pub use median::{Median3, MedianOwn};
pub use noisy::NoisyThreeMajority;
pub use undecided::UndecidedState;
pub use voter::{TwoChoices, TwoSample, Voter};
