//! The class `D3(k)` of 3-input dynamics (paper §4.2) as executable
//! objects: every memoryless rule `f : [k]³ → [k]` with
//! `f(x₁,x₂,x₃) ∈ {x₁,x₂,x₃}` that is *color-symmetric* — its behavior
//! depends only on the order pattern of the sampled colors, not their
//! identities.
//!
//! A rule is described by two parts:
//!
//! * a [`ClearRule`]: what `f` returns on triples with a repeated color
//!   (Definition 2's *clear majority*);
//! * a `distinct` table of six entries: for each of the `3! = 6` order
//!   patterns of a triple of distinct colors, which *rank* (0 = smallest
//!   color index, 1 = middle, 2 = largest) wins.
//!
//! The paper's δ-counters (`δ_r, δ_g, δ_b` for a triple `r < g < b`) are
//! exactly the per-rank win counts of the `distinct` table, so Definition
//! 3's *uniform property* is `δ = (2,2,2)` and Theorem 3 says: a rule
//! solves plurality consensus iff it has `ClearRule::Majority` **and**
//! uniform δ.  The constructors below include the paper's
//! counterexamples (`δ = (1,3,2)` and `δ = (1,4,1)` from Lemma 8, the
//! median rule `δ = (0,6,0)` from Lemma 7's discussion).

use crate::dynamics::sealed::SealedDynamics;
use crate::dynamics::{
    DynSampler, Dynamics, DynamicsCore, NodeScratch, SampleSource, StateSampler,
};
use plurality_sampling::multinomial::sample_multinomial;
use rand::RngCore;

/// Behavior on triples with a repeated color (`(a,a,b)` patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClearRule {
    /// Return the repeated (majority) color — Definition 2's property.
    Majority,
    /// Return the single (minority) color.
    Minority,
    /// Return the first sample regardless.
    FirstSample,
}

/// A color-symmetric member of `D3(k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableD3 {
    clear: ClearRule,
    /// `distinct[perm_index] ∈ {0,1,2}`: the winning rank for each of the
    /// six order patterns (lexicographic index over rank permutations).
    distinct: [u8; 6],
    label: &'static str,
}

/// Lexicographic list of the 6 permutations of (0,1,2); `perm_index`
/// computes positions in this list.
const PERMS: [(u8, u8, u8); 6] = [
    (0, 1, 2),
    (0, 2, 1),
    (1, 0, 2),
    (1, 2, 0),
    (2, 0, 1),
    (2, 1, 0),
];

/// Index of the rank pattern of an ordered distinct triple.
#[inline]
fn perm_index(r0: u8, r1: u8, r2: u8) -> usize {
    debug_assert_eq!(r0 + r1 + r2, 3);
    (r0 as usize) * 2 + usize::from(r1 > r2)
}

impl TableD3 {
    /// Build a rule from its clear-majority behavior and distinct table.
    ///
    /// # Panics
    /// Panics if any distinct entry exceeds 2.
    #[must_use]
    pub fn new(clear: ClearRule, distinct: [u8; 6], label: &'static str) -> Self {
        assert!(
            distinct.iter().all(|&d| d <= 2),
            "distinct entries must be ranks 0..=2"
        );
        Self {
            clear,
            distinct,
            label,
        }
    }

    /// 3-majority with the first-sample tie rule — the canonical member
    /// of the paper's class `M3` (clear majority + uniform δ).
    #[must_use]
    pub fn three_majority_first() -> Self {
        // Winner = rank at position 0 of each pattern.
        let distinct = [
            PERMS[0].0, PERMS[1].0, PERMS[2].0, PERMS[3].0, PERMS[4].0, PERMS[5].0,
        ];
        Self::new(ClearRule::Majority, distinct, "3-majority(first-tie)")
    }

    /// Median of the three samples: clear majority, δ = (0,6,0) — a
    /// non-uniform rule (the Lemma 7/Theorem 3 discussion example).
    #[must_use]
    pub fn median3() -> Self {
        Self::new(ClearRule::Majority, [1; 6], "median3-table")
    }

    /// Minimum of the three samples: δ = (6,0,0).
    #[must_use]
    pub fn min3() -> Self {
        Self::new(ClearRule::Majority, [0; 6], "min3-table")
    }

    /// Maximum of the three samples: δ = (0,0,6).
    #[must_use]
    pub fn max3() -> Self {
        Self::new(ClearRule::Majority, [2; 6], "max3-table")
    }

    /// Lemma 8's hardest case: δ = (1,3,2) with the plurality color in the
    /// δ=1 slot (experiments place the plurality at color 0 = rank 0).
    #[must_use]
    pub fn lemma8_132() -> Self {
        Self::new(ClearRule::Majority, [0, 1, 1, 1, 2, 2], "δ=(1,3,2)")
    }

    /// Lemma 8's second case: δ = (1,4,1).
    #[must_use]
    pub fn lemma8_141() -> Self {
        Self::new(ClearRule::Majority, [0, 1, 1, 1, 1, 2], "δ=(1,4,1)")
    }

    /// A rule violating the clear-majority property (Lemma 7): returns
    /// the *minority* color on 2-vs-1 triples, first rank otherwise.
    #[must_use]
    pub fn anti_majority() -> Self {
        let distinct = [
            PERMS[0].0, PERMS[1].0, PERMS[2].0, PERMS[3].0, PERMS[4].0, PERMS[5].0,
        ];
        Self::new(ClearRule::Minority, distinct, "anti-majority")
    }

    /// Build a clear-majority rule with the given δ win counts
    /// `(δ_low, δ_mid, δ_high)` — any distribution of the six distinct
    /// permutations over ranks.  Which specific permutations map to each
    /// rank is immaterial for the mean-field law (only the counts enter
    /// the kernel), so a canonical assignment is used: the first `δ_low`
    /// permutations go to rank 0, the next `δ_mid` to rank 1, the rest to
    /// rank 2.
    ///
    /// # Panics
    /// Panics unless `δ_low + δ_mid + δ_high == 6`.
    #[must_use]
    pub fn from_deltas(deltas: [u8; 3], label: &'static str) -> Self {
        assert_eq!(
            deltas.iter().map(|&d| u32::from(d)).sum::<u32>(),
            6,
            "δ counts must total 3! = 6"
        );
        let mut distinct = [0u8; 6];
        let mut idx = 0;
        for (rank, &count) in deltas.iter().enumerate() {
            for _ in 0..count {
                distinct[idx] = rank as u8;
                idx += 1;
            }
        }
        Self::new(ClearRule::Majority, distinct, label)
    }

    /// The δ win counts per rank (the paper's `(δ_r, δ_g, δ_b)` for a
    /// triple `r < g < b`).
    #[must_use]
    pub fn deltas(&self) -> [u8; 3] {
        let mut d = [0u8; 3];
        for &w in &self.distinct {
            d[w as usize] += 1;
        }
        d
    }

    /// Definition 2: does the rule return the majority color whenever the
    /// sample has one?
    #[must_use]
    pub fn has_clear_majority_property(&self) -> bool {
        self.clear == ClearRule::Majority
    }

    /// Definition 3: δ_r = δ_g = δ_b = 2.
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.deltas() == [2, 2, 2]
    }

    /// Theorem 3's characterization: membership in `M3` (solves plurality
    /// consensus) requires both properties.
    #[must_use]
    pub fn is_plurality_solver(&self) -> bool {
        self.has_clear_majority_property() && self.is_uniform()
    }

    /// Apply the rule to an ordered sample triple.
    #[must_use]
    pub fn apply(&self, a: u32, b: u32, c: u32) -> u32 {
        // Repeated-color cases.
        if a == b && b == c {
            return a;
        }
        if a == b || a == c || b == c {
            return match self.clear {
                ClearRule::Majority => {
                    if a == b || a == c {
                        a
                    } else {
                        b
                    }
                }
                ClearRule::Minority => {
                    if a == b {
                        c
                    } else if a == c {
                        b
                    } else {
                        a
                    }
                }
                ClearRule::FirstSample => a,
            };
        }
        // Distinct triple: rank pattern lookup.
        let r0 = u8::from(a > b) + u8::from(a > c);
        let r1 = u8::from(b > a) + u8::from(b > c);
        let r2 = u8::from(c > a) + u8::from(c > b);
        let winner_rank = self.distinct[perm_index(r0, r1, r2)];
        if r0 == winner_rank {
            a
        } else if r1 == winner_rank {
            b
        } else {
            c
        }
    }

    /// Exact per-node adoption probabilities (`O(k)` via prefix sums).
    pub fn adoption_probs(&self, counts: &[u64], out: &mut [f64]) {
        let k = counts.len();
        assert_eq!(k, out.len());
        let n: u64 = counts.iter().sum();
        assert!(n > 0, "population must be positive");
        let n_f = n as f64;
        let n3 = n_f * n_f * n_f;
        let s2: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
        let deltas = self.deltas();

        // Prefix sums over color index: L_j = Σ_{i<j} c_i, QL_j = Σ_{i<j} c_i².
        let mut l = 0.0f64;
        let mut ql = 0.0f64;
        let total: f64 = n_f;
        let mut lesser = vec![(0.0f64, 0.0f64); k];
        for (j, &c) in counts.iter().enumerate() {
            lesser[j] = (l, ql);
            l += c as f64;
            ql += (c as f64) * (c as f64);
        }

        for (j, &cj) in counts.iter().enumerate() {
            let c = cj as f64;
            let (lj, qlj) = lesser[j];
            let gj = total - lj - c;
            let qgj = s2 - qlj - c * c;

            // Clear (repeated-color) part.
            let clear = match self.clear {
                ClearRule::Majority => c * c * c + 3.0 * c * c * (n_f - c),
                ClearRule::Minority => c * c * c + 3.0 * c * (s2 - c * c),
                ClearRule::FirstSample => c * c * c + 2.0 * c * c * (n_f - c) + c * (s2 - c * c),
            };

            // Distinct part: j as lowest / middle / highest rank.
            let pairs_above = (gj * gj - qgj) / 2.0;
            let pairs_straddle = lj * gj;
            let pairs_below = (lj * lj - qlj) / 2.0;
            let dist = c
                * (f64::from(deltas[0]) * pairs_above
                    + f64::from(deltas[1]) * pairs_straddle
                    + f64::from(deltas[2]) * pairs_below);

            out[j] = (clear + dist) / n3;
        }
        crate::kernels::normalize_in_place(out);
    }
}

impl Dynamics for TableD3 {
    fn name(&self) -> String {
        self.label.into()
    }

    fn node_update(
        &self,
        own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        self.node_update_core(own, &mut DynSampler(sampler), scratch, rng)
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        let n: u64 = cur.iter().sum();
        let mut probs = vec![0.0f64; cur.len()];
        self.adoption_probs(cur, &mut probs);
        sample_multinomial(n, &probs, next, rng);
    }

    fn has_fast_kernel(&self) -> bool {
        true
    }
}

impl SealedDynamics for TableD3 {}

impl DynamicsCore for TableD3 {
    #[inline]
    fn node_update_core<S: SampleSource + ?Sized, R: RngCore + ?Sized>(
        &self,
        _own: u32,
        source: &mut S,
        _scratch: &mut NodeScratch,
        rng: &mut R,
    ) -> u32 {
        let a = source.draw(rng);
        let b = source.draw(rng);
        let c = source.draw(rng);
        self.apply(a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::CliqueSampler;
    use crate::kernels::three_majority_probs;
    use crate::median::median3_of;
    use plurality_sampling::{CountSampler, Xoshiro256PlusPlus};
    use rand::SeedableRng;

    #[test]
    fn perm_index_is_a_bijection() {
        let mut seen = [false; 6];
        for &(a, b, c) in &PERMS {
            let idx = perm_index(a, b, c);
            assert!(!seen[idx], "duplicate index {idx}");
            seen[idx] = true;
            assert_eq!(PERMS[idx], (a, b, c));
        }
    }

    #[test]
    fn delta_counts() {
        assert_eq!(TableD3::three_majority_first().deltas(), [2, 2, 2]);
        assert_eq!(TableD3::median3().deltas(), [0, 6, 0]);
        assert_eq!(TableD3::min3().deltas(), [6, 0, 0]);
        assert_eq!(TableD3::max3().deltas(), [0, 0, 6]);
        assert_eq!(TableD3::lemma8_132().deltas(), [1, 3, 2]);
        assert_eq!(TableD3::lemma8_141().deltas(), [1, 4, 1]);
        // Every rule's deltas sum to 6 (all permutations assigned).
        for d in [
            TableD3::three_majority_first(),
            TableD3::median3(),
            TableD3::lemma8_132(),
            TableD3::lemma8_141(),
            TableD3::anti_majority(),
        ] {
            assert_eq!(d.deltas().iter().map(|&x| u32::from(x)).sum::<u32>(), 6);
        }
    }

    #[test]
    fn property_checkers() {
        assert!(TableD3::three_majority_first().is_plurality_solver());
        assert!(TableD3::median3().has_clear_majority_property());
        assert!(!TableD3::median3().is_uniform());
        assert!(!TableD3::median3().is_plurality_solver());
        assert!(!TableD3::anti_majority().has_clear_majority_property());
        assert!(TableD3::anti_majority().is_uniform());
        assert!(!TableD3::anti_majority().is_plurality_solver());
        assert!(!TableD3::lemma8_132().is_plurality_solver());
    }

    #[test]
    fn apply_clear_majority_cases() {
        let d = TableD3::three_majority_first();
        assert_eq!(d.apply(5, 5, 9), 5);
        assert_eq!(d.apply(5, 9, 5), 5);
        assert_eq!(d.apply(9, 5, 5), 5);
        assert_eq!(d.apply(7, 7, 7), 7);
        let m = TableD3::anti_majority();
        assert_eq!(m.apply(5, 5, 9), 9);
        assert_eq!(m.apply(5, 9, 5), 9);
        assert_eq!(m.apply(9, 5, 5), 9);
        assert_eq!(m.apply(7, 7, 7), 7);
    }

    #[test]
    fn apply_first_sample_on_distinct() {
        let d = TableD3::three_majority_first();
        // On distinct triples, first sample must win.
        for &(a, b, c) in &[
            (1u32, 2, 3),
            (3, 1, 2),
            (2, 3, 1),
            (1, 3, 2),
            (3, 2, 1),
            (2, 1, 3),
        ] {
            assert_eq!(d.apply(a, b, c), a, "({a},{b},{c})");
        }
    }

    #[test]
    fn median3_table_matches_median_fn() {
        let d = TableD3::median3();
        for a in 0..4u32 {
            for b in 0..4u32 {
                for c in 0..4u32 {
                    assert_eq!(d.apply(a, b, c), median3_of(a, b, c), "({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn min_max_tables() {
        for a in 0..4u32 {
            for b in 0..4u32 {
                for c in 0..4u32 {
                    if a != b && b != c && a != c {
                        assert_eq!(TableD3::min3().apply(a, b, c), a.min(b).min(c));
                        assert_eq!(TableD3::max3().apply(a, b, c), a.max(b).max(c));
                    }
                }
            }
        }
    }

    #[test]
    fn uniform_table_kernel_matches_lemma1() {
        // The uniform + clear-majority member must reproduce Lemma 1.
        let counts = [500u64, 300, 150, 50];
        let mut a = [0.0; 4];
        let mut b = [0.0; 4];
        TableD3::three_majority_first().adoption_probs(&counts, &mut a);
        three_majority_probs(&counts, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    fn node_freq(d: &TableD3, counts: &[u64], trials: usize, seed: u64) -> Vec<f64> {
        let cs = CountSampler::new(counts);
        let mut sampler = CliqueSampler::new(&cs);
        let mut scratch = NodeScratch::with_states(counts.len());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut freq = vec![0u64; counts.len()];
        for _ in 0..trials {
            freq[d.node_update(0, &mut sampler, &mut scratch, &mut rng) as usize] += 1;
        }
        freq.iter().map(|&f| f as f64 / trials as f64).collect()
    }

    #[test]
    fn kernel_matches_node_rule_for_each_table() {
        let counts = [400u64, 350, 250];
        for (i, d) in [
            TableD3::three_majority_first(),
            TableD3::median3(),
            TableD3::min3(),
            TableD3::lemma8_132(),
            TableD3::lemma8_141(),
            TableD3::anti_majority(),
        ]
        .iter()
        .enumerate()
        {
            let mut expect = [0.0; 3];
            d.adoption_probs(&counts, &mut expect);
            let freq = node_freq(d, &counts, 200_000, 100 + i as u64);
            for j in 0..3 {
                let e = expect[j];
                let sigma = (e.max(1e-9) * (1.0 - e) / 200_000.0).sqrt();
                assert!(
                    (freq[j] - e).abs() < 6.0 * sigma,
                    "{}: color {j}: {} vs {e}",
                    d.name(),
                    freq[j]
                );
            }
        }
    }

    #[test]
    fn lemma8_132_probabilities_match_paper() {
        // Lemma 8 computes, for c = (n/3+s, n/3, n/3−s) with small s/n:
        // p(r) = 8/27·(1 + O(s/n)) and p(g) = 10/27·(1 − O(s²/n²)).
        let n = 3_000_000u64;
        let s = 3_000u64;
        let base = n / 3;
        let counts = [base + s, base, base - s];
        let d = TableD3::lemma8_132();
        let mut p = [0.0; 3];
        d.adoption_probs(&counts, &mut p);
        assert!((p[0] - 8.0 / 27.0).abs() < 0.01, "p(r) = {}", p[0]);
        assert!((p[1] - 10.0 / 27.0).abs() < 0.01, "p(g) = {}", p[1]);
        // The plurality color r strictly loses mass in expectation.
        assert!(p[0] * (n as f64) < (base + s) as f64);
    }

    #[test]
    fn step_preserves_population() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let cur = [500u64, 300, 200];
        let mut next = [0u64; 3];
        for d in [TableD3::median3(), TableD3::lemma8_141()] {
            d.step_mean_field(&cur, &mut next, &mut rng);
            assert_eq!(next.iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    #[should_panic(expected = "ranks 0..=2")]
    fn rejects_invalid_table() {
        let _ = TableD3::new(ClearRule::Majority, [0, 1, 2, 3, 1, 2], "bad");
    }

    #[test]
    fn from_deltas_reproduces_counts() {
        for deltas in [
            [2u8, 2, 2],
            [1, 3, 2],
            [0, 6, 0],
            [6, 0, 0],
            [1, 4, 1],
            [3, 0, 3],
        ] {
            let rule = TableD3::from_deltas(deltas, "generated");
            assert_eq!(rule.deltas(), deltas);
            assert!(rule.has_clear_majority_property());
        }
    }

    #[test]
    fn from_deltas_law_matches_named_constructors() {
        // The kernel only depends on the δ counts, so from_deltas must
        // reproduce the named rules' adoption probabilities.
        let counts = [450u64, 350, 200];
        let mut a = [0.0; 3];
        let mut b = [0.0; 3];
        TableD3::from_deltas([1, 3, 2], "x").adoption_probs(&counts, &mut a);
        TableD3::lemma8_132().adoption_probs(&counts, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        TableD3::from_deltas([0, 6, 0], "y").adoption_probs(&counts, &mut a);
        TableD3::median3().adoption_probs(&counts, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "total 3!")]
    fn from_deltas_rejects_bad_total() {
        let _ = TableD3::from_deltas([2, 2, 3], "bad");
    }
}
