//! Closed-form mean-field transition kernels shared by the dynamics.
//!
//! On the clique, each node's next state is i.i.d. given the current
//! configuration `c`, so one exact round is a multinomial draw with the
//! per-node adoption probabilities `p_j = P(node adopts j | c)`.  This
//! module computes those probability vectors:
//!
//! * [`three_majority_probs`] — Lemma 1 of the paper, in closed form;
//! * [`h_plurality_probs`] — exact enumeration over all size-`h` sample
//!   multisets (feasible when `C(h+k−1, h)` is small; the engines fall
//!   back to explicit per-node simulation otherwise).

/// Per-node adoption probabilities of the 3-majority dynamics (Lemma 1):
///
/// `p_j = (c_j / n³) · (n² + c_j·n − Σ_h c_h²)`.
///
/// Writes into `out` (same length as `counts`); the result is normalized
/// defensively against f64 drift so downstream multinomials stay exact.
///
/// # Panics
/// Panics if lengths differ or the population is zero.
pub fn three_majority_probs(counts: &[u64], out: &mut [f64]) {
    assert_eq!(counts.len(), out.len(), "length mismatch");
    let n: u64 = counts.iter().sum();
    assert!(n > 0, "population must be positive");
    let n_f = n as f64;
    let sum_sq: u128 = counts.iter().map(|&c| u128::from(c) * u128::from(c)).sum();
    let sum_sq_f = sum_sq as f64;
    let n3 = n_f * n_f * n_f;
    for (p, &c) in out.iter_mut().zip(counts) {
        let c_f = c as f64;
        *p = c_f * (n_f * n_f + c_f * n_f - sum_sq_f) / n3;
    }
    normalize_in_place(out);
}

/// Number of sample multisets `C(h+k−1, h)` if it fits the enumeration
/// budget, else `None`.  Used to decide between the exact enumeration
/// kernel and per-node simulation.
#[must_use]
pub fn multiset_count(k: usize, h: usize) -> Option<u64> {
    // C(h+k-1, h) computed incrementally with overflow/budget guards.
    let mut acc: u64 = 1;
    for i in 1..=h as u64 {
        let num = (k as u64 - 1).checked_add(i)?;
        acc = acc.checked_mul(num)?;
        acc /= i;
        if acc > ENUMERATION_BUDGET {
            return None;
        }
    }
    Some(acc)
}

/// Maximum number of multisets the enumeration kernel will visit.
pub const ENUMERATION_BUDGET: u64 = 2_000_000;

/// Exact per-node adoption probabilities of the `h`-plurality dynamics:
/// plurality over `h` u.a.r. samples, ties broken u.a.r. among the
/// most-frequent colors seen.
///
/// Returns `false` (leaving `out` untouched) when the enumeration would
/// exceed [`ENUMERATION_BUDGET`]; the caller then uses the per-node path.
///
/// # Panics
/// Panics if lengths differ, `h == 0`, or the population is zero.
pub fn h_plurality_probs(counts: &[u64], h: usize, out: &mut [f64]) -> bool {
    assert_eq!(counts.len(), out.len(), "length mismatch");
    assert!(h > 0, "h must be positive");
    let n: u64 = counts.iter().sum();
    assert!(n > 0, "population must be positive");
    if multiset_count(counts.len(), h).is_none() {
        return false;
    }

    let n_f = n as f64;
    let fracs: Vec<f64> = counts.iter().map(|&c| c as f64 / n_f).collect();
    out.fill(0.0);

    // DFS over compositions (m_0, …, m_{k−1}) of h.  `weight` carries the
    // multinomial probability of the partial assignment:
    //   weight = h!/(m_0!…m_i!) · Π p_j^{m_j} · (remaining factor TBD)
    // maintained incrementally via C(rem_before, m_i).
    struct Dfs<'a> {
        fracs: &'a [f64],
        out: &'a mut [f64],
        multiset: Vec<usize>,
    }

    impl Dfs<'_> {
        fn go(&mut self, color: usize, remaining: usize, weight: f64) {
            if weight == 0.0 {
                return;
            }
            let k = self.fracs.len();
            if color == k - 1 {
                // Last color absorbs the remainder.
                let p = self.fracs[color];
                let w = if remaining == 0 {
                    weight
                } else if p == 0.0 {
                    0.0
                } else {
                    weight * p.powi(remaining as i32)
                };
                if w > 0.0 {
                    self.multiset[color] = remaining;
                    self.credit(w);
                    self.multiset[color] = 0;
                }
                return;
            }
            let p = self.fracs[color];
            // m = 0 branch: binomial factor C(remaining, 0) = 1.
            self.go(color + 1, remaining, weight);
            if p == 0.0 {
                return;
            }
            let mut w = weight;
            for m in 1..=remaining {
                // Multiply by C(rem − m + 1 .. ) step: C(rem, m) p^m built
                // incrementally: w_m = w_{m−1} · p · (remaining − m + 1)/m.
                w *= p * ((remaining - m + 1) as f64) / m as f64;
                self.multiset[color] = m;
                self.go(color + 1, remaining - m, w);
            }
            self.multiset[color] = 0;
        }

        /// Distribute `w` to the plurality color(s) of the current
        /// multiset, splitting ties uniformly.
        fn credit(&mut self, w: f64) {
            let max = *self.multiset.iter().max().expect("nonempty");
            debug_assert!(max > 0);
            let winners = self.multiset.iter().filter(|&&m| m == max).count();
            let share = w / winners as f64;
            for (j, &m) in self.multiset.iter().enumerate() {
                if m == max {
                    self.out[j] += share;
                }
            }
        }
    }

    let k = counts.len();
    let mut dfs = Dfs {
        fracs: &fracs,
        out,
        multiset: vec![0usize; k],
    };
    dfs.go(0, h, 1.0);
    normalize_in_place(out);
    true
}

/// Clamp tiny negative rounding to zero and rescale so `Σ p = 1`.
///
/// # Panics
/// Panics if the vector has no positive mass (kernel bug).
pub fn normalize_in_place(probs: &mut [f64]) {
    let mut total = 0.0;
    for p in probs.iter_mut() {
        if *p < 0.0 {
            debug_assert!(*p > -1e-9, "kernel produced {p}, not mere rounding");
            *p = 0.0;
        }
        total += *p;
    }
    assert!(total > 0.0, "kernel probabilities sum to zero");
    if (total - 1.0).abs() > f64::EPSILON {
        for p in probs.iter_mut() {
            *p /= total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_sums_to_one() {
        let counts = [400u64, 350, 250];
        let mut p = [0.0; 3];
        three_majority_probs(&counts, &mut p);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lemma1_closed_form_spot_check() {
        // Hand-computed: c = (2, 1), n = 3.
        // Σc² = 5. p_0 = 2(9 + 6 − 5)/27 = 20/27, p_1 = 1(9+3−5)/27 = 7/27.
        let mut p = [0.0; 2];
        three_majority_probs(&[2, 1], &mut p);
        assert!((p[0] - 20.0 / 27.0).abs() < 1e-12, "p0 = {}", p[0]);
        assert!((p[1] - 7.0 / 27.0).abs() < 1e-12, "p1 = {}", p[1]);
    }

    #[test]
    fn lemma1_monochromatic_absorbing() {
        let mut p = [0.0; 3];
        three_majority_probs(&[0, 10, 0], &mut p);
        assert_eq!(p, [0.0, 1.0, 0.0]);
    }

    #[test]
    fn lemma1_bias_amplification_direction() {
        // Lemma 2: µ1 − µ2 ≥ s(1 + (c1/n)(1 − c1/n)); check the expected
        // counts indeed widen the gap.
        let counts = [600u64, 400];
        let n = 1000.0;
        let mut p = [0.0; 2];
        three_majority_probs(&counts, &mut p);
        let gap_next = n * (p[0] - p[1]);
        let s = 200.0;
        let c1 = 0.6;
        assert!(
            gap_next >= s * (1.0 + c1 * (1.0 - c1)) - 1e-9,
            "gap {gap_next}"
        );
    }

    #[test]
    fn h3_plurality_matches_lemma1() {
        // h = 3 plurality with u.a.r. ties is the same law as 3-majority
        // (paper §2: the tie rule does not matter).
        let counts = [500u64, 300, 150, 50];
        let mut a = [0.0; 4];
        let mut b = [0.0; 4];
        three_majority_probs(&counts, &mut a);
        assert!(h_plurality_probs(&counts, 3, &mut b));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn h1_plurality_is_voter() {
        let counts = [700u64, 200, 100];
        let mut p = [0.0; 3];
        assert!(h_plurality_probs(&counts, 1, &mut p));
        assert!((p[0] - 0.7).abs() < 1e-12);
        assert!((p[1] - 0.2).abs() < 1e-12);
        assert!((p[2] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn h2_plurality_is_voter_in_law() {
        // Two samples with u.a.r. tie-break: p_j = p² + p(1−p) = p.
        let counts = [600u64, 250, 150];
        let mut p = [0.0; 3];
        assert!(h_plurality_probs(&counts, 2, &mut p));
        assert!((p[0] - 0.6).abs() < 1e-12, "p0 = {}", p[0]);
        assert!((p[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn h5_sums_to_one_and_favors_plurality() {
        let counts = [500u64, 300, 200];
        let mut p3 = [0.0; 3];
        let mut p5 = [0.0; 3];
        assert!(h_plurality_probs(&counts, 3, &mut p3));
        assert!(h_plurality_probs(&counts, 5, &mut p5));
        assert!((p5.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Larger samples amplify the plurality more strongly.
        assert!(p5[0] > p3[0], "p5 {:?} p3 {:?}", p5, p3);
        assert!(p5[2] < p3[2]);
    }

    #[test]
    fn h_plurality_zero_count_color_never_adopted() {
        let counts = [500u64, 0, 500];
        let mut p = [0.0; 3];
        assert!(h_plurality_probs(&counts, 5, &mut p));
        assert_eq!(p[1], 0.0);
    }

    #[test]
    fn enumeration_budget_declines_large_cases() {
        // k = 200, h = 33: astronomically many multisets.
        assert!(multiset_count(200, 33).is_none());
        let counts = vec![5u64; 200];
        let mut p = vec![0.0; 200];
        assert!(!h_plurality_probs(&counts, 33, &mut p));
    }

    #[test]
    fn multiset_count_small_values() {
        assert_eq!(multiset_count(3, 3), Some(10)); // C(5,3)
        assert_eq!(multiset_count(2, 4), Some(5)); // C(5,4)
        assert_eq!(multiset_count(1, 7), Some(1));
    }

    #[test]
    fn normalize_fixes_drift() {
        let mut p = [0.5000000001, 0.4999999999, -1e-15];
        normalize_in_place(&mut p);
        assert!(p[2] >= 0.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn normalize_rejects_zero_mass() {
        let mut p = [0.0, 0.0];
        normalize_in_place(&mut p);
    }
}
