//! Sampling-poor baselines: the **voter/polling** rule, the **two-sample**
//! rule, and the **2-choices** rule.
//!
//! The paper's introduction motivates 3-majority by the failure of smaller
//! samples: *"looking at only two random nodes and breaking ties uniformly
//! at random would yield a coloring process equivalent to the polling
//! process, which is known to converge to a minority color with constant
//! probability even for k = 2 and large initial bias"* (citing
//! Hassin–Peleg).  We implement all three rules so that claim — and the
//! contrast with 3-majority — is measurable (experiment E12).

use crate::dynamics::sealed::SealedDynamics;
use crate::dynamics::{
    DynSampler, Dynamics, DynamicsCore, NodeScratch, SampleSource, StateSampler,
};
use plurality_sampling::binomial::sample_binomial;
use plurality_sampling::multinomial::sample_multinomial;
use rand::{Rng, RngCore};
use std::any::Any;

/// Voter (polling / 1-majority) dynamics: copy one random node's color.
///
/// Mean-field kernel: `C' ~ Multinomial(n, c/n)` — a martingale in each
/// color, hence no drift toward the plurality.
#[derive(Debug, Clone, Copy, Default)]
pub struct Voter;

impl Dynamics for Voter {
    fn name(&self) -> String {
        "voter".into()
    }

    fn node_update(
        &self,
        own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        self.node_update_core(own, &mut DynSampler(sampler), scratch, rng)
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        let n: u64 = cur.iter().sum();
        let n_f = n as f64;
        let probs: Vec<f64> = cur.iter().map(|&c| c as f64 / n_f).collect();
        sample_multinomial(n, &probs, next, rng);
    }

    fn has_fast_kernel(&self) -> bool {
        true
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn fixed_draws(&self) -> Option<usize> {
        Some(1)
    }
}

impl SealedDynamics for Voter {}

impl DynamicsCore for Voter {
    #[inline]
    fn node_update_core<S: SampleSource + ?Sized, R: RngCore + ?Sized>(
        &self,
        _own: u32,
        source: &mut S,
        _scratch: &mut NodeScratch,
        rng: &mut R,
    ) -> u32 {
        source.draw(rng)
    }
}

/// Two samples, adopt on agreement, otherwise a u.a.r. one of the two.
///
/// Equivalent in law to [`Voter`] (p² + p(1−p) = p); kept as a distinct
/// rule so the equivalence is *tested* rather than assumed.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoSample;

impl Dynamics for TwoSample {
    fn name(&self) -> String {
        "2-sample".into()
    }

    fn node_update(
        &self,
        own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        self.node_update_core(own, &mut DynSampler(sampler), scratch, rng)
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        // Same law as the voter rule.
        Voter.step_mean_field(cur, next, rng);
    }

    fn has_fast_kernel(&self) -> bool {
        true
    }

    fn fixed_draws(&self) -> Option<usize> {
        // Disagreement consumes a coin flip beyond the two draws.
        None
    }
}

impl SealedDynamics for TwoSample {}

impl DynamicsCore for TwoSample {
    #[inline]
    fn node_update_core<S: SampleSource + ?Sized, R: RngCore + ?Sized>(
        &self,
        _own: u32,
        source: &mut S,
        _scratch: &mut NodeScratch,
        rng: &mut R,
    ) -> u32 {
        let a = source.draw(rng);
        let b = source.draw(rng);
        if a == b || rng.gen::<bool>() {
            a
        } else {
            b
        }
    }
}

/// The 2-choices dynamics: sample two nodes; adopt their color only if
/// they agree, otherwise keep your own.
///
/// Unlike [`Voter`]/[`TwoSample`] this rule *does* use the node's own
/// state, so the mean-field kernel is group-wise: nodes of color `i`
/// switch to `j ≠ i` with probability `(c_j/n)²` and keep `i` otherwise.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoChoices;

impl Dynamics for TwoChoices {
    fn name(&self) -> String {
        "2-choices".into()
    }

    fn node_update(
        &self,
        own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        self.node_update_core(own, &mut DynSampler(sampler), scratch, rng)
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        let k = cur.len();
        assert_eq!(k, next.len());
        let n: u64 = cur.iter().sum();
        let n_f = n as f64;
        next.fill(0);
        // Group-wise: the c_i nodes of color i form independent trials
        // over outcomes {switch to j (prob (c_j/n)²), stay}.
        let sq: Vec<f64> = cur
            .iter()
            .map(|&c| {
                let f = c as f64 / n_f;
                f * f
            })
            .collect();
        let mut probs = vec![0.0f64; k + 1];
        let mut group_out = vec![0u64; k + 1];
        for (i, &ci) in cur.iter().enumerate() {
            if ci == 0 {
                continue;
            }
            let mut stay = 1.0;
            for (j, &sj) in sq.iter().enumerate() {
                let pj = if j == i { 0.0 } else { sj };
                probs[j] = pj;
                stay -= pj;
            }
            probs[k] = stay.max(0.0);
            sample_multinomial(ci, &probs, &mut group_out, rng);
            for (j, &x) in group_out.iter().take(k).enumerate() {
                next[j] += x;
            }
            next[i] += group_out[k];
        }
        debug_assert_eq!(next.iter().sum::<u64>(), n);
    }

    fn has_fast_kernel(&self) -> bool {
        true
    }

    fn fixed_draws(&self) -> Option<usize> {
        Some(2)
    }
}

impl SealedDynamics for TwoChoices {}

impl DynamicsCore for TwoChoices {
    #[inline]
    fn node_update_core<S: SampleSource + ?Sized, R: RngCore + ?Sized>(
        &self,
        own: u32,
        source: &mut S,
        _scratch: &mut NodeScratch,
        rng: &mut R,
    ) -> u32 {
        let a = source.draw(rng);
        let b = source.draw(rng);
        if a == b {
            a
        } else {
            own
        }
    }
}

/// Binary-state helper used by tests and experiments: one exact voter
/// round on a two-color configuration, via a single binomial.
///
/// # Panics
/// Panics if `c0 + c1 == 0`.
pub fn voter_round_binary<R: Rng + ?Sized>(c0: u64, c1: u64, rng: &mut R) -> (u64, u64) {
    let n = c0 + c1;
    assert!(n > 0);
    let new0 = sample_binomial(n, c0 as f64 / n as f64, rng);
    (new0, n - new0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::CliqueSampler;
    use plurality_sampling::{CountSampler, Xoshiro256PlusPlus};
    use rand::SeedableRng;

    fn node_freq(d: &dyn Dynamics, own: u32, counts: &[u64], trials: usize, seed: u64) -> Vec<f64> {
        let cs = CountSampler::new(counts);
        let mut sampler = CliqueSampler::new(&cs);
        let mut scratch = NodeScratch::with_states(counts.len());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut freq = vec![0u64; counts.len()];
        for _ in 0..trials {
            freq[d.node_update(own, &mut sampler, &mut scratch, &mut rng) as usize] += 1;
        }
        freq.iter().map(|&f| f as f64 / trials as f64).collect()
    }

    #[test]
    fn voter_is_martingale_in_expectation() {
        let counts = [700u64, 200, 100];
        let f = node_freq(&Voter, 0, &counts, 200_000, 1);
        for (j, &c) in counts.iter().enumerate() {
            let p = c as f64 / 1000.0;
            let sigma = (p * (1.0 - p) / 200_000.0).sqrt();
            assert!((f[j] - p).abs() < 5.0 * sigma, "color {j}");
        }
    }

    #[test]
    fn two_sample_equivalent_to_voter() {
        let counts = [550u64, 300, 150];
        let fv = node_freq(&Voter, 0, &counts, 300_000, 2);
        let f2 = node_freq(&TwoSample, 0, &counts, 300_000, 3);
        for j in 0..3 {
            let sigma = (2.0 * 0.25 / 300_000.0f64).sqrt();
            assert!((fv[j] - f2[j]).abs() < 6.0 * sigma, "color {j}");
        }
    }

    #[test]
    fn two_choices_switch_probability() {
        // Own color 0; switch to 1 iff both samples are 1: (c1/n)².
        let counts = [600u64, 400];
        let f = node_freq(&TwoChoices, 0, &counts, 200_000, 4);
        let expect_switch = 0.4f64 * 0.4;
        let sigma = (expect_switch * (1.0 - expect_switch) / 200_000.0).sqrt();
        assert!(
            (f[1] - expect_switch).abs() < 5.0 * sigma,
            "switch freq {} vs {expect_switch}",
            f[1]
        );
    }

    #[test]
    fn two_choices_kernel_matches_node_rule() {
        let cur = [600u64, 300, 100];
        let d = TwoChoices;
        // Mean over many kernel rounds ≈ group-wise expectation.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let trials = 2_000;
        let mut mean = [0.0f64; 3];
        let mut next = [0u64; 3];
        for _ in 0..trials {
            d.step_mean_field(&cur, &mut next, &mut rng);
            for (m, &x) in mean.iter_mut().zip(&next) {
                *m += x as f64;
            }
        }
        for m in &mut mean {
            *m /= trials as f64;
        }
        // Analytic expectation.
        let n = 1000.0;
        let sq: Vec<f64> = cur.iter().map(|&c| (c as f64 / n).powi(2)).collect();
        for j in 0..3 {
            let gains: f64 = (0..3)
                .filter(|&i| i != j)
                .map(|i| cur[i] as f64 * sq[j])
                .sum();
            let losses: f64 =
                cur[j] as f64 * (0..3).filter(|&i| i != j).map(|i| sq[i]).sum::<f64>();
            let expect = cur[j] as f64 + gains - losses;
            assert!(
                (mean[j] - expect).abs() < 0.02 * n,
                "color {j}: {} vs {expect}",
                mean[j]
            );
        }
    }

    #[test]
    fn two_choices_population_preserved() {
        let d = TwoChoices;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let cur = [123u64, 456, 421];
        let mut next = [0u64; 3];
        for _ in 0..50 {
            d.step_mean_field(&cur, &mut next, &mut rng);
            assert_eq!(next.iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    fn voter_round_binary_matches_kernel() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let trials = 5_000;
        let mut acc = 0u64;
        for _ in 0..trials {
            let (a, b) = voter_round_binary(800, 200, &mut rng);
            assert_eq!(a + b, 1000);
            acc += a;
        }
        let mean = acc as f64 / trials as f64;
        let sigma = (1000.0f64 * 0.8 * 0.2 / trials as f64).sqrt();
        assert!((mean - 800.0).abs() < 5.0 * sigma, "mean {mean}");
    }

    #[test]
    fn names() {
        assert_eq!(Voter.name(), "voter");
        assert_eq!(TwoSample.name(), "2-sample");
        assert_eq!(TwoChoices.name(), "2-choices");
    }
}
