//! The [`Dynamics`] trait: one interface for every update rule in the
//! paper and its related work.
//!
//! A *dynamics* (paper §1, §4.2) is a synchronous, anonymous, memoryless
//! update rule: each round, every node samples some neighbors and recolors
//! itself as a function of the colors it sees (plus, for the
//! undecided-state baseline, one extra state).  Each implementation
//! provides:
//!
//! * [`Dynamics::node_update`] — the per-node rule, used by the
//!   agent-based engine on arbitrary topologies; and
//! * [`Dynamics::step_mean_field`] — an *exact* one-round transition on
//!   the clique.  On the clique, node updates are i.i.d. given the current
//!   configuration, so the next configuration is a (group-wise)
//!   multinomial; closed-form kernels (e.g. Lemma 1 for 3-majority) make
//!   this `O(k)` per round.  The default implementation falls back to
//!   simulating all `n` node updates explicitly, which is exact but
//!   `O(n·h)` — implementations override it whenever a closed form exists.

use crate::config::Configuration;
use plurality_sampling::CountSampler;
use rand::RngCore;
use std::any::Any;

/// Oracle handing a node the state of a uniformly random sampled peer
/// (w.r.t. the configuration at the *start* of the round — synchronous
/// semantics).
pub trait StateSampler {
    /// Draw one sampled state.
    fn sample_state(&mut self, rng: &mut dyn RngCore) -> u32;
}

/// The monomorphizable counterpart of [`StateSampler`]: `draw` is generic
/// over the RNG, so when both the source and the RNG are concrete types
/// the whole sampling chain inlines into the engine's round loop with no
/// virtual dispatch (see [`DynamicsCore`]).
///
/// Contract: for any implementation that also exists behind a
/// [`StateSampler`], `draw` must consume the RNG identically to
/// `sample_state` — the devirtualized engines are pinned bit-for-bit
/// against the dyn path by golden-trace tests.
pub trait SampleSource {
    /// Draw one sampled state.
    fn draw<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> u32;
}

/// Bridge an object-safe [`StateSampler`] into the generic
/// [`SampleSource`] world (the dyn fallback path pays one virtual call
/// per sample, exactly as before the devirtualization).
pub struct DynSampler<'a>(pub &'a mut dyn StateSampler);

impl SampleSource for DynSampler<'_> {
    #[inline]
    fn draw<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> u32 {
        // `&mut &mut R` is Sized, so it coerces to `&mut dyn RngCore`.
        let mut rng = &mut *rng;
        self.0.sample_state(&mut rng)
    }
}

/// Bridge a generic [`SampleSource`] back into an object-safe
/// [`StateSampler`] (used by [`DynDynamics`] to feed an engine core's
/// monomorphic source through `Dynamics::node_update`).
pub struct SourceSampler<'a, S: SampleSource + ?Sized>(pub &'a mut S);

impl<S: SampleSource + ?Sized> StateSampler for SourceSampler<'_, S> {
    #[inline]
    fn sample_state(&mut self, rng: &mut dyn RngCore) -> u32 {
        self.0.draw(rng)
    }
}

/// [`StateSampler`] over a clique: peers are drawn u.a.r. from all `n`
/// nodes (self included, with repetition — the paper's sampling model),
/// which is exactly a categorical draw proportional to the state counts.
pub struct CliqueSampler<'a> {
    sampler: &'a CountSampler,
}

impl<'a> CliqueSampler<'a> {
    /// Wrap a prepared [`CountSampler`] over the current state counts.
    #[must_use]
    pub fn new(sampler: &'a CountSampler) -> Self {
        Self { sampler }
    }
}

impl StateSampler for CliqueSampler<'_> {
    #[inline]
    fn sample_state(&mut self, rng: &mut dyn RngCore) -> u32 {
        self.sampler.sample(rng) as u32
    }
}

impl SampleSource for CliqueSampler<'_> {
    #[inline]
    fn draw<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> u32 {
        self.sampler.sample(rng) as u32
    }
}

/// Reusable per-thread scratch buffers for [`Dynamics::node_update`].
///
/// Node updates run `n` times per round; allocating sample/count buffers
/// per call would dominate the runtime (see the workspace performance
/// notes in DESIGN.md).  Engines create one `NodeScratch` per worker
/// thread and pass it through.
#[derive(Debug, Default, Clone)]
pub struct NodeScratch {
    /// Sampled states for the current node (≤ h entries).
    pub samples: Vec<u32>,
    /// Occurrence counts indexed by state; only `touched` entries are
    /// guaranteed meaningful and are reset after each update.
    pub counts: Vec<u32>,
    /// States with a nonzero entry in `counts`.
    pub touched: Vec<u32>,
}

impl NodeScratch {
    /// Scratch sized for `state_count` states.
    #[must_use]
    pub fn with_states(state_count: usize) -> Self {
        Self {
            samples: Vec::with_capacity(16),
            counts: vec![0; state_count],
            touched: Vec::with_capacity(16),
        }
    }

    /// Grow `counts` to cover at least `state_count` states.
    pub fn ensure_states(&mut self, state_count: usize) {
        if self.counts.len() < state_count {
            self.counts.resize(state_count, 0);
        }
    }

    /// Reset the touched counters (cheap: proportional to distinct states
    /// seen, not to `k`).
    #[inline]
    pub fn clear_counts(&mut self) {
        for &t in &self.touched {
            self.counts[t as usize] = 0;
        }
        self.touched.clear();
        self.samples.clear();
    }

    /// Record one sampled state into the counters.
    #[inline]
    pub fn tally(&mut self, state: u32) {
        let slot = &mut self.counts[state as usize];
        if *slot == 0 {
            self.touched.push(state);
        }
        *slot += 1;
        self.samples.push(state);
    }
}

/// A synchronous anonymous update rule (see module docs).
///
/// Object-safe: engines and experiments hold `&dyn Dynamics` so that the
/// full zoo of rules runs through identical machinery.
pub trait Dynamics: Send + Sync {
    /// Human-readable rule name (table/plot labels).
    fn name(&self) -> String;

    /// Number of per-node *states* for `k` colors.  Color-only dynamics
    /// return `k`; the undecided-state dynamics returns `k + 1`.
    fn state_count(&self, k_colors: usize) -> usize {
        k_colors
    }

    /// Number of *colors* represented by a state vector of length
    /// `n_states` (inverse of [`Self::state_count`]).
    fn color_count(&self, n_states: usize) -> usize {
        n_states
    }

    /// Lift a color configuration into this dynamics' state space (e.g.
    /// append an empty undecided slot).
    fn lift(&self, colors: &Configuration) -> Configuration {
        colors.clone()
    }

    /// Per-node update rule: given the node's own state and a sampling
    /// oracle for random peers' states, return the node's next state.
    ///
    /// Implementations must draw *exactly* the samples the rule defines
    /// (their count may be random only if the rule says so) and must not
    /// retain state across calls other than via `scratch`, which they must
    /// leave cleared (`scratch.clear_counts()`).
    fn node_update(
        &self,
        own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32;

    /// Sample the next configuration on the clique, exactly.
    ///
    /// `cur` and `next` are state-count slices of equal length; `next` is
    /// overwritten.  The default implementation simulates every node
    /// update (exact, `O(n·h)`); closed-form kernels override this.
    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        generic_clique_step(self, cur, next, rng);
    }

    /// Whether [`Self::step_mean_field`] is a closed-form `O(k)` kernel
    /// (`true`) or the generic `O(n·h)` fallback (`false`).  Engines use
    /// this to pick sensible defaults for very large `n`.
    fn has_fast_kernel(&self) -> bool {
        false
    }

    /// Like [`Self::has_fast_kernel`], with the state count in hand.
    /// Rules whose kernel feasibility depends on `k` — h-plurality's
    /// enumeration budget — override this; everything else inherits the
    /// size-independent answer.
    fn has_fast_kernel_for(&self, k_states: usize) -> bool {
        let _ = k_states;
        self.has_fast_kernel()
    }

    /// Consensus test over a *state* configuration: `Some(color)` when
    /// every node supports that color (extra states must be empty).
    fn consensus(&self, states: &[u64]) -> Option<usize> {
        let total: u64 = states.iter().sum();
        if total == 0 {
            return None;
        }
        let k = self.color_count(states.len());
        states[..k].iter().position(|&c| c == total)
    }

    /// Concrete-type hook for the devirtualized engine cores: dynamics
    /// that participate in downcast dispatch (see
    /// [`downcast_dynamics`]) return `Some(self)`.  The default `None`
    /// routes the rule through the generic dyn fallback, which is always
    /// correct — just not monomorphized.
    fn as_any(&self) -> Option<&dyn Any> {
        None
    }

    /// `Some(s)` iff [`Self::node_update`] consumes **exactly `s` sampler
    /// draws and no other randomness**, for every input.
    ///
    /// This is a strict promise about RNG consumption, not a hint: when
    /// it holds, an engine may prefetch the `s` neighbor draws for a
    /// whole batch of nodes (in node order) and then replay them through
    /// the rule, without changing the PRNG sequence — the batched and
    /// unbatched paths stay bit-identical (see `docs/DETERMINISM.md`).
    /// Any rule that touches `rng` outside its sampler draws — uniform
    /// tie-breaking, reservoir selection, a random draw count — must
    /// return `None` (the default).
    fn fixed_draws(&self) -> Option<usize> {
        None
    }
}

/// Recover a concrete dynamics type from a `&dyn Dynamics` (via
/// [`Dynamics::as_any`]); the engines use this to select a fully
/// monomorphized inner loop.
#[must_use]
pub fn downcast_dynamics<D: Dynamics + 'static>(dynamics: &dyn Dynamics) -> Option<&D> {
    dynamics.as_any().and_then(<dyn Any>::downcast_ref)
}

pub(crate) mod sealed {
    /// Seals [`super::DynamicsCore`]: every update rule lives in this
    /// crate, so the engines' downcast dispatch tables stay exhaustive
    /// and the bit-for-bit contract between `node_update` and
    /// `node_update_core` is enforceable here.
    pub trait SealedDynamics {}
}

/// The sealed monomorphic extension of [`Dynamics`]: the per-node rule
/// generic over the sample source and the RNG.
///
/// Engines instantiate [`DynamicsCore::node_update_core`] with concrete
/// source/RNG types (`NeighborSource<Clique>` + `Xoshiro256PlusPlus`,
/// say), collapsing the three layers of dynamic dispatch on the
/// `Θ(n·h)`-per-round hot path into straight-line inlined code.
///
/// Contract: `Dynamics::node_update` must be a thin wrapper over this
/// method (same draw sequence, same results) — every implementation in
/// this crate delegates, and golden-trace tests pin the equivalence.
pub trait DynamicsCore: Dynamics + sealed::SealedDynamics {
    /// Monomorphic form of [`Dynamics::node_update`].
    fn node_update_core<S: SampleSource + ?Sized, R: RngCore + ?Sized>(
        &self,
        own: u32,
        source: &mut S,
        scratch: &mut NodeScratch,
        rng: &mut R,
    ) -> u32;
}

/// Fallback adapter: any `&dyn Dynamics` viewed as a [`DynamicsCore`].
/// Rules outside the engines' dispatch tables run through this — one
/// virtual `node_update` per node plus a virtual call per sample,
/// exactly the pre-devirtualization cost.
pub struct DynDynamics<'a>(pub &'a dyn Dynamics);

impl Dynamics for DynDynamics<'_> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn state_count(&self, k_colors: usize) -> usize {
        self.0.state_count(k_colors)
    }

    fn color_count(&self, n_states: usize) -> usize {
        self.0.color_count(n_states)
    }

    fn lift(&self, colors: &Configuration) -> Configuration {
        self.0.lift(colors)
    }

    fn node_update(
        &self,
        own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        self.0.node_update(own, sampler, scratch, rng)
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        self.0.step_mean_field(cur, next, rng);
    }

    fn has_fast_kernel(&self) -> bool {
        self.0.has_fast_kernel()
    }

    fn has_fast_kernel_for(&self, k_states: usize) -> bool {
        self.0.has_fast_kernel_for(k_states)
    }

    fn consensus(&self, states: &[u64]) -> Option<usize> {
        self.0.consensus(states)
    }

    fn as_any(&self) -> Option<&dyn Any> {
        self.0.as_any()
    }

    fn fixed_draws(&self) -> Option<usize> {
        self.0.fixed_draws()
    }
}

impl sealed::SealedDynamics for DynDynamics<'_> {}

impl DynamicsCore for DynDynamics<'_> {
    #[inline]
    fn node_update_core<S: SampleSource + ?Sized, R: RngCore + ?Sized>(
        &self,
        own: u32,
        source: &mut S,
        scratch: &mut NodeScratch,
        rng: &mut R,
    ) -> u32 {
        let mut rng = &mut *rng;
        self.0
            .node_update(own, &mut SourceSampler(source), scratch, &mut rng)
    }
}

/// Exact generic clique step: run every node's update against the previous
/// round's counts.  Grouping nodes by their current state avoids storing
/// per-node arrays.
///
/// This is the object-safe entry point; rules implemented in this crate
/// reach the same loop monomorphized via [`clique_step_core`] (identical
/// draw sequence — both run the node rule against a [`CliqueSampler`]
/// over the same counts).
pub fn generic_clique_step<D: Dynamics + ?Sized>(
    dynamics: &D,
    cur: &[u64],
    next: &mut [u64],
    rng: &mut dyn RngCore,
) {
    assert_eq!(cur.len(), next.len(), "state slice length mismatch");
    next.fill(0);
    let total: u64 = cur.iter().sum();
    if total == 0 {
        return;
    }
    let count_sampler = CountSampler::new(cur);
    let mut scratch = NodeScratch::with_states(cur.len());
    let mut sampler = CliqueSampler::new(&count_sampler);
    for (state, &population) in cur.iter().enumerate() {
        for _ in 0..population {
            let new = dynamics.node_update(state as u32, &mut sampler, &mut scratch, rng);
            next[new as usize] += 1;
        }
    }
    debug_assert_eq!(next.iter().sum::<u64>(), total);
}

/// Monomorphized form of [`generic_clique_step`]: the `O(n·h)` mean-field
/// fallback (h-plurality beyond the enumeration budget, say) with the
/// node rule and categorical sampler fully inlined.  Consumes the RNG
/// identically to the object-safe version.
pub fn clique_step_core<D: DynamicsCore + ?Sized, R: RngCore + ?Sized>(
    dynamics: &D,
    cur: &[u64],
    next: &mut [u64],
    rng: &mut R,
) {
    assert_eq!(cur.len(), next.len(), "state slice length mismatch");
    next.fill(0);
    let total: u64 = cur.iter().sum();
    if total == 0 {
        return;
    }
    let count_sampler = CountSampler::new(cur);
    let mut scratch = NodeScratch::with_states(cur.len());
    let mut sampler = CliqueSampler::new(&count_sampler);
    for (state, &population) in cur.iter().enumerate() {
        for _ in 0..population {
            let new = dynamics.node_update_core(state as u32, &mut sampler, &mut scratch, rng);
            next[new as usize] += 1;
        }
    }
    debug_assert_eq!(next.iter().sum::<u64>(), total);
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_sampling::Xoshiro256PlusPlus;
    use rand::SeedableRng;

    /// A trivial dynamics for plumbing tests: always adopt the sampled
    /// state (this is the voter rule, re-declared locally on purpose).
    struct AdoptSample;

    impl Dynamics for AdoptSample {
        fn name(&self) -> String {
            "adopt-sample".into()
        }

        fn node_update(
            &self,
            _own: u32,
            sampler: &mut dyn StateSampler,
            _scratch: &mut NodeScratch,
            rng: &mut dyn RngCore,
        ) -> u32 {
            sampler.sample_state(rng)
        }
    }

    #[test]
    fn generic_step_preserves_population() {
        let d = AdoptSample;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let cur = [500u64, 300, 200];
        let mut next = [0u64; 3];
        d.step_mean_field(&cur, &mut next, &mut rng);
        assert_eq!(next.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn generic_step_absorbing_on_monochromatic() {
        let d = AdoptSample;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let cur = [0u64, 777, 0];
        let mut next = [0u64; 3];
        d.step_mean_field(&cur, &mut next, &mut rng);
        assert_eq!(next, [0, 777, 0]);
    }

    #[test]
    fn consensus_default_impl() {
        let d = AdoptSample;
        assert_eq!(d.consensus(&[0, 5, 0]), Some(1));
        assert_eq!(d.consensus(&[1, 4, 0]), None);
        assert_eq!(d.consensus(&[0, 0]), None);
    }

    #[test]
    fn scratch_tally_and_clear() {
        let mut s = NodeScratch::with_states(8);
        s.tally(3);
        s.tally(3);
        s.tally(5);
        assert_eq!(s.counts[3], 2);
        assert_eq!(s.counts[5], 1);
        assert_eq!(s.touched, vec![3, 5]);
        assert_eq!(s.samples, vec![3, 3, 5]);
        s.clear_counts();
        assert_eq!(s.counts[3], 0);
        assert_eq!(s.counts[5], 0);
        assert!(s.touched.is_empty());
        assert!(s.samples.is_empty());
    }

    #[test]
    fn scratch_ensure_grows() {
        let mut s = NodeScratch::default();
        s.ensure_states(4);
        assert_eq!(s.counts.len(), 4);
        s.ensure_states(2);
        assert_eq!(s.counts.len(), 4);
    }

    #[test]
    fn clique_sampler_exact_marginals() {
        let counts = [900u64, 100];
        let cs = CountSampler::new(&counts);
        let mut sampler = CliqueSampler::new(&cs);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let trials = 50_000;
        let ones = (0..trials)
            .filter(|_| sampler.sample_state(&mut rng) == 1)
            .count();
        let expect = trials as f64 * 0.1;
        let sigma = (trials as f64 * 0.1 * 0.9).sqrt();
        assert!(
            ((ones as f64) - expect).abs() < 5.0 * sigma,
            "ones = {ones}"
        );
    }
}
