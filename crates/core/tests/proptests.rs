//! Property-based tests on the core invariants: for *any* configuration
//! and any dynamics, one simulated round must preserve the population and
//! every kernel must emit a genuine probability distribution; every
//! 3-input rule must return one of its inputs (the class constraint
//! `f(x₁,x₂,x₃) ∈ {x₁,x₂,x₃}` of Definition 1).

use plurality_core::d3::ClearRule;
use plurality_core::kernels::{h_plurality_probs, three_majority_probs};
use plurality_core::median::median3_of;
use plurality_core::{
    builders, Configuration, Dynamics, HPlurality, Median3, MedianOwn, TableD3, ThreeMajority,
    TwoChoices, TwoSample, UndecidedState, Voter,
};
use plurality_sampling::Xoshiro256PlusPlus;
use proptest::prelude::*;
use rand::SeedableRng;

/// Strategy: a non-degenerate counts vector (2..=8 colors, positive total).
fn counts_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..5_000, 2..8)
        .prop_filter("positive population", |c| c.iter().sum::<u64>() > 0)
}

/// Strategy: an arbitrary color-symmetric D3 rule.
fn table_strategy() -> impl Strategy<Value = TableD3> {
    (
        prop_oneof![
            Just(ClearRule::Majority),
            Just(ClearRule::Minority),
            Just(ClearRule::FirstSample)
        ],
        proptest::array::uniform6(0u8..3),
    )
        .prop_map(|(clear, distinct)| TableD3::new(clear, distinct, "random"))
}

proptest! {
    /// Lemma 1 kernel: a probability vector for any configuration.
    #[test]
    fn lemma1_kernel_is_distribution(counts in counts_strategy()) {
        let mut probs = vec![0.0f64; counts.len()];
        three_majority_probs(&counts, &mut probs);
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (&p, &c) in probs.iter().zip(&counts) {
            prop_assert!((0.0..=1.0).contains(&p));
            if c == 0 {
                prop_assert_eq!(p, 0.0, "dead colors must stay dead");
            }
        }
    }

    /// h-plurality enumeration kernel: distribution + dead colors stay dead.
    #[test]
    fn h_plurality_kernel_is_distribution(counts in counts_strategy(), h in 1usize..6) {
        let mut probs = vec![0.0f64; counts.len()];
        prop_assume!(h_plurality_probs(&counts, h, &mut probs));
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (&p, &c) in probs.iter().zip(&counts) {
            prop_assert!((0.0..=1.0).contains(&p));
            if c == 0 {
                prop_assert_eq!(p, 0.0);
            }
        }
    }

    /// Every D3 rule's kernel is a probability distribution.
    #[test]
    fn d3_kernel_is_distribution(counts in counts_strategy(), table in table_strategy()) {
        let mut probs = vec![0.0f64; counts.len()];
        table.adoption_probs(&counts, &mut probs);
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for &p in &probs {
            prop_assert!((0.0..=1.0).contains(&p), "p = {}", p);
        }
    }

    /// Definition 1's class constraint: any rule output is one of the
    /// inputs, for every clear-rule/table/triple combination.
    #[test]
    fn d3_apply_returns_an_input(
        table in table_strategy(),
        a in 0u32..6, b in 0u32..6, c in 0u32..6,
    ) {
        let out = table.apply(a, b, c);
        prop_assert!(out == a || out == b || out == c);
    }

    /// δ counters always total 3! = 6.
    #[test]
    fn d3_deltas_total_six(table in table_strategy()) {
        prop_assert_eq!(table.deltas().iter().map(|&d| u32::from(d)).sum::<u32>(), 6);
    }

    /// median3_of is the order statistic, however the inputs arrive.
    #[test]
    fn median3_is_middle(a in 0u32..100, b in 0u32..100, c in 0u32..100) {
        let mut sorted = [a, b, c];
        sorted.sort_unstable();
        prop_assert_eq!(median3_of(a, b, c), sorted[1]);
    }

    /// One mean-field round preserves the population for every dynamics.
    #[test]
    fn all_dynamics_preserve_population(counts in counts_strategy(), seed in any::<u64>()) {
        let cfg = Configuration::new(counts);
        let k = cfg.k();
        let n = cfg.n();
        let three = ThreeMajority::new();
        let h5 = HPlurality::new(5);
        let voter = Voter;
        let two_sample = TwoSample;
        let two_choices = TwoChoices;
        let median3 = Median3;
        let median_own = MedianOwn;
        let undecided = UndecidedState::new(k);
        let table = TableD3::lemma8_132();
        let rules: Vec<&dyn Dynamics> = vec![
            &three, &h5, &voter, &two_sample, &two_choices, &median3, &median_own, &table,
        ];
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        for d in rules {
            let mut next = vec![0u64; k];
            d.step_mean_field(cfg.counts(), &mut next, &mut rng);
            prop_assert_eq!(next.iter().sum::<u64>(), n, "{} lost nodes", d.name());
        }
        // Undecided runs on the lifted vector.
        let lifted = undecided.lift(&cfg);
        let mut next = vec![0u64; k + 1];
        undecided.step_mean_field(lifted.counts(), &mut next, &mut rng);
        prop_assert_eq!(next.iter().sum::<u64>(), n);
    }

    /// Monochromatic states are absorbing for every color dynamics.
    #[test]
    fn monochromatic_is_absorbing(
        k in 2usize..6,
        winner in 0usize..6,
        n in 1u64..100_000,
        seed in any::<u64>(),
    ) {
        let winner = winner % k;
        let mut counts = vec![0u64; k];
        counts[winner] = n;
        let three = ThreeMajority::new();
        let voter = Voter;
        let two_choices = TwoChoices;
        let median_own = MedianOwn;
        let rules: Vec<&dyn Dynamics> = vec![&three, &voter, &two_choices, &median_own];
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        for d in rules {
            let mut next = vec![0u64; k];
            d.step_mean_field(&counts, &mut next, &mut rng);
            prop_assert_eq!(&next, &counts, "{} escaped absorption", d.name());
        }
    }

    /// Builders produce configurations with the right population, and
    /// `biased` puts the plurality at color 0 with bias in [s, s+k).
    #[test]
    fn builders_respect_population(n in 100u64..1_000_000, k in 1usize..64) {
        let b = builders::balanced(n, k);
        prop_assert_eq!(b.n(), n);
        prop_assert_eq!(b.k(), k);
        let sorted = b.sorted_desc();
        prop_assert!(sorted[0] - sorted[k - 1] <= 1);
    }

    #[test]
    fn builder_biased_invariants(n in 1_000u64..1_000_000, k in 2usize..64, frac in 0.0f64..0.5) {
        let s = (n as f64 * frac) as u64;
        let cfg = builders::biased(n, k, s);
        prop_assert_eq!(cfg.n(), n);
        prop_assert_eq!(cfg.plurality().0, 0);
        prop_assert!(cfg.bias() >= s);
        prop_assert!(cfg.bias() < s + k as u64);
    }

    #[test]
    fn builder_geometric_invariants(n in 1_000u64..100_000, k in 1usize..32, ratio in 0.1f64..1.0) {
        let cfg = builders::geometric(n, k, ratio);
        prop_assert_eq!(cfg.n(), n);
        for w in cfg.counts().windows(2) {
            prop_assert!(w[0] >= w[1], "geometric counts must be non-increasing");
        }
    }

    /// Configuration accessors are mutually consistent.
    #[test]
    fn configuration_accessors_consistent(counts in counts_strategy()) {
        let cfg = Configuration::new(counts.clone());
        let (p, c1) = cfg.plurality();
        prop_assert_eq!(c1, *counts.iter().max().unwrap());
        prop_assert_eq!(cfg.count(p), c1);
        prop_assert!(cfg.second_count() <= c1);
        prop_assert_eq!(cfg.bias(), c1 - cfg.second_count());
        prop_assert_eq!(cfg.support(), counts.iter().filter(|&&c| c > 0).count());
        let md = cfg.monochromatic_distance();
        prop_assert!(md >= 1.0 - 1e-12);
        prop_assert!(md <= cfg.k() as f64 + 1e-12);
    }
}
