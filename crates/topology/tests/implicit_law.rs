//! Statistical validation of the implicit samplers: each family's
//! empirical neighbor frequencies are chi-square-tested against its
//! analytic law, with a small materialized CSR reference pinning the
//! support set, plus degree-tail checks for Chung–Lu.

use plurality_sampling::stream_rng;
use plurality_topology::{ChungLu, CsrGraph, ImplicitRing, Topology};

/// Pearson chi-square statistic of observed counts vs expected
/// (unnormalized) weights over the same support.
fn chi_square(observed: &[u64], weights: &[f64]) -> f64 {
    let total: u64 = observed.iter().sum();
    let wsum: f64 = weights.iter().sum();
    observed
        .iter()
        .zip(weights)
        .map(|(&o, &w)| {
            let e = total as f64 * w / wsum;
            (o as f64 - e).powi(2) / e
        })
        .sum()
}

/// Materialize the truncated ring lattice (every |distance| ≤ span) as
/// the CSR support reference.
fn ring_lattice(n: usize, span: usize) -> CsrGraph {
    let mut edges = Vec::new();
    for v in 0..n as u32 {
        for d in 1..=span as u32 {
            edges.push((v, (v + d) % n as u32));
        }
    }
    CsrGraph::from_edges(n, &edges, format!("ring-lattice(n={n},span={span})"))
}

/// Draw `trials` samples from `node` and count them per peer id.
fn sample_counts(t: &dyn Topology, node: usize, trials: u64, seed: u64) -> Vec<u64> {
    let mut rng = stream_rng(seed, 0x1A);
    let mut counts = vec![0u64; t.n()];
    for _ in 0..trials {
        counts[t.sample_neighbor(node, &mut rng)] += 1;
    }
    counts
}

#[test]
fn ring_gradient_law_matches_kernel_on_materialized_support() {
    let (n, span, alpha) = (64usize, 4usize, 1.5f64);
    let g = ImplicitRing::gradient(n, alpha, span);
    let reference = ring_lattice(n, span);
    let node = 10usize;
    let counts = sample_counts(&g, node, 200_000, 42);

    // Support check: sampled peers are exactly the CSR reference row.
    let sampled: Vec<u32> = (0..n)
        .filter(|&v| counts[v] > 0)
        .map(|v| v as u32)
        .collect();
    let mut expected_support = reference.neighbors(node).to_vec();
    expected_support.sort_unstable();
    assert_eq!(
        sampled, expected_support,
        "support must equal the lattice row"
    );

    // Law check: frequencies on the support follow d^(−alpha), both
    // directions.  df = 2·span − 1 = 7; chi² < 26.0 ≈ p = 5e-4.
    let support: Vec<usize> = expected_support.iter().map(|&v| v as usize).collect();
    let observed: Vec<u64> = support.iter().map(|&v| counts[v]).collect();
    let weights: Vec<f64> = support
        .iter()
        .map(|&v| {
            let fwd = (v + n - node) % n;
            let dist = fwd.min(n - fwd);
            (dist as f64).powf(-alpha)
        })
        .collect();
    let chi2 = chi_square(&observed, &weights);
    assert!(chi2 < 26.0, "ring-gradient chi² = {chi2:.2} (df 7)");
}

#[test]
fn ring_gaussian_law_matches_kernel_on_materialized_support() {
    let (n, sigma) = (64usize, 1.5f64);
    let g = ImplicitRing::gaussian(n, sigma);
    let span = g.span();
    assert_eq!(span, 5, "3σ truncation");
    let reference = ring_lattice(n, span);
    let node = 0usize;
    let counts = sample_counts(&g, node, 200_000, 43);

    let sampled: Vec<u32> = (0..n)
        .filter(|&v| counts[v] > 0)
        .map(|v| v as u32)
        .collect();
    let mut expected_support = reference.neighbors(node).to_vec();
    expected_support.sort_unstable();
    assert_eq!(sampled, expected_support);

    // df = 2·span − 1 = 9; chi² < 29.7 ≈ p = 5e-4.
    let support: Vec<usize> = expected_support.iter().map(|&v| v as usize).collect();
    let observed: Vec<u64> = support.iter().map(|&v| counts[v]).collect();
    let weights: Vec<f64> = support
        .iter()
        .map(|&v| {
            let fwd = (v + n - node) % n;
            let dist = fwd.min(n - fwd) as f64;
            (-dist * dist / (2.0 * sigma * sigma)).exp()
        })
        .collect();
    let chi2 = chi_square(&observed, &weights);
    assert!(chi2 < 29.7, "ring-gaussian chi² = {chi2:.2} (df 9)");
}

#[test]
fn chung_lu_law_matches_weighted_rejection_model() {
    // P(v | u) = w_v / (W − w_u): the alias draw conditioned on v ≠ u.
    let n = 32usize;
    let g = ChungLu::power_law(n, 2.0, 20.0, 2.5);
    let node = 0usize;
    let counts = sample_counts(&g, node, 200_000, 44);

    assert_eq!(counts[node], 0, "self-draws must be rejected");
    let support: Vec<usize> = (0..n).filter(|&v| v != node).collect();
    let observed: Vec<u64> = support.iter().map(|&v| counts[v]).collect();
    let weights: Vec<f64> = support.iter().map(|&v| g.weight(v)).collect();
    // df = 30; chi² < 59.7 ≈ p = 1e-3.
    let chi2 = chi_square(&observed, &weights);
    assert!(chi2 < 59.7, "chung-lu chi² = {chi2:.2} (df 30)");
}

#[test]
fn chung_lu_degree_tail_follows_the_power_law() {
    // The closed-form weight sequence w_i = clamp(dmin·(n/(i+1))^(1/(γ−1)))
    // implies the ccdf #{i : w_i ≥ x} ≈ n·(dmin/x)^(γ−1) between the
    // clamps — the defining property of a γ-exponent degree tail.
    let (n, dmin, dmax, gamma) = (100_000usize, 2.0f64, 500.0f64, 2.5f64);
    let g = ChungLu::power_law(n, dmin, dmax, gamma);
    for x in [4.0, 8.0, 16.0, 64.0, 200.0] {
        let observed = (0..n).filter(|&i| g.weight(i) >= x).count() as f64;
        let predicted = n as f64 * (dmin / x).powf(gamma - 1.0);
        let ratio = observed / predicted;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "ccdf at x={x}: observed {observed}, predicted {predicted:.1}"
        );
    }
    // Clamps hold at both ends.
    assert!((g.weight(0) - dmax).abs() < 1e-9);
    assert!((g.weight(n - 1) - dmin).abs() < 1e-9);
}

#[test]
fn heavy_nodes_dominate_chung_lu_traffic() {
    // Sampled peer frequency is weight-proportional, so the top-decile
    // nodes (by weight) must receive ≈ their weight share of draws.
    let n = 1000usize;
    let g = ChungLu::power_law(n, 2.0, 100.0, 2.5);
    let counts = sample_counts(&g, n - 1, 100_000, 45);
    let top: f64 = (0..n / 10).map(|v| counts[v] as f64).sum();
    let total: f64 = counts.iter().map(|&c| c as f64).sum();
    let weight_share: f64 =
        (0..n / 10).map(|v| g.weight(v)).sum::<f64>() / (g.total_weight() - g.weight(n - 1));
    let observed_share = top / total;
    assert!(
        (observed_share - weight_share).abs() < 0.01,
        "top-decile share {observed_share:.3} vs weight share {weight_share:.3}"
    );
}
