//! Property-based tests on topology invariants: simple undirected graphs
//! with valid neighbor sampling, across all generator families and
//! arbitrary parameters.

use plurality_sampling::stream_rng;
use plurality_topology::{
    barabasi_albert, complete_bipartite, erdos_renyi, random_regular, ring, star, torus,
    watts_strogatz, Clique, CsrGraph, Topology, TopologySpec,
};
use proptest::prelude::*;

/// Strategy over every `TopologySpec` variant with valid parameters.
fn any_topology_spec() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        Just(TopologySpec::Clique),
        Just(TopologySpec::Ring),
        Just(TopologySpec::Torus),
        (1usize..64).prop_map(|degree| TopologySpec::RandomRegular { degree }),
        (0.0f64..8.0, 1usize..256)
            .prop_map(|(alpha, span)| TopologySpec::RingGradient { alpha, span }),
        (0.01f64..64.0).prop_map(|sigma| TopologySpec::RingGaussian { sigma }),
        (0.1f64..16.0, 1.0f64..100.0, 1.01f64..8.0).prop_map(|(dmin, factor, gamma)| {
            TopologySpec::ChungLu {
                dmin,
                dmax: dmin * factor,
                gamma,
            }
        }),
    ]
}

/// Every sampled neighbor is an actual adjacency-list member.
fn check_sampling(g: &CsrGraph, seed: u64) -> Result<(), TestCaseError> {
    let mut rng = stream_rng(seed, 1);
    for v in 0..g.n().min(32) {
        if g.degree(v) == 0 {
            continue;
        }
        for _ in 0..8 {
            let w = g.sample_neighbor(v, &mut rng);
            prop_assert!(
                g.neighbors(v).contains(&(w as u32)),
                "node {v} sampled non-neighbor {w}"
            );
            prop_assert_ne!(v, w, "graph sampling returned self");
        }
    }
    Ok(())
}

/// Adjacency symmetry + no self loops.
fn check_simple_undirected(g: &CsrGraph) -> Result<(), TestCaseError> {
    for v in 0..g.n() {
        for &w in g.neighbors(v) {
            prop_assert_ne!(v as u32, w, "self loop at {}", v);
            prop_assert!(
                g.neighbors(w as usize).contains(&(v as u32)),
                "asymmetric edge {}–{}",
                v,
                w
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn erdos_renyi_invariants(n in 2usize..200, p in 0.0f64..0.3, seed in any::<u64>()) {
        let g = erdos_renyi(n, p, seed);
        prop_assert_eq!(g.n(), n);
        check_simple_undirected(&g)?;
        check_sampling(&g, seed)?;
    }

    #[test]
    fn random_regular_invariants(half_n in 8usize..60, d in 2usize..6, seed in any::<u64>()) {
        let n = half_n * 2; // even n·d guaranteed
        let g = random_regular(n, d, seed);
        for v in 0..n {
            prop_assert_eq!(g.degree(v), d);
        }
        check_simple_undirected(&g)?;
        check_sampling(&g, seed)?;
    }

    #[test]
    fn barabasi_albert_invariants(n in 10usize..300, m in 1usize..5, seed in any::<u64>()) {
        let g = barabasi_albert(n, m, seed);
        prop_assert_eq!(g.n(), n);
        prop_assert!(g.is_connected());
        check_simple_undirected(&g)?;
        check_sampling(&g, seed)?;
        // Edge count formula.
        prop_assert_eq!(g.edge_count(), (m + 1) * m / 2 + (n - m - 1) * m);
    }

    #[test]
    fn watts_strogatz_invariants(
        n in 12usize..300,
        k_half in 1usize..4,
        beta in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        prop_assume!(2 * k_half < n);
        let g = watts_strogatz(n, k_half, beta, seed);
        prop_assert_eq!(g.n(), n);
        prop_assert_eq!(g.edge_count(), n * k_half);
        check_simple_undirected(&g)?;
        check_sampling(&g, seed)?;
    }

    #[test]
    fn torus_invariants(w in 3usize..12, h in 3usize..12) {
        let g = torus(w, h);
        prop_assert_eq!(g.n(), w * h);
        for v in 0..g.n() {
            prop_assert_eq!(g.degree(v), 4);
        }
        prop_assert!(g.is_connected());
        check_simple_undirected(&g)?;
    }

    #[test]
    fn ring_star_bipartite_invariants(n in 3usize..100, b in 1usize..30) {
        let r = ring(n);
        prop_assert_eq!(r.edge_count(), n);
        prop_assert!(r.is_connected());
        let s = star(n.max(2));
        prop_assert!(s.is_connected());
        let kb = complete_bipartite(n.min(20), b);
        prop_assert_eq!(kb.edge_count(), n.min(20) * b);
        check_simple_undirected(&kb)?;
    }

    #[test]
    fn topology_spec_parse_display_round_trips(spec in any_topology_spec()) {
        // The canonical Display form must parse back to the identical
        // spec (shortest-round-trip float formatting makes the f64
        // parameters exact), and printing is idempotent — this is the
        // contract that lets CLI, server, and experiments share one
        // grammar and derive collision-free cache keys from it.
        let canonical = spec.to_string();
        let reparsed = TopologySpec::parse(&canonical);
        prop_assert!(reparsed.is_ok(), "'{}' failed to parse: {:?}", canonical, reparsed);
        let reparsed = reparsed.unwrap();
        prop_assert_eq!(&reparsed, &spec);
        prop_assert_eq!(reparsed.to_string(), canonical);
    }

    #[test]
    fn implicit_ring_sampling_stays_in_kernel_support(
        n in 16usize..512,
        alpha in 0.0f64..4.0,
        seed in any::<u64>(),
    ) {
        let span = 1 + seed as usize % ((n - 1) / 2);
        let g = plurality_topology::ImplicitRing::gradient(n, alpha, span);
        let mut rng = stream_rng(seed, 3);
        for node in (0..n).step_by(1 + n / 8) {
            for _ in 0..8 {
                let w = g.sample_neighbor(node, &mut rng);
                prop_assert_ne!(w, node);
                let fwd = (w + n - node) % n;
                let dist = fwd.min(n - fwd);
                prop_assert!((1..=span).contains(&dist));
            }
        }
    }

    #[test]
    fn clique_samples_in_range(n in 1usize..1_000, seed in any::<u64>()) {
        let c = Clique::new(n);
        let mut rng = stream_rng(seed, 2);
        for _ in 0..32 {
            prop_assert!(c.sample_neighbor(0, &mut rng) < n);
        }
        if n >= 2 {
            let noself = Clique::without_self(n);
            for v in 0..n.min(8) {
                for _ in 0..8 {
                    prop_assert_ne!(noself.sample_neighbor(v, &mut rng), v);
                }
            }
        }
    }
}
