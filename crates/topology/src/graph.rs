//! Compressed sparse-row graph storage and the [`Topology`] trait.
//!
//! The paper's model is the clique, where neighbor sampling needs no
//! storage at all.  The agent-based engine also runs the dynamics on
//! explicit graphs (extension experiment E12), which are stored here in
//! CSR form: one offsets array and one flat edge array — cache-friendly
//! and allocation-free during simulation.

use rand::{Rng, RngCore};
use std::any::Any;

/// A communication topology: who can a node sample in one round?
///
/// `sample_neighbor` must return a u.a.r. element of the node's sampling
/// set.  For the clique (the paper's model) the sampling set is *all* `n`
/// nodes including the sampler itself, with repetition across draws; for
/// explicit graphs it is the adjacency list.
pub trait Topology: Send + Sync {
    /// Topology name for labels.
    fn name(&self) -> String;

    /// Number of nodes.
    fn n(&self) -> usize;

    /// Draw a uniformly random member of `node`'s sampling set.
    fn sample_neighbor(&self, node: usize, rng: &mut dyn RngCore) -> usize;

    /// Size of the node's sampling set.
    fn degree(&self, node: usize) -> usize;

    /// Concrete-type hook for the devirtualized engine cores: topologies
    /// that participate in downcast dispatch (see [`downcast_topology`])
    /// return `Some(self)`; the default `None` routes sampling through
    /// the dyn fallback.
    fn as_any(&self) -> Option<&dyn Any> {
        None
    }

    /// Capability query: the size of the **dense directed edge slot**
    /// index space, when this topology materializes its edges and every
    /// sampled edge carries a stable slot (see
    /// [`CsrGraph::directed_edge_count`] and
    /// [`TopologyCore::sample_neighbor_edge_core`]).
    ///
    /// `Some(slots)` licenses callers to precompute flat per-edge
    /// annotation tables (loss/delay parameters, Gilbert–Elliott chains)
    /// indexed by slot.  The default `None` — returned by the clique and
    /// by implicit generative topologies that sample neighbors on the
    /// fly — tells those callers to fall back to hash-keyed per-edge
    /// state instead of panicking.  Consumers must treat `None` as "use
    /// the keyed path", never as an error.
    fn dense_edge_slots(&self) -> Option<usize> {
        None
    }

    /// Capability query: does this topology support *indexed* neighbor
    /// access ([`TopologyCore::neighbor_at_core`]) such that a uniform
    /// `gen_range(0..degree(node))` draw followed by indexing reproduces
    /// the neighbor law of `sample_neighbor`?
    ///
    /// The churn membership overlay ([`crate::Membership`]) requires
    /// this to reject dead peers and redraw.  Implicit topologies with a
    /// *non-uniform* neighbor law (ring kernels, Chung–Lu) return the
    /// default `false`: their distribution cannot be reproduced by
    /// uniform indexing, so churn must be refused with a structured
    /// error — not a panic mid-run — by every surface that checks this
    /// before handing the topology to a membership overlay.
    fn supports_indexed_neighbors(&self) -> bool {
        false
    }
}

/// Recover a concrete topology type from a `&dyn Topology` (via
/// [`Topology::as_any`]); the engines use this to select a fully
/// monomorphized neighbor-sampling path.
#[must_use]
pub fn downcast_topology<T: Topology + 'static>(topology: &dyn Topology) -> Option<&T> {
    topology.as_any().and_then(<dyn Any>::downcast_ref)
}

pub(crate) mod sealed {
    /// Seals [`super::TopologyCore`]: the monomorphic sampling contract
    /// (same RNG consumption as `sample_neighbor`, bit for bit) is only
    /// enforceable for the samplers maintained in this crate.
    pub trait SealedTopology {}
}

/// The sealed monomorphic extension of [`Topology`]: neighbor sampling
/// generic over the RNG, so a concrete topology + concrete RNG pair
/// inlines to straight-line code in the engines' per-node loops.
///
/// Contract: `sample_neighbor_core` must consume the RNG identically to
/// [`Topology::sample_neighbor`] (every implementation here *is* the
/// implementation behind the object-safe method).
pub trait TopologyCore: Topology + sealed::SealedTopology {
    /// Monomorphic form of [`Topology::sample_neighbor`].
    fn sample_neighbor_core<R: RngCore + ?Sized>(&self, node: usize, rng: &mut R) -> usize;

    /// Like [`Self::sample_neighbor_core`], additionally reporting the
    /// **dense directed edge slot** of the sampled edge when the
    /// topology stores explicit edges in CSR form (see
    /// [`CsrGraph::directed_edge_count`]); `None` for implicit
    /// topologies (clique) and fallback adapters.
    ///
    /// Contract: must consume the RNG *identically* to
    /// `sample_neighbor_core` — callers switch between the two freely
    /// without perturbing trajectories.
    fn sample_neighbor_edge_core<R: RngCore + ?Sized>(
        &self,
        node: usize,
        rng: &mut R,
    ) -> (usize, Option<usize>) {
        (self.sample_neighbor_core(node, rng), None)
    }

    /// The `idx`-th member of `node`'s sampling set (`0 ≤ idx <
    /// degree(node)`), with its dense directed CSR slot when the
    /// topology stores explicit edges.  The churn membership overlay
    /// ([`crate::Membership`]) samples through this so it can reject
    /// dead peers and redraw without rebuilding the CSR.
    ///
    /// Contract: drawing `idx = gen_range(0..degree(node))` and
    /// indexing here must reproduce the distribution — and, for the
    /// same `gen_range` draw, the exact peer and slot — of
    /// [`Self::sample_neighbor_edge_core`].
    ///
    /// # Panics
    /// The default implementation panics: indexed access is only
    /// provided by the concrete topologies maintained in this crate
    /// (dyn fallback adapters cannot enforce the contract).
    fn neighbor_at_core(&self, node: usize, idx: usize) -> (usize, Option<usize>) {
        let _ = (node, idx);
        panic!(
            "topology '{}' does not support indexed neighbor access \
             (required by churn membership overlays)",
            self.name()
        )
    }
}

/// Fallback adapter: any `&dyn Topology` viewed as a [`TopologyCore`]
/// (one virtual call per sample — the pre-devirtualization cost).
pub struct DynTopology<'a>(pub &'a dyn Topology);

impl Topology for DynTopology<'_> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn n(&self) -> usize {
        self.0.n()
    }

    fn sample_neighbor(&self, node: usize, rng: &mut dyn RngCore) -> usize {
        self.0.sample_neighbor(node, rng)
    }

    fn degree(&self, node: usize) -> usize {
        self.0.degree(node)
    }

    fn as_any(&self) -> Option<&dyn Any> {
        self.0.as_any()
    }

    fn dense_edge_slots(&self) -> Option<usize> {
        self.0.dense_edge_slots()
    }

    fn supports_indexed_neighbors(&self) -> bool {
        self.0.supports_indexed_neighbors()
    }
}

impl sealed::SealedTopology for DynTopology<'_> {}

impl TopologyCore for DynTopology<'_> {
    #[inline]
    fn sample_neighbor_core<R: RngCore + ?Sized>(&self, node: usize, rng: &mut R) -> usize {
        // `&mut &mut R` is Sized, so it coerces to `&mut dyn RngCore`.
        let mut rng = &mut *rng;
        self.0.sample_neighbor(node, &mut rng)
    }
}

/// An undirected graph in CSR form.
///
/// Invariants: adjacency is symmetric, no self-loops, no parallel edges
/// (enforced by [`CsrGraph::from_edges`]).
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    edges: Vec<u32>,
    /// `Some(d)` iff every node has degree `d > 0` — detected at
    /// construction so neighbor sampling can skip the offsets lookup
    /// (rings, tori, random-regular graphs).
    regular_degree: Option<usize>,
    name: String,
}

impl CsrGraph {
    /// Build from an undirected edge list (`u < v` pairs or any order;
    /// duplicates and self-loops are rejected).
    ///
    /// # Panics
    /// Panics on a self-loop, a duplicate edge, or an endpoint ≥ `n`.
    #[must_use]
    pub fn from_edges(n: usize, edge_list: &[(u32, u32)], name: impl Into<String>) -> Self {
        let mut canon: Vec<(u32, u32)> = edge_list
            .iter()
            .map(|&(u, v)| {
                assert!(u != v, "self-loop at node {u}");
                assert!(
                    (u as usize) < n && (v as usize) < n,
                    "endpoint out of range"
                );
                (u.min(v), u.max(v))
            })
            .collect();
        canon.sort_unstable();
        for w in canon.windows(2) {
            assert_ne!(w[0], w[1], "duplicate edge {:?}", w[0]);
        }

        let mut degrees = vec![0usize; n];
        for &(u, v) in &canon {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut edges = vec![0u32; acc];
        for &(u, v) in &canon {
            edges[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            edges[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        let regular_degree = match degrees.first() {
            Some(&d) if d > 0 && degrees.iter().all(|&x| x == d) => Some(d),
            _ => None,
        };
        Self {
            offsets,
            edges,
            regular_degree,
            name: name.into(),
        }
    }

    /// `Some(d)` when every node has the same positive degree `d` (the
    /// neighbor-sampling fast path applies).
    #[must_use]
    pub fn regular_degree(&self) -> Option<usize> {
        self.regular_degree
    }

    /// The adjacency list of a node.
    #[must_use]
    pub fn neighbors(&self, node: usize) -> &[u32] {
        &self.edges[self.offsets[node]..self.offsets[node + 1]]
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len() / 2
    }

    /// Number of *directed* edge slots (`2 × edge_count`): the index
    /// space of [`TopologyCore::sample_neighbor_edge_core`] and of dense
    /// per-edge annotation tables.  Slot `offsets[v] + i` holds node
    /// `v`'s `i`-th neighbor.
    #[must_use]
    pub fn directed_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The dense directed slot range of `node`'s adjacency row (slot `s`
    /// in this range corresponds to `neighbors(node)[s - range.start]`).
    #[must_use]
    pub fn slot_range(&self, node: usize) -> std::ops::Range<usize> {
        self.offsets[node]..self.offsets[node + 1]
    }

    /// BFS connectivity check.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(0usize);
        let mut visited = 1usize;
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    visited += 1;
                    queue.push_back(w as usize);
                }
            }
        }
        visited == n
    }

    /// Minimum degree over all nodes.
    #[must_use]
    pub fn min_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).min().unwrap_or(0)
    }
}

impl Topology for CsrGraph {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    fn sample_neighbor(&self, node: usize, rng: &mut dyn RngCore) -> usize {
        self.sample_neighbor_core(node, rng)
    }

    fn degree(&self, node: usize) -> usize {
        self.offsets[node + 1] - self.offsets[node]
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn dense_edge_slots(&self) -> Option<usize> {
        Some(self.edges.len())
    }

    fn supports_indexed_neighbors(&self) -> bool {
        true
    }
}

impl sealed::SealedTopology for CsrGraph {}

impl TopologyCore for CsrGraph {
    #[inline]
    fn sample_neighbor_core<R: RngCore + ?Sized>(&self, node: usize, rng: &mut R) -> usize {
        if let Some(d) = self.regular_degree {
            // Regular graph: row `node` starts at `node·d`; no offsets
            // load.  Same `gen_range(0..d)` draw as the general path.
            return self.edges[node * d + rng.gen_range(0..d)] as usize;
        }
        let nbrs = self.neighbors(node);
        assert!(
            !nbrs.is_empty(),
            "node {node} is isolated; cannot sample a neighbor"
        );
        nbrs[rng.gen_range(0..nbrs.len())] as usize
    }

    #[inline]
    fn sample_neighbor_edge_core<R: RngCore + ?Sized>(
        &self,
        node: usize,
        rng: &mut R,
    ) -> (usize, Option<usize>) {
        // Same draws as `sample_neighbor_core`, slot made explicit.
        if let Some(d) = self.regular_degree {
            let slot = node * d + rng.gen_range(0..d);
            return (self.edges[slot] as usize, Some(slot));
        }
        let start = self.offsets[node];
        let degree = self.offsets[node + 1] - start;
        assert!(
            degree > 0,
            "node {node} is isolated; cannot sample a neighbor"
        );
        let slot = start + rng.gen_range(0..degree);
        (self.edges[slot] as usize, Some(slot))
    }

    #[inline]
    fn neighbor_at_core(&self, node: usize, idx: usize) -> (usize, Option<usize>) {
        let slot = self.offsets[node] + idx;
        debug_assert!(
            slot < self.offsets[node + 1],
            "neighbor index {idx} out of range for node {node}"
        );
        (self.edges[slot] as usize, Some(slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_sampling::Xoshiro256PlusPlus;
    use rand::SeedableRng;

    fn path3() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2)], "path3")
    }

    #[test]
    fn csr_layout() {
        let g = path3();
        assert_eq!(g.n(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        let mut mid = g.neighbors(1).to_vec();
        mid.sort_unstable();
        assert_eq!(mid, vec![0, 2]);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let _ = CsrGraph::from_edges(2, &[(1, 1)], "bad");
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate() {
        let _ = CsrGraph::from_edges(3, &[(0, 1), (1, 0)], "bad");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoint() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)], "bad");
    }

    #[test]
    fn connectivity() {
        assert!(path3().is_connected());
        let disconnected = CsrGraph::from_edges(4, &[(0, 1), (2, 3)], "two-islands");
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn neighbor_sampling_uniform() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)], "star4");
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let trials = 30_000;
        let mut counts = [0u64; 4];
        for _ in 0..trials {
            counts[g.sample_neighbor(0, &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0, "no self-sampling on a graph");
        for c in &counts[1..] {
            let expect = trials as f64 / 3.0;
            assert!(
                ((*c as f64) - expect).abs() < 5.0 * (expect * (2.0 / 3.0)).sqrt(),
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn edge_slot_sampling_consumes_rng_identically() {
        // Irregular and regular graphs: the slot-reporting sampler must
        // draw the same neighbor sequence as the plain one, and the slot
        // must point back at that neighbor.
        let irregular = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)], "irr");
        let regular = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], "ring4");
        assert_eq!(regular.regular_degree(), Some(2));
        for g in [&irregular, &regular] {
            let mut a = Xoshiro256PlusPlus::seed_from_u64(5);
            let mut b = Xoshiro256PlusPlus::seed_from_u64(5);
            for _ in 0..500 {
                for node in 0..g.n() {
                    if g.degree(node) == 0 {
                        continue;
                    }
                    let plain = g.sample_neighbor_core(node, &mut a);
                    let (peer, slot) = g.sample_neighbor_edge_core(node, &mut b);
                    assert_eq!(plain, peer, "draw diverged at node {node}");
                    let slot = slot.expect("CSR graphs report slots");
                    assert!(g.slot_range(node).contains(&slot));
                    assert_eq!(
                        g.neighbors(node)[slot - g.slot_range(node).start] as usize,
                        peer
                    );
                }
            }
        }
        assert_eq!(irregular.directed_edge_count(), 8);
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn isolated_node_panics() {
        let g = CsrGraph::from_edges(3, &[(0, 1)], "lonely-2");
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let _ = g.sample_neighbor(2, &mut rng);
    }
}
