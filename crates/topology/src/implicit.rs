//! Implicit (non-materialized) topologies: neighbors are sampled on the
//! fly from a generative model instead of a stored edge list.
//!
//! At 10⁷+ nodes a CSR edge list costs O(n·d) memory and dominates the
//! simulation footprint; the families here cost O(n) ([`ChungLu`]) or
//! O(span) ([`ImplicitRing`]) state regardless of expected degree.  The
//! trade: edges are not *persistent objects* — two draws from the same
//! node are independent samples from the neighbor law, so there is no
//! dense edge-slot space ([`Topology::dense_edge_slots`] is `None`) and
//! no uniform indexed access ([`Topology::supports_indexed_neighbors`]
//! is `false`; the neighbor law is non-uniform, so churn membership
//! overlays must refuse these families with a structured error).
//!
//! # Determinism
//!
//! Construction consumes no randomness (the alias tables are built
//! deterministically from the parameters), so an implicit topology is
//! fully determined by its parameters — the wiring seed that
//! [`crate::random_regular`] needs does not apply.  Sampling draw
//! accounting, normative for `docs/DETERMINISM.md`:
//!
//! - [`ImplicitRing`]: exactly one alias-table draw (= 2 RNG draws:
//!   `gen_range` slot + `f64` accept) per neighbor sample.
//! - [`ChungLu`]: one alias-table draw per *attempt*, retrying while the
//!   drawn peer equals the sampler — the draw count is data-dependent
//!   (geometric with success probability `1 − wᵤ/W`), which is why
//!   implicit families get fresh golden fingerprints rather than
//!   CSR-compatible ones.

use crate::graph::{sealed::SealedTopology, Topology, TopologyCore};
use plurality_sampling::AliasTable;
use rand::RngCore;
use std::any::Any;

/// A ring of `n` nodes where node `v` samples a peer at signed ring
/// distance `d ∈ {−span, …, −1, +1, …, +span}` with probability given by
/// a distance kernel — polynomial decay ([`ImplicitRing::gradient`]) or
/// Gaussian ([`ImplicitRing::gaussian`]).
///
/// The kernel is translation-invariant, so one alias table over the
/// `2·span` signed distances serves every node: O(span) state total.
/// Each neighbor sample consumes exactly one alias draw (2 RNG draws).
#[derive(Debug, Clone)]
pub struct ImplicitRing {
    n: usize,
    span: usize,
    alias: AliasTable,
    name: String,
}

impl ImplicitRing {
    /// Polynomial-decay kernel: distance `d` has weight `d^(−alpha)`,
    /// truncated at `span` (the ecRust simulator's "RingGradient").
    /// `alpha = 0` degenerates to a uniform `2·span`-regular ring
    /// neighborhood.
    ///
    /// # Panics
    /// Panics if `alpha` is negative or non-finite, or on the size
    /// constraints of [`ImplicitRing::from_kernel`].
    #[must_use]
    pub fn gradient(n: usize, alpha: f64, span: usize) -> Self {
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "gradient exponent must be finite and non-negative, got {alpha}"
        );
        let weights: Vec<f64> = (1..=span).map(|d| (d as f64).powf(-alpha)).collect();
        let name = format!("ring-gradient(n={n},alpha={alpha},span={span})");
        Self::from_kernel(n, span, &weights, name)
    }

    /// Gaussian kernel: distance `d` has weight `exp(−d²/(2σ²))`,
    /// truncated at `span = min(⌈3σ⌉, (n−1)/2)` — beyond 3σ the tail
    /// mass is negligible (the ecRust simulator's "RingGaussian").
    ///
    /// # Panics
    /// Panics if `sigma` is not strictly positive and finite, or on the
    /// size constraints of [`ImplicitRing::from_kernel`].
    #[must_use]
    pub fn gaussian(n: usize, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "gaussian width must be finite and positive, got {sigma}"
        );
        let span = (((3.0 * sigma).ceil() as usize).max(1)).min(n.saturating_sub(1) / 2);
        let weights: Vec<f64> = (1..=span)
            .map(|d| (-((d * d) as f64) / (2.0 * sigma * sigma)).exp())
            .collect();
        let name = format!("ring-gaussian(n={n},sigma={sigma},span={span})");
        Self::from_kernel(n, span, &weights, name)
    }

    /// Build from an explicit one-sided kernel: `weights[d−1]` is the
    /// (unnormalized) probability of distance `d ∈ 1..=span`, mirrored
    /// to both ring directions.
    ///
    /// # Panics
    /// Panics if `span == 0`, if `weights.len() != span`, if
    /// `2·span > n − 1` (distances must stay injective: no peer may be
    /// reachable both clockwise and counter-clockwise, and never the
    /// sampler itself), or if the weights are invalid for
    /// [`AliasTable::new`] (negative / non-finite / all zero).
    #[must_use]
    pub fn from_kernel(n: usize, span: usize, weights: &[f64], name: impl Into<String>) -> Self {
        assert!(span > 0, "ring kernel span must be positive");
        assert_eq!(weights.len(), span, "kernel must cover distances 1..=span");
        assert!(
            2 * span <= n.saturating_sub(1),
            "ring kernel span {span} too wide for n={n}: need 2·span ≤ n−1"
        );
        // Signed-distance table: entries 0..span are +1..+span, entries
        // span..2·span are −1..−span, each direction carrying the same
        // one-sided kernel weight.
        let mut signed = Vec::with_capacity(2 * span);
        signed.extend_from_slice(weights);
        signed.extend_from_slice(weights);
        Self {
            n,
            span,
            alias: AliasTable::new(&signed),
            name: name.into(),
        }
    }

    /// The one-sided kernel truncation distance.
    #[must_use]
    pub fn span(&self) -> usize {
        self.span
    }

    /// The peer at alias-table entry `idx` for a given sampler: entries
    /// `0..span` map to `node + (idx+1)`, entries `span..2·span` to
    /// `node − (idx−span+1)`, both mod `n`.
    #[inline]
    fn peer_of(&self, node: usize, idx: usize) -> usize {
        if idx < self.span {
            (node + idx + 1) % self.n
        } else {
            (node + self.n - (idx - self.span + 1)) % self.n
        }
    }
}

impl Topology for ImplicitRing {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn n(&self) -> usize {
        self.n
    }

    fn sample_neighbor(&self, node: usize, rng: &mut dyn RngCore) -> usize {
        self.sample_neighbor_core(node, rng)
    }

    fn degree(&self, node: usize) -> usize {
        let _ = node;
        2 * self.span
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

impl SealedTopology for ImplicitRing {}

impl TopologyCore for ImplicitRing {
    #[inline]
    fn sample_neighbor_core<R: RngCore + ?Sized>(&self, node: usize, rng: &mut R) -> usize {
        self.peer_of(node, self.alias.sample(rng))
    }
}

/// The Chung–Lu degree-sequence model, sampled implicitly: node `v` is
/// drawn with probability proportional to its weight `w_v`, rejecting
/// self-draws.  One global alias table over the `n` weights: O(n) state.
///
/// Weights follow a truncated power law chosen so that expected degrees
/// have tail exponent `gamma`:
/// `w_i = clamp(dmin · (n/(i+1))^(1/(γ−1)), dmin, dmax)`.
///
/// This is the *sampling* half of Chung–Lu — per-draw peer frequencies
/// match the model's edge-endpoint law `P(v | u) = w_v / (W − w_u)` —
/// not a materialized graph, so there are no persistent edges, no dense
/// slots, and no uniform indexed access (see the module docs).
#[derive(Debug, Clone)]
pub struct ChungLu {
    n: usize,
    dmin: f64,
    dmax: f64,
    gamma: f64,
    total_weight: f64,
    alias: AliasTable,
}

impl ChungLu {
    /// Build the truncated-power-law instance.
    ///
    /// # Panics
    /// Panics if `n < 2`, `gamma ≤ 1`, `dmin ≤ 0`, or `dmax < dmin`, or
    /// if any parameter is non-finite.
    #[must_use]
    pub fn power_law(n: usize, dmin: f64, dmax: f64, gamma: f64) -> Self {
        assert!(n >= 2, "chung-lu needs at least two nodes");
        assert!(
            gamma.is_finite() && gamma > 1.0,
            "degree exponent must be finite and > 1, got {gamma}"
        );
        assert!(
            dmin.is_finite() && dmin > 0.0,
            "dmin must be finite and positive, got {dmin}"
        );
        assert!(
            dmax.is_finite() && dmax >= dmin,
            "dmax must be finite and ≥ dmin, got {dmax}"
        );
        let inv = 1.0 / (gamma - 1.0);
        let weights: Vec<f64> = (0..n)
            .map(|i| (dmin * (n as f64 / (i + 1) as f64).powf(inv)).clamp(dmin, dmax))
            .collect();
        let total_weight = weights.iter().sum();
        Self {
            n,
            dmin,
            dmax,
            gamma,
            total_weight,
            alias: AliasTable::new(&weights),
        }
    }

    /// The (expected-degree) weight of node `i`, recomputed from the
    /// closed form — the table itself only stores alias slots.
    #[must_use]
    pub fn weight(&self, i: usize) -> f64 {
        assert!(i < self.n, "node {i} out of range");
        let inv = 1.0 / (self.gamma - 1.0);
        (self.dmin * (self.n as f64 / (i + 1) as f64).powf(inv)).clamp(self.dmin, self.dmax)
    }

    /// Sum of all node weights `W` (the edge-endpoint normalizer).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }
}

impl Topology for ChungLu {
    fn name(&self) -> String {
        format!(
            "chung-lu(n={},dmin={},dmax={},gamma={})",
            self.n, self.dmin, self.dmax, self.gamma
        )
    }

    fn n(&self) -> usize {
        self.n
    }

    fn sample_neighbor(&self, node: usize, rng: &mut dyn RngCore) -> usize {
        self.sample_neighbor_core(node, rng)
    }

    fn degree(&self, node: usize) -> usize {
        // The sampling set: every node but the sampler has positive
        // probability.
        let _ = node;
        self.n - 1
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

impl SealedTopology for ChungLu {}

impl TopologyCore for ChungLu {
    #[inline]
    fn sample_neighbor_core<R: RngCore + ?Sized>(&self, node: usize, rng: &mut R) -> usize {
        // Weighted draw with self-loop rejection: data-dependent RNG
        // consumption (see module docs).
        loop {
            let v = self.alias.sample(rng);
            if v != node {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_sampling::{stream_rng, Xoshiro256PlusPlus};
    use rand::SeedableRng;

    #[test]
    fn ring_gradient_peers_are_in_kernel_support() {
        let n = 101;
        let span = 7;
        let g = ImplicitRing::gradient(n, 2.0, span);
        assert_eq!(g.n(), n);
        assert_eq!(g.degree(0), 2 * span);
        let mut rng = stream_rng(3, 1);
        for node in [0usize, 1, 50, 100] {
            for _ in 0..200 {
                let w = g.sample_neighbor(node, &mut rng);
                assert_ne!(w, node, "ring kernel sampled self");
                let fwd = (w + n - node) % n;
                let dist = fwd.min(n - fwd);
                assert!(
                    (1..=span).contains(&dist),
                    "node {node} sampled {w} at ring distance {dist} > span"
                );
            }
        }
    }

    #[test]
    fn ring_kernel_is_translation_invariant() {
        // The same RNG stream must produce the same *distance sequence*
        // from every base node.
        let g = ImplicitRing::gaussian(64, 2.0);
        let mut a = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(9);
        let n = g.n();
        for _ in 0..500 {
            let from0 = g.sample_neighbor(0, &mut a);
            let from17 = g.sample_neighbor(17, &mut b);
            assert_eq!((from17 + n - 17) % n, from0);
        }
    }

    #[test]
    fn ring_core_matches_dyn_sampling() {
        let g = ImplicitRing::gradient(200, 1.5, 9);
        let mut a = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(4);
        for node in 0..64 {
            let dynamic = {
                let rng: &mut dyn RngCore = &mut a;
                g.sample_neighbor(node, rng)
            };
            assert_eq!(dynamic, g.sample_neighbor_core(node, &mut b));
        }
    }

    #[test]
    fn ring_gaussian_span_tracks_sigma() {
        assert_eq!(ImplicitRing::gaussian(1000, 2.0).span(), 6);
        assert_eq!(ImplicitRing::gaussian(1000, 0.1).span(), 1);
        // Truncated by n: span can never exceed (n−1)/2.
        assert_eq!(ImplicitRing::gaussian(11, 100.0).span(), 5);
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn ring_rejects_overwide_span() {
        let _ = ImplicitRing::gradient(10, 1.0, 5);
    }

    #[test]
    fn implicit_capabilities_are_absent() {
        let ring = ImplicitRing::gradient(50, 2.0, 4);
        let cl = ChungLu::power_law(50, 2.0, 10.0, 2.5);
        for t in [&ring as &dyn Topology, &cl as &dyn Topology] {
            assert_eq!(t.dense_edge_slots(), None);
            assert!(!t.supports_indexed_neighbors());
        }
    }

    #[test]
    #[should_panic(expected = "does not support indexed neighbor access")]
    fn ring_refuses_indexed_access() {
        let g = ImplicitRing::gradient(50, 2.0, 4);
        let _ = g.neighbor_at_core(0, 0);
    }

    #[test]
    fn chung_lu_never_samples_self_and_stays_in_range() {
        let g = ChungLu::power_law(40, 2.0, 12.0, 2.5);
        let mut rng = stream_rng(7, 2);
        for node in 0..g.n() {
            for _ in 0..50 {
                let w = g.sample_neighbor(node, &mut rng);
                assert!(w < g.n());
                assert_ne!(w, node);
            }
        }
    }

    #[test]
    fn chung_lu_weights_follow_clamped_power_law() {
        let g = ChungLu::power_law(1000, 2.0, 50.0, 2.5);
        // Monotone non-increasing in i, clamped at both ends.
        for i in 1..1000 {
            assert!(g.weight(i) <= g.weight(i - 1) + 1e-12);
        }
        assert!((g.weight(0) - 50.0).abs() < 1e-9, "head clamps at dmax");
        assert!((g.weight(999) - 2.0).abs() < 1e-9, "tail clamps at dmin");
        let sum: f64 = (0..1000).map(|i| g.weight(i)).sum();
        assert!((sum - g.total_weight()).abs() < 1e-6);
    }

    #[test]
    fn construction_is_deterministic_without_a_seed() {
        // Implicit topologies consume no randomness at construction:
        // identical parameters → identical sampling behavior.
        let a = ChungLu::power_law(64, 2.0, 16.0, 2.2);
        let b = ChungLu::power_law(64, 2.0, 16.0, 2.2);
        let mut ra = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut rb = Xoshiro256PlusPlus::seed_from_u64(5);
        for node in 0..64 {
            assert_eq!(
                a.sample_neighbor_core(node, &mut ra),
                b.sample_neighbor_core(node, &mut rb)
            );
        }
    }
}
