//! Standard topology generators: the paper's clique plus the explicit
//! graph families used by the extension experiments.

use crate::graph::{sealed::SealedTopology, CsrGraph, Topology, TopologyCore};
use plurality_sampling::stream_rng;
use rand::{Rng, RngCore};
use std::any::Any;

/// The paper's communication model: every node may sample every node,
/// *including itself*, with repetition.
#[derive(Debug, Clone, Copy)]
pub struct Clique {
    n: usize,
    include_self: bool,
}

impl Clique {
    /// The paper's clique (`self` included in the sampling set).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "clique needs at least one node");
        Self {
            n,
            include_self: true,
        }
    }

    /// A clique where nodes sample among the *other* `n − 1` nodes.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    #[must_use]
    pub fn without_self(n: usize) -> Self {
        assert!(n >= 2, "self-less clique needs at least two nodes");
        Self {
            n,
            include_self: false,
        }
    }
}

impl Topology for Clique {
    fn name(&self) -> String {
        if self.include_self {
            format!("clique(n={})", self.n)
        } else {
            format!("clique-noself(n={})", self.n)
        }
    }

    fn n(&self) -> usize {
        self.n
    }

    fn sample_neighbor(&self, node: usize, rng: &mut dyn RngCore) -> usize {
        self.sample_neighbor_core(node, rng)
    }

    fn degree(&self, node: usize) -> usize {
        let _ = node;
        if self.include_self {
            self.n
        } else {
            self.n - 1
        }
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn supports_indexed_neighbors(&self) -> bool {
        true
    }
}

impl SealedTopology for Clique {}

impl TopologyCore for Clique {
    #[inline]
    fn sample_neighbor_core<R: RngCore + ?Sized>(&self, node: usize, rng: &mut R) -> usize {
        if self.include_self {
            rng.gen_range(0..self.n)
        } else {
            // Uniform over [0, n) \ {node}: draw from n−1 and skip.
            let r = rng.gen_range(0..self.n - 1);
            if r >= node {
                r + 1
            } else {
                r
            }
        }
    }

    #[inline]
    fn neighbor_at_core(&self, node: usize, idx: usize) -> (usize, Option<usize>) {
        // Index the same sampling set `sample_neighbor_core` draws from,
        // so `gen_range(0..degree)` + this lookup reproduces its draw.
        if self.include_self {
            (idx, None)
        } else if idx >= node {
            (idx + 1, None)
        } else {
            (idx, None)
        }
    }
}

/// Erdős–Rényi `G(n, p)`: every pair independently an edge with
/// probability `p`.  Deterministic given `(n, p, seed)`.
///
/// Uses geometric edge-skipping (Batagelj–Brandes), so generation is
/// `O(n + m)` rather than `O(n²)`.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut rng = stream_rng(seed, 0xE2);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    if p > 0.0 {
        let log1mp = (1.0 - p).ln();
        if log1mp == 0.0 {
            // p == 0 handled above; p == 1 gives log 0 → complete graph.
        }
        if p >= 1.0 {
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    edges.push((u, v));
                }
            }
        } else {
            // Walk the strictly-upper-triangular pair sequence with
            // geometric jumps of parameter p.
            let total_pairs = n as u64 * (n as u64 - 1) / 2;
            let mut idx: u64 = 0;
            loop {
                let u: f64 = rng.gen::<f64>();
                let skip = ((1.0 - u).ln() / log1mp).floor() as u64;
                idx = match idx.checked_add(skip) {
                    Some(i) => i,
                    None => break,
                };
                if idx >= total_pairs {
                    break;
                }
                edges.push(pair_from_index(n as u64, idx));
                idx += 1;
            }
        }
    }
    CsrGraph::from_edges(n, &edges, format!("er(n={n},p={p})"))
}

/// Map a linear index over the strictly-upper-triangular pairs of `[n]`
/// (row-major) back to the pair `(u, v)`, `u < v`.
fn pair_from_index(n: u64, idx: u64) -> (u32, u32) {
    // Row u starts at offset u·n − u(u+3)/2 ... solve by scanning rows
    // arithmetically: remaining pairs after row u is (n−1−u) per row.
    let mut u = 0u64;
    let mut rem = idx;
    loop {
        let row = n - 1 - u;
        if rem < row {
            return (u as u32, (u + 1 + rem) as u32);
        }
        rem -= row;
        u += 1;
    }
}

/// Random `d`-regular simple graph via the configuration model with
/// **edge-swap repair**: pair stubs uniformly, then resolve self-loops and
/// parallel edges by swapping against random good edges (whole-graph
/// rejection has acceptance probability ≈ `e^{−(d²−1)/4}`, hopeless beyond
/// `d ≈ 3`).  The repaired distribution is approximately — not exactly —
/// uniform over simple d-regular graphs, which is sufficient for the
/// extension experiments this backs.  Deterministic given `(n, d, seed)`.
///
/// # Panics
/// Panics if `n·d` is odd, `d ≥ n`, or repair fails repeatedly
/// (only possible for extreme `d` close to `n`).
#[must_use]
pub fn random_regular(n: usize, d: usize, seed: u64) -> CsrGraph {
    assert!(d < n, "degree must be below n");
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    let mut rng = stream_rng(seed, 0xD0);
    'attempt: for _attempt in 0..50 {
        // Stub list: node v appears d times, then Fisher–Yates shuffle.
        let mut stubs: Vec<u32> = (0..n as u32)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * d / 2);
        let mut seen: std::collections::HashSet<(u32, u32)> =
            std::collections::HashSet::with_capacity(n * d / 2);
        let mut bad: Vec<(u32, u32)> = Vec::new();
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            let key = (u.min(v), u.max(v));
            if u == v || !seen.insert(key) {
                bad.push((u, v));
            } else {
                edges.push(key);
            }
        }
        // Repair: for a bad pair (u, v), pick a random good edge (x, y)
        // and rewire to (u, x), (v, y) — degrees are preserved.
        let mut repair_budget = 200 * bad.len() + 1000;
        while let Some(&(u, v)) = bad.last() {
            if repair_budget == 0 {
                continue 'attempt;
            }
            repair_budget -= 1;
            if edges.is_empty() {
                continue 'attempt;
            }
            let idx = rng.gen_range(0..edges.len());
            let (x, y) = edges[idx];
            // Randomize orientation of the picked edge.
            let (x, y) = if rng.gen::<bool>() { (x, y) } else { (y, x) };
            let e1 = (u.min(x), u.max(x));
            let e2 = (v.min(y), v.max(y));
            if u == x || v == y || e1 == e2 || seen.contains(&e1) || seen.contains(&e2) {
                continue;
            }
            // Commit the swap.
            bad.pop();
            let old = edges.swap_remove(idx);
            seen.remove(&old);
            seen.insert(e1);
            seen.insert(e2);
            edges.push(e1);
            edges.push(e2);
        }
        return CsrGraph::from_edges(n, &edges, format!("regular(n={n},d={d})"));
    }
    panic!("failed to build a simple {d}-regular graph on {n} nodes");
}

/// Cycle on `n` nodes.
///
/// # Panics
/// Panics if `n < 3`.
#[must_use]
pub fn ring(n: usize) -> CsrGraph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
    CsrGraph::from_edges(n, &edges, format!("ring(n={n})"))
}

/// `w × h` torus (wrap-around grid, degree 4).
///
/// # Panics
/// Panics if `w < 3` or `h < 3` (smaller sizes create parallel edges).
#[must_use]
pub fn torus(w: usize, h: usize) -> CsrGraph {
    assert!(w >= 3 && h >= 3, "torus needs both sides ≥ 3");
    let id = |x: usize, y: usize| (y * w + x) as u32;
    let mut edges = Vec::with_capacity(2 * w * h);
    for y in 0..h {
        for x in 0..w {
            edges.push((id(x, y), id((x + 1) % w, y)));
            edges.push((id(x, y), id(x, (y + 1) % h)));
        }
    }
    CsrGraph::from_edges(w * h, &edges, format!("torus({w}x{h})"))
}

/// Star: node 0 is the hub, nodes `1..n` are leaves.
///
/// # Panics
/// Panics if `n < 2`.
#[must_use]
pub fn star(n: usize) -> CsrGraph {
    assert!(n >= 2, "star needs at least 2 nodes");
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
    CsrGraph::from_edges(n, &edges, format!("star(n={n})"))
}

/// Complete bipartite graph `K_{a,b}` (left side `0..a`, right `a..a+b`).
///
/// # Panics
/// Panics if either side is empty.
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> CsrGraph {
    assert!(a > 0 && b > 0, "both sides must be non-empty");
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            edges.push((u, a as u32 + v));
        }
    }
    CsrGraph::from_edges(a + b, &edges, format!("bipartite({a},{b})"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_sampling::Xoshiro256PlusPlus;
    use rand::SeedableRng;

    #[test]
    fn clique_includes_self() {
        let c = Clique::new(10);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut saw_self = false;
        for _ in 0..1000 {
            if c.sample_neighbor(3, &mut rng) == 3 {
                saw_self = true;
                break;
            }
        }
        assert!(saw_self, "paper's model must allow self-samples");
        assert_eq!(c.degree(0), 10);
    }

    #[test]
    fn clique_without_self_never_self() {
        let c = Clique::without_self(10);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut counts = [0u64; 10];
        for _ in 0..45_000 {
            counts[c.sample_neighbor(3, &mut rng)] += 1;
        }
        assert_eq!(counts[3], 0);
        for (v, &cnt) in counts.iter().enumerate() {
            if v == 3 {
                continue;
            }
            let expect = 5_000.0;
            assert!(
                ((cnt as f64) - expect).abs() < 5.0 * expect.sqrt(),
                "node {v}: {cnt}"
            );
        }
    }

    #[test]
    fn clique_uniformity() {
        let c = Clique::new(5);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut counts = [0u64; 5];
        for _ in 0..50_000 {
            counts[c.sample_neighbor(0, &mut rng)] += 1;
        }
        for &cnt in &counts {
            assert!(
                ((cnt as f64) - 10_000.0).abs() < 5.0 * 100.0,
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn er_edge_count_and_symmetry() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi(n, p, 7);
        let expect = p * (n * (n - 1) / 2) as f64;
        let sigma = (expect * (1.0 - p)).sqrt();
        assert!(
            ((g.edge_count() as f64) - expect).abs() < 6.0 * sigma,
            "edges = {}",
            g.edge_count()
        );
        // Symmetry: u in adj(v) iff v in adj(u).
        for v in 0..n {
            for &w in g.neighbors(v) {
                assert!(g.neighbors(w as usize).contains(&(v as u32)));
            }
        }
    }

    #[test]
    fn er_deterministic_by_seed() {
        let a = erdos_renyi(100, 0.1, 42);
        let b = erdos_renyi(100, 0.1, 42);
        let c = erdos_renyi(100, 0.1, 43);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_ne!(
            (0..100).map(|v| a.degree(v)).collect::<Vec<_>>(),
            (0..100).map(|v| c.degree(v)).collect::<Vec<_>>(),
            "different seeds should differ"
        );
    }

    #[test]
    fn er_extremes() {
        assert_eq!(erdos_renyi(50, 0.0, 1).edge_count(), 0);
        assert_eq!(erdos_renyi(20, 1.0, 1).edge_count(), 190);
    }

    #[test]
    fn pair_from_index_roundtrip() {
        let n = 7u64;
        let mut idx = 0u64;
        for u in 0..7u32 {
            for v in (u + 1)..7u32 {
                assert_eq!(pair_from_index(n, idx), (u, v));
                idx += 1;
            }
        }
    }

    #[test]
    fn regular_degrees() {
        let g = random_regular(100, 4, 5);
        for v in 0..100 {
            assert_eq!(g.degree(v), 4, "node {v}");
        }
        assert!(g.is_connected(), "4-regular on 100 nodes should connect");
    }

    #[test]
    fn regular_dense_degree_with_repair() {
        // d = 8 forces the edge-swap repair path (whole-graph rejection
        // would essentially never succeed here).
        let g = random_regular(1_024, 8, 6);
        assert_eq!(g.edge_count(), 1_024 * 8 / 2);
        for v in 0..1_024 {
            assert_eq!(g.degree(v), 8, "node {v}");
        }
        assert!(g.is_connected());
    }

    #[test]
    fn regular_deterministic_by_seed() {
        let a = random_regular(64, 6, 9);
        let b = random_regular(64, 6, 9);
        for v in 0..64 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn ring_structure() {
        let g = ring(6);
        assert_eq!(g.edge_count(), 6);
        let mut nbrs = g.neighbors(0).to_vec();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![1, 5]);
        assert!(g.is_connected());
    }

    #[test]
    fn torus_structure() {
        let g = torus(4, 3);
        assert_eq!(g.n(), 12);
        for v in 0..12 {
            assert_eq!(g.degree(v), 4, "node {v}");
        }
        assert!(g.is_connected());
        // Wrap-around: node (0,0) adjacent to (3,0) and (0,2).
        let nbrs = g.neighbors(0);
        assert!(nbrs.contains(&3));
        assert!(nbrs.contains(&8));
    }

    #[test]
    fn star_structure() {
        let g = star(9);
        assert_eq!(g.degree(0), 8);
        for v in 1..9 {
            assert_eq!(g.degree(v), 1);
            assert_eq!(g.neighbors(v), &[0]);
        }
    }

    #[test]
    fn bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.n(), 7);
        assert_eq!(g.edge_count(), 12);
        for u in 0..3 {
            assert_eq!(g.degree(u), 4);
            for &v in g.neighbors(u) {
                assert!(v >= 3, "left node adjacent to left node");
            }
        }
        for v in 3..7 {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn regular_odd_rejected() {
        let _ = random_regular(5, 3, 1);
    }
}
