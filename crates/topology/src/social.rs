//! Social-network topology generators: preferential attachment
//! (Barabási–Albert) and small-world (Watts–Strogatz) graphs.
//!
//! The paper motivates plurality consensus partly from social networks
//! (§1, citing Mossel et al.); these families let the agent-based engine
//! probe the dynamics on heavy-tailed and high-clustering topologies the
//! clique analysis says nothing about.

use crate::graph::CsrGraph;
use plurality_sampling::stream_rng;
use rand::Rng;

/// Barabási–Albert preferential attachment: start from a clique on
/// `m + 1` nodes; each arriving node attaches `m` edges to existing nodes
/// with probability proportional to their degree (sampled via the
/// standard repeated-endpoint trick: picking a uniform endpoint of a
/// uniform existing edge is degree-proportional).  Deterministic given
/// `(n, m, seed)`.
///
/// # Panics
/// Panics if `m == 0` or `n < m + 1`.
#[must_use]
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m >= 1, "attachment degree must be positive");
    assert!(n > m, "need at least m+1 nodes");
    let mut rng = stream_rng(seed, 0xBA);
    // Flat endpoint list: each edge contributes both endpoints, so a
    // uniform pick from it is degree-proportional.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m);
    // Seed clique on m+1 nodes.
    for u in 0..=(m as u32) {
        for v in (u + 1)..=(m as u32) {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut targets: Vec<u32> = Vec::with_capacity(m);
    for v in (m + 1)..n {
        targets.clear();
        // Sample m distinct degree-proportional targets.
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((t, v as u32));
            endpoints.push(t);
            endpoints.push(v as u32);
        }
    }
    CsrGraph::from_edges(n, &edges, format!("barabasi-albert(n={n},m={m})"))
}

/// Watts–Strogatz small-world graph: a ring lattice where every node
/// connects to its `k_half` nearest neighbors on each side, then each
/// lattice edge is rewired with probability `beta` to a uniform random
/// non-duplicate endpoint.  Deterministic given `(n, k_half, beta, seed)`.
///
/// # Panics
/// Panics if `k_half == 0`, `2·k_half ≥ n`, or `beta` outside `[0, 1]`.
#[must_use]
pub fn watts_strogatz(n: usize, k_half: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k_half >= 1, "need at least one lattice neighbor per side");
    assert!(2 * k_half < n, "lattice degree must be below n");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    let mut rng = stream_rng(seed, 0x35);

    use std::collections::HashSet;
    let mut edge_set: HashSet<(u32, u32)> = HashSet::with_capacity(n * k_half);
    let canon = |u: u32, v: u32| (u.min(v), u.max(v));
    for u in 0..n {
        for d in 1..=k_half {
            let v = (u + d) % n;
            edge_set.insert(canon(u as u32, v as u32));
        }
    }
    // Rewire: iterate over the original lattice edges in a fixed order.
    let mut lattice: Vec<(u32, u32)> = Vec::with_capacity(n * k_half);
    for u in 0..n {
        for d in 1..=k_half {
            lattice.push((u as u32, ((u + d) % n) as u32));
        }
    }
    for &(u, v) in &lattice {
        if rng.gen::<f64>() >= beta {
            continue;
        }
        // Try a few times to find a valid new endpoint; keep the original
        // edge if the neighborhood is saturated.
        for _ in 0..32 {
            let w = rng.gen_range(0..n as u32);
            if w == u || w == v {
                continue;
            }
            let new_key = canon(u, w);
            if edge_set.contains(&new_key) {
                continue;
            }
            edge_set.remove(&canon(u, v));
            edge_set.insert(new_key);
            break;
        }
    }
    let edges: Vec<(u32, u32)> = {
        let mut v: Vec<_> = edge_set.into_iter().collect();
        v.sort_unstable();
        v
    };
    CsrGraph::from_edges(
        n,
        &edges,
        format!("watts-strogatz(n={n},k={},β={beta})", 2 * k_half),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;

    #[test]
    fn ba_edge_count_and_connectivity() {
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, 1);
        // Seed clique C(m+1, 2) + (n − m − 1)·m edges.
        let expect = (m + 1) * m / 2 + (n - m - 1) * m;
        assert_eq!(g.edge_count(), expect);
        assert!(g.is_connected());
        // Every non-seed node has degree ≥ m.
        for v in 0..n {
            assert!(g.degree(v) >= m, "node {v} degree {}", g.degree(v));
        }
    }

    #[test]
    fn ba_has_heavy_tail() {
        // Preferential attachment should produce hubs: the max degree
        // must far exceed the attachment parameter.
        let g = barabasi_albert(2_000, 2, 2);
        let max_deg = (0..2_000).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg > 20, "max degree {max_deg} suspiciously small");
    }

    #[test]
    fn ba_deterministic() {
        let a = barabasi_albert(200, 2, 7);
        let b = barabasi_albert(200, 2, 7);
        for v in 0..200 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn ws_zero_beta_is_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 1);
        assert_eq!(g.edge_count(), 40);
        for v in 0..20 {
            assert_eq!(g.degree(v), 4, "node {v}");
        }
        let nbrs = g.neighbors(0);
        assert!(nbrs.contains(&1) && nbrs.contains(&2));
        assert!(nbrs.contains(&18) && nbrs.contains(&19));
    }

    #[test]
    fn ws_rewiring_changes_structure_but_keeps_connectivity() {
        let lattice = watts_strogatz(400, 3, 0.0, 3);
        let small_world = watts_strogatz(400, 3, 0.3, 3);
        assert!(small_world.is_connected());
        // Some edges must differ from the pure lattice.
        let mut differs = false;
        for v in 0..400 {
            if lattice.neighbors(v) != small_world.neighbors(v) {
                differs = true;
                break;
            }
        }
        assert!(differs, "β = 0.3 should rewire something");
        // Edge count is preserved by rewiring (each rewire moves an edge).
        assert_eq!(small_world.edge_count(), lattice.edge_count());
    }

    #[test]
    fn ws_full_rewire_still_valid() {
        let g = watts_strogatz(200, 2, 1.0, 5);
        assert_eq!(g.edge_count(), 400);
        // Simplicity is guaranteed by construction (CsrGraph asserts it).
        assert!(g.n() == 200);
    }

    #[test]
    #[should_panic(expected = "below n")]
    fn ws_rejects_dense_lattice() {
        let _ = watts_strogatz(6, 3, 0.1, 1);
    }
}
