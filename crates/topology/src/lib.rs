//! Communication topologies for the plurality-consensus simulators.
//!
//! The paper's entire analysis is on the **clique** with self-inclusive
//! uniform sampling ([`Clique::new`]); that model is what the theorems and
//! the experiment suite use.  The explicit graph families (Erdős–Rényi,
//! random regular, ring, torus, star, complete bipartite,
//! Barabási–Albert, Watts–Strogatz) back the
//! extension experiments (DESIGN.md E12) that probe how 3-majority behaves
//! off the clique, and exist to exercise the agent-based engine on
//! realistic sparse topologies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod membership;
pub mod models;
pub mod social;

pub use graph::{downcast_topology, CsrGraph, DynTopology, Topology, TopologyCore};
pub use membership::{Membership, MAX_DEAD_REDRAWS};
pub use models::{complete_bipartite, erdos_renyi, random_regular, ring, star, torus, Clique};
pub use social::{barabasi_albert, watts_strogatz};
