//! Communication topologies for the plurality-consensus simulators.
//!
//! The paper's entire analysis is on the **clique** with self-inclusive
//! uniform sampling ([`Clique::new`]); that model is what the theorems and
//! the experiment suite use.  The explicit graph families (Erdős–Rényi,
//! random regular, ring, torus, star, complete bipartite,
//! Barabási–Albert, Watts–Strogatz) back the
//! extension experiments (DESIGN.md E12) that probe how 3-majority behaves
//! off the clique, and exist to exercise the agent-based engine on
//! realistic sparse topologies.
//!
//! The **implicit** families ([`ImplicitRing`], [`ChungLu`]) sample
//! neighbors on the fly from a generative model — O(n) state instead of
//! the CSR's O(n·d) — so million-node structured-graph runs fit in
//! memory; see [`implicit`] for the capability and determinism contract.
//! All families are reachable through one shared grammar,
//! [`TopologySpec`], which the CLI, server, and experiments parse and
//! print identically.
//!
//! # Quick start
//!
//! ```
//! use plurality_topology::{random_regular, Clique, Topology};
//! use plurality_sampling::stream_rng;
//!
//! // The paper's model: self-inclusive uniform sampling over all n nodes.
//! let clique = Clique::new(1_000);
//! assert_eq!(clique.degree(0), 1_000);
//!
//! // An explicit sparse graph (CSR form), wired deterministically from
//! // the seed — same seed, same graph.
//! let graph = random_regular(1_000, 8, 42);
//! assert_eq!(graph.n(), 1_000);
//! assert_eq!(graph.degree(17), 8);
//!
//! // Both sample neighbors through the same dyn-safe interface.
//! let mut rng = stream_rng(7, 0);
//! for topo in [&clique as &dyn Topology, &graph] {
//!     let peer = topo.sample_neighbor(3, &mut rng);
//!     assert!(peer < topo.n());
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod graph;
pub mod implicit;
pub mod membership;
pub mod models;
pub mod social;
pub mod spec;

pub use graph::{downcast_topology, CsrGraph, DynTopology, Topology, TopologyCore};
pub use implicit::{ChungLu, ImplicitRing};
pub use membership::{Membership, MAX_DEAD_REDRAWS};
pub use models::{complete_bipartite, erdos_renyi, random_regular, ring, star, torus, Clique};
pub use social::{barabasi_albert, watts_strogatz};
pub use spec::{near_square_factors, TopologySpec, DEFAULT_REGULAR_DEGREE, TOPOLOGY_SALT};
