//! Dynamic-membership overlay for churn-tolerant gossip.
//!
//! A [`Membership`] sits **on top of** a frozen base topology: it never
//! rebuilds the CSR.  Instead it tracks
//!
//! * an **alive mask** over `base_n + spare` nodes (the base members
//!   plus a pool of not-yet-joined spares),
//! * **overlay-delta edges**: bidirectional adjacency added when a
//!   spare joins (it attaches to a few random alive anchors) — delta
//!   edges persist after an endpoint dies, exactly like base edges, and
//! * the alive / dead-member / spare index sets needed to draw uniform
//!   random churn victims in `O(1)`.
//!
//! Neighbor sampling goes through
//! [`Membership::sample_alive_neighbor_edge`]: a uniform draw over the
//! node's base-plus-delta neighbor set (via
//! [`TopologyCore::neighbor_at_core`]) with **rejection of dead peers**
//! — up to [`MAX_DEAD_REDRAWS`] redraws, after which the caller treats
//! the message as lost to a dead peer.  With every node alive and no
//! delta edges the draw consumes the RNG identically to
//! [`TopologyCore::sample_neighbor_edge_core`] (one `gen_range` over
//! the same range), which is what keeps zero-churn runs bit-identical
//! to churn-free engines.

use crate::graph::TopologyCore;
use rand::{Rng, RngCore};

/// Redraw budget when a sampled peer is dead: after this many dead
/// hits in one draw the sample is abandoned (the caller records a
/// dead-peer loss).  Small enough to bound per-sample work when almost
/// everyone is dead, large enough that redraws almost always succeed
/// under realistic churn.
pub const MAX_DEAD_REDRAWS: u64 = 8;

/// Alive mask + overlay-delta edges + churn index sets over a frozen
/// base topology (see the module docs).
#[derive(Debug, Clone)]
pub struct Membership {
    base_n: usize,
    /// Alive flag per node (`base_n + spare` entries).
    alive: Vec<bool>,
    /// Overlay adjacency added by joins (bidirectional, persistent).
    delta: Vec<Vec<u32>>,
    /// Alive nodes, unordered (swap-remove set for uniform draws).
    alive_set: Vec<u32>,
    /// Position of each node in `alive_set` (`usize::MAX` if absent).
    alive_pos: Vec<usize>,
    /// Members that crashed or left, available for rejoin (unordered).
    dead_members: Vec<u32>,
    /// Spares not yet joined (popped in index order).
    spare_pool: Vec<u32>,
    /// Lifetime event tallies.
    joins: u64,
    crashes: u64,
    leaves: u64,
    rejoins: u64,
}

impl Membership {
    /// Overlay over `base_n` initially alive members plus `spare`
    /// initially dead spare nodes (indices `base_n..base_n + spare`).
    ///
    /// # Panics
    /// Panics if `base_n == 0`.
    #[must_use]
    pub fn new(base_n: usize, spare: usize) -> Self {
        assert!(base_n > 0, "membership over an empty base population");
        let total = base_n + spare;
        let mut alive = vec![true; total];
        for a in alive.iter_mut().skip(base_n) {
            *a = false;
        }
        let mut alive_pos = vec![usize::MAX; total];
        for (i, p) in alive_pos.iter_mut().enumerate().take(base_n) {
            *p = i;
        }
        Self {
            base_n,
            alive,
            delta: vec![Vec::new(); total],
            alive_set: (0..base_n as u32).collect(),
            alive_pos,
            // Reversed so `pop()` joins spares in index order.
            spare_pool: (base_n as u32..total as u32).rev().collect(),
            dead_members: Vec::new(),
            joins: 0,
            crashes: 0,
            leaves: 0,
            rejoins: 0,
        }
    }

    /// Total node count (`base_n + spare`).
    #[must_use]
    pub fn total(&self) -> usize {
        self.alive.len()
    }

    /// Base population size.
    #[must_use]
    pub fn base_n(&self) -> usize {
        self.base_n
    }

    /// Is `node` currently alive?
    #[must_use]
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// Number of alive nodes.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.alive_set.len()
    }

    /// Number of dead members available for rejoin.
    #[must_use]
    pub fn dead_count(&self) -> usize {
        self.dead_members.len()
    }

    /// Number of spares not yet joined.
    #[must_use]
    pub fn spares_left(&self) -> usize {
        self.spare_pool.len()
    }

    /// Lifetime `(joins, crashes, leaves, rejoins)` tallies.
    #[must_use]
    pub fn event_counts(&self) -> (u64, u64, u64, u64) {
        (self.joins, self.crashes, self.leaves, self.rejoins)
    }

    /// A uniformly random alive node.
    ///
    /// # Panics
    /// Panics if no node is alive.
    pub fn random_alive<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        assert!(!self.alive_set.is_empty(), "no alive node to draw");
        self.alive_set[rng.gen_range(0..self.alive_set.len())] as usize
    }

    fn remove_alive(&mut self, node: usize) {
        let pos = self.alive_pos[node];
        debug_assert!(pos != usize::MAX, "node {node} is not alive");
        let last = self.alive_set.len() - 1;
        self.alive_set.swap(pos, last);
        self.alive_pos[self.alive_set[pos] as usize] = pos;
        self.alive_set.pop();
        self.alive_pos[node] = usize::MAX;
        self.alive[node] = false;
        self.dead_members.push(node as u32);
    }

    fn insert_alive(&mut self, node: usize) {
        debug_assert!(!self.alive[node], "node {node} already alive");
        self.alive[node] = true;
        self.alive_pos[node] = self.alive_set.len();
        self.alive_set.push(node as u32);
    }

    /// Crash a uniformly random alive node; returns it.
    ///
    /// # Panics
    /// Panics if no node is alive.
    pub fn crash_random<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> usize {
        let v = self.random_alive(rng);
        self.remove_alive(v);
        self.crashes += 1;
        v
    }

    /// Gracefully depart a uniformly random alive node; returns it.
    /// State-wise identical to a crash (the node stops participating
    /// and becomes rejoin-eligible); tallied separately for
    /// attribution.
    ///
    /// # Panics
    /// Panics if no node is alive.
    pub fn leave_random<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> usize {
        let v = self.random_alive(rng);
        self.remove_alive(v);
        self.leaves += 1;
        v
    }

    /// Rejoin a uniformly random dead member; returns it.
    ///
    /// # Panics
    /// Panics if no dead member is available.
    pub fn rejoin_random<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> usize {
        assert!(!self.dead_members.is_empty(), "no dead member to rejoin");
        let i = rng.gen_range(0..self.dead_members.len());
        let v = self.dead_members.swap_remove(i) as usize;
        self.insert_alive(v);
        self.rejoins += 1;
        v
    }

    /// Join the next spare, attaching it to up to `attach` distinct
    /// uniformly random alive anchors via bidirectional overlay-delta
    /// edges; returns the joined node.  Exactly `attach` anchor draws
    /// are consumed (duplicates are skipped, not redrawn).
    ///
    /// # Panics
    /// Panics if no spare is left, no node is alive (nothing to anchor
    /// to), or `attach == 0`.
    pub fn join_spare<R: RngCore + ?Sized>(&mut self, attach: usize, rng: &mut R) -> usize {
        assert!(attach > 0, "join needs at least one anchor");
        let s = self.spare_pool.pop().expect("no spare left to join") as usize;
        assert!(
            !self.alive_set.is_empty(),
            "cannot join a spare into an empty alive set"
        );
        for _ in 0..attach {
            let a = self.random_alive(rng);
            if self.delta[s].contains(&(a as u32)) {
                continue;
            }
            self.delta[s].push(a as u32);
            self.delta[a].push(s as u32);
        }
        self.insert_alive(s);
        self.joins += 1;
        s
    }

    /// Size of `node`'s sampling set: base degree (members only) plus
    /// overlay-delta edges.
    #[must_use]
    pub fn degree_of<T: TopologyCore>(&self, base: &T, node: usize) -> usize {
        let base_deg = if node < self.base_n {
            base.degree(node)
        } else {
            0
        };
        base_deg + self.delta[node].len()
    }

    /// The `idx`-th member of `node`'s base-plus-delta sampling set.
    /// Base neighbors come first (with their CSR slot, when the base
    /// reports one); delta neighbors follow with no slot.
    #[must_use]
    pub fn neighbor_at<T: TopologyCore>(
        &self,
        base: &T,
        node: usize,
        idx: usize,
    ) -> (usize, Option<usize>) {
        let base_deg = if node < self.base_n {
            base.degree(node)
        } else {
            0
        };
        if idx < base_deg {
            base.neighbor_at_core(node, idx)
        } else {
            (self.delta[node][idx - base_deg] as usize, None)
        }
    }

    /// Draw a uniform neighbor of `node`, rejecting dead peers with up
    /// to [`MAX_DEAD_REDRAWS`] redraws.  Each dead hit increments
    /// `dead_hits`; when the budget is exhausted (`*dead_hits` grew by
    /// exactly [`MAX_DEAD_REDRAWS`]) the **last dead draw** is returned
    /// and the caller must treat the message as lost to a dead peer.
    ///
    /// With every node alive this consumes exactly one `gen_range`
    /// over the same range as
    /// [`TopologyCore::sample_neighbor_edge_core`] and returns the
    /// same peer/slot — the zero-churn bit-identity invariant.
    ///
    /// # Panics
    /// Panics if `node`'s sampling set is empty.
    pub fn sample_alive_neighbor_edge<T: TopologyCore, R: RngCore + ?Sized>(
        &self,
        base: &T,
        node: usize,
        dead_hits: &mut u64,
        rng: &mut R,
    ) -> (usize, Option<usize>) {
        let deg = self.degree_of(base, node);
        assert!(
            deg > 0,
            "node {node} has no neighbors; cannot sample under churn"
        );
        let mut last = (node, None);
        for _ in 0..MAX_DEAD_REDRAWS {
            let (peer, slot) = self.neighbor_at(base, node, rng.gen_range(0..deg));
            if self.alive[peer] {
                return (peer, slot);
            }
            *dead_hits += 1;
            last = (peer, slot);
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{random_regular, Clique};
    use plurality_sampling::stream_rng;

    #[test]
    fn initial_state_and_counts() {
        let m = Membership::new(10, 4);
        assert_eq!(m.total(), 14);
        assert_eq!(m.base_n(), 10);
        assert_eq!(m.alive_count(), 10);
        assert_eq!(m.dead_count(), 0);
        assert_eq!(m.spares_left(), 4);
        assert!(m.is_alive(0) && m.is_alive(9));
        assert!(!m.is_alive(10) && !m.is_alive(13));
    }

    #[test]
    fn crash_rejoin_roundtrip_preserves_sets() {
        let mut m = Membership::new(50, 0);
        let mut rng = stream_rng(7, 0);
        let mut crashed = Vec::new();
        for _ in 0..20 {
            crashed.push(m.crash_random(&mut rng));
        }
        assert_eq!(m.alive_count(), 30);
        assert_eq!(m.dead_count(), 20);
        for &v in &crashed {
            assert!(!m.is_alive(v));
        }
        for _ in 0..20 {
            let v = m.rejoin_random(&mut rng);
            assert!(m.is_alive(v));
            assert!(crashed.contains(&v));
        }
        assert_eq!(m.alive_count(), 50);
        assert_eq!(m.dead_count(), 0);
        assert_eq!(m.event_counts(), (0, 20, 0, 20));
    }

    #[test]
    fn joins_attach_bidirectional_delta_edges() {
        let clique = Clique::new(10);
        let mut m = Membership::new(10, 2);
        let mut rng = stream_rng(3, 0);
        let s = m.join_spare(4, &mut rng);
        assert_eq!(s, 10, "spares join in index order");
        assert!(m.is_alive(s));
        let d = m.degree_of(&clique, s);
        assert!((1..=4).contains(&d), "got {d} anchors");
        // Every anchor sees the spare back.
        for i in 0..d {
            let (a, slot) = m.neighbor_at(&clique, s, i);
            assert!(slot.is_none(), "delta edges have no CSR slot");
            let a_deg = m.degree_of(&clique, a);
            let mut found = false;
            for j in 0..a_deg {
                if m.neighbor_at(&clique, a, j).0 == s {
                    found = true;
                }
            }
            assert!(found, "anchor {a} lost its back edge");
        }
        let s2 = m.join_spare(4, &mut rng);
        assert_eq!(s2, 11);
        assert_eq!(m.spares_left(), 0);
        assert_eq!(m.alive_count(), 12);
    }

    fn assert_matches_base<T: TopologyCore>(base: &T, n: usize, salt: u64) {
        // The zero-churn invariant: with everyone alive and no delta
        // edges, the overlay draw must consume the RNG identically to
        // the base edge sampler.
        let m = Membership::new(n, 0);
        for round in 0..200u64 {
            for node in 0..n {
                let mut a = stream_rng(salt, round * n as u64 + node as u64);
                let mut b = a.clone();
                let mut hits = 0u64;
                let plain = base.sample_neighbor_edge_core(node, &mut a);
                let overlay = m.sample_alive_neighbor_edge(base, node, &mut hits, &mut b);
                assert_eq!(overlay, plain, "draw diverged at node {node}");
                assert_eq!(hits, 0);
                assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "rng positions diverged");
            }
        }
    }

    #[test]
    fn all_alive_sampling_matches_base_sampler_bit_for_bit() {
        assert_matches_base(&Clique::new(17), 17, 5);
        assert_matches_base(&Clique::without_self(17), 17, 6);
        assert_matches_base(&random_regular(16, 4, 99), 16, 7);
    }

    #[test]
    fn dead_peers_are_rejected_or_reported() {
        // Star-ish setup on a clique: kill everyone but two nodes; all
        // samples from node 0 must land on 0 or 1 (alive), or exhaust.
        let clique = Clique::new(30);
        let mut m = Membership::new(30, 0);
        let mut rng = stream_rng(11, 0);
        while m.alive_count() > 2 {
            let _ = m.crash_random(&mut rng);
        }
        let alive: Vec<usize> = (0..30).filter(|&v| m.is_alive(v)).collect();
        let src = alive[0];
        let mut exhausted = 0u32;
        let mut ok = 0u32;
        for _ in 0..500 {
            let mut hits = 0u64;
            let (peer, _) = m.sample_alive_neighbor_edge(&clique, src, &mut hits, &mut rng);
            if hits >= MAX_DEAD_REDRAWS {
                exhausted += 1;
            } else {
                assert!(m.is_alive(peer), "accepted a dead peer");
                ok += 1;
            }
        }
        // 2/30 alive: a draw succeeds with p = 1 - (28/30)^9 ≈ 0.46.
        assert!(ok > 100, "ok = {ok}");
        assert!(exhausted > 50, "exhausted = {exhausted}");
    }

    #[test]
    #[should_panic(expected = "empty base population")]
    fn empty_base_rejected() {
        let _ = Membership::new(0, 3);
    }

    #[test]
    #[should_panic(expected = "no spare left")]
    fn join_without_spares_panics() {
        let mut m = Membership::new(4, 0);
        let mut rng = stream_rng(1, 0);
        let _ = m.join_spare(2, &mut rng);
    }
}
