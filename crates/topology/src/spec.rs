//! The shared `--topology` grammar: one [`TopologySpec`] parsed and
//! printed identically by the CLI, the server `JobSpec`, and the
//! experiment harness, so the three surfaces can never drift.
//!
//! # Grammar
//!
//! Same DSL style as `--failure` / `--churn`: a family name, optionally
//! followed by `:` and comma-separated `key=value` parameters.
//!
//! ```text
//! clique
//! ring
//! torus
//! random-regular:d=8
//! ring-gradient:alpha=2,span=8
//! ring-gaussian:sigma=8
//! chung-lu:dmin=2,dmax=100,gamma=2.5
//! ```
//!
//! Omitted parameters take the defaults shown above.  [`Display`] prints
//! the **canonical form** — every parameter spelled out, fixed order,
//! shortest-round-trip float formatting — so
//! `parse(spec.to_string()) == spec` always holds (pinned by proptest),
//! and cache keys derived from the canonical form are collision-free
//! across spelling variants (`chung-lu` ==
//! `chung-lu:dmin=2,dmax=100,gamma=2.5`).

use crate::graph::Topology;
use crate::implicit::{ChungLu, ImplicitRing};
use crate::models::{random_regular, ring, torus, Clique};
use std::fmt::{self, Display};

/// XOR salt folded into the master seed before wiring seeded topologies,
/// so graph construction and trial streams never share a raw seed.
pub const TOPOLOGY_SALT: u64 = 0x70B0;

/// Default degree for `random-regular` when `d` is omitted.
pub const DEFAULT_REGULAR_DEGREE: usize = 8;

/// A parsed `--topology` value: which family, with which parameters.
///
/// This is the *specification* — node count and wiring seed are
/// supplied at [`TopologySpec::build`] time, so one spec can be reused
/// across sizes (the experiment grids do exactly that).
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// The paper's model: self-inclusive uniform sampling over all `n`.
    Clique,
    /// Cycle graph (each node's two ring neighbors), materialized CSR.
    Ring,
    /// Near-square torus (4-regular grid with wraparound), CSR.
    Torus,
    /// Uniform random `d`-regular graph, wired from the salted seed.
    RandomRegular {
        /// Node degree (`d` in the DSL).
        degree: usize,
    },
    /// Implicit ring, polynomial-decay distance kernel `d^(−alpha)`
    /// truncated at `span` (see [`ImplicitRing::gradient`]).
    RingGradient {
        /// Kernel decay exponent (`alpha ≥ 0`).
        alpha: f64,
        /// One-sided truncation distance (`span ≥ 1`).
        span: usize,
    },
    /// Implicit ring, Gaussian distance kernel of width `sigma` (see
    /// [`ImplicitRing::gaussian`]).
    RingGaussian {
        /// Kernel width (`sigma > 0`).
        sigma: f64,
    },
    /// Implicit Chung–Lu power-law degree sequence (see
    /// [`ChungLu::power_law`]).
    ChungLu {
        /// Minimum expected degree (`dmin > 0`).
        dmin: f64,
        /// Maximum expected degree (`dmax ≥ dmin`).
        dmax: f64,
        /// Degree-distribution tail exponent (`gamma > 1`).
        gamma: f64,
    },
}

impl TopologySpec {
    /// Every family name, for help text and error messages.
    pub const FAMILIES: &'static [&'static str] = &[
        "clique",
        "ring",
        "torus",
        "random-regular",
        "ring-gradient",
        "ring-gaussian",
        "chung-lu",
    ];

    /// Parse a DSL string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<Self, String> {
        Self::parse_with_degree(spec, DEFAULT_REGULAR_DEGREE)
    }

    /// Like [`TopologySpec::parse`], with a caller-supplied default for
    /// `random-regular`'s degree — the legacy `--degree D` flag and the
    /// server spec's `"degree"` wire key feed in here; an explicit
    /// `random-regular:d=…` parameter still wins.
    pub fn parse_with_degree(spec: &str, default_degree: usize) -> Result<Self, String> {
        let spec = spec.trim();
        let (name, params) = match spec.split_once(':') {
            Some((name, params)) => (name.trim(), Some(params)),
            None => (spec, None),
        };
        let items = |params: Option<&str>| -> Result<Vec<(String, String)>, String> {
            let Some(params) = params else {
                return Ok(Vec::new());
            };
            params
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|item| {
                    let (k, v) = item
                        .split_once('=')
                        .ok_or_else(|| format!("{name}: expected key=value, got '{item}'"))?;
                    Ok((k.trim().to_string(), v.trim().to_string()))
                })
                .collect()
        };
        let parsed = match name {
            "clique" => {
                reject_params(name, params)?;
                Self::Clique
            }
            "ring" => {
                reject_params(name, params)?;
                Self::Ring
            }
            "torus" => {
                reject_params(name, params)?;
                Self::Torus
            }
            "random-regular" => {
                let mut degree = default_degree;
                for (k, v) in items(params)? {
                    match k.as_str() {
                        "d" => degree = parse_num::<usize>(name, "d", &v)?,
                        _ => return Err(unknown_key(name, &k, &["d"])),
                    }
                }
                if degree == 0 {
                    return Err(format!("{name}: d must be positive"));
                }
                Self::RandomRegular { degree }
            }
            "ring-gradient" => {
                let (mut alpha, mut span) = (2.0, 8usize);
                for (k, v) in items(params)? {
                    match k.as_str() {
                        "alpha" => alpha = parse_num::<f64>(name, "alpha", &v)?,
                        "span" => span = parse_num::<usize>(name, "span", &v)?,
                        _ => return Err(unknown_key(name, &k, &["alpha", "span"])),
                    }
                }
                if !alpha.is_finite() || alpha < 0.0 {
                    return Err(format!(
                        "{name}: alpha must be finite and >= 0, got {alpha}"
                    ));
                }
                if span == 0 {
                    return Err(format!("{name}: span must be positive"));
                }
                Self::RingGradient { alpha, span }
            }
            "ring-gaussian" => {
                let mut sigma = 8.0;
                for (k, v) in items(params)? {
                    match k.as_str() {
                        "sigma" => sigma = parse_num::<f64>(name, "sigma", &v)?,
                        _ => return Err(unknown_key(name, &k, &["sigma"])),
                    }
                }
                if !sigma.is_finite() || sigma <= 0.0 {
                    return Err(format!("{name}: sigma must be finite and > 0, got {sigma}"));
                }
                Self::RingGaussian { sigma }
            }
            "chung-lu" => {
                let (mut dmin, mut dmax, mut gamma) = (2.0, 100.0, 2.5);
                for (k, v) in items(params)? {
                    match k.as_str() {
                        "dmin" => dmin = parse_num::<f64>(name, "dmin", &v)?,
                        "dmax" => dmax = parse_num::<f64>(name, "dmax", &v)?,
                        "gamma" => gamma = parse_num::<f64>(name, "gamma", &v)?,
                        _ => return Err(unknown_key(name, &k, &["dmin", "dmax", "gamma"])),
                    }
                }
                if !dmin.is_finite() || dmin <= 0.0 {
                    return Err(format!("{name}: dmin must be finite and > 0, got {dmin}"));
                }
                if !dmax.is_finite() || dmax < dmin {
                    return Err(format!(
                        "{name}: dmax must be finite and >= dmin, got {dmax}"
                    ));
                }
                if !gamma.is_finite() || gamma <= 1.0 {
                    return Err(format!("{name}: gamma must be finite and > 1, got {gamma}"));
                }
                Self::ChungLu { dmin, dmax, gamma }
            }
            other => {
                return Err(format!(
                    "unknown topology '{other}' (expected one of: {})",
                    Self::FAMILIES.join(", ")
                ));
            }
        };
        Ok(parsed)
    }

    /// The bare family name (canonical form without parameters).
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            Self::Clique => "clique",
            Self::Ring => "ring",
            Self::Torus => "torus",
            Self::RandomRegular { .. } => "random-regular",
            Self::RingGradient { .. } => "ring-gradient",
            Self::RingGaussian { .. } => "ring-gaussian",
            Self::ChungLu { .. } => "chung-lu",
        }
    }

    /// Is this an implicit (non-materialized) family — O(n) state, no
    /// dense edge slots, no indexed neighbor access?
    #[must_use]
    pub fn is_implicit(&self) -> bool {
        matches!(
            self,
            Self::RingGradient { .. } | Self::RingGaussian { .. } | Self::ChungLu { .. }
        )
    }

    /// Instantiate the topology at `n` nodes.  `seed` is the *master*
    /// seed; families that wire randomly fold in [`TOPOLOGY_SALT`]
    /// before seeding (implicit families and the deterministic lattices
    /// ignore it entirely — their construction consumes no randomness).
    pub fn build(&self, n: usize, seed: u64) -> Result<Box<dyn Topology>, String> {
        Ok(match *self {
            Self::Clique => Box::new(Clique::new(n)),
            Self::Ring => {
                if n < 3 {
                    return Err(format!("topology ring needs n >= 3, got {n}"));
                }
                Box::new(ring(n))
            }
            Self::Torus => {
                let (w, h) = near_square_factors(n).ok_or(format!(
                    "topology torus needs n = w*h with both sides >= 3, got n = {n}"
                ))?;
                Box::new(torus(w, h))
            }
            Self::RandomRegular { degree } => {
                if degree >= n || !(n * degree).is_multiple_of(2) {
                    return Err(format!(
                        "topology random-regular needs degree < n and n*degree even \
                         (n = {n}, degree = {degree})"
                    ));
                }
                Box::new(random_regular(n, degree, seed ^ TOPOLOGY_SALT))
            }
            Self::RingGradient { alpha, span } => {
                if 2 * span > n.saturating_sub(1) {
                    return Err(format!(
                        "topology ring-gradient needs 2*span <= n-1 (n = {n}, span = {span})"
                    ));
                }
                Box::new(ImplicitRing::gradient(n, alpha, span))
            }
            Self::RingGaussian { sigma } => {
                if n < 3 {
                    return Err(format!("topology ring-gaussian needs n >= 3, got {n}"));
                }
                Box::new(ImplicitRing::gaussian(n, sigma))
            }
            Self::ChungLu { dmin, dmax, gamma } => {
                if n < 2 {
                    return Err(format!("topology chung-lu needs n >= 2, got {n}"));
                }
                Box::new(ChungLu::power_law(n, dmin, dmax, gamma))
            }
        })
    }

    /// Cache key identifying the topology this spec builds at `(n,
    /// seed)`: the canonical [`Display`] form plus `n`, plus the salted
    /// wiring seed for the one family whose construction is seeded
    /// (`random-regular`).  Deterministic lattices and implicit families
    /// are construction-deterministic, so their keys are seed-free —
    /// two jobs at different seeds share the cached object, exactly as
    /// two CLI invocations would rebuild the identical graph.
    #[must_use]
    pub fn cache_key(&self, n: usize, seed: u64) -> String {
        match self {
            Self::RandomRegular { .. } => {
                format!("{self}:n={n}:wiring={}", seed ^ TOPOLOGY_SALT)
            }
            _ => format!("{self}:n={n}"),
        }
    }
}

impl Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::Clique | Self::Ring | Self::Torus => write!(f, "{}", self.family()),
            Self::RandomRegular { degree } => write!(f, "random-regular:d={degree}"),
            Self::RingGradient { alpha, span } => {
                write!(f, "ring-gradient:alpha={alpha},span={span}")
            }
            Self::RingGaussian { sigma } => write!(f, "ring-gaussian:sigma={sigma}"),
            Self::ChungLu { dmin, dmax, gamma } => {
                write!(f, "chung-lu:dmin={dmin},dmax={dmax},gamma={gamma}")
            }
        }
    }
}

fn reject_params(name: &str, params: Option<&str>) -> Result<(), String> {
    match params {
        None => Ok(()),
        Some(p) => Err(format!("{name}: takes no parameters, got '{p}'")),
    }
}

fn unknown_key(name: &str, key: &str, known: &[&str]) -> String {
    format!(
        "{name}: unknown key '{key}' (expected {})",
        known.join(", ")
    )
}

fn parse_num<T: std::str::FromStr>(name: &str, key: &str, v: &str) -> Result<T, String> {
    v.parse::<T>()
        .map_err(|_| format!("{name}: {key} must be a number, got '{v}'"))
}

/// The largest divisor pair `(w, h)` of `n` with both sides ≥ 3 and `w`
/// closest to `√n` — the torus shape used for `topology = torus`.
#[must_use]
pub fn near_square_factors(n: usize) -> Option<(usize, usize)> {
    let mut w = (n as f64).sqrt().floor() as usize;
    while w >= 3 {
        if n.is_multiple_of(w) && n / w >= 3 {
            return Some((w, n / w));
        }
        w -= 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::downcast_topology;
    use crate::graph::CsrGraph;

    #[test]
    fn bare_names_parse_with_defaults() {
        assert_eq!(TopologySpec::parse("clique").unwrap(), TopologySpec::Clique);
        assert_eq!(
            TopologySpec::parse("random-regular").unwrap(),
            TopologySpec::RandomRegular { degree: 8 }
        );
        assert_eq!(
            TopologySpec::parse("ring-gradient").unwrap(),
            TopologySpec::RingGradient {
                alpha: 2.0,
                span: 8
            }
        );
        assert_eq!(
            TopologySpec::parse("ring-gaussian").unwrap(),
            TopologySpec::RingGaussian { sigma: 8.0 }
        );
        assert_eq!(
            TopologySpec::parse("chung-lu").unwrap(),
            TopologySpec::ChungLu {
                dmin: 2.0,
                dmax: 100.0,
                gamma: 2.5
            }
        );
    }

    #[test]
    fn parameters_override_defaults_in_any_order() {
        assert_eq!(
            TopologySpec::parse("ring-gradient:span=16,alpha=1.5").unwrap(),
            TopologySpec::RingGradient {
                alpha: 1.5,
                span: 16
            }
        );
        assert_eq!(
            TopologySpec::parse("chung-lu:gamma=3").unwrap(),
            TopologySpec::ChungLu {
                dmin: 2.0,
                dmax: 100.0,
                gamma: 3.0
            }
        );
    }

    #[test]
    fn legacy_degree_feeds_random_regular_but_explicit_wins() {
        assert_eq!(
            TopologySpec::parse_with_degree("random-regular", 6).unwrap(),
            TopologySpec::RandomRegular { degree: 6 }
        );
        assert_eq!(
            TopologySpec::parse_with_degree("random-regular:d=10", 6).unwrap(),
            TopologySpec::RandomRegular { degree: 10 }
        );
        // The default-degree channel never leaks into other families.
        assert_eq!(
            TopologySpec::parse_with_degree("clique", 6).unwrap(),
            TopologySpec::Clique
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "mesh",
            "clique:d=3",
            "random-regular:degree=8",
            "ring-gradient:alpha=x",
            "ring-gradient:span=0",
            "ring-gaussian:sigma=-1",
            "chung-lu:gamma=1",
            "chung-lu:dmin=0",
            "chung-lu:dmax=1",
            "random-regular:d=0",
            "ring-gradient:alpha",
        ] {
            assert!(TopologySpec::parse(bad).is_err(), "'{bad}' should fail");
        }
    }

    #[test]
    fn display_is_canonical_and_round_trips() {
        for (input, canonical) in [
            ("clique", "clique"),
            (" ring ", "ring"),
            ("random-regular", "random-regular:d=8"),
            ("random-regular:d=6", "random-regular:d=6"),
            (
                "ring-gradient:span=16,alpha=1.5",
                "ring-gradient:alpha=1.5,span=16",
            ),
            ("ring-gaussian", "ring-gaussian:sigma=8"),
            ("chung-lu:gamma=3", "chung-lu:dmin=2,dmax=100,gamma=3"),
        ] {
            let spec = TopologySpec::parse(input).unwrap();
            assert_eq!(spec.to_string(), canonical);
            assert_eq!(TopologySpec::parse(canonical).unwrap(), spec);
        }
    }

    #[test]
    fn build_dispatches_to_the_right_family() {
        let g = TopologySpec::parse("random-regular:d=4")
            .unwrap()
            .build(100, 7)
            .unwrap();
        let csr = downcast_topology::<CsrGraph>(&*g).expect("materialized CSR");
        assert_eq!(csr.regular_degree(), Some(4));

        let imp = TopologySpec::parse("ring-gradient:alpha=2,span=4")
            .unwrap()
            .build(100, 7)
            .unwrap();
        assert!(downcast_topology::<crate::ImplicitRing>(&*imp).is_some());
        assert_eq!(imp.degree(0), 8);

        let cl = TopologySpec::parse("chung-lu")
            .unwrap()
            .build(50, 7)
            .unwrap();
        assert!(downcast_topology::<crate::ChungLu>(&*cl).is_some());
    }

    #[test]
    fn build_validates_size_constraints() {
        for (spec, n) in [
            ("ring", 2),
            ("torus", 7),
            ("random-regular:d=3", 3),
            ("ring-gradient:span=5", 10),
            ("chung-lu", 1),
        ] {
            assert!(
                TopologySpec::parse(spec).unwrap().build(n, 1).is_err(),
                "{spec} at n={n} should fail"
            );
        }
    }

    #[test]
    fn cache_keys_use_canonical_form_and_salt_only_seeded_wiring() {
        let rr = TopologySpec::parse("random-regular:d=6").unwrap();
        assert_ne!(rr.cache_key(100, 1), rr.cache_key(100, 2), "seeded wiring");
        let grad = TopologySpec::parse("ring-gradient").unwrap();
        assert_eq!(
            grad.cache_key(100, 1),
            grad.cache_key(100, 2),
            "implicit construction is seed-free"
        );
        // Spelling variants collapse onto one canonical key.
        assert_eq!(
            TopologySpec::parse("chung-lu").unwrap().cache_key(10, 0),
            TopologySpec::parse("chung-lu:gamma=2.5,dmax=100,dmin=2")
                .unwrap()
                .cache_key(10, 0)
        );
    }

    #[test]
    fn near_square_factors_finds_torus_shapes() {
        assert_eq!(near_square_factors(100), Some((10, 10)));
        assert_eq!(near_square_factors(12), Some((3, 4)));
        assert_eq!(near_square_factors(7), None);
    }
}
