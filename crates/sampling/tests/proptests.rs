//! Property-based tests for the sampling substrate: invariants that must
//! hold for *every* parameter combination, not just the unit-test grid.

use plurality_sampling::binomial::sample_binomial;
use plurality_sampling::categorical::sample_from_counts;
use plurality_sampling::multinomial::{sample_multinomial, sample_multinomial_weighted};
use plurality_sampling::{derive_stream, AliasTable, CountSampler, SplitMix64, Xoshiro256PlusPlus};
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};

/// Pearson chi-square statistic of `observed` draws against expected
/// proportions `weights[i] / Σ weights`.
fn chi_square(observed: &[u64], weights: &[u64]) -> f64 {
    let total_w: u64 = weights.iter().sum();
    let draws: u64 = observed.iter().sum();
    observed
        .iter()
        .zip(weights)
        .filter(|&(_, &w)| w > 0)
        .map(|(&o, &w)| {
            let expect = draws as f64 * w as f64 / total_w as f64;
            let d = o as f64 - expect;
            d * d / expect
        })
        .sum()
}

proptest! {
    /// The alias table over integer rates draws the same distribution as
    /// the exact cumulative-table sampler ([`CountSampler`]) over the
    /// same counts: chi-square of each against the true proportions stays
    /// below a generous quantile, for arbitrary weight vectors.
    ///
    /// This is the law-level guarantee backing the rated gossip
    /// scheduler's switch from the cumulative binary search to
    /// [`AliasTable`] (the PRNG consumption differs by design; the
    /// distribution must not).
    #[test]
    fn alias_from_counts_matches_cumulative_law(
        weights in proptest::collection::vec(0u64..50, 2..12),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<u64>() > 0);
        let k = weights.len();
        let alias = AliasTable::from_counts(&weights);
        let cumulative = CountSampler::new(&weights);
        let draws = 40_000usize;
        let mut alias_counts = vec![0u64; k];
        let mut cum_counts = vec![0u64; k];
        let mut rng_a = Xoshiro256PlusPlus::seed_from_u64(derive_stream(seed, 1));
        let mut rng_c = Xoshiro256PlusPlus::seed_from_u64(derive_stream(seed, 2));
        for _ in 0..draws {
            alias_counts[alias.sample(&mut rng_a)] += 1;
            cum_counts[cumulative.sample(&mut rng_c)] += 1;
        }
        // Zero-weight categories must never fire on either path.
        for (i, &w) in weights.iter().enumerate() {
            if w == 0 {
                prop_assert_eq!(alias_counts[i], 0);
                prop_assert_eq!(cum_counts[i], 0);
            }
        }
        // dof ≤ 11; χ²(dof=11) has mean 11, sd ≈ 4.7.  50 is far beyond
        // any plausible quantile for a correct sampler while still tight
        // enough to catch a mis-built table.
        let chi_alias = chi_square(&alias_counts, &weights);
        let chi_cum = chi_square(&cum_counts, &weights);
        prop_assert!(chi_alias < 50.0, "alias chi-square {} (counts {:?})", chi_alias, weights);
        prop_assert!(chi_cum < 50.0, "cumulative chi-square {}", chi_cum);
    }

    /// Binomial samples never exceed n, for any (n, p, seed).
    #[test]
    fn binomial_within_bounds(n in 0u64..1_000_000, p in -0.5f64..1.5, seed in any::<u64>()) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let x = sample_binomial(n, p, &mut rng);
        prop_assert!(x <= n);
    }

    /// Degenerate probabilities give degenerate samples.
    #[test]
    fn binomial_degenerate(n in 0u64..100_000, seed in any::<u64>()) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        prop_assert_eq!(sample_binomial(n, 0.0, &mut rng), 0);
        prop_assert_eq!(sample_binomial(n, 1.0, &mut rng), n);
    }

    /// Binomial sampling is deterministic given the RNG state.
    #[test]
    fn binomial_deterministic(n in 1u64..100_000, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(seed);
        prop_assert_eq!(sample_binomial(n, p, &mut a), sample_binomial(n, p, &mut b));
    }

    /// Multinomial output always sums to exactly n, whatever the weights.
    #[test]
    fn multinomial_sums_to_n(
        n in 0u64..1_000_000,
        weights in proptest::collection::vec(0.0f64..100.0, 1..20),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut out = vec![0u64; weights.len()];
        sample_multinomial_weighted(n, &weights, &mut out, &mut rng);
        prop_assert_eq!(out.iter().sum::<u64>(), n);
    }

    /// Zero-weight categories receive nothing.
    #[test]
    fn multinomial_zero_weight_gets_zero(
        n in 1u64..100_000,
        live in 1.0f64..100.0,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let weights = [live, 0.0, live];
        let mut out = [0u64; 3];
        sample_multinomial_weighted(n, &weights, &mut out, &mut rng);
        prop_assert_eq!(out[1], 0);
    }

    /// Normalized probs path agrees with the invariant too.
    #[test]
    fn multinomial_probs_path(
        n in 0u64..100_000,
        raw in proptest::collection::vec(0.01f64..1.0, 2..10),
        seed in any::<u64>(),
    ) {
        let total: f64 = raw.iter().sum();
        let probs: Vec<f64> = raw.iter().map(|w| w / total).collect();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut out = vec![0u64; probs.len()];
        sample_multinomial(n, &probs, &mut out, &mut rng);
        prop_assert_eq!(out.iter().sum::<u64>(), n);
    }

    /// Alias table always returns a valid index, and never one with zero
    /// weight.
    #[test]
    fn alias_valid_indices(
        weights in proptest::collection::vec(0.0f64..10.0, 1..50),
        seed in any::<u64>(),
        draws in 1usize..200,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..draws {
            let i = table.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight index {}", i);
        }
    }

    /// CountSampler::locate maps every u to the category owning it.
    #[test]
    fn count_sampler_locate_exact(
        counts in proptest::collection::vec(0u64..100, 1..30),
    ) {
        prop_assume!(counts.iter().sum::<u64>() > 0);
        let s = CountSampler::new(&counts);
        // Walk all mass boundaries (bounded total keeps this cheap).
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                prop_assert_eq!(s.locate(cum), i);
                prop_assert_eq!(s.locate(cum + c - 1), i);
            }
            cum += c;
        }
    }

    /// One-shot counts sampling also returns only live categories.
    #[test]
    fn sample_from_counts_live_only(
        counts in proptest::collection::vec(0u64..50, 1..20),
        seed in any::<u64>(),
    ) {
        let total: u64 = counts.iter().sum();
        prop_assume!(total > 0);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..50 {
            let i = sample_from_counts(&counts, total, &mut rng);
            prop_assert!(counts[i] > 0);
        }
    }

    /// Stream derivation: distinct stream indices give distinct seeds
    /// (collision would need a 64-bit birthday accident).
    #[test]
    fn stream_derivation_injective_locally(master in any::<u64>(), i in 0u64..1000, j in 0u64..1000) {
        prop_assume!(i != j);
        prop_assert_ne!(derive_stream(master, i), derive_stream(master, j));
    }

    /// SplitMix64 and xoshiro fill_bytes agree with word-wise generation
    /// for arbitrary buffer sizes.
    #[test]
    fn fill_bytes_prefix_consistency(seed in any::<u64>(), len in 0usize..64) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        let mut buf = vec![0u8; len];
        a.fill_bytes(&mut buf);
        // Reconstruct from words.
        let mut expect = Vec::with_capacity(len + 8);
        while expect.len() < len {
            expect.extend_from_slice(&b.next_u64().to_le_bytes());
        }
        prop_assert_eq!(&buf[..], &expect[..len]);
    }
}
