//! Exact multinomial sampling via the conditional-binomial decomposition.
//!
//! If `X ~ Multinomial(n; p_1, …, p_k)` then `X_1 ~ Binomial(n, p_1)` and,
//! conditionally, `X_j ~ Binomial(n − Σ_{i<j} X_i, p_j / (1 − Σ_{i<j} p_i))`.
//! Sampling the components in order therefore yields an exact multinomial
//! draw using `k − 1` binomial draws, `O(k)` total expected time — the
//! primitive that makes the mean-field engine's rounds `O(k)` instead of
//! `O(n)`.

use crate::binomial::sample_binomial;
use rand::Rng;

/// Draw `X ~ Multinomial(n, probs)` into `out`.
///
/// `probs` must be non-negative and sum to (approximately) 1; small
/// floating-point deficits or excesses are absorbed safely: conditional
/// probabilities are clamped to `[0, 1]` and the final component takes the
/// exact integer remainder, so **`out` always sums to exactly `n`**.
///
/// # Panics
/// Panics if `probs.len() != out.len()` or `probs` is empty.
///
/// # Example
/// ```
/// use plurality_sampling::{multinomial::sample_multinomial, Xoshiro256PlusPlus};
/// use rand::SeedableRng;
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
/// let mut out = [0u64; 3];
/// sample_multinomial(1000, &[0.5, 0.3, 0.2], &mut out, &mut rng);
/// assert_eq!(out.iter().sum::<u64>(), 1000);
/// ```
pub fn sample_multinomial<R: Rng + ?Sized>(n: u64, probs: &[f64], out: &mut [u64], rng: &mut R) {
    assert_eq!(
        probs.len(),
        out.len(),
        "probs and out must have equal length"
    );
    assert!(!probs.is_empty(), "multinomial needs at least one category");

    let k = probs.len();
    let mut remaining_n = n;
    let mut remaining_p = 1.0f64;

    for j in 0..k - 1 {
        if remaining_n == 0 {
            out[j] = 0;
            continue;
        }
        let pj = probs[j].max(0.0);
        // Conditional probability of category j among what is left.
        let cond = if remaining_p > 0.0 {
            (pj / remaining_p).clamp(0.0, 1.0)
        } else {
            // Mass exhausted by rounding: spread nothing further.
            0.0
        };
        let x = sample_binomial(remaining_n, cond, rng);
        out[j] = x;
        remaining_n -= x;
        remaining_p -= pj;
    }
    out[k - 1] = remaining_n;
}

/// Draw `X ~ Multinomial(n, w / Σw)` from non-negative weights.
///
/// Convenience wrapper normalizing on the fly (no temporary allocation
/// beyond the caller's `out`).
///
/// # Panics
/// Panics if all weights are zero/negative, or on length mismatch.
pub fn sample_multinomial_weighted<R: Rng + ?Sized>(
    n: u64,
    weights: &[f64],
    out: &mut [u64],
    rng: &mut R,
) {
    assert_eq!(weights.len(), out.len());
    let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    assert!(
        total > 0.0,
        "multinomial weights must have positive total mass"
    );
    let k = weights.len();
    let mut remaining_n = n;
    let mut remaining_w = total;
    for j in 0..k - 1 {
        if remaining_n == 0 {
            out[j] = 0;
            continue;
        }
        let wj = weights[j].max(0.0);
        let cond = if remaining_w > 0.0 {
            (wj / remaining_w).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let x = sample_binomial(remaining_n, cond, rng);
        out[j] = x;
        remaining_n -= x;
        remaining_w -= wj;
    }
    out[k - 1] = remaining_n;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;
    use rand::SeedableRng;

    #[test]
    fn sums_to_n() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let probs = [0.1, 0.2, 0.3, 0.4];
        let mut out = [0u64; 4];
        for n in [0u64, 1, 17, 1000, 1_000_000] {
            sample_multinomial(n, &probs, &mut out, &mut rng);
            assert_eq!(out.iter().sum::<u64>(), n);
        }
    }

    #[test]
    fn single_category_takes_all() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut out = [0u64; 1];
        sample_multinomial(123, &[1.0], &mut out, &mut rng);
        assert_eq!(out[0], 123);
    }

    #[test]
    fn zero_probability_category_gets_nothing() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut out = [0u64; 3];
        for _ in 0..200 {
            sample_multinomial(1000, &[0.5, 0.0, 0.5], &mut out, &mut rng);
            assert_eq!(out[1], 0);
            assert_eq!(out[0] + out[2], 1000);
        }
    }

    #[test]
    fn degenerate_all_mass_first() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut out = [0u64; 3];
        sample_multinomial(500, &[1.0, 0.0, 0.0], &mut out, &mut rng);
        assert_eq!(out, [500, 0, 0]);
    }

    #[test]
    fn marginal_means_match() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let probs = [0.05, 0.15, 0.35, 0.45];
        let n = 10_000u64;
        let trials = 4000;
        let mut sums = [0f64; 4];
        let mut out = [0u64; 4];
        for _ in 0..trials {
            sample_multinomial(n, &probs, &mut out, &mut rng);
            for (s, &x) in sums.iter_mut().zip(&out) {
                *s += x as f64;
            }
        }
        for (j, (&pj, &s)) in probs.iter().zip(&sums).enumerate() {
            let mean = s / trials as f64;
            let expect = n as f64 * pj;
            let sigma = (n as f64 * pj * (1.0 - pj) / trials as f64).sqrt();
            assert!(
                (mean - expect).abs() < 5.0 * sigma,
                "category {j}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn marginal_covariance_sign() {
        // Multinomial components are negatively correlated:
        // Cov(X_i, X_j) = −n p_i p_j.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let probs = [0.5, 0.5];
        let n = 1000u64;
        let trials = 5000;
        let mut out = [0u64; 2];
        let mut sum0 = 0.0;
        let mut sum1 = 0.0;
        let mut sum01 = 0.0;
        for _ in 0..trials {
            sample_multinomial(n, &probs, &mut out, &mut rng);
            sum0 += out[0] as f64;
            sum1 += out[1] as f64;
            sum01 += out[0] as f64 * out[1] as f64;
        }
        let t = trials as f64;
        let cov = sum01 / t - (sum0 / t) * (sum1 / t);
        let expect = -(n as f64) * 0.25; // −250
        assert!(
            (cov - expect).abs() < 50.0,
            "cov = {cov}, expected ≈ {expect}"
        );
    }

    #[test]
    fn weighted_matches_normalized() {
        let mut rng_a = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut rng_b = Xoshiro256PlusPlus::seed_from_u64(7);
        let weights = [2.0, 6.0, 12.0];
        let probs = [0.1, 0.3, 0.6];
        let mut a = [0u64; 3];
        let mut b = [0u64; 3];
        for _ in 0..100 {
            sample_multinomial_weighted(997, &weights, &mut a, &mut rng_a);
            sample_multinomial(997, &probs, &mut b, &mut rng_b);
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "positive total mass")]
    fn weighted_rejects_zero_mass() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let mut out = [0u64; 2];
        sample_multinomial_weighted(10, &[0.0, 0.0], &mut out, &mut rng);
    }

    #[test]
    fn probs_not_quite_normalized_still_exact_total() {
        // Simulate accumulated rounding: probs summing to 1 ± 1e-12.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let probs = [0.3333333333333333, 0.3333333333333333, 0.3333333333333335];
        let mut out = [0u64; 3];
        for _ in 0..100 {
            sample_multinomial(1_000_003, &probs, &mut out, &mut rng);
            assert_eq!(out.iter().sum::<u64>(), 1_000_003);
        }
    }
}
