//! Exact (multivariate) hypergeometric sampling: drawing without
//! replacement.
//!
//! The F-bounded adversary corrupts `F` *distinct* nodes per round; in
//! count representation the victims across color groups follow a
//! multivariate hypergeometric law, built here from sequential univariate
//! draws.  The univariate sampler inverts the pmf outward from the mode
//! (expected `O(sd)` steps), with the pmf evaluated once in log space via
//! a Stirling-series `ln Γ`.

use rand::Rng;

/// `ln Γ(x)` by the Stirling series (x ≥ 1 after shift; ~1e-10 accurate).
/// Private: the analysis crate owns the public special-function API; this
/// copy keeps `plurality-sampling` dependency-free.
fn ln_gamma(mut x: f64) -> f64 {
    debug_assert!(x > 0.0);
    // Shift up so the series is accurate, then undo with ln-products.
    let mut shift = 0.0;
    while x < 8.0 {
        shift -= x.ln();
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    let series = inv / 12.0 - inv * inv2 / 360.0 + inv * inv2 * inv2 / 1260.0;
    shift + 0.5 * ((2.0 * std::f64::consts::PI).ln() - x.ln()) + x * (x.ln() - 1.0) + series
}

/// `ln C(n, k)`.
fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Hypergeometric pmf `P(X = x)` for drawing `n` from `total` containing
/// `successes` marked items.
fn pmf(total: u64, successes: u64, n: u64, x: u64) -> f64 {
    (ln_choose(successes, x) + ln_choose(total - successes, n - x) - ln_choose(total, n)).exp()
}

/// Draw `X ~ Hypergeometric(total, successes, draws)`: the number of
/// marked items among `draws` drawn without replacement from a population
/// of `total` items of which `successes` are marked.
///
/// Exact inversion expanding outward from the mode; expected time
/// `O(sd(X))`.
///
/// # Panics
/// Panics if `successes > total` or `draws > total`.
pub fn sample_hypergeometric<R: Rng + ?Sized>(
    total: u64,
    successes: u64,
    draws: u64,
    rng: &mut R,
) -> u64 {
    assert!(successes <= total, "successes exceed population");
    assert!(draws <= total, "draws exceed population");
    if draws == 0 || successes == 0 {
        return 0;
    }
    if successes == total {
        return draws;
    }
    // Support bounds.
    let lo = draws.saturating_sub(total - successes);
    let hi = draws.min(successes);
    if lo == hi {
        return lo;
    }

    // Mode of the distribution.
    let mode =
        (((draws + 1) as f64) * ((successes + 1) as f64) / ((total + 2) as f64)).floor() as u64;
    let mode = mode.clamp(lo, hi);
    let p_mode = pmf(total, successes, draws, mode);

    // Two-sided expansion from the mode, maintaining the pmf by ratio
    // recurrences: p(x+1)/p(x) = (K−x)(n−x) / ((x+1)(N−K−n+x+1)).
    let mut u: f64 = rng.gen::<f64>();
    u -= p_mode;
    if u <= 0.0 {
        return mode;
    }
    let k_f = successes as f64;
    let n_f = draws as f64;
    let rest = (total - successes) as f64;
    let ratio_up = |x: f64| ((k_f - x) * (n_f - x)) / ((x + 1.0) * (rest - n_f + x + 1.0));

    let mut up_x = mode;
    let mut up_p = p_mode;
    let mut down_x = mode;
    let mut down_p = p_mode;
    loop {
        let can_up = up_x < hi;
        let can_down = down_x > lo;
        if !can_up && !can_down {
            // Numerical dust: return the closer support bound.
            return if up_p >= down_p { hi } else { lo };
        }
        if can_up {
            up_p *= ratio_up(up_x as f64);
            up_x += 1;
            u -= up_p;
            if u <= 0.0 {
                return up_x;
            }
        }
        if can_down {
            // p(x−1) = p(x) / ratio_up(x−1).
            down_p /= ratio_up((down_x - 1) as f64);
            down_x -= 1;
            u -= down_p;
            if u <= 0.0 {
                return down_x;
            }
        }
    }
}

/// Multivariate hypergeometric: distribute `draws` without-replacement
/// picks across categories with the given counts.  Output sums to
/// exactly `draws`.
///
/// # Panics
/// Panics if `draws` exceeds the total count or on length mismatch.
pub fn sample_multivariate_hypergeometric<R: Rng + ?Sized>(
    counts: &[u64],
    draws: u64,
    out: &mut [u64],
    rng: &mut R,
) {
    assert_eq!(counts.len(), out.len(), "length mismatch");
    let mut remaining_total: u64 = counts.iter().sum();
    assert!(
        draws <= remaining_total,
        "cannot draw more than the population"
    );
    let mut remaining_draws = draws;
    for (slot, &c) in out.iter_mut().zip(counts) {
        if remaining_draws == 0 {
            *slot = 0;
            continue;
        }
        let x = sample_hypergeometric(remaining_total, c, remaining_draws, rng);
        *slot = x;
        remaining_draws -= x;
        remaining_total -= c;
    }
    debug_assert_eq!(out.iter().sum::<u64>(), draws);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;
    use rand::SeedableRng;

    #[test]
    fn ln_gamma_matches_factorials() {
        for (x, f) in [(1.0f64, 1.0f64), (5.0, 24.0), (11.0, 3_628_800.0)] {
            assert!((ln_gamma(x) - f.ln()).abs() < 1e-9, "ln_gamma({x})");
        }
    }

    #[test]
    fn support_bounds_respected() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..5_000 {
            let x = sample_hypergeometric(20, 15, 10, &mut rng);
            // lo = 10 − 5 = 5, hi = 10.
            assert!((5..=10).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        assert_eq!(sample_hypergeometric(10, 0, 5, &mut rng), 0);
        assert_eq!(sample_hypergeometric(10, 10, 5, &mut rng), 5);
        assert_eq!(sample_hypergeometric(10, 5, 0, &mut rng), 0);
        assert_eq!(sample_hypergeometric(10, 5, 10, &mut rng), 5);
    }

    #[test]
    fn matches_exact_pmf_small() {
        // Chi-square-ish check against the exact pmf for a small case.
        let (total, succ, draws) = (30u64, 12u64, 10u64);
        let trials = 60_000;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut freq = vec![0u64; (draws + 1) as usize];
        for _ in 0..trials {
            freq[sample_hypergeometric(total, succ, draws, &mut rng) as usize] += 1;
        }
        for x in 0..=draws {
            let p = pmf(total, succ, draws, x);
            let expect = p * trials as f64;
            if expect < 10.0 {
                continue;
            }
            let sigma = (expect * (1.0 - p)).sqrt();
            assert!(
                ((freq[x as usize] as f64) - expect).abs() < 6.0 * sigma,
                "x = {x}: {} vs {expect}",
                freq[x as usize]
            );
        }
    }

    #[test]
    fn mean_matches_large_population() {
        // N = 10^6, K = 300k, n = 5000: mean = nK/N = 1500.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let trials = 3_000;
        let mut acc = 0u64;
        for _ in 0..trials {
            acc += sample_hypergeometric(1_000_000, 300_000, 5_000, &mut rng);
        }
        let mean = acc as f64 / trials as f64;
        let var = 5_000.0 * 0.3 * 0.7 * (995_000.0 / 999_999.0);
        let sigma_mean = (var / trials as f64).sqrt();
        assert!((mean - 1_500.0).abs() < 5.0 * sigma_mean, "mean {mean}");
    }

    #[test]
    fn multivariate_sums_and_caps() {
        let counts = [500u64, 300, 0, 200];
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut out = [0u64; 4];
        for _ in 0..2_000 {
            sample_multivariate_hypergeometric(&counts, 100, &mut out, &mut rng);
            assert_eq!(out.iter().sum::<u64>(), 100);
            assert_eq!(out[2], 0, "empty category drew a victim");
            for (o, c) in out.iter().zip(&counts) {
                assert!(o <= c, "drew more than the category holds");
            }
        }
    }

    #[test]
    fn multivariate_full_draw_takes_everything() {
        let counts = [7u64, 3, 5];
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut out = [0u64; 3];
        sample_multivariate_hypergeometric(&counts, 15, &mut out, &mut rng);
        assert_eq!(out, counts);
    }

    #[test]
    fn multivariate_marginal_means() {
        let counts = [600u64, 300, 100];
        let draws = 50u64;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let trials = 10_000;
        let mut sums = [0f64; 3];
        let mut out = [0u64; 3];
        for _ in 0..trials {
            sample_multivariate_hypergeometric(&counts, draws, &mut out, &mut rng);
            for (s, &x) in sums.iter_mut().zip(&out) {
                *s += x as f64;
            }
        }
        for (j, &c) in counts.iter().enumerate() {
            let mean = sums[j] / trials as f64;
            let expect = draws as f64 * c as f64 / 1_000.0;
            assert!(
                (mean - expect).abs() < 0.05 * expect.max(1.0),
                "cat {j}: {mean} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "draws exceed")]
    fn rejects_overdraw() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let _ = sample_hypergeometric(5, 3, 6, &mut rng);
    }
}
