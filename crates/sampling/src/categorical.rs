//! Exact categorical sampling proportional to integer counts.
//!
//! The agent-based engine on the clique draws a random *node's color*,
//! which is exactly "a category with probability `count_j / n`" for integer
//! counts.  Doing this through floating point would bend the process law
//! by rounding; [`CountSampler`] instead draws a uniform integer in
//! `[0, n)` and locates it in the cumulative count array — every category
//! is hit with probability exactly `count_j / n`.

use rand::Rng;

/// Exact sampler over categories weighted by `u64` counts.
///
/// Construction is O(k); each draw is O(log k) (binary search over the
/// cumulative sums).  For the small `k` (≤ a few thousand colors) used in
/// the experiments this is as fast as the alias method while being exact.
#[derive(Debug, Clone)]
pub struct CountSampler {
    /// Exclusive prefix sums shifted by one: `cum[i] = counts[0..=i].sum()`.
    cum: Vec<u64>,
    total: u64,
}

impl CountSampler {
    /// Build from category counts.
    ///
    /// # Panics
    /// Panics if `counts` is empty, the total is zero, or the total
    /// overflows `u64`.
    #[must_use]
    pub fn new(counts: &[u64]) -> Self {
        assert!(
            !counts.is_empty(),
            "CountSampler needs at least one category"
        );
        let mut cum = Vec::with_capacity(counts.len());
        let mut acc: u64 = 0;
        for &c in counts {
            acc = acc.checked_add(c).expect("count total overflows u64");
            cum.push(acc);
        }
        assert!(acc > 0, "CountSampler total must be positive");
        Self { cum, total: acc }
    }

    /// Total mass (the population size `n` in engine use).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of categories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Whether there are zero categories (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Draw a category index with probability exactly `counts[i] / total`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.gen_range(0..self.total);
        self.locate(u)
    }

    /// Map a value `u ∈ [0, total)` to its category (deterministic part of
    /// [`Self::sample`], exposed for testing and stratified draws).
    #[inline]
    #[must_use]
    pub fn locate(&self, u: u64) -> usize {
        debug_assert!(u < self.total);
        // partition_point returns the first index with cum[i] > u.
        self.cum.partition_point(|&c| c <= u)
    }
}

/// Draw a category index directly from a counts slice (one-shot; builds no
/// table).  O(k) per draw — prefer [`CountSampler`] in loops.
///
/// # Panics
/// Panics if the total of `counts` is zero.
#[inline]
pub fn sample_from_counts<R: Rng + ?Sized>(counts: &[u64], total: u64, rng: &mut R) -> usize {
    debug_assert_eq!(counts.iter().sum::<u64>(), total);
    assert!(total > 0, "cannot sample from zero total");
    let mut u = rng.gen_range(0..total);
    for (i, &c) in counts.iter().enumerate() {
        if u < c {
            return i;
        }
        u -= c;
    }
    // Unreachable if the invariant holds; defend against caller error.
    counts.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;
    use rand::SeedableRng;

    #[test]
    fn locate_is_exact_partition() {
        let s = CountSampler::new(&[2, 0, 3, 5]);
        assert_eq!(s.total(), 10);
        assert_eq!(s.locate(0), 0);
        assert_eq!(s.locate(1), 0);
        assert_eq!(s.locate(2), 2); // category 1 has zero mass
        assert_eq!(s.locate(4), 2);
        assert_eq!(s.locate(5), 3);
        assert_eq!(s.locate(9), 3);
    }

    #[test]
    fn zero_count_category_never_sampled() {
        let s = CountSampler::new(&[5, 0, 5]);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..10_000 {
            assert_ne!(s.sample(&mut rng), 1);
        }
    }

    #[test]
    fn frequencies_exact_distribution() {
        let counts = [10u64, 20, 30, 40];
        let s = CountSampler::new(&counts);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let trials = 100_000;
        let mut freq = [0u64; 4];
        for _ in 0..trials {
            freq[s.sample(&mut rng)] += 1;
        }
        for (i, (&f, &c)) in freq.iter().zip(&counts).enumerate() {
            let p = c as f64 / 100.0;
            let expect = trials as f64 * p;
            let sigma = (trials as f64 * p * (1.0 - p)).sqrt();
            assert!(
                ((f as f64) - expect).abs() < 5.0 * sigma,
                "category {i}: {f} vs {expect}"
            );
        }
    }

    #[test]
    fn one_shot_matches_locate_semantics() {
        let counts = [3u64, 1, 6];
        // Exhaustively check the walk agrees with binary search.
        let s = CountSampler::new(&counts);
        for u in 0..10u64 {
            let by_locate = s.locate(u);
            // Reproduce the walk deterministically.
            let mut uu = u;
            let mut by_walk = counts.len() - 1;
            for (i, &c) in counts.iter().enumerate() {
                if uu < c {
                    by_walk = i;
                    break;
                }
                uu -= c;
            }
            assert_eq!(by_locate, by_walk, "u = {u}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_total() {
        let _ = CountSampler::new(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        let _ = CountSampler::new(&[]);
    }

    #[test]
    fn huge_counts_no_overflow_panic() {
        let s = CountSampler::new(&[u64::MAX / 2, u64::MAX / 2]);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..100 {
            let i = s.sample(&mut rng);
            assert!(i < 2);
        }
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn detects_total_overflow() {
        let _ = CountSampler::new(&[u64::MAX, 2]);
    }
}
