//! Walker–Vose alias method: O(1) sampling from a fixed categorical
//! distribution after O(k) preprocessing.
//!
//! Used by the agent-based engine when a round's color distribution is
//! sampled `n·h` times (every node draws `h` neighbor colors): building the
//! table once per round amortizes to O(1) per draw, versus O(log k) for
//! CDF binary search.  The table stores `f64` probabilities, so draws are
//! exact up to f64 rounding of the input weights; when bit-exactness
//! against integer counts matters, use [`crate::categorical::CountSampler`]
//! instead (the engines default to the exact sampler; the alias table is
//! benchmarked as the fast alternative — see DESIGN.md §5).

use rand::Rng;

/// One slot of the table: acceptance threshold plus alias category,
/// interleaved so a draw touches a single cache line.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Acceptance threshold, scaled to [0,1].
    prob: f64,
    /// Alias category when the threshold rejects.
    alias: u32,
}

/// Precomputed alias table over `k` categories.
#[derive(Debug, Clone)]
pub struct AliasTable {
    slots: Vec<Slot>,
}

impl AliasTable {
    /// Build the table from non-negative weights.
    ///
    /// Zero-weight categories are never returned by [`Self::sample`].
    ///
    /// # Panics
    /// Panics if `weights` is empty, holds a negative/NaN value, sums to
    /// zero, or has more than `u32::MAX` entries.
    #[must_use]
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table limited to u32 categories"
        );
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0, "alias weights must be non-negative, got {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "alias weights must have positive total");

        let k = weights.len();
        let scale = k as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<u32> = (0..k as u32).collect();

        // Vose's stable two-stack partition.
        let mut small: Vec<u32> = Vec::with_capacity(k);
        let mut large: Vec<u32> = Vec::with_capacity(k);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            // Slot `s` keeps probability prob[s]; excess goes to alias l.
            alias[s as usize] = l;
            let leftover = prob[l as usize] - (1.0 - prob[s as usize]);
            prob[l as usize] = leftover;
            if leftover < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residual entries are 1 up to rounding.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        Self {
            slots: prob
                .into_iter()
                .zip(alias)
                .map(|(prob, alias)| Slot { prob, alias })
                .collect(),
        }
    }

    /// Build the table from non-negative *integer* weights (counts or
    /// integer rates).
    ///
    /// Every weight up to `2^53` is exactly representable in `f64`, so
    /// the slot thresholds are computed from the true integer ratios —
    /// the table's law matches a cumulative-table draw
    /// ([`crate::CountSampler`]) over the same counts exactly (up to the
    /// final `f64` division both perform), which the chi-square proptest
    /// in `tests/proptests.rs` pins.  Use this over [`Self::new`]
    /// whenever the weights are integer counts.  (The rated gossip
    /// scheduler draws from user-supplied `f64` rates and therefore goes
    /// through [`Self::new`].)
    ///
    /// # Panics
    /// Panics if `weights` is empty, all zero, or any entry exceeds
    /// `2^53` (no longer exactly representable).
    #[must_use]
    pub fn from_counts(weights: &[u64]) -> Self {
        const EXACT_MAX: u64 = 1 << 53;
        let as_f64: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(
                    w <= EXACT_MAX,
                    "weight {w} exceeds 2^53 and is not exactly representable"
                );
                w as f64
            })
            .collect();
        Self::new(&as_f64)
    }

    /// Number of categories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Draw one category index in O(1) — one uniform for the slot, one
    /// for accept/alias, one cache line touched.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let k = self.slots.len();
        let slot = rng.gen_range(0..k);
        let u: f64 = rng.gen::<f64>();
        let s = self.slots[slot];
        if u < s.prob {
            slot
        } else {
            s.alias as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;
    use rand::SeedableRng;

    #[test]
    fn single_category() {
        let t = AliasTable::new(&[3.0]);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0, 0.0]);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for _ in 0..20_000 {
            let s = t.sample(&mut rng);
            assert!(s == 0 || s == 2, "sampled zero-weight category {s}");
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0, 10.0];
        let total: f64 = weights.iter().sum();
        let t = AliasTable::new(&weights);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let trials = 200_000;
        let mut counts = [0u64; 5];
        for _ in 0..trials {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, (&c, &w)) in counts.iter().zip(&weights).enumerate() {
            let p = w / total;
            let expect = trials as f64 * p;
            let sigma = (trials as f64 * p * (1.0 - p)).sqrt();
            assert!(
                ((c as f64) - expect).abs() < 5.0 * sigma,
                "category {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn uniform_weights_uniform_output() {
        let k = 64;
        let weights = vec![1.0; k];
        let t = AliasTable::new(&weights);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let trials = 128_000;
        let mut counts = vec![0u64; k];
        for _ in 0..trials {
            counts[t.sample(&mut rng)] += 1;
        }
        let expect = trials as f64 / k as f64;
        let sigma = (expect * (1.0 - 1.0 / k as f64)).sqrt();
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                ((c as f64) - expect).abs() < 6.0 * sigma,
                "category {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn highly_skewed_weights() {
        // One dominant category plus a sliver.
        let t = AliasTable::new(&[1e-9, 1.0]);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let trials = 100_000;
        let hits0 = (0..trials).filter(|_| t.sample(&mut rng) == 0).count();
        // Expected ≈ 1e-4 of trials = 0.1 hits; allow a small count.
        assert!(hits0 < 10, "sliver sampled {hits0} times");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weight() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    fn indices_always_in_range() {
        let weights: Vec<f64> = (1..=17).map(|i| i as f64).collect();
        let t = AliasTable::new(&weights);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        for _ in 0..10_000 {
            assert!(t.sample(&mut rng) < 17);
        }
    }
}
