//! xoshiro256++ 1.0 (Blackman & Vigna, 2019): the workhorse PRNG of the
//! simulation suite.
//!
//! 256 bits of state, period `2^256 − 1`, ~0.8 ns per 64-bit output on
//! commodity hardware, and no known statistical failures (passes BigCrush
//! and PractRand).  Implemented here (rather than pulled from `rand`'s
//! small-rng feature) so that the byte-for-byte output of every experiment
//! is pinned by this repository and cannot drift with a dependency bump.

use crate::splitmix::SplitMix64;
use rand::{RngCore, SeedableRng};

/// xoshiro256++ generator state.  Never all-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Construct from raw state words.
    ///
    /// # Panics
    /// Panics if all four words are zero (the one forbidden state).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must be non-zero"
        );
        Self { s }
    }

    /// The raw state words (test/diagnostic use).
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);

        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);

        result
    }

    /// The `jump()` function: advances the state by `2^128` steps.
    ///
    /// Provides up to `2^128` non-overlapping subsequences; an alternative
    /// to seed-derived streams when provable stream disjointness is wanted.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for b in 0..64 {
                if (word >> b) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.step();
            }
        }
        self.s = acc;
    }

    /// A uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.step() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.step().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.step().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s.iter().all(|&w| w == 0) {
            // The all-zero state is forbidden; substitute an expanded seed.
            let mut sm = SplitMix64::new(0);
            sm.fill_u64(&mut s);
        }
        Self { s }
    }

    /// Seed via SplitMix64 expansion, as recommended by the xoshiro authors.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        let mut s = [0u64; 4];
        sm.fill_u64(&mut s);
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official test vector from `xoshiro256plusplus.c` (Blackman & Vigna):
    /// with state `[1, 2, 3, 4]` the first outputs are fixed.
    #[test]
    fn matches_reference_vector() {
        let mut g = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for e in expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn from_seed_all_zero_bytes_is_usable() {
        let mut g = Xoshiro256PlusPlus::from_seed([0u8; 32]);
        // Must not be stuck at zero.
        assert!((0..8).any(|_| g.next_u64() != 0));
    }

    #[test]
    fn seed_from_u64_deterministic_and_distinct() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut c = Xoshiro256PlusPlus::seed_from_u64(2);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn jump_diverges_from_original() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut b = a.clone();
        b.jump();
        let overlaps = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(overlaps, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn next_f64_mean_and_variance() {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(123);
        let n = 200_000usize;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = g.next_f64();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        // U(0,1): mean 1/2 (σ_mean ≈ 6.5e-4), variance 1/12.
        assert!((mean - 0.5).abs() < 5.0 * 6.5e-4, "mean = {mean}");
        assert!((var - 1.0 / 12.0).abs() < 2e-3, "var = {var}");
    }

    #[test]
    fn low_bit_balance() {
        // The ++ scrambler fixes the weak low bits of xoshiro256+; check
        // the least significant bit is balanced.
        let mut g = Xoshiro256PlusPlus::seed_from_u64(77);
        let n = 100_000;
        let ones: u64 = (0..n).map(|_| g.next_u64() & 1).sum();
        let dev = (ones as f64 - n as f64 / 2.0).abs();
        assert!(dev < 5.0 * (n as f64 / 4.0).sqrt(), "ones = {ones}");
    }

    #[test]
    fn fill_bytes_word_consistency() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut b = a.clone();
        let mut buf = [0u8; 32];
        a.fill_bytes(&mut buf);
        for chunk in buf.chunks_exact(8) {
            assert_eq!(chunk, b.next_u64().to_le_bytes());
        }
    }
}
