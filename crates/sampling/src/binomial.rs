//! Exact binomial sampling for arbitrary `n` (up to ~2^53) and `p ∈ [0,1]`.
//!
//! Two regimes, dispatched by [`sample_binomial`]:
//!
//! * **BINV** (Kachitvichyanukul & Schmeiser): sequential CDF inversion,
//!   expected `O(np)` time — used when `n·min(p,1-p) < 10`;
//! * **BTRD** (Hörmann 1993, *The generation of binomial random variates*):
//!   transformed rejection with squeeze — `O(1)` expected time regardless
//!   of `n`, used for larger means.
//!
//! Both produce samples from the *exact* binomial law (up to f64 arithmetic
//! in the acceptance tests, the standard for non-arbitrary-precision
//! samplers).  The mean-field simulation engine depends on this exactness:
//! each simulated round is a group-wise multinomial built from conditional
//! binomials, so any bias here would distort the process law the paper
//! analyzes.

use rand::Rng;

/// Mean threshold between BINV inversion and BTRD rejection.
///
/// Hörmann recommends switching near `np = 10`; below it inversion is both
/// faster and simpler.
const BINV_THRESHOLD: f64 = 10.0;

/// BINV gives up and restarts after this many CDF steps.  With `np ≤ 10`
/// the probability of legitimately exceeding 110 is below `10^-60`, so the
/// restart bias is far beneath f64 resolution.
const BINV_MAX_X: u64 = 110;

/// Draw one sample from `Binomial(n, p)`.
///
/// # Arguments
/// * `n` — number of trials (population size in the engine's kernels).
/// * `p` — success probability; values outside `[0,1]` are clamped, and
///   NaN is treated as 0 (callers construct `p` from ratios of counts, so
///   tiny negative rounding like `-1e-18` must not panic).
///
/// # Example
/// ```
/// use plurality_sampling::{binomial::sample_binomial, Xoshiro256PlusPlus};
/// use rand::SeedableRng;
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
/// let x = sample_binomial(100, 0.25, &mut rng);
/// assert!(x <= 100);
/// ```
pub fn sample_binomial<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    if n == 0 || p.is_nan() || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    // Exploit symmetry so the samplers only see p ≤ 1/2.
    if p > 0.5 {
        return n - sample_binomial_half(n, 1.0 - p, rng);
    }
    sample_binomial_half(n, p, rng)
}

/// Sampler body for `0 < p ≤ 1/2`.
fn sample_binomial_half<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    debug_assert!(p > 0.0 && p <= 0.5);
    if (n as f64) * p < BINV_THRESHOLD {
        binv(n, p, rng)
    } else {
        btrd(n, p, rng)
    }
}

/// BINV: sequential search of the CDF starting at 0.
///
/// Uses the recurrence `pmf(x+1)/pmf(x) = s·(n-x)/(x+1)` with
/// `s = p/(1-p)`, written in the classical `a/x - s` form.
fn binv<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let a = ((n + 1) as f64) * s;
    // q^n: with np < 10 and p ≤ 1/2, n·ln q ≥ -2np > -20, no underflow.
    let r0 = (n as f64 * q.ln()).exp();
    loop {
        let mut r = r0;
        let mut u: f64 = rng.gen::<f64>();
        let mut x: u64 = 0;
        loop {
            if u < r {
                return x;
            }
            u -= r;
            x += 1;
            if x > BINV_MAX_X || x > n {
                break; // numeric tail exhausted: restart
            }
            r *= a / (x as f64) - s;
        }
    }
}

/// Stirling series correction `fc(k) = ln k! − ln √(2π) − (k+1/2)ln k + k`.
///
/// Table for `k < 10` (values from Hörmann's paper, standard in every BTRD
/// implementation), series for larger `k`.
#[inline]
fn stirling_correction(k: u64) -> f64 {
    const FC: [f64; 10] = [
        0.081_061_466_795_327_26,
        0.041_340_695_955_409_29,
        0.027_677_925_684_998_34,
        0.020_790_672_103_765_09,
        0.016_644_691_189_821_19,
        0.013_876_128_823_070_75,
        0.011_896_709_945_891_77,
        0.010_411_265_261_972_09,
        0.009_255_462_182_712_733,
        0.008_330_563_433_362_87,
    ];
    if k < 10 {
        FC[k as usize]
    } else {
        let kp1 = (k + 1) as f64;
        let kp1sq = kp1 * kp1;
        (1.0 / 12.0 - (1.0 / 360.0 - 1.0 / (1260.0 * kp1sq)) / kp1sq) / kp1
    }
}

/// BTRD: transformed rejection with decomposition (Hörmann 1993, Alg. BTRD).
///
/// Requires `p ≤ 1/2` and `np ≥ 10`.
#[allow(clippy::many_single_char_names)] // names follow the paper
fn btrd<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let n_f = n as f64;
    let q = 1.0 - p;
    let npq = n_f * p * q;
    let spq = npq.sqrt();

    let m = ((n_f + 1.0) * p).floor(); // mode
    let r = p / q;
    let nr = (n_f + 1.0) * r;

    let b = 1.15 + 2.53 * spq;
    let a = -0.0873 + 0.0248 * b + 0.01 * p;
    let c = n_f * p + 0.5;
    let alpha = (2.83 + 5.1 / b) * spq;
    let v_r = 0.92 - 4.2 / b;
    let u_rv_r = 0.86 * v_r;

    loop {
        let mut v: f64 = rng.gen::<f64>();
        if v <= u_rv_r {
            // Hot path: ~86% of draws accept immediately.
            let u = v / v_r - 0.43;
            let k = ((2.0 * a / (0.5 - u.abs()) + b) * u + c).floor();
            return k as u64;
        }

        let u = if v >= v_r {
            rng.gen::<f64>() - 0.5
        } else {
            let u0 = v / v_r - 0.93;
            v = rng.gen::<f64>() * v_r;
            0.5f64.copysign(u0) - u0
        };

        let us = 0.5 - u.abs();
        let kf = ((2.0 * a / us + b) * u + c).floor();
        if kf < 0.0 || kf > n_f {
            continue;
        }
        let k = kf; // integer-valued f64; exact for k ≤ 2^53
        v = v * alpha / (a / (us * us) + b);
        let km = (k - m).abs();

        if km <= 15.0 {
            // Recursive pmf evaluation around the mode.
            let mut f = 1.0;
            if m < k {
                let mut i = m;
                while i < k {
                    i += 1.0;
                    f *= nr / i - r;
                }
            } else if m > k {
                let mut i = k;
                while i < m {
                    i += 1.0;
                    v *= nr / i - r;
                }
            }
            if v <= f {
                return k as u64;
            }
            continue;
        }

        // Squeeze-acceptance, then the full (log-domain) acceptance test.
        v = v.ln();
        let rho = (km / npq) * (((km / 3.0 + 0.625) * km + 1.0 / 6.0) / npq + 0.5);
        let t = -km * km / (2.0 * npq);
        if v < t - rho {
            return k as u64;
        }
        if v > t + rho {
            continue;
        }

        let nm = n_f - m + 1.0;
        let h = (m + 0.5) * ((m + 1.0) / (r * nm)).ln()
            + stirling_correction(m as u64)
            + stirling_correction((n_f - m) as u64);
        let nk = n_f - k + 1.0;
        let accept = h + (n_f + 1.0) * (nm / nk).ln() + (k + 0.5) * (nk * r / (k + 1.0)).ln()
            - stirling_correction(k as u64)
            - stirling_correction((n_f - k) as u64);
        if v <= accept {
            return k as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;
    use rand::SeedableRng;

    /// ln C(n, k) by direct log-factorial accumulation (test sizes only).
    fn ln_choose(n: u64, k: u64) -> f64 {
        let mut acc = 0.0;
        for i in 1..=k {
            acc += ((n - k + i) as f64).ln() - (i as f64).ln();
        }
        acc
    }

    fn binom_pmf(n: u64, p: f64, k: u64) -> f64 {
        (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
    }

    /// Upper χ² critical value at α=0.001 via the Wilson–Hilferty cube
    /// approximation (accurate to ~1% for df ≥ 3, ample for a test gate).
    fn chi2_crit_999(df: f64) -> f64 {
        let z = 3.0902; // Φ^{-1}(0.999)
        let a = 2.0 / (9.0 * df);
        df * (1.0 - a + z * a.sqrt()).powi(3)
    }

    /// Chi-square goodness-of-fit of `samples` against Binomial(n, p),
    /// pooling tail bins with expected count < 5.
    fn chi2_gof(n: u64, p: f64, samples: &[u64]) -> (f64, f64) {
        let total = samples.len() as f64;
        let mut counts = vec![0u64; (n + 1) as usize];
        let mut df: f64 = 0.0;
        for &s in samples {
            counts[s as usize] += 1;
        }
        // Pool into bins of expected ≥ 5, scanning from 0 upward.
        let mut stat = 0.0;
        let mut pool_obs = 0.0;
        let mut pool_exp = 0.0;
        for k in 0..=n {
            pool_obs += counts[k as usize] as f64;
            pool_exp += total * binom_pmf(n, p, k);
            if pool_exp >= 5.0 {
                stat += (pool_obs - pool_exp).powi(2) / pool_exp;
                df += 1.0;
                pool_obs = 0.0;
                pool_exp = 0.0;
            }
        }
        if pool_exp > 0.0 {
            // Final pool absorbs the remaining tail mass.
            pool_exp += total
                * (1.0 - {
                    let mut cdf = 0.0;
                    for k in 0..=n {
                        cdf += binom_pmf(n, p, k);
                    }
                    cdf
                })
                .max(0.0);
            if pool_exp >= 1.0 {
                stat += (pool_obs - pool_exp).powi(2) / pool_exp;
                df += 1.0;
            }
        }
        (stat, (df - 1.0).max(1.0))
    }

    fn draw(n: u64, p: f64, trials: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        (0..trials)
            .map(|_| sample_binomial(n, p, &mut rng))
            .collect()
    }

    #[test]
    fn edge_cases() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
        assert_eq!(sample_binomial(100, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(100, 1.0, &mut rng), 100);
        assert_eq!(sample_binomial(100, -0.5, &mut rng), 0);
        assert_eq!(sample_binomial(100, 1.5, &mut rng), 100);
        assert_eq!(sample_binomial(100, f64::NAN, &mut rng), 0);
    }

    #[test]
    fn tiny_negative_rounding_is_zero() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        assert_eq!(sample_binomial(1_000_000, -1e-18, &mut rng), 0);
    }

    #[test]
    fn always_within_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for &(n, p) in &[
            (1u64, 0.5),
            (10, 0.9),
            (1000, 0.001),
            (1000, 0.999),
            (12345, 0.37),
        ] {
            for _ in 0..2000 {
                assert!(sample_binomial(n, p, &mut rng) <= n);
            }
        }
    }

    #[test]
    fn fair_coin_single_trial() {
        let samples = draw(1, 0.5, 40_000, 4);
        let ones: u64 = samples.iter().sum();
        let dev = (ones as f64 - 20_000.0).abs();
        assert!(dev < 5.0 * 100.0, "ones = {ones}"); // σ = √(40000/4) = 100
    }

    #[test]
    fn gof_binv_small() {
        // np = 3: pure BINV region.
        let samples = draw(10, 0.3, 30_000, 5);
        let (stat, df) = chi2_gof(10, 0.3, &samples);
        assert!(stat < chi2_crit_999(df), "chi2 = {stat}, df = {df}");
    }

    #[test]
    fn gof_binv_wide() {
        // np = 7 over a wider support.
        let samples = draw(100, 0.07, 30_000, 6);
        let (stat, df) = chi2_gof(100, 0.07, &samples);
        assert!(stat < chi2_crit_999(df), "chi2 = {stat}, df = {df}");
    }

    #[test]
    fn gof_btrd_moderate() {
        // np = 40: BTRD region.
        let samples = draw(400, 0.1, 30_000, 7);
        let (stat, df) = chi2_gof(400, 0.1, &samples);
        assert!(stat < chi2_crit_999(df), "chi2 = {stat}, df = {df}");
    }

    #[test]
    fn gof_btrd_symmetric() {
        let samples = draw(200, 0.5, 30_000, 8);
        let (stat, df) = chi2_gof(200, 0.5, &samples);
        assert!(stat < chi2_crit_999(df), "chi2 = {stat}, df = {df}");
    }

    #[test]
    fn gof_high_p_symmetry_path() {
        // p > 1/2 exercises the reflection branch.
        let samples = draw(150, 0.8, 30_000, 9);
        let (stat, df) = chi2_gof(150, 0.8, &samples);
        assert!(stat < chi2_crit_999(df), "chi2 = {stat}, df = {df}");
    }

    #[test]
    fn moments_large_n() {
        // n = 10^6: only moment checks are tractable.
        let n = 1_000_000u64;
        let p = 0.3;
        let trials = 20_000;
        let samples = draw(n, p, trials, 10);
        let mean: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / trials as f64;
        let var: f64 = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / (trials - 1) as f64;
        let true_mean = n as f64 * p;
        let true_var = n as f64 * p * (1.0 - p);
        let mean_sigma = (true_var / trials as f64).sqrt();
        assert!(
            (mean - true_mean).abs() < 5.0 * mean_sigma,
            "mean {mean} vs {true_mean}"
        );
        // Sample variance of a binomial: allow ±10% at 20k trials.
        assert!(
            (var / true_var - 1.0).abs() < 0.1,
            "var {var} vs {true_var}"
        );
    }

    #[test]
    fn moments_huge_n_tiny_p() {
        // np = 50 with n = 10^10 (exercises BTRD at large n).
        let n = 10_000_000_000u64;
        let p = 5e-9;
        let trials = 20_000;
        let samples = draw(n, p, trials, 11);
        let mean: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / trials as f64;
        assert!(
            (mean - 50.0).abs() < 5.0 * (50.0f64 / trials as f64).sqrt() * 1.5,
            "mean = {mean}"
        );
    }

    #[test]
    fn stirling_correction_continuity() {
        // Table and series must agree where they meet.
        let table9 = stirling_correction(9);
        let series10 = stirling_correction(10);
        assert!(table9 > series10, "fc must decrease");
        assert!((table9 - series10) < 0.001);
        // Series value sanity: fc(k) ≈ 1/(12(k+1)).
        let fc100 = stirling_correction(100);
        assert!((fc100 - 1.0 / (12.0 * 101.0)).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = draw(1000, 0.25, 100, 12);
        let b = draw(1000, 0.25, 100, 12);
        assert_eq!(a, b);
    }
}
