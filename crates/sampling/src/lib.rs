//! Deterministic PRNG streams and **exact** discrete samplers for the
//! plurality-consensus simulation suite.
//!
//! The simulation engines in this workspace (see `plurality-engine`) rely on
//! sampling *exact* binomial and multinomial variates with population sizes
//! up to `10^12`, and on drawing per-node categorical samples billions of
//! times per experiment.  The `rand_distr` crate is not part of the allowed
//! dependency set, so this crate provides from-scratch, statistically
//! verified implementations of:
//!
//! * [`SplitMix64`] — a tiny, robust generator used for seeding and for
//!   deriving independent per-trial / per-thread streams from a master seed;
//! * [`Xoshiro256PlusPlus`] — the workhorse PRNG (fast, 256-bit state,
//!   passes BigCrush), implementing [`rand::RngCore`] and
//!   [`rand::SeedableRng`];
//! * [`binomial::sample_binomial`] — an exact binomial sampler combining
//!   BINV inversion (small mean) with Hörmann's BTRD transformed-rejection
//!   algorithm (large mean);
//! * [`multinomial::sample_multinomial`] — exact multinomials via the
//!   conditional-binomial decomposition;
//! * [`alias::AliasTable`] — Walker–Vose O(1) categorical sampling;
//! * [`hypergeometric`] — exact (multivariate) hypergeometric draws for
//!   without-replacement corruption in the adversary model;
//! * [`categorical::CountSampler`] — *exact* (integer-arithmetic)
//!   categorical sampling proportional to `u64` counts, used where floating
//!   point rounding would perturb the process law.
//!
//! # Determinism
//!
//! Every simulation in the workspace is reproducible from a single master
//! seed.  The convention, implemented by [`derive_stream`], is that stream
//! `i` of master seed `s` is seeded by a double SplitMix64 finalization of
//! `s + i·γ`; distinct `(seed, index)` pairs yield statistically
//! independent generators.  The workspace-wide registry of who draws from
//! which stream — per-trial seeds, the gossip engine's seven streams, the
//! sharded agent engine's per-chunk streams — is the normative contract in
//! `docs/DETERMINISM.md` at the repository root.
//!
//! # Example
//!
//! ```
//! use plurality_sampling::{Xoshiro256PlusPlus, binomial::sample_binomial};
//! use rand::SeedableRng;
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
//! let x = sample_binomial(1_000_000, 0.25, &mut rng);
//! assert!(x <= 1_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod binomial;
pub mod categorical;
pub mod hypergeometric;
pub mod multinomial;
pub mod splitmix;
pub mod xoshiro;

pub use alias::AliasTable;
pub use categorical::CountSampler;
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256PlusPlus;

use rand::SeedableRng;

/// Derive the seed of an independent PRNG stream from a master seed.
///
/// Stream derivation is used to hand out per-trial and per-thread
/// generators: `derive_stream(master, i)` and `derive_stream(master, j)`
/// are decorrelated for `i != j` because each output passes through two
/// rounds of SplitMix64's 64-bit avalanche finalizer.
#[inline]
#[must_use]
pub fn derive_stream(master_seed: u64, stream: u64) -> u64 {
    // Jump the master sequence by `stream` increments of the Weyl constant,
    // then finalize twice so nearby stream indices decorrelate.
    let raw = master_seed
        .wrapping_add(stream.wrapping_mul(splitmix::GOLDEN_GAMMA))
        .wrapping_add(splitmix::GOLDEN_GAMMA);
    splitmix::mix64(splitmix::mix64(raw))
}

/// Construct the workspace's standard PRNG for `(master_seed, stream)`.
///
/// This is the only constructor the engines use, so that a run is fully
/// described by its master seed and the deterministic stream layout.
#[inline]
#[must_use]
pub fn stream_rng(master_seed: u64, stream: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::seed_from_u64(derive_stream(master_seed, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn derive_stream_is_deterministic() {
        assert_eq!(derive_stream(7, 3), derive_stream(7, 3));
    }

    #[test]
    fn derive_stream_separates_streams() {
        let a = derive_stream(7, 0);
        let b = derive_stream(7, 1);
        let c = derive_stream(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn stream_rng_streams_decorrelated() {
        // Crude decorrelation check: matching 64-bit outputs across the
        // first 1024 draws of adjacent streams would be astronomically
        // unlikely for independent generators.
        let mut r0 = stream_rng(99, 0);
        let mut r1 = stream_rng(99, 1);
        let mut matches = 0;
        for _ in 0..1024 {
            if r0.next_u64() == r1.next_u64() {
                matches += 1;
            }
        }
        assert_eq!(matches, 0);
    }
}
