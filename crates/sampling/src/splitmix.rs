//! SplitMix64: a tiny 64-bit generator with full-period Weyl sequence and
//! avalanche finalizer (Steele, Lea, Flood, OOPSLA'14).
//!
//! SplitMix64 is *not* used as the simulation PRNG; its roles here are
//! (a) expanding small seeds into [`crate::Xoshiro256PlusPlus`] state, and
//! (b) deriving independent stream seeds (see [`crate::derive_stream`]).
//! Both uses are the ones its authors recommend.

use rand::{RngCore, SeedableRng};

/// The golden-ratio Weyl increment `⌊2^64 / φ⌋`, odd.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The 64-bit variant of the MurmurHash3/SplitMix finalizer.
///
/// A bijective avalanche mixer: every input bit affects every output bit
/// with probability close to 1/2.  Used for seed expansion and stream
/// derivation throughout the workspace.
#[inline]
#[must_use]
pub const fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 generator state.
///
/// The sequence is `mix64(s + γ), mix64(s + 2γ), …` for Weyl constant
/// `γ =` [`GOLDEN_GAMMA`]; period `2^64`, equidistributed in one dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator whose first output is `mix64(seed + γ)`.
    #[inline]
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.  (Named after the reference implementation;
    /// this is not an `Iterator`.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Fill `dst` with consecutive outputs (seed-expansion helper).
    pub fn fill_u64(&mut self, dst: &mut [u64]) {
        for w in dst {
            *w = self.next();
        }
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // Upper bits of SplitMix64 have the best avalanche properties.
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the public-domain `splitmix64.c` by Sebastiano
    /// Vigna: first outputs for seed `0x0` and seed `1234567`.
    #[test]
    fn matches_reference_sequence_seed_zero() {
        let mut g = SplitMix64::new(0);
        // Values computed by the reference C implementation.
        assert_eq!(g.next(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // Spot-check injectivity over a structured input set.
        let inputs: Vec<u64> = (0..4096u64).map(|i| i * 0x0101_0101).collect();
        let mut outputs: Vec<u64> = inputs.iter().map(|&x| mix64(x)).collect();
        outputs.sort_unstable();
        outputs.dedup();
        assert_eq!(outputs.len(), inputs.len());
    }

    #[test]
    fn fill_bytes_matches_next_u64_words() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut buf = [0u8; 24];
        a.fill_bytes(&mut buf);
        for chunk in buf.chunks_exact(8) {
            let expect = b.next().to_le_bytes();
            assert_eq!(chunk, expect);
        }
    }

    #[test]
    fn fill_bytes_partial_tail() {
        let mut a = SplitMix64::new(7);
        let mut buf = [0u8; 13];
        a.fill_bytes(&mut buf);
        // Tail bytes come from one extra draw; just assert non-degenerate.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut a = SplitMix64::new(3);
        let mut b = SplitMix64::new(3);
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }

    #[test]
    fn output_mean_is_centred() {
        // Mean of 1e5 outputs mapped to [0,1) should be 0.5 ± 5σ
        // (σ = 1/√(12·1e5) ≈ 9.1e-4).
        let mut g = SplitMix64::new(0xDEAD_BEEF);
        let trials = 100_000;
        let mean: f64 = (0..trials)
            .map(|_| (g.next() >> 11) as f64 / (1u64 << 53) as f64)
            .sum::<f64>()
            / f64::from(trials);
        assert!((mean - 0.5).abs() < 5.0 * 9.2e-4, "mean = {mean}");
    }
}
