//! Implicit-vs-CSR topology footprint bench: peak memory (VmHWM) and
//! per-round throughput for the agent engine under 3-majority.
//!
//! ```text
//! # Full acceptance run (n = 10^6 and 10^7) writing the repo-root file:
//! cargo run --release -p plurality-bench --bin topology_memory -- \
//!     --out BENCH_topology_memory.json
//!
//! # Quick look at one size, stdout only:
//! cargo run --release -p plurality-bench --bin topology_memory -- --n 1000000
//! ```
//!
//! Peak RSS is per-process (`VmHWM` in `/proc/self/status`), so each
//! (topology, n) cell **re-executes this binary** as a child with
//! `--case`: the child builds the topology through the shared
//! [`TopologySpec`] grammar, records the post-build high-water mark,
//! runs a capped number of 3-majority rounds, and prints one `k=v`
//! line.  That way the CSR cell's construction temporaries (stub
//! shuffle, dedup set) are charged to the CSR cell and nothing leaks
//! across cells.
//!
//! The acceptance gate from the topology API redesign: at expected
//! degree ≥ 8, the implicit ring's peak must be ≤ 25% of the CSR
//! (random-regular) peak at the same `n` and degree.  The bench exits
//! nonzero if the ratio is violated at any measured size.

use std::io::Write as _;
use std::time::Instant;

use plurality_core::{builders, ThreeMajority};
use plurality_engine::{AgentEngine, Placement, RunOptions};
use plurality_topology::TopologySpec;

/// Both cells have expected degree 8: `span=4` gives the implicit ring
/// degree `2·span = 8`, matching the materialized `d = 8` CSR graph.
const IMPLICIT_SPEC: &str = "ring-gradient:alpha=2,span=4";
const CSR_SPEC: &str = "random-regular:d=8";
const SEED: u64 = 7;

/// `VmHWM` (peak resident set) of this process, in KiB.
fn vm_hwm_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .expect("VmHWM value");
        }
    }
    panic!("VmHWM not found in /proc/self/status");
}

/// One measured (topology, n) cell, as reported by a child process.
struct Cell {
    spec: String,
    n: usize,
    build_peak_kb: u64,
    run_peak_kb: u64,
    rounds: u64,
    ms_per_round: f64,
}

/// Child mode: build + run one cell, print one `k=v` line on stdout.
fn run_case(spec: &str, n: usize, rounds_cap: u64) {
    let parsed = TopologySpec::parse(spec).expect("valid spec");
    let topology = parsed.build(n, SEED).expect("buildable at this n");
    let build_peak_kb = vm_hwm_kb();

    let cfg = builders::biased(n as u64, 4, (n / 5) as u64);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(rounds_cap);
    let engine = AgentEngine::new(&*topology).with_threads(1);
    let t0 = Instant::now();
    let r = engine.run(&d, &cfg, Placement::Shuffled, &opts, SEED);
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let run_peak_kb = vm_hwm_kb();

    println!(
        "spec={spec} n={n} build_peak_kb={build_peak_kb} run_peak_kb={run_peak_kb} \
         rounds={} ms_per_round={:.3}",
        r.rounds,
        elapsed_ms / r.rounds.max(1) as f64
    );
}

/// Re-exec this binary for one cell and parse its report line.
fn spawn_case(spec: &str, n: usize, rounds_cap: u64) -> Cell {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .args([
            "--case",
            spec,
            "--n",
            &n.to_string(),
            "--rounds",
            &rounds_cap.to_string(),
        ])
        .output()
        .expect("spawn child");
    assert!(
        out.status.success(),
        "child failed for {spec} n={n}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let line = String::from_utf8(out.stdout).expect("utf8");
    let field = |key: &str| -> String {
        line.split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing {key} in child output: {line}"))
            .to_string()
    };
    Cell {
        spec: field("spec"),
        n: field("n").parse().expect("n"),
        build_peak_kb: field("build_peak_kb").parse().expect("build_peak_kb"),
        run_peak_kb: field("run_peak_kb").parse().expect("run_peak_kb"),
        rounds: field("rounds").parse().expect("rounds"),
        ms_per_round: field("ms_per_round").parse().expect("ms_per_round"),
    }
}

fn cell_json(c: &Cell) -> String {
    format!(
        "    {{\"spec\":\"{}\",\"n\":{},\"build_peak_kb\":{},\"run_peak_kb\":{},\
         \"rounds\":{},\"ms_per_round\":{:.3}}}",
        c.spec, c.n, c.build_peak_kb, c.run_peak_kb, c.rounds, c.ms_per_round
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };

    if let Some(spec) = get("--case") {
        let n: usize = get("--n").expect("--case needs --n").parse().expect("n");
        let rounds: u64 = get("--rounds").unwrap_or("10").parse().expect("rounds");
        run_case(spec, n, rounds);
        return;
    }

    let sizes: Vec<usize> = match get("--n") {
        Some(n) => vec![n.parse().expect("n")],
        None => vec![1_000_000, 10_000_000],
    };
    let out_path = get("--out");

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    let mut ok = true;
    for &n in &sizes {
        // Enough executed rounds to average out allocator noise without
        // waiting on ring convergence (O(n) rounds at this span).
        let rounds_cap = if n >= 10_000_000 { 5 } else { 10 };
        eprintln!("measuring {IMPLICIT_SPEC} at n = {n} ...");
        let implicit = spawn_case(IMPLICIT_SPEC, n, rounds_cap);
        eprintln!("measuring {CSR_SPEC} at n = {n} ...");
        let csr = spawn_case(CSR_SPEC, n, rounds_cap);
        let ratio = implicit.run_peak_kb as f64 / csr.run_peak_kb as f64;
        let pass = ratio <= 0.25;
        ok &= pass;
        eprintln!(
            "n = {n}: implicit peak {} MiB vs CSR peak {} MiB → ratio {:.3} ({})",
            implicit.run_peak_kb / 1024,
            csr.run_peak_kb / 1024,
            ratio,
            if pass { "PASS ≤ 0.25" } else { "FAIL > 0.25" }
        );
        ratios.push(format!(
            "    {{\"n\":{n},\"implicit_over_csr_peak\":{ratio:.3},\"pass\":{pass}}}"
        ));
        rows.push(cell_json(&implicit));
        rows.push(cell_json(&csr));
    }

    let json = format!(
        "{{\n  \"schema\": \"plurality-bench-topology-memory/v1\",\n  \
         \"bench\": \"implicit ring vs materialized CSR at matched expected degree 8, \
         3-majority, agent engine, 1 thread\",\n  \
         \"seed\": {SEED},\n  \"host\": {{\"cpus\": {}, \"os\": \"linux\"}},\n  \
         \"note\": \"peak = VmHWM of a fresh child process per cell (topology construction \
         included), so CSR construction temporaries are charged to the CSR cell; ms_per_round \
         is wall-clock over the executed rounds at the cap (ring convergence is O(n) rounds \
         and is not awaited). Gate: implicit run peak <= 25% of CSR run peak at each n.\",\n  \
         \"cells\": [\n{}\n  ],\n  \"ratios\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, usize::from),
        rows.join(",\n"),
        ratios.join(",\n")
    );
    match out_path {
        Some(p) => {
            let mut f = std::fs::File::create(p).expect("create out file");
            f.write_all(json.as_bytes()).expect("write out file");
            eprintln!("wrote {p}");
        }
        None => print!("{json}"),
    }
    assert!(ok, "implicit/CSR peak-memory ratio gate failed (see above)");
}
