//! Within-trial sharding scaling bench: the sharded [`AgentEngine`]
//! at large `n` on the clique under 3-majority, across thread counts.
//!
//! ```text
//! # Full acceptance run (n = 10^7, threads 1/2/4, 3 reps) writing the
//! # repo-root baseline file:
//! cargo run --release -p plurality-bench --bin parallel_engine_bench -- \
//!     --out BENCH_parallel_engine.json
//!
//! # Quick look at a smaller n, stdout only:
//! cargo run --release -p plurality-bench --bin parallel_engine_bench -- --n 1000000
//! ```
//!
//! Every thread count replays the **same trial** (same seed, same
//! trajectory — the determinism contract in `docs/DETERMINISM.md`), so
//! the run doubles as an end-to-end thread-invariance check: the bench
//! aborts if rounds or winner drift across `T`.  Timings are
//! wall-clock per executed round, best of `--reps` runs; the JSON
//! records the host's core count because scaling numbers from an
//! oversubscribed pool (threads > cores) measure scheduling overhead,
//! not the shard fan-out.

use std::time::Instant;

use plurality_core::{builders, ThreeMajority};
use plurality_engine::{AgentEngine, Placement, RunOptions};
use plurality_topology::Clique;

/// One measured cell: a thread count with its best-of-reps timing.
struct Cell {
    threads: usize,
    rounds: u64,
    winner: Option<usize>,
    best_ms_per_round: f64,
    median_ms_per_round: f64,
}

fn median(sorted: &[f64]) -> f64 {
    let m = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[m]
    } else {
        (sorted[m - 1] + sorted[m]) / 2.0
    }
}

fn measure(n: usize, threads: usize, reps: usize, seed: u64) -> Cell {
    let clique = Clique::new(n);
    let d = ThreeMajority::new();
    let cfg = builders::biased(n as u64, 3, (n / 10) as u64);
    let opts = RunOptions::with_max_rounds(1_000);
    let engine = AgentEngine::new(&clique).with_threads(threads);

    let mut per_round = Vec::with_capacity(reps);
    let mut rounds = 0u64;
    let mut winner = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = engine.run(&d, &cfg, Placement::Shuffled, &opts, seed);
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(r.rounds > 0, "trial converged in zero rounds");
        per_round.push(elapsed_ms / r.rounds as f64);
        rounds = r.rounds;
        winner = r.winner;
    }
    per_round.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Cell {
        threads,
        rounds,
        winner,
        best_ms_per_round: per_round[0],
        median_ms_per_round: median(&per_round),
    }
}

fn usage_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .clone()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = usage_value(&args, "--n")
        .map(|v| v.parse().expect("--n: not a number"))
        .unwrap_or(10_000_000);
    let reps: usize = usage_value(&args, "--reps")
        .map(|v| v.parse().expect("--reps: not a number"))
        .unwrap_or(3);
    let seed: u64 = usage_value(&args, "--seed")
        .map(|v| v.parse().expect("--seed: not a number"))
        .unwrap_or(7);
    let out = usage_value(&args, "--out");

    let cores = std::thread::available_parallelism().map_or(0, |p| p.get());
    eprintln!(
        "parallel_engine_bench: n = {n}, 3-majority on the clique, \
         threads 1/2/4, {reps} reps, seed {seed} ({cores} host cores)"
    );

    let cells: Vec<Cell> = [1usize, 2, 4]
        .iter()
        .map(|&t| {
            let c = measure(n, t, reps, seed);
            eprintln!(
                "  threads = {}: {:.1} ms/round best ({:.1} median), {} rounds, winner {:?}",
                c.threads, c.best_ms_per_round, c.median_ms_per_round, c.rounds, c.winner
            );
            c
        })
        .collect();

    // The same seed must replay the same trajectory at every T.
    for c in &cells[1..] {
        assert_eq!(
            (c.rounds, c.winner),
            (cells[0].rounds, cells[0].winner),
            "thread-invariance violated at threads = {}",
            c.threads
        );
    }

    let base = cells[0].best_ms_per_round;
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"threads\":{},\"best_ms_per_round\":{:.3},\"median_ms_per_round\":{:.3},\
             \"speedup_vs_1\":{:.3},\"rounds\":{}}}",
            c.threads,
            c.best_ms_per_round,
            c.median_ms_per_round,
            base / c.best_ms_per_round,
            c.rounds,
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"plurality-bench-parallel-engine/v1\",\n  \
         \"bench\": \"AgentEngine sharded rounds, 3-majority, clique, bias n/10\",\n  \
         \"n\": {n},\n  \"reps\": {reps},\n  \"seed\": {seed},\n  \
         \"host\": {{\"cpus\": {cores}, \"os\": \"{}\"}},\n  \
         \"note\": \"ms per executed round, best of {reps} full trials per thread count; \
         every thread count replays the identical trajectory (asserted on rounds+winner). \
         Speedups are only meaningful when threads <= host cpus: on an oversubscribed pool \
         the barrier per round serializes the shards and the curve flattens to ~1x.\",\n  \
         \"cells\": [\n{rows}\n  ]\n}}\n",
        std::env::consts::OS,
    );
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
