//! Regenerate every experiment table from DESIGN.md §4.
//!
//! ```text
//! cargo run -p plurality-bench --release --bin run_experiments            # all, paper scale
//! cargo run -p plurality-bench --release --bin run_experiments -- e05 e07  # selected
//! cargo run -p plurality-bench --release --bin run_experiments -- --smoke  # quick pass
//! cargo run -p plurality-bench --release --bin run_experiments -- --csv DIR # also dump CSVs
//! ```
//!
//! Output is markdown on stdout (the source of EXPERIMENTS.md's measured
//! numbers), one section per experiment, with wall-clock timings.

use plurality_experiments::registry;
use plurality_experiments::Context;
use std::io::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut csv_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut seed: Option<u64> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--csv" => {
                csv_dir = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--csv needs a directory")),
                );
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                seed = Some(v.parse().unwrap_or_else(|_| usage("--seed must be a u64")));
            }
            "--help" | "-h" => usage(""),
            id if id.starts_with('e') => ids.push(id.to_string()),
            other => usage(&format!("unknown argument: {other}")),
        }
    }

    let mut ctx = if smoke {
        Context::smoke()
    } else {
        Context::paper()
    };
    if let Some(s) = seed {
        ctx.seed = s;
    }
    let all_ids: Vec<String> = registry::all().iter().map(|e| e.id().to_string()).collect();
    let selected: Vec<String> = if ids.is_empty() { all_ids } else { ids };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(
        out,
        "# Experiment run ({} scale, seed {:#x}, {} threads)\n",
        if smoke { "smoke" } else { "paper" },
        ctx.seed,
        ctx.threads
    );

    let total_start = Instant::now();
    for id in &selected {
        let exp = registry::by_id(id).unwrap_or_else(|| usage(&format!("unknown experiment {id}")));
        let _ = writeln!(out, "## {} — {}\n", exp.id(), exp.title());
        let _ = out.flush();
        let start = Instant::now();
        let tables = exp.run(&ctx);
        let elapsed = start.elapsed();
        for (ti, table) in tables.iter().enumerate() {
            let _ = writeln!(out, "{}", table.markdown());
            if let Some(dir) = &csv_dir {
                std::fs::create_dir_all(dir).expect("create csv dir");
                let path = format!("{dir}/{}-{ti}.csv", exp.id());
                std::fs::write(&path, table.csv()).expect("write csv");
            }
        }
        let _ = writeln!(out, "_elapsed: {:.1}s_\n", elapsed.as_secs_f64());
        let _ = out.flush();
    }
    let _ = writeln!(
        out,
        "---\n_total elapsed: {:.1}s_",
        total_start.elapsed().as_secs_f64()
    );
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: run_experiments [--smoke] [--seed N] [--csv DIR] [e01 e02 ...]\n\
         \n\
         Regenerates the experiment tables of DESIGN.md §4 / EXPERIMENTS.md.\n\
         With no ids, runs every registry experiment (e01..e18)."
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
