//! Regenerate the golden-trace fingerprint tables used by
//! `tests/agent_golden.rs` (and, historically, `tests/gossip_modes.rs`).
//!
//! Prints one Rust tuple per pinned configuration.  The fingerprints pin
//! the engines' PRNG stream layout bit-for-bit: any refactor that claims
//! to preserve trajectories (such as the devirtualized engine cores) must
//! reproduce these values exactly.  Run with:
//!
//! ```text
//! cargo run --release -p plurality-bench --bin golden_fingerprints
//! ```

use plurality_core::{Dynamics, HPlurality, ThreeMajority, UndecidedState};
use plurality_engine::{AgentEngine, Placement, RunOptions, Trace};
use plurality_gossip::{ExchangeMode, GossipEngine, NetworkConfig, Scheduler};
use plurality_topology::{erdos_renyi, random_regular, Clique, Topology};

/// FNV-1a fold of a trace's `(round, plurality, second, minority, extra)`
/// tuples — the same fingerprint `tests/gossip_modes.rs` uses.
fn trace_fingerprint(trace: &Trace) -> u64 {
    let fnv = |acc: u64, x: u64| (acc ^ x).wrapping_mul(0x0100_0000_01b3);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for s in &trace.rounds {
        h = fnv(h, s.round);
        h = fnv(h, s.plurality_count);
        h = fnv(h, s.second_count);
        h = fnv(h, s.minority_mass);
        h = fnv(h, s.extra_state_mass);
    }
    h
}

fn agent_row(label: &str, topo: &dyn Topology, d: &dyn Dynamics, threads: usize, seed: u64) {
    let n = topo.n() as u64;
    let cfg = plurality_core::builders::biased(n, 4, n / 5);
    let engine = AgentEngine::new(topo)
        .with_threads(threads)
        .with_chunk_size(512);
    let opts = RunOptions::with_max_rounds(50_000).traced();
    let r = engine.run(d, &cfg, Placement::Shuffled, &opts, seed);
    println!(
        "    // {label}\n    ({seed}, {}, {:?}, {:#018x}),",
        r.rounds,
        r.winner,
        trace_fingerprint(&r.trace.unwrap()),
    );
}

fn gossip_row(
    label: &str,
    mode: ExchangeMode,
    scheduler: Scheduler,
    network: NetworkConfig,
    seed: u64,
) {
    let clique = Clique::new(800);
    let cfg = plurality_core::builders::biased(800, 3, 160);
    let engine = GossipEngine::new(&clique)
        .with_mode(mode)
        .with_scheduler(scheduler)
        .with_network(network);
    let opts = RunOptions::with_max_rounds(100_000).traced();
    let (r, s) = engine.run_detailed(
        &ThreeMajority::new(),
        &cfg,
        Placement::Shuffled,
        &opts,
        seed,
    );
    println!(
        "    // {label}\n    ({seed}, {}, {:?}, {}, {}, {:#018x}),",
        r.rounds,
        r.winner,
        s.activations,
        s.messages,
        trace_fingerprint(&r.trace.unwrap()),
    );
}

fn main() {
    println!("// AgentEngine goldens: (seed, rounds, winner, fingerprint)");
    let c3000 = Clique::new(3_000);
    agent_row(
        "clique(3000) 3-majority 1 thread",
        &c3000,
        &ThreeMajority::new(),
        1,
        11,
    );
    agent_row(
        "clique(3000) 3-majority 3 threads",
        &c3000,
        &ThreeMajority::new(),
        3,
        12,
    );
    let c2000 = Clique::new(2_000);
    agent_row(
        "clique(2000) 7-plurality",
        &c2000,
        &HPlurality::new(7),
        1,
        21,
    );
    agent_row(
        "clique(2000) undecided",
        &c2000,
        &UndecidedState::new(4),
        2,
        31,
    );
    let er = erdos_renyi(1_500, 0.01, 7);
    assert!(er.min_degree() > 0, "ER graph has an isolated node");
    agent_row(
        "er(1500,0.01) 3-majority",
        &er,
        &ThreeMajority::new(),
        1,
        41,
    );
    let reg = random_regular(1_200, 8, 3);
    agent_row(
        "regular(1200,8) 5-plurality",
        &reg,
        &HPlurality::new(5),
        2,
        51,
    );

    println!();
    println!("// Gossip goldens: (seed, rounds, winner, activations, messages, fingerprint)");
    gossip_row(
        "poisson pull ideal",
        ExchangeMode::Pull,
        Scheduler::Poisson,
        NetworkConfig::default(),
        71,
    );
    gossip_row(
        "poisson pull delay/loss",
        ExchangeMode::Pull,
        Scheduler::Poisson,
        NetworkConfig::new(0.4, 0.05),
        72,
    );
    gossip_row(
        "sequential push ideal",
        ExchangeMode::Push,
        Scheduler::Sequential,
        NetworkConfig::default(),
        81,
    );
    gossip_row(
        "poisson push-pull delay/loss",
        ExchangeMode::PushPull,
        Scheduler::Poisson,
        NetworkConfig::new(0.4, 0.05),
        91,
    );
}
