//! Golden-trace fingerprint tool: regenerate or **check** the pinned
//! tables in `plurality_bench::golden` (consumed by
//! `tests/agent_golden.rs`).
//!
//! ```text
//! # Re-run every pinned case; exit 1 on any drift (the CI gate):
//! cargo run --release -p plurality-bench --bin golden_fingerprints -- --check
//!
//! # Print regenerated rows to paste into crates/bench/src/golden.rs
//! # after an *intentional* trajectory change:
//! cargo run --release -p plurality-bench --bin golden_fingerprints
//! ```
//!
//! The fingerprints pin the engines' PRNG stream layout bit for bit:
//! any refactor that claims to preserve trajectories (devirtualized
//! cores, the failure-model degenerate path) must reproduce these
//! values exactly.

use plurality_bench::golden::{
    check_all, run_agent_case, run_gossip_case, AGENT_CASES, GOSSIP_CASES,
};

fn regenerate() {
    println!("// AgentEngine goldens (paste the changed fields into golden.rs):");
    for case in AGENT_CASES {
        let o = run_agent_case(case);
        println!(
            "    // {}\n    seed: {}, rounds: {}, winner: {:?}, fingerprint: {:#018x},",
            case.label, case.seed, o.rounds, o.winner, o.fingerprint,
        );
    }
    println!();
    println!("// Gossip goldens:");
    for case in GOSSIP_CASES {
        let o = run_gossip_case(case);
        println!(
            "    // {}\n    seed: {}, rounds: {}, winner: {:?}, activations: {}, \
             messages: {}, fingerprint: {:#018x},",
            case.label, case.seed, o.rounds, o.winner, o.activations, o.messages, o.fingerprint,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => match check_all() {
            Ok(()) => {
                println!(
                    "golden fingerprints OK: {} agent + {} gossip cases bit-identical",
                    AGENT_CASES.len(),
                    GOSSIP_CASES.len()
                );
            }
            Err(drifts) => {
                eprintln!(
                    "golden fingerprint DRIFT in {} case(s) — the engines are no longer \
                     bit-identical to the pinned traces:",
                    drifts.len()
                );
                for d in &drifts {
                    eprintln!("  {d}");
                }
                eprintln!(
                    "\nIf the change is intentional, regenerate with\n  cargo run --release \
                     -p plurality-bench --bin golden_fingerprints\nand update \
                     crates/bench/src/golden.rs."
                );
                std::process::exit(1);
            }
        },
        Some("--help" | "-h") => {
            eprintln!("usage: golden_fingerprints [--check]");
        }
        Some(other) => {
            eprintln!("unknown argument '{other}' (expected --check)");
            std::process::exit(2);
        }
        None => regenerate(),
    }
}
