//! Benchmark support library: the golden-trace fingerprint tables
//! shared by `tests/agent_golden.rs` (the drift test) and the
//! `golden_fingerprints` binary (regeneration + the CI `--check` gate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod golden;
